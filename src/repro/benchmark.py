"""The ``repro bench`` performance suite.

Runs a fixed set of solver / simulation / inference benchmarks and writes a
machine-readable ``BENCH_<tag>.json``, establishing the repo's performance
trajectory across PRs.  Each benchmark reports wall-clock seconds (min over
repeats, which is robust to scheduler noise) and, where two code paths are
compared, their speedup ratio.

Benchmarks
----------
``pcg_geometry_cache``
    Repeated-geometry PCG: the same Poisson problem solved with the MIC(0)
    factorisation + wavefront schedule rebuilt every call (cold,
    ``reset()`` before each solve) vs. reused from the solver's mask-keyed
    cache (cached).  The cached path does strictly less work, so its
    speedup is the direct payoff of the caching layer.
``pcg_warm_start``
    A short smoke simulation solved with history-independent zero initial
    guesses vs. warm-starting CG from the previous step's pressure;
    reports iteration and solve-time ratios.
``simulation_step``
    End-to-end simulator steps with the exact solver, with the full
    per-phase metrics profile attached.
``nn_inference``
    The compiled :class:`repro.nn.InferencePlan` vs. the legacy
    layer-by-layer forward on one fixed 128x128 input (the paper's
    baseline-cost workload; grid fixed across scales like
    ``perf_kernels``).  Reports the fp64 plan (bitwise-identical contract,
    certified by ``fp64_bitwise_identical``) and the fp32 shift-and-GEMM
    plan, whose ``fp32_speedup`` over the legacy forward is the headline
    number and whose workspace-reuse counter certifies zero steady-state
    allocations.
``farm_throughput``
    The same 8-job list executed serially in-process vs. on the
    :mod:`repro.farm` process pool; reports jobs/sec and steps/sec for
    both, which is the farm's headline scaling number.
``perf_kernels``
    The geometry-compiled kernel PCG backend vs. the matrix-free reference
    backend on one fixed 128x128 MIC(0) solve (the paper's baseline-cost
    workload), plus the DCT spectral direct solver on the obstacle-free
    box.  The grid is fixed across scales so ``pcg_solve_seconds`` is
    comparable between the committed default-scale baseline and the CI
    smoke run; ``backends_identical`` certifies the bit-for-bit contract.
``tracing_overhead``
    The same simulation (pinned 64x64, 8 steps, interleaved reps) with
    the process tracer disabled (the default) vs. enabled.  The disabled
    path must be a no-op: ``overhead_ratio`` (enabled/disabled wall time)
    is gated in CI at 1.05, holding the tracing instrumentation to <5%
    even when *on*.
``metrics_overhead``
    The same pinned simulation (64x64, 8 steps, interleaved reps) with
    metrics disabled (``NULL_METRICS``, the library default) vs. a live
    :class:`repro.metrics.MetricsRegistry` collecting the flat counters
    *and* the labeled metric families (``sim_step_seconds``,
    ``solver_iterations``).  Same interleaved-pair methodology as
    ``tracing_overhead``; ``overhead_ratio_best`` is gated in CI at 1.05,
    holding the full observability layer to <5% even when on.
``scenario_sweep``
    One short end-to-end run per registered scenario (smoke plume, inflow
    jets, moving solids, Kármán street, free-surface liquids).  A liveness
    gate: any crash fails the suite; per-scenario seconds and final
    DivNorm are recorded.
``nn_pcg``
    The NN-preconditioned flexible CG solver vs. plain MIC(0)-PCG on the
    fallback-prone scenarios (obstacle wakes, jets, colliding plumes) at a
    pinned 128x128: for each scenario a short exact simulation is run to a
    developed flow state, the captured Poisson problem is solved by both
    solvers to the same tolerance, and the headline ``iteration_ratio``
    (PCG iterations / NN-PCG iterations) is gated in CI — at least two
    scenarios must stay at 2x or better.  Wall time is reported but not
    gated: at CPU scale the per-iteration network V-cycle costs more than
    the iterations it saves (see DESIGN.md), so the iteration ratio is the
    architecture-independent signal.  Uses the committed pinned weights at
    ``results/models/nn_pcg_bench`` (output of
    :func:`repro.models.train_nn_pcg_model` at its defaults).
``service_throughput``
    The :mod:`repro.serve` tier end to end: a pinned 6-job fleet submitted
    cold (every job simulated on the autoscaled pool) vs. resubmitted warm
    (every job answered from the content-addressed result cache).  The
    workload is fixed across scales (only the warm repeat count varies);
    ``all_warm_cached`` certifies that no warm job re-simulated, and
    ``cache_speedup`` is the headline cost of *not* having the cache.

Scales
------
``smoke`` is the CI regression gate (seconds, small reps); ``ci`` runs in a
few seconds and is wired into the test suite as a smoke test (marker
``bench``); ``default`` is the standard tracking run; ``paper`` uses
paper-sized grids.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["BenchScale", "SCALES", "run_bench", "write_bench"]

SCHEMA = "repro-bench/v1"
#: tag of the BENCH_<tag>.json this PR emits
DEFAULT_TAG = "pr10"

#: committed weights behind the ``nn_pcg`` benchmark (repo-relative)
PINNED_NN_PCG_MODEL = Path(__file__).resolve().parents[2] / "results" / "models" / "nn_pcg_bench"

#: scenarios whose developed flows are fallback-prone (obstacles, jets)
NN_PCG_SCENARIOS = ("karman_street", "moving_cylinder", "inflow_jet", "plume_collision")


@dataclass(frozen=True)
class BenchScale:
    """Workload sizes of one benchmark scale."""

    grid: int
    solve_reps: int
    sim_steps: int
    infer_reps: int


SCALES: dict[str, BenchScale] = {
    "smoke": BenchScale(grid=24, solve_reps=2, sim_steps=2, infer_reps=2),
    "ci": BenchScale(grid=32, solve_reps=3, sim_steps=3, infer_reps=4),
    "default": BenchScale(grid=64, solve_reps=5, sim_steps=8, infer_reps=10),
    "paper": BenchScale(grid=128, solve_reps=7, sim_steps=16, infer_reps=20),
}


def _time(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _git_provenance() -> dict:
    """Best-effort git revision + dirty flag of the benchmarked checkout.

    Stamped next to ``generated_unix`` so a committed baseline records
    exactly which tree produced it; both fields are ``None`` outside a
    git checkout (sdist installs, stripped CI caches).
    """
    import subprocess

    root = Path(__file__).resolve().parents[2]
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root, capture_output=True, text=True, timeout=10, check=True,
        ).stdout
        return {"git_revision": rev, "git_dirty": bool(status.strip())}
    except Exception:
        return {"git_revision": None, "git_dirty": None}


def _poisson_problem(grid_size: int, seed: int):
    """A reproducible solid mask + compatible Poisson right-hand side."""
    from repro.data import InputProblem

    grid, _ = InputProblem(grid_size, seed).materialize()
    rng = np.random.default_rng(seed + 1)
    b = np.where(grid.fluid, rng.standard_normal(grid.solid.shape), 0.0)
    return grid.solid, b


def _bench_pcg_geometry_cache(scale: BenchScale, seed: int = 0, tol: float = 1e-3) -> dict:
    """Cold (rebuild MIC(0) each solve) vs. cached repeated-geometry PCG.

    Uses a simulation-grade tolerance: per-step pressure solves in a smoke
    run are exactly the repeated-geometry, moderate-accuracy workload the
    cache is built for.
    """
    from repro.fluid import MIC0Preconditioner, PCGSolver
    from repro.metrics import MetricsRegistry

    solid, b = _poisson_problem(scale.grid, seed)
    metrics = MetricsRegistry()
    solver = PCGSolver(tol=tol, metrics=metrics)

    cold_times, cached_times = [], []
    for _ in range(scale.solve_reps):
        solver.reset()
        cold_times.append(_time(lambda: solver.solve(b, solid)))
    solver.reset()
    res = solver.solve(b, solid)  # prime the cache outside the timed region
    for _ in range(scale.solve_reps):
        cached_times.append(_time(lambda: solver.solve(b, solid)))
    setup = min(_time(lambda: MIC0Preconditioner(solid)) for _ in range(scale.solve_reps))

    cold, cached = min(cold_times), min(cached_times)
    return {
        "name": "pcg_geometry_cache",
        "params": {"grid": scale.grid, "reps": scale.solve_reps, "seed": seed, "tol": tol},
        "cold_seconds": cold,
        "cached_seconds": cached,
        "setup_seconds": setup,
        "speedup": cold / cached if cached > 0 else float("inf"),
        "iterations": res.iterations,
        "converged": res.converged,
        "cache_hits": metrics.counter("cache/mic0/hit"),
        "cache_misses": metrics.counter("cache/mic0/miss"),
    }


def _bench_pcg_warm_start(scale: BenchScale, seed: int = 0) -> dict:
    """Zero-initial-guess vs. warm-started PCG across simulation steps."""
    from repro.data import InputProblem
    from repro.fluid import FluidSimulator, PCGSolver
    from repro.metrics import NULL_METRICS

    def run(warm: bool):
        grid, source = InputProblem(scale.grid, seed).materialize()
        solver = PCGSolver(warm_start=warm, metrics=NULL_METRICS)
        sim = FluidSimulator(grid, solver, source, metrics=NULL_METRICS)
        result = sim.run(scale.sim_steps)
        iters = sum(r.projection.iterations for r in result.records)
        return iters, result.solve_seconds, result

    cold_iters, cold_seconds, _ = run(warm=False)
    warm_iters, warm_seconds, _ = run(warm=True)
    return {
        "name": "pcg_warm_start",
        "params": {"grid": scale.grid, "steps": scale.sim_steps, "seed": seed},
        "cold_iterations": cold_iters,
        "warm_iterations": warm_iters,
        "cold_solve_seconds": cold_seconds,
        "warm_solve_seconds": warm_seconds,
        "iteration_ratio": cold_iters / warm_iters if warm_iters else float("inf"),
    }


def _bench_simulation_step(scale: BenchScale, seed: int = 0) -> dict:
    """End-to-end simulator steps with the full metrics profile attached."""
    from repro.data import InputProblem
    from repro.fluid import FluidSimulator, PCGSolver
    from repro.metrics import MetricsRegistry

    metrics = MetricsRegistry()
    grid, source = InputProblem(scale.grid, seed).materialize()
    sim = FluidSimulator(
        grid, PCGSolver(metrics=metrics), source, metrics=metrics
    )
    result = sim.run(scale.sim_steps)
    return {
        "name": "simulation_step",
        "params": {"grid": scale.grid, "steps": scale.sim_steps, "seed": seed},
        "total_seconds": result.total_seconds,
        "seconds_per_step": result.total_seconds / scale.sim_steps,
        "solve_seconds": result.solve_seconds,
        "metrics": metrics.to_dict(),
    }


def _bench_nn_inference(scale: BenchScale, seed: int = 0, grid: int = 128) -> dict:
    """Compiled inference plans vs. the legacy forward at a pinned 128x128.

    The grid is *fixed* across scales (only the repeat count varies) so
    ``plan_fp32_seconds`` is directly comparable between the committed
    default-scale baseline and CI smoke runs.  ``fp64_bitwise_identical``
    certifies the fp64 plan's bit-for-bit contract; the fp32 plan's
    workspace counter certifies that every timed pass ran entirely inside
    the pre-allocated arena.
    """
    from repro.models import tompson_arch
    from repro.nn import InferencePlan

    reps = max(2, scale.infer_reps)
    net = tompson_arch(8).build(rng=seed)
    x = np.random.default_rng(seed).standard_normal((1, 2, grid, grid))
    plan64 = InferencePlan(net, (2, grid, grid), batch_capacity=1, dtype=np.float64)
    plan32 = InferencePlan(net, (2, grid, grid), batch_capacity=1, dtype=np.float32)

    ref = net.forward(x, training=False)  # warm the legacy workspaces
    identical = bool(np.array_equal(plan64.run(x), ref))
    fp32_err = float(np.abs(plan32.run(x).astype(np.float64) - ref).max())
    reuses_before = plan32.workspace_reuses

    legacy = min(_time(lambda: net.forward(x, training=False)) for _ in range(reps))
    fp64 = min(_time(lambda: plan64.run(x)) for _ in range(reps))
    fp32 = min(_time(lambda: plan32.run(x)) for _ in range(reps))
    return {
        "name": "nn_inference",
        "params": {"grid": grid, "reps": reps, "seed": seed, "batch": 1},
        "legacy_fp64_seconds": legacy,
        "plan_fp64_seconds": fp64,
        "plan_fp32_seconds": fp32,
        "fp32_speedup": legacy / fp32 if fp32 > 0 else float("inf"),
        "fp64_plan_speedup": legacy / fp64 if fp64 > 0 else float("inf"),
        "fp64_bitwise_identical": identical,
        "fp32_max_abs_err": fp32_err,
        "workspace_reuses": plan32.workspace_reuses - reuses_before,
        "arena_bytes_fp32": plan32.arena_bytes,
    }


def _bench_farm_throughput(scale: BenchScale, seed: int = 0, n_jobs: int = 8) -> dict:
    """Serial vs. farm execution of one fixed job list.

    Both runs execute the *same* specs (same scenarios, same step budgets),
    so the ratio isolates the execution engine.  On a single-core host the
    process pool mostly pays its orchestration overhead; with real cores the
    farm's throughput scales with worker count.
    """
    import os

    from repro.farm import JobSpec, SimulationFarm
    from repro.metrics import MetricsRegistry

    def jobs() -> list[JobSpec]:
        return [
            JobSpec(
                job_id=f"bench-{i}",
                grid_size=scale.grid,
                seed=seed + i,
                steps=scale.sim_steps,
            )
            for i in range(n_jobs)
        ]

    workers = min(n_jobs, os.cpu_count() or 1)
    serial = SimulationFarm(backend="serial", metrics=MetricsRegistry()).run(jobs())
    farm = SimulationFarm(
        backend="process", workers=workers, metrics=MetricsRegistry()
    ).run(jobs())
    return {
        "name": "farm_throughput",
        "params": {
            "grid": scale.grid,
            "steps": scale.sim_steps,
            "jobs": n_jobs,
            "workers": workers,
            "seed": seed,
        },
        "serial_seconds": serial.wall_seconds,
        "farm_seconds": farm.wall_seconds,
        "serial_jobs_per_second": serial.jobs_per_second,
        "farm_jobs_per_second": farm.jobs_per_second,
        "serial_steps_per_second": serial.steps_per_second,
        "farm_steps_per_second": farm.steps_per_second,
        "serial_completed": len(serial.completed),
        "farm_completed": len(farm.completed),
        "speedup": (
            serial.wall_seconds / farm.wall_seconds
            if farm.wall_seconds > 0
            else float("inf")
        ),
    }


def _bench_perf_kernels(scale: BenchScale, seed: int = 0, grid: int = 128, tol: float = 1e-5) -> dict:
    """Kernel vs. reference PCG backend, plus the spectral direct solve.

    The grid is *fixed* at 128x128 for every scale (only the repeat count
    varies) so the headline ``pcg_solve_seconds`` is directly comparable
    across the committed baseline and CI smoke runs.
    """
    from repro.fluid import MACGrid2D, PCGSolver, SpectralSolver
    from repro.metrics import NULL_METRICS

    reps = max(2, scale.solve_reps)
    solid, b = _poisson_problem(grid, seed)

    timings: dict[str, float] = {}
    results = {}
    for backend in ("kernel", "reference"):
        solver = PCGSolver(tol=tol, metrics=NULL_METRICS, backend=backend)
        results[backend] = solver.solve(b, solid)  # prime the geometry caches
        timings[backend] = min(
            _time(lambda: solver.solve(b, solid)) for _ in range(reps)
        )
    kres, rres = results["kernel"], results["reference"]
    identical = (
        kres.iterations == rres.iterations
        and kres.converged == rres.converged
        and kres.residual_history == rres.residual_history
        and bool(np.array_equal(kres.pressure, rres.pressure))
    )

    # spectral direct solve vs. kernel PCG on the obstacle-free closed box
    box = MACGrid2D(grid, grid).solid.copy()
    rng = np.random.default_rng(seed + 2)
    bb = np.where(~box, rng.standard_normal(box.shape), 0.0)
    spectral = SpectralSolver(tol=tol, metrics=NULL_METRICS)
    box_pcg = PCGSolver(tol=tol, metrics=NULL_METRICS)
    sres = spectral.solve(bb, box)
    box_pcg.solve(bb, box)
    spectral_seconds = min(_time(lambda: spectral.solve(bb, box)) for _ in range(reps))
    box_pcg_seconds = min(_time(lambda: box_pcg.solve(bb, box)) for _ in range(reps))

    return {
        "name": "perf_kernels",
        "params": {"grid": grid, "reps": reps, "seed": seed, "tol": tol},
        "pcg_solve_seconds": timings["kernel"],
        "reference_solve_seconds": timings["reference"],
        "speedup": (
            timings["reference"] / timings["kernel"]
            if timings["kernel"] > 0
            else float("inf")
        ),
        "iterations": kres.iterations,
        "converged": kres.converged,
        "backends_identical": identical,
        "spectral_solve_seconds": spectral_seconds,
        "spectral_box_pcg_seconds": box_pcg_seconds,
        "spectral_speedup": (
            box_pcg_seconds / spectral_seconds
            if spectral_seconds > 0
            else float("inf")
        ),
        "spectral_converged": sres.converged,
        "spectral_iterations": sres.iterations,
    }


def _bench_tracing_overhead(
    scale: BenchScale, seed: int = 0, grid: int = 64, steps: int = 8
) -> dict:
    """Simulation wall time with tracing disabled vs. enabled.

    The disabled run uses the process default tracer (disabled, the
    library-wide steady state), so ``disabled_seconds`` measures the
    no-op cost left in the hot paths; the enabled run installs a live
    :class:`repro.trace.Tracer` recording every span and event.  The two
    variants are *interleaved* rep-by-rep (disabled, enabled, disabled,
    ...) and the reported ratio is the *median of the per-rep ratios*:
    each enabled rep is compared only against the disabled rep that ran
    immediately before it (same ambient load), and the median discards
    the pairs a bursty background process happened to land on.  Slow
    drift and isolated spikes both cancel; a real, systematic overhead
    shows up in every pair and survives the median.

    ``overhead_ratio_best`` is the *minimum* pairwise ratio — the pair
    least disturbed by background load.  CI gates on it: a systematic
    overhead inflates every pair including the cleanest one, while an
    ambient-noise spike only inflates the pairs it lands on, so the
    best pair stays a stable one-sided detector on busy runners.

    The workload is *pinned* at a 64x64 grid and 8 steps for every scale
    (like ``nn_inference``/``perf_kernels``): the ratio gates a ~0.1 s
    run whose timing noise sits well under the 5% CI threshold, which a
    smoke-sized millisecond run could never achieve.
    """
    from repro.data import InputProblem
    from repro.fluid import FluidSimulator, PCGSolver
    from repro.metrics import NULL_METRICS
    from repro.trace import Tracer, set_tracer

    reps = max(5, scale.solve_reps)

    def run_sim() -> float:
        g, source = InputProblem(grid, seed).materialize()
        sim = FluidSimulator(
            g, PCGSolver(metrics=NULL_METRICS), source, metrics=NULL_METRICS
        )
        return _time(lambda: sim.run(steps))

    tracer = Tracer(enabled=True)
    run_sim()  # warm caches (BLAS threads, allocator) outside the timing
    disabled_times, enabled_times = [], []
    for _ in range(reps):
        disabled_times.append(run_sim())
        previous = set_tracer(tracer)
        try:
            enabled_times.append(run_sim())
        finally:
            set_tracer(previous)
    pair_ratios = sorted(
        e / d if d > 0 else float("inf")
        for d, e in zip(disabled_times, enabled_times)
    )
    mid = len(pair_ratios) // 2
    if len(pair_ratios) % 2:
        ratio = pair_ratios[mid]
    else:
        ratio = 0.5 * (pair_ratios[mid - 1] + pair_ratios[mid])
    spans = len(tracer.spans())
    return {
        "name": "tracing_overhead",
        "params": {"grid": grid, "steps": steps, "reps": reps, "seed": seed},
        "disabled_seconds": min(disabled_times),
        "enabled_seconds": min(enabled_times),
        "overhead_ratio": ratio,
        "overhead_ratio_best": pair_ratios[0],
        "spans_recorded": spans,
        "events_recorded": len(tracer.events()),
    }


def _bench_metrics_overhead(
    scale: BenchScale, seed: int = 0, grid: int = 64, steps: int = 8
) -> dict:
    """Simulation wall time with metrics disabled vs. fully enabled.

    The disabled run uses :data:`repro.metrics.NULL_METRICS` (the no-op
    registry, the library-wide steady state), so ``disabled_seconds``
    measures the dead-branch cost left in the hot paths; the enabled run
    passes a live :class:`repro.metrics.MetricsRegistry`, which collects
    the flat counters/timers *and* the labeled metric families
    (``sim_step_seconds{solver}``, ``solver_iterations{solver}``) the
    Prometheus exposition serves.  Methodology is identical to
    ``tracing_overhead`` — interleaved disabled/enabled reps, the median
    of per-pair ratios as the headline, and ``overhead_ratio_best`` (the
    minimum pairwise ratio, the pair least disturbed by ambient load) as
    the CI gate at 1.05.  The workload is *pinned* at 64x64 and 8 steps
    for every scale so the gated run stays ~0.1 s, keeping timing noise
    well under the 5% threshold.
    """
    from repro.data import InputProblem
    from repro.fluid import FluidSimulator, PCGSolver
    from repro.metrics import NULL_METRICS, MetricsRegistry

    reps = max(5, scale.solve_reps)

    def run_sim(metrics) -> float:
        g, source = InputProblem(grid, seed).materialize()
        sim = FluidSimulator(
            g, PCGSolver(metrics=metrics), source, metrics=metrics
        )
        return _time(lambda: sim.run(steps))

    run_sim(NULL_METRICS)  # warm caches (BLAS threads, allocator) outside the timing
    enabled = MetricsRegistry()
    disabled_times, enabled_times = [], []
    for _ in range(reps):
        disabled_times.append(run_sim(NULL_METRICS))
        enabled_times.append(run_sim(enabled))
    pair_ratios = sorted(
        e / d if d > 0 else float("inf")
        for d, e in zip(disabled_times, enabled_times)
    )
    mid = len(pair_ratios) // 2
    if len(pair_ratios) % 2:
        ratio = pair_ratios[mid]
    else:
        ratio = 0.5 * (pair_ratios[mid - 1] + pair_ratios[mid])
    return {
        "name": "metrics_overhead",
        "params": {"grid": grid, "steps": steps, "reps": reps, "seed": seed},
        "disabled_seconds": min(disabled_times),
        "enabled_seconds": min(enabled_times),
        "overhead_ratio": ratio,
        "overhead_ratio_best": pair_ratios[0],
        "counters_recorded": len(enabled.counters),
        "families_recorded": len(enabled.families),
    }


def _bench_scenario_sweep(scale: BenchScale, seed: int = 0, scenario: str | None = None) -> dict:
    """One short end-to-end run per registered scenario.

    A liveness gate for the scenario universe rather than a timing race:
    every registered workload (smoke plume, jets, moving solids, free
    surfaces) must build and step without crashing — any exception
    propagates and fails the suite.  Per-scenario wall seconds and the
    final DivNorm are still recorded so gross regressions show up in the
    report.  ``scenario`` restricts the sweep to one registry entry.
    """
    from repro.fluid import (
        FluidSimulator,
        PCGSolver,
        SimulationConfig,
        build_scenario,
        list_scenarios,
        parse_scenario,
    )
    from repro.metrics import NULL_METRICS

    grid = min(scale.grid, 32)  # liveness, not throughput: keep every entry short
    steps = max(2, scale.sim_steps // 2)
    if scenario is not None:
        specs = [parse_scenario(scenario)]
    else:
        specs = [parse_scenario(info.name) for info in list_scenarios()]
    runs = []
    for sspec in specs:
        sspec = sspec.with_defaults(grid=grid)
        g, driver = build_scenario(sspec, rng=seed)
        solver = driver.wrap_solver(PCGSolver(metrics=NULL_METRICS))
        overrides = getattr(driver, "config_overrides", {})
        config = SimulationConfig(**overrides) if overrides else None
        sim = FluidSimulator(g, solver, driver, config=config, metrics=NULL_METRICS)
        seconds = _time(lambda: sim.run(steps))
        divnorms = sim.full_divnorm_history
        final = float(divnorms[-1]) if divnorms.size else float("nan")
        if not np.isfinite(final):
            raise RuntimeError(f"scenario {sspec.to_string()!r} diverged: DivNorm {final}")
        runs.append(
            {
                "scenario": sspec.to_string(),
                "seconds": seconds,
                "final_divnorm": final,
            }
        )
    return {
        "name": "scenario_sweep",
        "params": {"grid": grid, "steps": steps, "seed": seed},
        "scenarios": runs,
        "total_seconds": sum(r["seconds"] for r in runs),
    }


def _bench_nn_pcg(
    scale: BenchScale, seed: int = 0, grid: int = 128, steps: int = 6, tol: float = 1e-5
) -> dict:
    """NN-preconditioned CG vs. plain MIC(0)-PCG on fallback-prone flows.

    The workload is *pinned* at 128x128 (like ``perf_kernels``): each
    scenario in :data:`NN_PCG_SCENARIOS` is simulated for ``steps`` exact
    steps so the flow develops its obstacle wake / jet shear, the last
    pressure Poisson problem is captured, and both solvers solve it to the
    same relative tolerance.  ``iteration_ratio`` is the headline number
    (deterministic, hardware-independent); wall seconds are recorded for
    the honest cost picture but not gated — the per-iteration network
    V-cycle dominates at CPU scale.

    Uses the committed ``results/models/nn_pcg_bench`` weights; if the
    checkout lacks them (``pinned_weights`` false in the report) an
    untrained network stands in, which exercises the safeguard path only.
    """
    from repro.fluid import (
        FluidSimulator,
        NNPCGSolver,
        PCGSolver,
        SimulationConfig,
        build_scenario,
        parse_scenario,
    )
    from repro.metrics import NULL_METRICS
    from repro.models import tompson_arch

    reps = max(2, scale.solve_reps)
    pinned = PINNED_NN_PCG_MODEL.is_dir()
    if pinned:
        from repro.io import load_model

        net = load_model(PINNED_NN_PCG_MODEL).network
    else:
        net = tompson_arch(8).build(rng=seed)

    class _Capture:
        def __init__(self, inner):
            self.inner = inner
            self.samples = []
            self.name = inner.name

        def solve(self, b, solid):
            self.samples.append((b.copy(), solid.copy()))
            return self.inner.solve(b, solid)

        def reset(self):
            self.inner.reset()

    runs = []
    for name in NN_PCG_SCENARIOS:
        sspec = parse_scenario(name).with_defaults(grid=grid)
        g, driver = build_scenario(sspec, rng=seed)
        cap = _Capture(PCGSolver(tol=tol, metrics=NULL_METRICS))
        overrides = getattr(driver, "config_overrides", {})
        config = SimulationConfig(**overrides) if overrides else None
        FluidSimulator(
            g, driver.wrap_solver(cap), driver, config=config, metrics=NULL_METRICS
        ).run(steps)
        b, solid = cap.samples[-1]

        pcg = PCGSolver(tol=tol, metrics=NULL_METRICS)
        pres = pcg.solve(b, solid)  # prime the geometry caches
        pcg_seconds = min(_time(lambda: pcg.solve(b, solid)) for _ in range(reps))

        nn = NNPCGSolver(net, tol=tol, metrics=NULL_METRICS)
        nres = nn.solve(b, solid)  # prime caches + compile the plans
        nn_seconds = min(_time(lambda: nn.solve(b, solid)) for _ in range(reps))

        runs.append(
            {
                "scenario": name,
                "pcg_iterations": pres.iterations,
                "nn_iterations": nres.iterations,
                "iteration_ratio": (
                    pres.iterations / nres.iterations
                    if nres.iterations
                    else float("inf")
                ),
                "pcg_seconds": pcg_seconds,
                "nn_seconds": nn_seconds,
                "both_converged": bool(pres.converged and nres.converged),
            }
        )
    ratios = sorted((r["iteration_ratio"] for r in runs), reverse=True)
    return {
        "name": "nn_pcg",
        "params": {"grid": grid, "steps": steps, "reps": reps, "seed": seed, "tol": tol},
        "pinned_weights": pinned,
        "scenarios": runs,
        "best_iteration_ratio": ratios[0],
        "second_best_iteration_ratio": ratios[1],
        "all_converged": all(r["both_converged"] for r in runs),
    }


def _bench_service_throughput(
    scale: BenchScale, seed: int = 0, grid: int = 32, steps: int = 4, n_jobs: int = 6
) -> dict:
    """Cold (simulated) vs. warm (cache-served) submissions to the service.

    The workload is *pinned* across scales — a 6-job, 32x32, 4-step fleet —
    so the cold/warm numbers are comparable between the committed baseline
    and CI smoke runs; only the warm repeat count follows the scale.  Cold
    runs once against an empty cache (each further rep would itself be a
    cache hit); the warm path resubmits the same semantic specs under fresh
    job ids ``reps`` times and takes the min.
    """
    import asyncio
    import os
    import tempfile

    from repro.farm import JobSpec
    from repro.metrics import MetricsRegistry
    from repro.serve import SimulationService, TenantQuota

    reps = max(2, scale.solve_reps)
    workers = min(4, os.cpu_count() or 1)

    def specs(tag: str) -> list[JobSpec]:
        return [
            JobSpec(job_id=f"{tag}-{i}", grid_size=grid, seed=seed + i, steps=steps)
            for i in range(n_jobs)
        ]

    async def run():
        with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
            service = SimulationService(
                cache_dir=os.path.join(tmp, "cache"),
                checkpoint_dir=os.path.join(tmp, "ckpt"),
                min_workers=1,
                max_workers=workers,
                default_quota=TenantQuota(rate=None, burst=64, max_pending=None),
                metrics=MetricsRegistry(),
            )
            await service.start()

            async def submit_and_wait(tag: str) -> tuple[float, list]:
                t0 = time.perf_counter()
                batch = specs(tag)
                for s in batch:
                    service.submit(s, tenant="bench")
                results = await asyncio.gather(
                    *(service.result(s.job_id, timeout=300.0) for s in batch)
                )
                return time.perf_counter() - t0, results

            cold_seconds, cold_results = await submit_and_wait("cold")
            warm_times, all_cached = [], True
            for r in range(reps):
                seconds, results = await submit_and_wait(f"warm{r}")
                warm_times.append(seconds)
                all_cached = all_cached and all(res.cached for res in results)
            stats = service.stats()
            await service.stop(drain=True, timeout=60.0)
            return cold_seconds, cold_results, min(warm_times), all_cached, stats

    cold, cold_results, warm, all_cached, stats = asyncio.run(run())
    return {
        "name": "service_throughput",
        "params": {
            "grid": grid,
            "steps": steps,
            "jobs": n_jobs,
            "workers": workers,
            "warm_reps": reps,
            "seed": seed,
        },
        "cold_seconds": cold,
        "warm_seconds": warm,
        "cold_jobs_per_second": n_jobs / cold if cold > 0 else float("inf"),
        "warm_jobs_per_second": n_jobs / warm if warm > 0 else float("inf"),
        "cache_speedup": cold / warm if warm > 0 else float("inf"),
        "cold_completed": sum(1 for r in cold_results if r.ok),
        "all_warm_cached": all_cached,
        "cache_stats": stats["cache"],
    }


def run_bench(scale: str = "default", seed: int = 0, scenario: str | None = None) -> dict:
    """Run the whole suite at one scale and return the report dict.

    ``scenario`` narrows the ``scenario_sweep`` benchmark to a single
    registry entry; every other benchmark is unaffected.
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {sorted(SCALES)}")
    s = SCALES[scale]
    benchmarks = [
        _bench_pcg_geometry_cache(s, seed),
        _bench_pcg_warm_start(s, seed),
        _bench_simulation_step(s, seed),
        _bench_nn_inference(s, seed),
        _bench_farm_throughput(s, seed),
        _bench_perf_kernels(s, seed),
        _bench_tracing_overhead(s, seed),
        _bench_metrics_overhead(s, seed),
        _bench_scenario_sweep(s, seed, scenario),
        _bench_nn_pcg(s, seed),
        _bench_service_throughput(s, seed),
    ]
    return {
        "schema": SCHEMA,
        "tag": DEFAULT_TAG,
        "scale": scale,
        "generated_unix": time.time(),
        **_git_provenance(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "benchmarks": benchmarks,
    }


def write_bench(report: dict, output: str | Path) -> Path:
    """Write a benchmark report as JSON; returns the path written."""
    path = Path(output)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path
