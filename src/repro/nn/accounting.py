"""FLOP, parameter and memory accounting (Table 4 of the paper).

FLOPs are counted analytically from layer shapes (one multiply-accumulate =
2 FLOPs), so the numbers are hardware-independent.  Memory is the resident
footprint of one inference: parameters plus the peak pair of activation
buffers, in float32 as the paper's GPU deployment would hold them.
"""

from __future__ import annotations

from dataclasses import dataclass

from .network import Network

__all__ = ["ResourceUsage", "analyze_network", "pcg_flops", "pcg_memory_bytes"]

_FLOAT_BYTES = 4  # float32 deployment


@dataclass
class ResourceUsage:
    """Static resource profile of a model for one forward pass."""

    flops: float
    params: int
    memory_bytes: float

    @property
    def mflops(self) -> float:
        """FLOPs in millions."""
        return self.flops / 1e6

    @property
    def memory_mb(self) -> float:
        """Memory in MiB."""
        return self.memory_bytes / (1024.0 * 1024.0)


def analyze_network(network: Network, input_shape: tuple[int, ...]) -> ResourceUsage:
    """Compute FLOPs / parameters / memory for a (batch-free) input shape."""
    flops = network.flops(input_shape)
    params = network.param_count()

    # activation footprint: the largest adjacent input/output pair
    peak = 0
    shape = input_shape
    for layer in network.layers:
        nxt = layer.output_shape(shape)
        size = 1
        for d in shape:
            size *= d
        nsize = 1
        for d in nxt:
            nsize *= d
        peak = max(peak, size + nsize)
        shape = nxt
    memory = (params + peak) * _FLOAT_BYTES
    return ResourceUsage(flops=flops, params=params, memory_bytes=float(memory))


def pcg_flops(n_fluid: int, iterations: int) -> float:
    """Estimated FLOPs of a MICCG(0) solve.

    Per iteration: one 5-point mat-vec (~10 flops/cell), the MIC(0)
    forward+backward substitution (~14), two inner products and three
    axpy-style updates (~16) — about 40 flops per fluid cell, matching the
    counter used by :class:`repro.fluid.pcg.PCGSolver`.
    """
    return 40.0 * n_fluid * iterations


def pcg_memory_bytes(n_cells: int) -> float:
    """Resident field memory of the PCG solver (p, r, z, s, w + stencils)."""
    n_arrays = 9  # pressure, residual, z, search, As, adiag, aplusx, aplusy, precon
    return float(n_arrays * n_cells * _FLOAT_BYTES)
