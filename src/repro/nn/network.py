"""Network container: a sequence of layers with optional residual blocks."""

from __future__ import annotations

import numpy as np

from .base import Layer, Parameter

__all__ = ["Residual", "Network"]


class Residual(Layer):
    """Wrap a sub-network ``f`` as ``y = f(x) + x``.

    The wrapped layers must preserve the input shape (enforced lazily at
    forward time), which is how the architecture spec restricts where
    residual connections may be placed.
    """

    def __init__(self, layers: list[Layer]):
        self.layers = layers

    def parameters(self) -> list[Parameter]:
        return [p for layer in self.layers for p in layer.parameters()]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        if out.shape != x.shape:
            raise ValueError(
                f"residual block changed shape {x.shape} -> {out.shape}"
            )
        return out + x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = grad
        for layer in reversed(self.layers):
            g = layer.backward(g)
        return g + grad

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        shape = input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def flops(self, input_shape: tuple[int, ...]) -> float:
        total = 0.0
        shape = input_shape
        for layer in self.layers:
            total += layer.flops(shape)
            shape = layer.output_shape(shape)
        n = 1
        for d in shape:
            n *= d
        return total + n  # the addition

    def __repr__(self) -> str:  # pragma: no cover
        return f"Residual({self.layers!r})"


class Network(Layer):
    """A plain sequential network (layers may themselves be Residual blocks)."""

    def __init__(self, layers: list[Layer]):
        self.layers = list(layers)

    def parameters(self) -> list[Parameter]:
        return [p for layer in self.layers for p in layer.parameters()]

    def zero_grad(self) -> None:
        """Reset every parameter gradient."""
        for p in self.parameters():
            p.zero_grad()

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = grad
        for layer in reversed(self.layers):
            g = layer.backward(g)
        return g

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        shape = input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def flops(self, input_shape: tuple[int, ...]) -> float:
        total = 0.0
        shape = input_shape
        for layer in self.layers:
            total += layer.flops(shape)
            shape = layer.output_shape(shape)
        return total

    def __repr__(self) -> str:  # pragma: no cover
        inner = ", ".join(repr(l) for l in self.layers)
        return f"Network([{inner}])"
