"""Loss functions.

``DivNormLoss`` is the paper's unsupervised objective (Eq. 5): the weighted
squared divergence of the velocity field *after* applying the predicted
pressure.  Because the velocity update is linear in the pressure, that
divergence equals (up to a positive constant) the weighted residual of the
Poisson system, so the loss is computed directly from the system right-hand
side without running the simulator:

    div(u_new) = -kappa * (b - A p_hat),   kappa = dt / (rho dx^2)

and the gradient w.r.t. ``p_hat`` follows from the symmetry of ``A``.
"""

from __future__ import annotations

import numpy as np

from repro.fluid.operators import apply_laplacian

__all__ = ["Loss", "MSELoss", "DivNormLoss", "divnorm_of_residual"]


class Loss:
    """Protocol: compute scalar loss and gradient w.r.t. the prediction."""

    def value_and_grad(self, pred: np.ndarray, batch: dict) -> tuple[float, np.ndarray]:
        raise NotImplementedError


class MSELoss(Loss):
    """Mean squared error against ``batch["y"]``."""

    def value_and_grad(self, pred: np.ndarray, batch: dict) -> tuple[float, np.ndarray]:
        y = batch["y"]
        if pred.shape != y.shape:
            raise ValueError(f"prediction shape {pred.shape} != target shape {y.shape}")
        diff = pred - y
        value = float((diff**2).mean())
        grad = 2.0 * diff / diff.size
        return value, grad


class DivNormLoss(Loss):
    """Weighted Poisson-residual loss (the DivNorm objective, Eq. 5).

    Expects the batch dict to contain:

    * ``b`` — (N, 1, H, W) normalised Poisson right-hand sides,
    * ``solid`` — (N, H, W) boolean solid masks,
    * ``weights`` — (N, H, W) DivNorm cell weights ``w_i``.

    The prediction is the (N, 1, H, W) pressure field.
    """

    def value_and_grad(self, pred: np.ndarray, batch: dict) -> tuple[float, np.ndarray]:
        b = batch["b"]
        solid = batch["solid"]
        weights = batch["weights"]
        if pred.shape != b.shape:
            raise ValueError(f"prediction shape {pred.shape} != rhs shape {b.shape}")
        n = pred.shape[0]
        grad = np.zeros_like(pred)
        total = 0.0
        for i in range(n):
            s = solid[i]
            fluid = ~s
            nf = max(int(fluid.sum()), 1)
            r = np.where(fluid, b[i, 0] - apply_laplacian(pred[i, 0], s), 0.0)
            wr = weights[i] * r
            total += float((wr * r).sum()) / nf
            grad[i, 0] = -2.0 * apply_laplacian(wr, s) / nf
        return total / n, grad / n


def divnorm_of_residual(
    b: np.ndarray, p: np.ndarray, solid: np.ndarray, weights: np.ndarray
) -> float:
    """Weighted squared residual of a single Poisson solve (no gradient)."""
    fluid = ~solid
    r = np.where(fluid, b - apply_laplacian(p, solid), 0.0)
    return float((weights * r * r).sum())
