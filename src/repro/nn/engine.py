"""Planned single-precision inference: :class:`InferencePlan`.

The legacy inference path (``Network.forward(training=False)``) walks the
layer list, and every layer allocates its own output — plus, for
convolutions, materialises a float64 im2col column buffer and runs three
separate array passes (GEMM, bias add, activation) over per-layer
temporaries.  That cost structure is what the paper's surrogate competes
against the exact solver with, and Wandel et al. ("Teaching the
Incompressible Navier-Stokes Equations to Fast Neural Surrogate Models")
show fp32 surrogates lose no usable pressure accuracy.

An :class:`InferencePlan` is compiled once per (network, input shape, batch
capacity, dtype) and then runs forward passes with zero steady-state
allocations:

* **workspace arena** — one flat buffer spanning every layer's workspaces
  (conv pad/column/accumulator buffers, pooling/upsampling outputs,
  activation buffers), carved into views at build time.  Buffers are sized
  by *capacity* along the batch axis, so shrinking batches (farm jobs
  finishing at different steps) run through leading-axis views of the same
  memory.
* **fused conv epilogue** — convolution, bias add and the directly
  following activation execute as one GEMM epilogue (``matmul`` into the
  arena, in-place bias add, in-place activation) instead of three full
  array passes over separate temporaries.
* **single-precision end to end** — weights are cast **once** at plan
  build, inputs are cast on the way into the arena, and the caller casts
  the pressure back to float64 at the solver boundary.

Two compiled convolution strategies, selected by dtype:

``float64`` — *bitwise replay*.  The plan reproduces exactly the arithmetic
of the legacy layer-by-layer forward (same im2col operation sequence, same
operand layouts, NCHW activations), so its output is bitwise identical and
the default fp64 path through :class:`repro.models.NNProjectionSolver` is
unchanged by construction.

``float32`` — *shift-and-GEMM*.  Activations live in NHWC layout (channels
contiguous) and each 2-D convolution runs as k² small channel GEMMs over
shifted views of the padded input, accumulated in place.  This skips the
im2col gather entirely — which is latency-bound and dominates the legacy
forward — on top of halving every GEMM's and copy's byte traffic.  Output
values differ from fp64 only by float32 rounding.

Networks containing layers outside the inference vocabulary (``Dense``,
``Flatten``, custom layers) raise :class:`PlanError` at build time; callers
fall back to the legacy forward.
"""

from __future__ import annotations

import time

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.metrics import get_metrics
from repro.trace import get_tracer

from .activations import LeakyReLU, ReLU, Sigmoid, Tanh
from .conv import Conv2d
from .dropout import Dropout
from .network import Network, Residual
from .pool import AvgPool2d, MaxPool2d, Upsample2d

__all__ = ["PlanError", "InferencePlan"]


class PlanError(ValueError):
    """The model (or input shape) cannot be compiled into a plan."""


class _Slot:
    """One buffer reservation inside the workspace arena."""

    __slots__ = ("shape", "zero", "array")

    def __init__(self, shape: tuple[int, ...], zero: bool = False):
        self.shape = shape
        self.zero = zero
        self.array: np.ndarray | None = None

    @property
    def size(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n


# ---------------------------------------------------------------------------
# in-place activation epilogues (operation sequences mirror the legacy
# activation layers exactly, so fp64 output stays bitwise identical)


def _relu_inplace(a: np.ndarray) -> None:
    np.maximum(a, 0.0, out=a)


def _tanh_inplace(a: np.ndarray) -> None:
    np.tanh(a, out=a)


def _sigmoid_inplace(a: np.ndarray) -> None:
    np.clip(a, -60, 60, out=a)
    np.negative(a, out=a)
    np.exp(a, out=a)
    a += 1.0
    np.divide(1.0, a, out=a)


def _leaky_relu_inplace(slope: float):
    def apply(a: np.ndarray) -> None:
        np.copyto(a, np.where(a > 0, a, slope * a))

    return apply


def _activation_epilogue(layer):
    """The in-place epilogue for an activation layer (None if not one)."""
    if isinstance(layer, ReLU):
        return _relu_inplace
    if isinstance(layer, Tanh):
        return _tanh_inplace
    if isinstance(layer, Sigmoid):
        return _sigmoid_inplace
    if isinstance(layer, LeakyReLU):
        return _leaky_relu_inplace(layer.slope)
    return None


# ---------------------------------------------------------------------------
# compiled steps — ``shape`` is always the logical (C, H, W); the physical
# buffer layout (NCHW or NHWC) is the plan's choice


class _ConvIm2colStep:
    """fp64 convolution: bitwise replay of the legacy im2col forward."""

    def __init__(self, conv: Conv2d, epilogue, in_slot: _Slot, shape, dtype):
        c, h, w = shape
        k = conv.kernel
        pad = k // 2
        f = conv.out_channels
        self.kernel, self.pad, self.out_channels = k, pad, f
        self.h, self.w, self.in_channels = h, w, c
        self.epilogue = epilogue
        # weights cast ONCE at plan build; wmat keeps the legacy (F, C*k*k)
        # contiguous layout so the GEMM sees identical operand strides
        self.wmat = np.ascontiguousarray(conv.weight.value.reshape(f, -1).astype(dtype))
        self.bias = conv.bias.value.astype(dtype)
        self.in_slot = in_slot
        self.pad_slot = _Slot((0, c, h + 2 * pad, w + 2 * pad), zero=True)
        self.cols_slot = _Slot((0, h * w, c * k * k))
        self.gemm_slot = _Slot((0, h * w, f))
        self.out_slot = _Slot((0, f, h, w))

    def slots(self) -> list[_Slot]:
        return [self.pad_slot, self.cols_slot, self.gemm_slot, self.out_slot]

    def run(self, n: int) -> None:
        k, pad, h, w, c, f = (
            self.kernel, self.pad, self.h, self.w, self.in_channels, self.out_channels,
        )
        xp = self.pad_slot.array[:n]
        xp[:, :, pad : pad + h, pad : pad + w] = self.in_slot.array[:n]
        win = sliding_window_view(xp, (k, k), axis=(2, 3))
        cols = self.cols_slot.array[:n]
        np.copyto(cols.reshape(n, h, w, c, k, k), win.transpose(0, 2, 3, 1, 4, 5))
        g = self.gemm_slot.array[:n]
        np.matmul(cols, self.wmat.T, out=g)
        g += self.bias
        if self.epilogue is not None:
            self.epilogue(g)
        np.copyto(self.out_slot.array[:n], g.transpose(0, 2, 1).reshape(n, f, h, w))


class _ConvShiftGemmStep:
    """fp32 convolution: k² shifted channel GEMMs over NHWC activations.

    Skips the im2col gather (the legacy hot spot): each kernel offset is
    one ``(W, C) @ (C, F)`` matmul over a shifted view of the padded input
    — the channel axis is contiguous in NHWC, so every GEMM operand is a
    dense row — accumulated in place into the output buffer.
    """

    def __init__(self, conv: Conv2d, epilogue, in_slot: _Slot, shape, dtype):
        c, h, w = shape
        k = conv.kernel
        pad = k // 2
        f = conv.out_channels
        self.kernel, self.pad, self.out_channels = k, pad, f
        self.h, self.w, self.in_channels = h, w, c
        self.epilogue = epilogue
        # weights cast ONCE at plan build, re-laid-out as one contiguous
        # (C, F) GEMM operand per kernel offset
        self.w_off = np.ascontiguousarray(
            conv.weight.value.transpose(2, 3, 1, 0).astype(dtype)
        )  # (k, k, C, F)
        self.bias = conv.bias.value.astype(dtype)
        self.in_slot = in_slot
        self.pad_slot = _Slot((0, h + 2 * pad, w + 2 * pad, c), zero=True)
        self.tmp_slot = _Slot((0, h, w, f))
        self.out_slot = _Slot((0, h, w, f))

    def slots(self) -> list[_Slot]:
        return [self.pad_slot, self.tmp_slot, self.out_slot]

    def run(self, n: int) -> None:
        k, pad, h, w = self.kernel, self.pad, self.h, self.w
        xp = self.pad_slot.array[:n]
        xp[:, pad : pad + h, pad : pad + w, :] = self.in_slot.array[:n]
        acc = self.out_slot.array[:n]
        tmp = self.tmp_slot.array[:n]
        np.matmul(xp[:, 0:h, 0:w, :], self.w_off[0, 0], out=acc)
        for i in range(k):
            for j in range(k):
                if i == 0 and j == 0:
                    continue
                np.matmul(xp[:, i : i + h, j : j + w, :], self.w_off[i, j], out=tmp)
                acc += tmp
        acc += self.bias
        if self.epilogue is not None:
            self.epilogue(acc)


class _ActivationStep:
    """A standalone activation (not directly after a convolution)."""

    def __init__(self, epilogue, in_slot: _Slot, buf_shape):
        self.epilogue = epilogue
        self.in_slot = in_slot
        self.out_slot = _Slot(buf_shape)

    def slots(self) -> list[_Slot]:
        return [self.out_slot]

    def run(self, n: int) -> None:
        out = self.out_slot.array[:n]
        np.copyto(out, self.in_slot.array[:n])
        self.epilogue(out)


class _PoolStep:
    """Max or average pooling in either layout."""

    def __init__(self, factor: int, in_slot: _Slot, shape, layout: str, op: str):
        c, h, w = shape
        if h % factor or w % factor:
            raise PlanError(f"spatial dims {h}x{w} not divisible by pool factor {factor}")
        self.factor = factor
        self.shape = shape
        self.layout = layout
        self.op = op
        self.in_slot = in_slot
        out_shape = (c, h // factor, w // factor)
        self.out_slot = _Slot(_buf_shape(out_shape, layout))

    def slots(self) -> list[_Slot]:
        return [self.out_slot]

    def run(self, n: int) -> None:
        c, h, w = self.shape
        f = self.factor
        if self.layout == "nchw":
            blocks = self.in_slot.array[:n].reshape(n, c, h // f, f, w // f, f)
            axes = (3, 5)
        else:
            blocks = self.in_slot.array[:n].reshape(n, h // f, f, w // f, f, c)
            axes = (2, 4)
        if self.op == "max":
            blocks.max(axis=axes, out=self.out_slot.array[:n])
        else:
            blocks.mean(axis=axes, out=self.out_slot.array[:n])


class _UpsampleStep:
    """Nearest-neighbour upsampling in either layout."""

    def __init__(self, factor: int, in_slot: _Slot, shape, layout: str):
        c, h, w = shape
        self.factor = factor
        self.shape = shape
        self.layout = layout
        self.in_slot = in_slot
        out_shape = (c, h * factor, w * factor)
        self.out_slot = _Slot(_buf_shape(out_shape, layout))

    def slots(self) -> list[_Slot]:
        return [self.out_slot]

    def run(self, n: int) -> None:
        c, h, w = self.shape
        f = self.factor
        if self.layout == "nchw":
            out6 = self.out_slot.array[:n].reshape(n, c, h, f, w, f)
            out6[...] = self.in_slot.array[:n, :, :, None, :, None]
        else:
            out6 = self.out_slot.array[:n].reshape(n, h, f, w, f, c)
            out6[...] = self.in_slot.array[:n, :, None, :, None, :]


class _ResidualAddStep:
    """Close a residual block: add the saved block input in place."""

    def __init__(self, block_in: _Slot, out_slot: _Slot):
        self.block_in = block_in
        self.out_slot = out_slot

    def slots(self) -> list[_Slot]:
        return []

    def run(self, n: int) -> None:
        self.out_slot.array[:n] += self.block_in.array[:n]


def _buf_shape(shape: tuple[int, int, int], layout: str) -> tuple[int, ...]:
    """Physical buffer shape (leading batch axis reserved as 0) for (C, H, W)."""
    c, h, w = shape
    return (0, c, h, w) if layout == "nchw" else (0, h, w, c)


# ---------------------------------------------------------------------------


class InferencePlan:
    """A network compiled for repeated inference at a fixed shape/capacity.

    Parameters
    ----------
    model:
        The network to compile (a :class:`~repro.nn.Network` or any layer
        tree built from the inference vocabulary: Conv2d, ReLU/LeakyReLU/
        Tanh/Sigmoid, Max/AvgPool2d, Upsample2d, Dropout, Residual).
    input_shape:
        Batch-free input shape ``(C, H, W)``.
    batch_capacity:
        Maximum stacked batch size; calls with fewer samples reuse the same
        arena through leading-axis views.
    dtype:
        ``np.float64`` (bitwise-identical to the legacy forward) or
        ``np.float32`` (the fast shift-and-GEMM path; weights cast once
        here).

    Attributes
    ----------
    runs, workspace_reuses:
        Forward passes executed / passes served entirely from the
        pre-allocated arena (equal by construction — the counters exist so
        benchmarks can certify zero steady-state allocations).
    arena_bytes:
        Total size of the workspace arena.
    """

    def __init__(
        self,
        model,
        input_shape: tuple[int, int, int],
        batch_capacity: int = 1,
        dtype=np.float64,
    ):
        self.dtype = np.dtype(dtype)
        if self.dtype == np.dtype(np.float64):
            self.layout = "nchw"  # bitwise replay of the legacy forward
        elif self.dtype == np.dtype(np.float32):
            self.layout = "nhwc"  # shift-and-GEMM fast path
        else:
            raise PlanError(f"unsupported plan dtype {self.dtype}")
        input_shape = tuple(int(d) for d in input_shape)
        if len(input_shape) != 3:
            raise PlanError(f"input_shape must be (C, H, W), got {input_shape}")
        if batch_capacity < 1:
            raise PlanError("batch_capacity must be >= 1")
        self.input_shape = input_shape
        self.capacity = int(batch_capacity)
        self.runs = 0
        self.workspace_reuses = 0

        compile_started = time.perf_counter()
        with get_tracer().span(
            "nn/plan_compile",
            capacity=self.capacity,
            dtype=str(self.dtype),
        ) as sp:
            self._in_slot = _Slot(_buf_shape(input_shape, self.layout))
            slots = [self._in_slot]
            self._steps, self._out_slot, self.output_shape = self._compile(
                self._layers_of(model), self._in_slot, input_shape, slots
            )

            # one arena spanning every workspace; buffers are views into it,
            # sized by capacity along the (reserved, leading) batch axis
            for s in slots:
                s.shape = (self.capacity,) + tuple(s.shape[1:])
            total = sum(s.size for s in slots)
            self._arena = np.empty(total, dtype=self.dtype)
            offset = 0
            for s in slots:
                view = self._arena[offset : offset + s.size].reshape(s.shape)
                if s.zero:  # conv pad borders stay zero for the arena's lifetime
                    view[...] = 0
                s.array = view
                offset += s.size
            if sp is not None:
                sp.attrs["arena_bytes"] = int(self._arena.nbytes)
        get_metrics().families.histogram(
            "nn_plan_compile_seconds",
            help="InferencePlan compile (lower + arena allocation) time.",
            labels=("dtype",),
            unit="seconds",
        ).observe(
            time.perf_counter() - compile_started,
            exemplar=sp.span_id if sp is not None else None,
            dtype=self.dtype.name,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _layers_of(model) -> list:
        if isinstance(model, Network):
            return list(model.layers)
        return [model]

    def _compile(self, layers: list, in_slot: _Slot, shape, slots: list[_Slot]):
        """Lower a layer list to steps; returns (steps, out_slot, out_shape)."""
        conv_cls = _ConvIm2colStep if self.layout == "nchw" else _ConvShiftGemmStep
        steps = []
        cur_slot, cur_shape = in_slot, tuple(shape)
        i = 0
        while i < len(layers):
            layer = layers[i]
            step = None
            if isinstance(layer, Conv2d):
                if cur_shape[0] != layer.in_channels:
                    raise PlanError(
                        f"conv expects {layer.in_channels} channels, got {cur_shape}"
                    )
                # fuse a directly following activation into the GEMM epilogue
                epilogue = None
                if i + 1 < len(layers):
                    epilogue = _activation_epilogue(layers[i + 1])
                    if epilogue is not None:
                        i += 1
                step = conv_cls(layer, epilogue, cur_slot, cur_shape, self.dtype)
                cur_shape = (layer.out_channels,) + cur_shape[1:]
            elif _activation_epilogue(layer) is not None:
                step = _ActivationStep(
                    _activation_epilogue(layer), cur_slot, _buf_shape(cur_shape, self.layout)
                )
            elif isinstance(layer, MaxPool2d):
                step = _PoolStep(layer.factor, cur_slot, cur_shape, self.layout, "max")
                cur_shape = (cur_shape[0], cur_shape[1] // layer.factor, cur_shape[2] // layer.factor)
            elif isinstance(layer, AvgPool2d):
                step = _PoolStep(layer.factor, cur_slot, cur_shape, self.layout, "avg")
                cur_shape = (cur_shape[0], cur_shape[1] // layer.factor, cur_shape[2] // layer.factor)
            elif isinstance(layer, Upsample2d):
                step = _UpsampleStep(layer.factor, cur_slot, cur_shape, self.layout)
                cur_shape = (cur_shape[0], cur_shape[1] * layer.factor, cur_shape[2] * layer.factor)
            elif isinstance(layer, Dropout):
                pass  # inverted dropout is the identity at inference
            elif isinstance(layer, Residual):
                sub_steps, sub_out, sub_shape = self._compile(
                    layer.layers, cur_slot, cur_shape, slots
                )
                if sub_shape != cur_shape:
                    raise PlanError(
                        f"residual block changed shape {cur_shape} -> {sub_shape}"
                    )
                steps.extend(sub_steps)
                steps.append(_ResidualAddStep(cur_slot, sub_out))
                cur_slot = sub_out
            elif isinstance(layer, Network):
                sub_steps, cur_slot, cur_shape = self._compile(
                    layer.layers, cur_slot, cur_shape, slots
                )
                steps.extend(sub_steps)
            else:
                raise PlanError(
                    f"layer {type(layer).__name__} is outside the inference "
                    "plan vocabulary"
                )
            if step is not None:
                steps.append(step)
                slots.extend(step.slots())
                cur_slot = step.out_slot
            i += 1
        return steps, cur_slot, cur_shape

    # ------------------------------------------------------------------
    @property
    def arena_bytes(self) -> int:
        """Size of the single pre-allocated workspace arena."""
        return int(self._arena.nbytes)

    @property
    def num_steps(self) -> int:
        """Number of compiled execution steps (activations fused away)."""
        return len(self._steps)

    def run(self, x: np.ndarray) -> np.ndarray:
        """One forward pass; returns a ``(n,) + output_shape`` NCHW view.

        The input is cast (and, for fp32, transposed to NHWC) into the
        arena on the way in.  The returned view is overwritten by the next
        call, so callers must consume (or copy) it before running the plan
        again.
        """
        x = np.asarray(x)
        if x.ndim != 4 or x.shape[1:] != self.input_shape:
            raise ValueError(
                f"expected (N,) + {self.input_shape} input, got {x.shape}"
            )
        n = x.shape[0]
        if not 1 <= n <= self.capacity:
            raise ValueError(
                f"batch size {n} outside plan capacity 1..{self.capacity}"
            )
        if self.layout == "nchw":
            np.copyto(self._in_slot.array[:n], x)  # casts at the boundary
        else:
            np.copyto(self._in_slot.array[:n], x.transpose(0, 2, 3, 1))
        gemm_started = time.perf_counter()
        for step in self._steps:
            step.run(n)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.families.histogram(
                "nn_gemm_seconds",
                help="Fused-GEMM step-list execution time per plan forward.",
                labels=("dtype",),
                unit="seconds",
            ).observe(time.perf_counter() - gemm_started, dtype=self.dtype.name)
        self.runs += 1
        self.workspace_reuses += 1  # every pass runs entirely in the arena
        out = self._out_slot.array[:n]
        if self.layout == "nhwc":
            out = out.transpose(0, 3, 1, 2)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"InferencePlan({self.input_shape}, capacity={self.capacity}, "
            f"dtype={self.dtype.name}, layout={self.layout}, steps={self.num_steps})"
        )
