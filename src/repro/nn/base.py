"""Core abstractions of the NumPy neural-network framework.

The paper trains and runs its approximation networks in Torch7 on a GPU;
no deep-learning framework is available offline, so :mod:`repro.nn` is a
small from-scratch implementation with explicit forward/backward passes.
Convolutional tensors use NCHW layout ``(batch, channels, height, width)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter", "Layer"]


class Parameter:
    """A trainable tensor with its accumulated gradient."""

    def __init__(self, value: np.ndarray, name: str = ""):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad[...] = 0.0

    @property
    def size(self) -> int:
        """Number of scalar weights."""
        return int(self.value.size)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Parameter({self.name or 'unnamed'}, shape={self.value.shape})"


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`forward` and :meth:`backward` and may expose
    :class:`Parameter` objects through :meth:`parameters`.  ``backward``
    receives the gradient of the loss w.r.t. the layer's output and must
    return the gradient w.r.t. its input, accumulating parameter gradients
    as a side effect.
    """

    #: whether the layer behaves differently in training mode (e.g. dropout)
    stochastic: bool = False

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output, caching what backward needs."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad`` (dL/dout) and return dL/din."""
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """Trainable parameters of this layer (may be empty)."""
        return []

    # ---- static analysis hooks (used by repro.nn.accounting) ----
    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Shape produced for a (batch-free) input shape."""
        return input_shape

    def flops(self, input_shape: tuple[int, ...]) -> float:
        """Approximate floating-point operations for one forward pass."""
        return 0.0

    def param_count(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def __repr__(self) -> str:  # pragma: no cover
        return type(self).__name__
