"""Pure-NumPy neural-network framework.

Implements exactly the layer vocabulary the paper's model transformations
operate on (convolution, ReLU, pooling, unpooling, dropout, dense, residual
connections) with explicit backpropagation, SGD/Adam optimisers, the
unsupervised DivNorm loss, and static FLOP/memory accounting.
"""

from .base import Layer, Parameter
from .init import he_init, xavier_init
from .conv import Conv2d
from .dense import Dense, Flatten
from .activations import LeakyReLU, ReLU, Sigmoid, Tanh
from .pool import AvgPool2d, MaxPool2d, Upsample2d
from .dropout import Dropout
from .network import Network, Residual
from .losses import DivNormLoss, Loss, MSELoss, divnorm_of_residual
from .optim import Adam, Optimizer, SGD
from .schedulers import CosineLR, LRScheduler, StepLR, WarmupLR
from .training import Trainer, TrainHistory
from .accounting import ResourceUsage, analyze_network, pcg_flops, pcg_memory_bytes
from .engine import InferencePlan, PlanError

__all__ = [
    "Layer",
    "Parameter",
    "he_init",
    "xavier_init",
    "Conv2d",
    "Dense",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "MaxPool2d",
    "AvgPool2d",
    "Upsample2d",
    "Dropout",
    "Network",
    "Residual",
    "Loss",
    "MSELoss",
    "DivNormLoss",
    "divnorm_of_residual",
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "StepLR",
    "CosineLR",
    "WarmupLR",
    "Trainer",
    "TrainHistory",
    "InferencePlan",
    "PlanError",
    "ResourceUsage",
    "analyze_network",
    "pcg_flops",
    "pcg_memory_bytes",
]
