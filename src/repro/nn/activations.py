"""Elementwise activation layers."""

from __future__ import annotations

import numpy as np

from .base import Layer

__all__ = ["ReLU", "LeakyReLU", "Sigmoid", "Tanh"]


class ReLU(Layer):
    """Rectified linear unit, the activation of the paper's CNN stages."""

    def __init__(self):
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0 if training else None
        return np.maximum(x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad * self._mask

    def flops(self, input_shape: tuple[int, ...]) -> float:
        n = 1
        for d in input_shape:
            n *= d
        return float(n)


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, slope: float = 0.01):
        self.slope = slope
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0 if training else None
        return np.where(x > 0, x, self.slope * x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad * np.where(self._mask, 1.0, self.slope)

    def flops(self, input_shape: tuple[int, ...]) -> float:
        n = 1
        for d in input_shape:
            n *= d
        return float(n)


class Sigmoid(Layer):
    """Logistic activation (output layer of the success-rate MLP)."""

    def __init__(self):
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))
        self._out = out if training else None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad * self._out * (1.0 - self._out)

    def flops(self, input_shape: tuple[int, ...]) -> float:
        n = 1
        for d in input_shape:
            n *= d
        return 4.0 * n


class Tanh(Layer):
    """Hyperbolic-tangent activation."""

    def __init__(self):
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.tanh(x)
        self._out = out if training else None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad * (1.0 - self._out**2)

    def flops(self, input_shape: tuple[int, ...]) -> float:
        n = 1
        for d in input_shape:
            n *= d
        return 4.0 * n
