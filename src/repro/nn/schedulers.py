"""Learning-rate schedules.

The offline phase trains one base model plus a hundred-odd fine-tunes; a
decaying learning rate noticeably improves the base model's final DivNorm
loss at fixed epoch budgets, so the Trainer accepts any of these schedules.
"""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = ["LRScheduler", "StepLR", "CosineLR", "WarmupLR"]


class LRScheduler:
    """Base class: mutate ``optimizer.lr`` at each epoch boundary."""

    def __init__(self, optimizer: Optimizer):
        if not hasattr(optimizer, "lr"):
            raise ValueError("optimizer has no lr attribute")
        self.optimizer = optimizer
        self.base_lr = float(optimizer.lr)
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        lr = self.compute(self.epoch)
        self.optimizer.lr = lr
        return lr

    def compute(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int = 10, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.step_size = step_size
        self.gamma = gamma

    def compute(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineLR(LRScheduler):
    """Cosine annealing from the base rate down to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def compute(self, epoch: int) -> float:
        t = min(epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * t))


class WarmupLR(LRScheduler):
    """Linear warm-up to the base rate, then delegate to another schedule."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int = 3, after: LRScheduler | None = None):
        super().__init__(optimizer)
        if warmup_epochs < 1:
            raise ValueError("warmup_epochs must be >= 1")
        self.warmup_epochs = warmup_epochs
        self.after = after

    def compute(self, epoch: int) -> float:
        if epoch <= self.warmup_epochs:
            return self.base_lr * epoch / self.warmup_epochs
        if self.after is not None:
            return self.after.compute(epoch - self.warmup_epochs)
        return self.base_lr
