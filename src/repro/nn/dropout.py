"""Inverted dropout (the paper's fourth transformation operation)."""

from __future__ import annotations

import numpy as np

from .base import Layer

__all__ = ["Dropout"]


class Dropout(Layer):
    """Randomly zero activations with probability ``p`` during training.

    Uses *inverted* scaling, so inference is the identity.  Note the paper
    uses dropout not for regularisation during training only, but as a model
    transformation that permanently thins a layer; we capture that in the
    architecture spec while this layer provides the stochastic behaviour.
    """

    stochastic = True

    def __init__(self, p: float = 0.1, rng=None):
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = np.random.default_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask

    def flops(self, input_shape: tuple[int, ...]) -> float:
        n = 1
        for d in input_shape:
            n *= d
        return float(n)
