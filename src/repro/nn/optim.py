"""Gradient-descent optimisers."""

from __future__ import annotations

import numpy as np

from .base import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser over a fixed list of parameters."""

    def __init__(self, params: list[Parameter]):
        self.params = list(params)

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, params: list[Parameter], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            v *= self.momentum
            v -= self.lr * p.grad
            p.value += v


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(params)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        c1 = 1.0 - b1**self._t
        c2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            m *= b1
            m += (1 - b1) * p.grad
            v *= b2
            v += (1 - b2) * p.grad**2
            p.value -= self.lr * (m / c1) / (np.sqrt(v / c2) + self.eps)
