"""Minibatch training loop with per-epoch wall-clock telemetry."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.metrics import MetricsRegistry, get_metrics

from .losses import Loss
from .network import Network
from .optim import Optimizer

__all__ = ["TrainHistory", "Trainer"]


@dataclass
class TrainHistory:
    """Per-epoch mean training (and optional validation) loss."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    step_loss: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        """Last recorded epoch loss (inf if never trained)."""
        return self.train_loss[-1] if self.train_loss else float("inf")


class Trainer:
    """Train a network with a loss over a dict-of-arrays dataset.

    The dataset maps names to arrays whose leading dimension is the sample
    axis; the key ``"x"`` is the network input and the remaining keys are
    passed to the loss (e.g. ``"y"`` for MSE, or ``"b"``/``"solid"``/
    ``"weights"`` for the DivNorm objective).
    """

    def __init__(
        self,
        network: Network,
        loss: Loss,
        optimizer: Optimizer,
        rng=None,
        metrics: MetricsRegistry | None = None,
    ):
        self.network = network
        self.loss = loss
        self.optimizer = optimizer
        self.rng = np.random.default_rng(rng)
        self._metrics = metrics

    def _batches(self, data: dict[str, np.ndarray], batch_size: int, shuffle: bool):
        n = len(data["x"])
        order = self.rng.permutation(n) if shuffle else np.arange(n)
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            yield {k: v[idx] for k, v in data.items()}

    def evaluate(self, data: dict[str, np.ndarray], batch_size: int = 64) -> float:
        """Mean loss over a dataset without updating weights."""
        total, count = 0.0, 0
        for batch in self._batches(data, batch_size, shuffle=False):
            pred = self.network.forward(batch["x"], training=False)
            value, _ = self.loss.value_and_grad(pred, batch)
            bs = len(batch["x"])
            total += value * bs
            count += bs
        return total / max(count, 1)

    def fit(
        self,
        data: dict[str, np.ndarray],
        epochs: int = 10,
        batch_size: int = 16,
        shuffle: bool = True,
        validation: dict[str, np.ndarray] | None = None,
        scheduler=None,
        verbose: bool = False,
    ) -> TrainHistory:
        """Run the optimisation loop and return the loss history.

        ``scheduler`` may be any :class:`repro.nn.schedulers.LRScheduler`;
        it is stepped once per epoch.
        """
        if "x" not in data:
            raise ValueError('dataset must contain an "x" entry')
        metrics = self._metrics if self._metrics is not None else get_metrics()
        history = TrainHistory()
        for epoch in range(epochs):
            t0 = time.perf_counter()
            epoch_total, epoch_count = 0.0, 0
            for batch in self._batches(data, batch_size, shuffle):
                pred = self.network.forward(batch["x"], training=True)
                value, grad = self.loss.value_and_grad(pred, batch)
                self.optimizer.zero_grad()
                self.network.backward(grad)
                self.optimizer.step()
                bs = len(batch["x"])
                epoch_total += value * bs
                epoch_count += bs
                history.step_loss.append(value)
                metrics.inc("train/batches")
            history.train_loss.append(epoch_total / max(epoch_count, 1))
            history.epoch_seconds.append(time.perf_counter() - t0)
            metrics.observe("train/epoch", history.epoch_seconds[-1])
            metrics.inc("train/epochs")
            metrics.inc("train/samples", epoch_count)
            if scheduler is not None:
                scheduler.step()
            if validation is not None:
                history.val_loss.append(self.evaluate(validation, batch_size))
            if verbose:  # pragma: no cover
                msg = f"epoch {epoch + 1}/{epochs}: loss={history.train_loss[-1]:.5f}"
                if validation is not None:
                    msg += f" val={history.val_loss[-1]:.5f}"
                print(msg)
        return history
