"""Pooling and unpooling (upsampling) layers.

These implement the paper's *pooling* transformation operation — "replace any
two neighbour-neurons with a new neuron using max pooling" — in its grid form
(2x2 windows), and the matching unpooling used to restore the spatial size so
a transformed stage still maps (H, W) fields to (H, W) fields.
"""

from __future__ import annotations

import numpy as np

from .base import Layer

__all__ = ["MaxPool2d", "AvgPool2d", "Upsample2d"]


class MaxPool2d(Layer):
    """Non-overlapping max pooling with window = stride = ``factor``."""

    def __init__(self, factor: int = 2):
        if factor < 2:
            raise ValueError("pooling factor must be >= 2")
        self.factor = factor
        self._argmask: np.ndarray | None = None
        self._in_shape: tuple[int, ...] | None = None

    def _blocks(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        f = self.factor
        return x.reshape(n, c, h // f, f, w // f, f)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        f = self.factor
        if h % f or w % f:
            raise ValueError(f"spatial dims {h}x{w} not divisible by pool factor {f}")
        blocks = self._blocks(x).transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h // f, w // f, f * f)
        out = blocks.max(axis=-1)
        if training:
            self._argmask = blocks == out[..., None]
            self._in_shape = x.shape
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._argmask is None or self._in_shape is None:
            raise RuntimeError("backward called before forward(training=True)")
        n, c, h, w = self._in_shape
        f = self.factor
        # distribute gradient to the (first) max position of each window
        mask = self._argmask
        first = np.cumsum(mask, axis=-1) == 1
        mask = mask & first
        g = (grad[..., None] * mask).reshape(n, c, h // f, w // f, f, f)
        return g.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h, w)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        return (c, h // self.factor, w // self.factor)

    def flops(self, input_shape: tuple[int, ...]) -> float:
        c, h, w = input_shape
        return float(c * h * w)


class AvgPool2d(Layer):
    """Non-overlapping average pooling with window = stride = ``factor``."""

    def __init__(self, factor: int = 2):
        if factor < 2:
            raise ValueError("pooling factor must be >= 2")
        self.factor = factor
        self._in_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        f = self.factor
        if h % f or w % f:
            raise ValueError(f"spatial dims {h}x{w} not divisible by pool factor {f}")
        self._in_shape = x.shape
        return x.reshape(n, c, h // f, f, w // f, f).mean(axis=(3, 5))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError("backward called before forward")
        f = self.factor
        g = np.repeat(np.repeat(grad, f, axis=2), f, axis=3)
        return g / (f * f)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        return (c, h // self.factor, w // self.factor)

    def flops(self, input_shape: tuple[int, ...]) -> float:
        c, h, w = input_shape
        return float(c * h * w)


class Upsample2d(Layer):
    """Nearest-neighbour upsampling (the unpooling of a transformed stage)."""

    def __init__(self, factor: int = 2):
        if factor < 2:
            raise ValueError("upsample factor must be >= 2")
        self.factor = factor

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        f = self.factor
        return np.repeat(np.repeat(x, f, axis=2), f, axis=3)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, c, h, w = grad.shape
        f = self.factor
        return grad.reshape(n, c, h // f, f, w // f, f).sum(axis=(3, 5))

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        return (c, h * self.factor, w * self.factor)

    def flops(self, input_shape: tuple[int, ...]) -> float:
        c, h, w = input_shape
        return float(c * h * w * self.factor * self.factor)
