"""Weight initialisation helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["he_init", "xavier_init"]


def he_init(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
    """He-normal initialisation (suited to ReLU activations)."""
    return rng.standard_normal(shape) * np.sqrt(2.0 / max(fan_in, 1))


def xavier_init(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot-uniform initialisation (suited to sigmoid/tanh activations)."""
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, shape)
