"""Fully-connected layers (used by the MLP success-rate model and Yang's
patch-based predictor)."""

from __future__ import annotations

import numpy as np

from .base import Layer, Parameter
from .init import he_init

__all__ = ["Dense", "Flatten"]


class Dense(Layer):
    """Affine layer over (N, in_features) tensors."""

    def __init__(self, in_features: int, out_features: int, rng=None):
        self.in_features = in_features
        self.out_features = out_features
        rng = np.random.default_rng(rng)
        self.weight = Parameter(he_init(rng, (in_features, out_features), in_features), "dense.weight")
        self.bias = Parameter(np.zeros(out_features), "dense.bias")
        self._x: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(f"expected (N,{self.in_features}) input, got {x.shape}")
        self._x = x if training else None
        return x @ self.weight.value + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward(training=True)")
        self.weight.grad += self._x.T @ grad
        self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value.T

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (self.out_features,)

    def flops(self, input_shape: tuple[int, ...]) -> float:
        return 2.0 * self.in_features * self.out_features

    def __repr__(self) -> str:  # pragma: no cover
        return f"Dense({self.in_features}->{self.out_features})"


class Flatten(Layer):
    """Flatten NCHW tensors to (N, C*H*W)."""

    def __init__(self):
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad.reshape(self._shape)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        n = 1
        for d in input_shape:
            n *= d
        return (n,)
