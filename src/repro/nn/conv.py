"""2-D convolution via im2col.

Stride is fixed at 1 with "same" zero padding — downsampling in this package
is expressed through explicit pooling layers, matching the architecture
vocabulary of the paper's transformation operations.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .base import Layer, Parameter
from .init import he_init

__all__ = ["Conv2d"]


class Conv2d(Layer):
    """Same-padded stride-1 convolution over NCHW tensors."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 3, rng=None):
        if kernel % 2 == 0:
            raise ValueError("Conv2d requires an odd kernel for same padding")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        fan_in = in_channels * kernel * kernel
        rng = np.random.default_rng(rng)
        self.weight = Parameter(
            he_init(rng, (out_channels, in_channels, kernel, kernel), fan_in), "conv.weight"
        )
        self.bias = Parameter(np.zeros(out_channels), "conv.bias")
        self._cols: np.ndarray | None = None
        self._in_shape: tuple[int, ...] | None = None
        self._ws_pad: np.ndarray | None = None  # inference-only padded-input workspace
        self._ws_cols: np.ndarray | None = None  # inference-only im2col workspace
        self.workspace_reuses = 0

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]

    def reset_workspace(self) -> None:
        """Release the reusable inference buffers."""
        self._ws_pad = None
        self._ws_cols = None

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel
        pad = k // 2
        xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        win = sliding_window_view(xp, (k, k), axis=(2, 3))  # (N, C, H, W, k, k)
        return win.transpose(0, 2, 3, 1, 4, 5).reshape(n, h * w, c * k * k)

    def _im2col_inference(self, x: np.ndarray) -> np.ndarray:
        """im2col into reusable workspace buffers (no per-call allocation).

        Only safe outside training: the returned array is overwritten by the
        next call, while the training path must keep its columns alive for
        ``backward``.

        The buffers are sized by *capacity* along the batch axis: a call
        with a smaller batch than a previous one reuses the existing
        allocation through a leading-axis view, so batched callers whose
        batch shrinks over time (e.g. farm jobs finishing at different
        steps) never reallocate.
        """
        n, c, h, w = x.shape
        k = self.kernel
        pad = k // 2
        pshape = (c, h + 2 * pad, w + 2 * pad)
        if (
            self._ws_pad is None
            or self._ws_pad.shape[1:] != pshape
            or self._ws_pad.shape[0] < n
            or self._ws_pad.dtype != x.dtype
        ):
            # border stays zero for the buffer's lifetime ("same" padding)
            self._ws_pad = np.zeros((n,) + pshape, dtype=x.dtype)
            self._ws_cols = np.empty((n, h * w, c * k * k), dtype=x.dtype)
        else:
            self.workspace_reuses += 1
        ws_pad = self._ws_pad[:n]
        ws_cols = self._ws_cols[:n]
        ws_pad[:, :, pad : pad + h, pad : pad + w] = x
        win = sliding_window_view(ws_pad, (k, k), axis=(2, 3))
        np.copyto(ws_cols.reshape(n, h, w, c, k, k), win.transpose(0, 2, 3, 1, 4, 5))
        return ws_cols

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (N,{self.in_channels},H,W) input, got {x.shape}"
            )
        n, _, h, w = x.shape
        if training:
            cols = self._im2col(x)
            self._cols = cols
        else:
            cols = self._im2col_inference(x)
            self._cols = None
        self._in_shape = x.shape
        wmat = self.weight.value.reshape(self.out_channels, -1)
        out = cols @ wmat.T + self.bias.value
        return out.transpose(0, 2, 1).reshape(n, self.out_channels, h, w)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cols is None or self._in_shape is None:
            raise RuntimeError("backward called before forward(training=True)")
        n, c, h, w = self._in_shape
        k = self.kernel
        pad = k // 2
        g2 = grad.reshape(n, self.out_channels, h * w).transpose(0, 2, 1)  # (N, HW, F)
        wmat = self.weight.value.reshape(self.out_channels, -1)

        dw = np.einsum("nlf,nlc->fc", g2, self._cols)
        self.weight.grad += dw.reshape(self.weight.value.shape)
        self.bias.grad += g2.sum(axis=(0, 1))

        dcols = g2 @ wmat  # (N, HW, C*k*k)
        dcols = dcols.reshape(n, h, w, c, k, k)
        # grad.dtype, not the float64 default: a float32 training pass must
        # not silently upcast its returned input gradient
        dxp = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=grad.dtype)
        for i in range(k):
            for j in range(k):
                dxp[:, :, i : i + h, j : j + w] += dcols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
        return dxp[:, :, pad : pad + h, pad : pad + w]

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        _, h, w = input_shape
        return (self.out_channels, h, w)

    def flops(self, input_shape: tuple[int, ...]) -> float:
        _, h, w = input_shape
        per_pixel = 2.0 * self.in_channels * self.kernel * self.kernel
        return per_pixel * self.out_channels * h * w

    def __repr__(self) -> str:  # pragma: no cover
        return f"Conv2d({self.in_channels}->{self.out_channels}, k={self.kernel})"
