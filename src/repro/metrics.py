"""Runtime performance metrics: counters, timers, scopes, JSON export.

This module is the observability backbone of the package: the simulator, the
pressure solvers, the training loop and the adaptive controller all report
into a :class:`MetricsRegistry`, so any run can emit a structured profile
(``repro simulate --json``, ``repro bench``).

Distinct from :mod:`repro.core.metrics`, which holds the paper's *simulation
quality* metrics (quality loss, CumDivNorm, correlations); this module is
about wall-clock and event accounting of the runtime itself.

Concepts
--------
counters
    Monotonic floats keyed by name (``inc``).
timers
    Aggregated wall-clock statistics per name (count/total/min/max), driven
    by the :meth:`MetricsRegistry.timer` context manager.
scopes
    Hierarchical name prefixes: inside ``with m.scope("sim")`` every metric
    name is recorded as ``sim/<name>``, so nested components compose into a
    readable tree (``sim/projection/pcg/solve``).
export
    ``to_dict``/``to_json`` produce a plain-JSON snapshot; ``from_dict``
    restores it, so profiles round-trip through files losslessly.

Instrumented components accept an optional ``metrics`` argument and default
to the process-wide registry (:func:`get_metrics`), so existing call sites
stay unchanged while still contributing to the global profile.

The default registry is *fork-aware*: a child process inherits the parent's
registry object at fork time, so without care its metrics would land in a
copy the parent never reads.  :func:`get_metrics` detects the PID change and
transparently installs a fresh registry in the child; workers are expected
to ship their snapshot back (``to_dict``) for the parent to fold in with
:meth:`MetricsRegistry.merge`, which is how :mod:`repro.farm` aggregates
per-worker profiles into one farm-level report.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "TimerStat",
    "MetricsRegistry",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "reset_metrics",
]


@dataclass
class TimerStat:
    """Aggregated wall-clock statistics of one named timer.

    Empty stats are normal forms: ``min = +inf`` and ``max = -inf`` (the
    identities of min/max), so merging any combination of empty and
    non-empty stats — including ones restored from snapshots — is exactly
    commutative and associative, and ``to_dict``/``from_dict`` round-trip
    bit-for-bit (both bounds serialise as ``null`` when empty).
    """

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def add(self, seconds: float) -> None:
        """Fold one observation into the aggregate."""
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        """Mean seconds per observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "TimerStat") -> None:
        """Fold another aggregate into this one (commutative)."""
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def to_dict(self) -> dict:
        """Plain-JSON representation (``min``/``max`` are null when empty)."""
        empty = self.count == 0
        return {
            "count": self.count,
            "total": self.total,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "mean": self.mean,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TimerStat":
        """Inverse of :meth:`to_dict`.

        Snapshots of empty stats — including historical ones that recorded
        ``max = 0.0`` with ``count = 0`` — normalise back to the canonical
        empty form, so a restored empty stat merges as a true identity.
        """
        count = int(d["count"])
        if count == 0:
            return cls()
        return cls(
            count=count,
            total=float(d["total"]),
            min=math.inf if d.get("min") is None else float(d["min"]),
            max=-math.inf if d.get("max") is None else float(d.get("max", 0.0)),
        )


class MetricsRegistry:
    """Counters + timers with hierarchical scope prefixes and JSON export.

    A disabled registry (``enabled=False``) turns every operation into a
    cheap no-op, so instrumentation can stay unconditionally in hot paths.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.counters: dict[str, float] = {}
        self.timers: dict[str, TimerStat] = {}
        # labeled metric families (repro.obs); created lazily so flat-only
        # users pay nothing and snapshots without labels stay byte-stable
        self._families = None
        # scope prefixes are *thread-local*: concurrent threads (e.g. the
        # batched farm backend, BatchedInferenceService leaders) each keep
        # their own stack, so scopes never interleave across threads
        self._scope_tls = threading.local()

    @property
    def families(self):
        """Labeled metric families riding on this registry (lazy).

        Returns a :class:`repro.obs.families.MetricFamilies` that shares
        this registry's lifecycle: it serialises inside :meth:`to_dict`,
        folds commutatively in :meth:`merge`, and clears on :meth:`reset`
        — so worker processes ship labeled series home over the exact
        fork/snapshot/merge path the flat counters already use.  On a
        disabled registry this is the shared no-op ``NULL_FAMILIES``.
        """
        from repro.obs.families import NULL_FAMILIES, MetricFamilies

        if not self.enabled:
            return NULL_FAMILIES
        if self._families is None:
            self._families = MetricFamilies()
        return self._families

    # ------------------------------------------------------------------
    @property
    def _prefix(self) -> list[str]:
        prefix = getattr(self._scope_tls, "prefix", None)
        if prefix is None:
            prefix = self._scope_tls.prefix = []
        return prefix

    def _qualify(self, name: str) -> str:
        prefix = self._prefix
        return "/".join(prefix + [name]) if prefix else name

    @contextmanager
    def scope(self, name: str):
        """Prefix every metric recorded inside the block with ``name/``.

        The prefix applies to the current thread only.
        """
        if not self.enabled:
            yield self
            return
        prefix = self._prefix
        prefix.append(name)
        try:
            yield self
        finally:
            prefix.pop()

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the counter ``name`` (creating it at 0)."""
        if not self.enabled:
            return
        key = self._qualify(name)
        self.counters[key] = self.counters.get(key, 0.0) + value

    @contextmanager
    def timer(self, name: str):
        """Time the block's wall-clock and fold it into timer ``name``."""
        if not self.enabled:
            yield
            return
        key = self._qualify(name)  # resolve before the block may change scope
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(key, time.perf_counter() - t0, _qualified=True)

    def observe(self, name: str, seconds: float, _qualified: bool = False) -> None:
        """Record one already-measured duration into timer ``name``."""
        if not self.enabled:
            return
        key = name if _qualified else self._qualify(name)
        stat = self.timers.get(key)
        if stat is None:
            stat = self.timers[key] = TimerStat()
        stat.add(seconds)

    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        return self.counters.get(name, 0.0)

    def merge(self, other: "MetricsRegistry | dict") -> "MetricsRegistry":
        """Fold another registry (or a ``to_dict`` snapshot) into this one.

        Counters add; timers combine their aggregates.  Merging is
        commutative and associative, so per-worker registries can be folded
        into a farm-level report in any order.  Returns ``self``.
        """
        if isinstance(other, dict):
            other = MetricsRegistry.from_dict(other)
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        for name, stat in other.timers.items():
            mine = self.timers.get(name)
            if mine is None:
                mine = self.timers[name] = TimerStat()
            mine.merge(stat)
        if other._families is not None and len(other._families):
            self.families.merge(other._families)
        return self

    def reset(self) -> None:
        """Drop all recorded counters, timers and families (keeps enabled)."""
        self.counters.clear()
        self.timers.clear()
        if self._families is not None:
            self._families.reset()

    def to_dict(self) -> dict:
        """Snapshot as a plain-JSON-serialisable dict.

        The ``families`` key appears only when labeled families were
        recorded, keeping label-free snapshots byte-identical to the
        historical format.
        """
        snapshot = {
            "counters": dict(sorted(self.counters.items())),
            "timers": {k: v.to_dict() for k, v in sorted(self.timers.items())},
        }
        if self._families is not None and len(self._families):
            snapshot["families"] = self._families.to_dict()["families"]
        return snapshot

    def to_json(self, indent: int | None = 2) -> str:
        """JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, d: dict) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`to_dict` snapshot."""
        reg = cls()
        reg.counters.update({k: float(v) for k, v in d.get("counters", {}).items()})
        reg.timers.update({k: TimerStat.from_dict(v) for k, v in d.get("timers", {}).items()})
        if d.get("families"):
            reg.families.merge({"families": d["families"]})
        return reg

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"MetricsRegistry(enabled={self.enabled}, "
            f"{len(self.counters)} counters, {len(self.timers)} timers)"
        )


#: Shared disabled registry: safe default for code that wants zero overhead.
NULL_METRICS = MetricsRegistry(enabled=False)

_default = MetricsRegistry()
_default_pid = os.getpid()


def get_metrics() -> MetricsRegistry:
    """The process-wide default registry instrumented code reports into.

    Fork-aware: a forked (or spawned) child inherits the parent's registry
    object, so its metrics would otherwise accumulate in a copy the parent
    never sees.  On the first call after a PID change the child gets its own
    fresh registry; workers snapshot it (``to_dict``) and ship it back for
    the parent to :meth:`~MetricsRegistry.merge`.
    """
    global _default, _default_pid
    if os.getpid() != _default_pid:
        _default = MetricsRegistry()
        _default_pid = os.getpid()
    return _default


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide default registry; returns the previous one."""
    global _default, _default_pid
    previous = _default
    _default = registry
    _default_pid = os.getpid()
    return previous


def reset_metrics() -> None:
    """Clear the process-wide default registry."""
    get_metrics().reset()
