"""The simulation farm: concurrent job execution with fault tolerance.

:class:`SimulationFarm` runs a list of :class:`~repro.farm.jobs.JobSpec`
through one of three backends:

``process`` (default)
    One OS process per running job, up to ``workers`` slots.  The parent
    monitors every worker: a result on the queue completes the job; a dead
    process without a result (crash, OOM kill) or a per-job timeout gets
    the job requeued up to ``spec.max_retries`` times, resuming from its
    latest checkpoint.  Worker registries are shipped back inside each
    :class:`~repro.farm.jobs.JobResult` and merged into the farm profile.

``batched``
    One thread per job inside this process, NN jobs sharing one
    :class:`~repro.farm.batching.BatchedInferenceService` so concurrent
    pressure projections run as stacked CNN forward passes.

``serial``
    Jobs run inline one after another — the baseline the farm's throughput
    is measured against (``repro bench``, ``BENCH_pr2.json``).

In-run failures (NN raising, divergence, injected faults) never reach the
pool: :func:`~repro.farm.worker.run_job` degrades those to exact PCG
internally.  The pool only handles *hard* faults — the ones a single
process cannot survive.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.metrics import MetricsRegistry, set_metrics
from repro.trace import Tracer, set_tracer

from .jobs import JobResult, JobSpec
from .telemetry import FleetView
from .worker import _WORKER_ENV, build_solver, run_job

__all__ = ["FarmReport", "SimulationFarm", "BACKENDS"]

BACKENDS = ("process", "batched", "serial")


@dataclass
class FarmReport:
    """Aggregate outcome of one farm submission."""

    results: list[JobResult]
    backend: str
    workers: int
    wall_seconds: float
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def completed(self) -> list[JobResult]:
        """Jobs that ran their full step budget."""
        return [r for r in self.results if r.ok]

    @property
    def failed(self) -> list[JobResult]:
        """Jobs that exhausted retries or degradations."""
        return [r for r in self.results if not r.ok]

    @property
    def total_steps(self) -> int:
        """Simulation steps completed across all jobs."""
        return sum(r.steps_done for r in self.results)

    @property
    def jobs_per_second(self) -> float:
        """Completed jobs per wall-clock second of the submission."""
        return len(self.completed) / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def steps_per_second(self) -> float:
        """Simulation steps per wall-clock second of the submission."""
        return self.total_steps / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> dict:
        """Plain-JSON representation of the report."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "jobs": len(self.results),
            "completed": len(self.completed),
            "failed": len(self.failed),
            "total_steps": self.total_steps,
            "jobs_per_second": self.jobs_per_second,
            "steps_per_second": self.steps_per_second,
            "results": [r.to_dict() for r in self.results],
            "metrics": self.metrics.to_dict(),
        }


def _process_worker_entry(
    spec_dict: dict,
    checkpoint_dir: str | None,
    attempt: int,
    out_queue,
    trace: bool = False,
    heartbeat_seconds: float = 0.5,
) -> None:
    """Worker-process main: run one job, streaming events + the result back.

    Queue protocol: tagged tuples ``("event", job_id, attempt, event_dict)``
    for in-flight telemetry and exactly one terminal
    ``("result", job_id, attempt, result_dict)``.
    """
    os.environ[_WORKER_ENV] = "1"
    m = MetricsRegistry()
    set_metrics(m)  # the worker's whole profile lands in one shippable registry
    set_tracer(Tracer(enabled=trace))  # private per-process tracer, shipped in the result
    spec = JobSpec.from_dict(spec_dict)

    def on_event(event: dict) -> None:
        out_queue.put(("event", spec.job_id, attempt, event))

    try:
        result = run_job(
            spec,
            checkpoint_dir,
            metrics=m,
            attempt=attempt,
            on_event=on_event,
            heartbeat_seconds=heartbeat_seconds,
            attach_trace=True,
        )
    except BaseException as exc:  # harness-level error: report, don't hang the farm
        result = JobResult(
            job_id=spec.job_id,
            status="failed",
            retries=attempt,
            error=f"{type(exc).__name__}: {exc}",
            metrics=m.to_dict(),
        )
    out_queue.put(("result", spec.job_id, attempt, result.to_dict()))


class SimulationFarm:
    """Execute many simulation jobs concurrently, tolerating worker faults.

    Parameters
    ----------
    workers:
        Concurrent job slots (default: CPU count, capped at 8).
    backend:
        ``"process"``, ``"batched"`` or ``"serial"`` (see module docstring).
    checkpoint_dir:
        Directory for job checkpoints.  Defaults to a temporary directory
        that lives for the duration of one :meth:`run` call — long enough
        for crash-retry resume, cleaned up afterwards.
    metrics:
        Farm-level registry all per-worker profiles are merged into.
    poll_seconds:
        Parent supervision cadence of the process backend.
    batch_max_wait:
        ``max_wait`` of the batched backend's inference service.
    on_event:
        Optional callback receiving every worker telemetry event (plain
        dict) as it arrives; the farm's own :attr:`fleet` view is always
        updated regardless.  May be called from supervision or worker
        threads — must be thread-safe.
    trace:
        Enable structured tracing: workers run with an enabled
        :class:`repro.trace.Tracer` and the farm merges their spans,
        events and histograms into :attr:`tracer`.
    heartbeat_seconds:
        Minimum spacing of per-job ``heartbeat`` progress events.
    """

    def __init__(
        self,
        workers: int | None = None,
        backend: str = "process",
        checkpoint_dir: str | Path | None = None,
        metrics: MetricsRegistry | None = None,
        poll_seconds: float = 0.02,
        batch_max_wait: float = 0.05,
        on_event=None,
        trace: bool = False,
        heartbeat_seconds: float = 0.5,
    ):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        self.workers = workers if workers is not None else min(8, os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.backend = backend
        self.checkpoint_dir = checkpoint_dir
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.poll_seconds = poll_seconds
        self.batch_max_wait = batch_max_wait
        self.on_event = on_event
        self.trace = trace
        self.heartbeat_seconds = heartbeat_seconds
        #: live per-job telemetry folded from worker event streams
        self.fleet = FleetView()
        #: farm-level tracer; workers' traces merge here when ``trace=True``
        self.tracer = Tracer(enabled=trace)

    def _dispatch_event(self, event: dict) -> None:
        """Fold one worker event into the fleet and the user callback."""
        self.fleet.observe(event)
        if self.on_event is not None:
            self.on_event(event)

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[JobSpec]) -> FarmReport:
        """Run all jobs to a terminal state and return the merged report."""
        jobs = list(jobs)
        ids = [j.job_id for j in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("job_ids within one submission must be unique")
        self.fleet.expect(ids, {j.job_id: j.steps for j in jobs})
        t0 = time.perf_counter()
        tmp: tempfile.TemporaryDirectory | None = None
        ckpt_dir = self.checkpoint_dir
        if ckpt_dir is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-farm-")
            ckpt_dir = tmp.name
        try:
            runner = {
                "process": self._run_process,
                "batched": self._run_batched,
                "serial": self._run_serial,
            }[self.backend]
            results = runner(jobs, str(ckpt_dir))
        finally:
            if tmp is not None:
                tmp.cleanup()
        wall = time.perf_counter() - t0
        for r in results:
            self.metrics.merge(r.metrics)
            if r.trace:
                # process-backend workers ship their private tracer back;
                # serial/batched workers already wrote into self.tracer
                self.tracer.merge(r.trace)
        self.metrics.inc("farm/jobs", len(results))
        self.metrics.inc("farm/jobs_completed", sum(1 for r in results if r.ok))
        self.metrics.inc("farm/jobs_failed", sum(1 for r in results if not r.ok))
        order = {job_id: i for i, job_id in enumerate(ids)}
        results.sort(key=lambda r: order[r.job_id])
        return FarmReport(
            results=results,
            backend=self.backend,
            workers=self.workers,
            wall_seconds=wall,
            metrics=self.metrics,
        )

    # ------------------------------------------------------------------
    def _run_serial(self, jobs: list[JobSpec], ckpt_dir: str) -> list[JobResult]:
        previous = set_tracer(self.tracer)
        try:
            return [
                run_job(
                    spec,
                    ckpt_dir,
                    metrics=MetricsRegistry(),
                    on_event=self._dispatch_event,
                    heartbeat_seconds=self.heartbeat_seconds,
                )
                for spec in jobs
            ]
        finally:
            set_tracer(previous)

    # ------------------------------------------------------------------
    def _run_process(self, jobs: list[JobSpec], ckpt_dir: str) -> list[JobResult]:
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else methods[0])
        out_queue: mp.Queue = ctx.Queue()
        pending: deque[tuple[JobSpec, int]] = deque((spec, 0) for spec in jobs)
        running: dict[str, tuple[mp.Process, JobSpec, int, float]] = {}
        results: dict[str, JobResult] = {}

        def reap(job_id: str, spec: JobSpec, attempt: int, reason: str) -> None:
            """Handle a worker that died or overran without reporting."""
            self.metrics.inc(f"farm/{reason}")
            if attempt < spec.max_retries:
                self.metrics.inc("farm/retries")
                pending.append((spec, attempt + 1))
            else:
                results[job_id] = JobResult(
                    job_id=job_id,
                    status="failed",
                    retries=attempt,
                    error=f"worker {reason} after {attempt + 1} attempt(s)",
                )

        def drain(block_seconds: float) -> None:
            """Dispatch queued worker messages: events to the fleet, results in."""
            block = block_seconds
            while True:
                try:
                    tag, job_id, attempt, payload = out_queue.get(timeout=block)
                except queue_mod.Empty:
                    return
                block = 0.0  # only the first get blocks
                if tag == "event":
                    self._dispatch_event(payload)
                    continue
                result_dict = payload
                entry = running.get(job_id)
                if entry is not None and entry[2] == attempt:
                    proc = entry[0]
                    # bounded join: the result is already in hand, so a
                    # worker whose queue feeder hangs must not stall the
                    # supervision loop (and every other job's timeout)
                    proc.join(1.0)
                    if proc.is_alive():
                        self.metrics.inc("farm/lingering_workers")
                        proc.terminate()
                        proc.join(5.0)
                        if proc.is_alive():  # pragma: no cover - stubborn worker
                            proc.kill()
                            proc.join(5.0)
                    proc.close()
                    del running[job_id]
                    results[job_id] = JobResult.from_dict(result_dict)
                # else: stale result of a superseded attempt — drop it

        while pending or running:
            while pending and len(running) < self.workers:
                spec, attempt = pending.popleft()
                proc = ctx.Process(
                    target=_process_worker_entry,
                    args=(
                        spec.to_dict(),
                        ckpt_dir,
                        attempt,
                        out_queue,
                        self.trace,
                        self.heartbeat_seconds,
                    ),
                    daemon=True,
                )
                proc.start()
                deadline = (
                    time.monotonic() + spec.timeout_seconds
                    if spec.timeout_seconds is not None
                    else float("inf")
                )
                running[spec.job_id] = (proc, spec, attempt, deadline)

            drain(self.poll_seconds)

            now = time.monotonic()
            for job_id, (proc, spec, attempt, deadline) in list(running.items()):
                if job_id not in running:
                    continue  # completed during a grace drain below
                if not proc.is_alive():
                    # the exit may have raced its own result through the
                    # queue: give the pipe a moment before declaring death
                    grace = time.monotonic() + 0.5
                    while job_id in running and time.monotonic() < grace:
                        drain(0.02)
                    if job_id not in running:
                        continue
                    proc.join()
                    proc.close()
                    del running[job_id]
                    reap(job_id, spec, attempt, "worker_deaths")
                elif now >= deadline:
                    # the worker may have finished right at the deadline
                    # with its result still in the pipe: grace-drain before
                    # declaring a timeout, exactly like the death path
                    grace = time.monotonic() + 0.5
                    while job_id in running and time.monotonic() < grace:
                        drain(0.02)
                    if job_id not in running:
                        continue
                    proc.terminate()
                    proc.join(5.0)
                    if proc.is_alive():  # pragma: no cover - stubborn worker
                        proc.kill()
                        proc.join(5.0)
                    proc.close()
                    del running[job_id]
                    reap(job_id, spec, attempt, "timeouts")
        out_queue.close()
        return list(results.values())

    # ------------------------------------------------------------------
    def _run_batched(self, jobs: list[JobSpec], ckpt_dir: str) -> list[JobResult]:
        from repro.models import NNProjectionSolver, tompson_arch

        from .batching import BatchedInferenceService, BatchingSolverProxy

        nn_jobs = [j for j in jobs if j.solver == "nn"]
        service: BatchedInferenceService | None = None
        if nn_jobs:
            # the shared model: seeded by the first NN job so a single-job
            # batched farm matches its serial counterpart exactly
            first = nn_jobs[0]
            shared = build_solver(first, "nn", self.metrics)
            assert isinstance(shared, NNProjectionSolver)
            service = BatchedInferenceService(
                shared, max_wait=self.batch_max_wait, metrics=self.metrics
            )

        registered: dict[str, bool] = {}

        def leave_service(spec: JobSpec) -> None:
            if service is not None and registered.get(spec.job_id):
                registered[spec.job_id] = False
                service.unregister()

        def solver_factory(spec: JobSpec, kind: str, metrics: MetricsRegistry):
            if kind == "nn" and service is not None:
                return BatchingSolverProxy(service)
            leave_service(spec)  # degraded away from NN: stop batching on this job
            return build_solver(spec, kind, metrics)

        results: list[JobResult | None] = [None] * len(jobs)
        sem = threading.Semaphore(self.workers)

        def runner(i: int, spec: JobSpec) -> None:
            with sem:
                # register only once actually running, so queued jobs
                # don't make live batches wait for them
                if service is not None and spec.solver == "nn":
                    registered[spec.job_id] = True
                    service.register()
                m = MetricsRegistry()
                try:
                    results[i] = run_job(
                        spec,
                        ckpt_dir,
                        metrics=m,
                        solver_factory=solver_factory,
                        on_event=self._dispatch_event,
                        heartbeat_seconds=self.heartbeat_seconds,
                    )
                except BaseException as exc:
                    results[i] = JobResult(
                        job_id=spec.job_id,
                        status="failed",
                        error=f"{type(exc).__name__}: {exc}",
                        metrics=m.to_dict(),
                    )
                finally:
                    leave_service(spec)

        threads = [
            threading.Thread(target=runner, args=(i, spec), daemon=True)
            for i, spec in enumerate(jobs)
        ]
        # job threads share the farm tracer via the process default; the
        # tracer's per-thread buffers keep concurrent spans lock-free
        previous = set_tracer(self.tracer)
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            set_tracer(previous)
        return [r for r in results if r is not None]
