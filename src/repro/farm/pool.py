"""The simulation farm: concurrent job execution with fault tolerance.

:class:`SimulationFarm` runs a list of :class:`~repro.farm.jobs.JobSpec`
through one of three backends:

``process`` (default)
    One OS process per running job, up to ``workers`` slots.  The parent
    monitors every worker: a result on the queue completes the job; a dead
    process without a result (crash, OOM kill) or a per-job timeout gets
    the job requeued up to ``spec.max_retries`` times, resuming from its
    latest checkpoint.  Worker registries are shipped back inside each
    :class:`~repro.farm.jobs.JobResult` and merged into the farm profile.

``batched``
    One thread per job inside this process, NN jobs sharing one
    :class:`~repro.farm.batching.BatchedInferenceService` so concurrent
    pressure projections run as stacked CNN forward passes.

``serial``
    Jobs run inline one after another — the baseline the farm's throughput
    is measured against (``repro bench``, ``BENCH_pr2.json``).

In-run failures (NN raising, divergence, injected faults) never reach the
pool: :func:`~repro.farm.worker.run_job` degrades those to exact PCG
internally.  The pool only handles *hard* faults — the ones a single
process cannot survive.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.metrics import MetricsRegistry, set_metrics
from repro.trace import Tracer, set_tracer

from .checkpoint import sweep_orphans
from .jobs import JobResult, JobSpec
from .telemetry import FleetView
from .worker import _WORKER_ENV, build_solver, run_job

__all__ = ["FarmReport", "SimulationFarm", "Pool", "BACKENDS"]

BACKENDS = ("process", "batched", "serial")


@dataclass
class FarmReport:
    """Aggregate outcome of one farm submission."""

    results: list[JobResult]
    backend: str
    workers: int
    wall_seconds: float
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def completed(self) -> list[JobResult]:
        """Jobs that ran their full step budget."""
        return [r for r in self.results if r.ok]

    @property
    def failed(self) -> list[JobResult]:
        """Jobs that exhausted retries or degradations."""
        return [r for r in self.results if not r.ok]

    @property
    def total_steps(self) -> int:
        """Simulation steps completed across all jobs."""
        return sum(r.steps_done for r in self.results)

    @property
    def jobs_per_second(self) -> float:
        """Completed jobs per wall-clock second of the submission."""
        return len(self.completed) / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def steps_per_second(self) -> float:
        """Simulation steps per wall-clock second of the submission."""
        return self.total_steps / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> dict:
        """Plain-JSON representation of the report."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "jobs": len(self.results),
            "completed": len(self.completed),
            "failed": len(self.failed),
            "total_steps": self.total_steps,
            "jobs_per_second": self.jobs_per_second,
            "steps_per_second": self.steps_per_second,
            "results": [r.to_dict() for r in self.results],
            "metrics": self.metrics.to_dict(),
        }


def _process_worker_entry(
    spec_dict: dict,
    checkpoint_dir: str | None,
    attempt: int,
    out_queue,
    trace: bool = False,
    heartbeat_seconds: float = 0.5,
) -> None:
    """Worker-process main: run one job, streaming events + the result back.

    Queue protocol: tagged tuples ``("event", job_id, attempt, event_dict)``
    for in-flight telemetry and exactly one terminal
    ``("result", job_id, attempt, result_dict)``.
    """
    os.environ[_WORKER_ENV] = "1"
    m = MetricsRegistry()
    set_metrics(m)  # the worker's whole profile lands in one shippable registry
    set_tracer(Tracer(enabled=trace))  # private per-process tracer, shipped in the result
    spec = JobSpec.from_dict(spec_dict)

    def on_event(event: dict) -> None:
        out_queue.put(("event", spec.job_id, attempt, event))

    try:
        result = run_job(
            spec,
            checkpoint_dir,
            metrics=m,
            attempt=attempt,
            on_event=on_event,
            heartbeat_seconds=heartbeat_seconds,
            attach_trace=True,
        )
    except BaseException as exc:  # harness-level error: report, don't hang the farm
        result = JobResult(
            job_id=spec.job_id,
            status="failed",
            retries=attempt,
            error=f"{type(exc).__name__}: {exc}",
            metrics=m.to_dict(),
        )
    out_queue.put(("result", spec.job_id, attempt, result.to_dict()))


class SimulationFarm:
    """Execute many simulation jobs concurrently, tolerating worker faults.

    Parameters
    ----------
    workers:
        Concurrent job slots (default: CPU count, capped at 8).
    backend:
        ``"process"``, ``"batched"`` or ``"serial"`` (see module docstring).
    checkpoint_dir:
        Directory for job checkpoints.  Defaults to a temporary directory
        that lives for the duration of one :meth:`run` call — long enough
        for crash-retry resume, cleaned up afterwards.
    metrics:
        Farm-level registry all per-worker profiles are merged into.
    poll_seconds:
        Parent supervision cadence of the process backend.
    batch_max_wait:
        ``max_wait`` of the batched backend's inference service.
    on_event:
        Optional callback receiving every worker telemetry event (plain
        dict) as it arrives; the farm's own :attr:`fleet` view is always
        updated regardless.  May be called from supervision or worker
        threads — must be thread-safe.
    trace:
        Enable structured tracing: workers run with an enabled
        :class:`repro.trace.Tracer` and the farm merges their spans,
        events and histograms into :attr:`tracer`.
    heartbeat_seconds:
        Minimum spacing of per-job ``heartbeat`` progress events.
    """

    def __init__(
        self,
        workers: int | None = None,
        backend: str = "process",
        checkpoint_dir: str | Path | None = None,
        metrics: MetricsRegistry | None = None,
        poll_seconds: float = 0.02,
        batch_max_wait: float = 0.05,
        on_event=None,
        trace: bool = False,
        heartbeat_seconds: float = 0.5,
    ):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        self.workers = workers if workers is not None else min(8, os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.backend = backend
        self.checkpoint_dir = checkpoint_dir
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.poll_seconds = poll_seconds
        self.batch_max_wait = batch_max_wait
        self.on_event = on_event
        self.trace = trace
        self.heartbeat_seconds = heartbeat_seconds
        #: live per-job telemetry folded from worker event streams
        self.fleet = FleetView()
        #: farm-level tracer; workers' traces merge here when ``trace=True``
        self.tracer = Tracer(enabled=trace)

    def _dispatch_event(self, event: dict) -> None:
        """Fold one worker event into the fleet and the user callback."""
        self.fleet.observe(event)
        if self.on_event is not None:
            self.on_event(event)

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[JobSpec]) -> FarmReport:
        """Run all jobs to a terminal state and return the merged report."""
        jobs = list(jobs)
        ids = [j.job_id for j in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("job_ids within one submission must be unique")
        self.fleet.expect(ids, {j.job_id: j.steps for j in jobs})
        t0 = time.perf_counter()
        tmp: tempfile.TemporaryDirectory | None = None
        ckpt_dir = self.checkpoint_dir
        if ckpt_dir is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-farm-")
            ckpt_dir = tmp.name
        # no worker is running yet, so every leftover ``.tmp`` is a torn
        # write from an earlier (killed) run — sweep before dispatching
        swept = sweep_orphans(ckpt_dir)
        if swept:
            self.metrics.inc("farm/orphan_checkpoints_swept", len(swept))
        try:
            runner = {
                "process": self._run_process,
                "batched": self._run_batched,
                "serial": self._run_serial,
            }[self.backend]
            results = runner(jobs, str(ckpt_dir))
        finally:
            if tmp is not None:
                tmp.cleanup()
        wall = time.perf_counter() - t0
        for r in results:
            self.metrics.merge(r.metrics)
            if r.trace:
                # process-backend workers ship their private tracer back;
                # serial/batched workers already wrote into self.tracer
                self.tracer.merge(r.trace)
        self.metrics.inc("farm/jobs", len(results))
        self.metrics.inc("farm/jobs_completed", sum(1 for r in results if r.ok))
        self.metrics.inc("farm/jobs_failed", sum(1 for r in results if not r.ok))
        order = {job_id: i for i, job_id in enumerate(ids)}
        results.sort(key=lambda r: order[r.job_id])
        return FarmReport(
            results=results,
            backend=self.backend,
            workers=self.workers,
            wall_seconds=wall,
            metrics=self.metrics,
        )

    # ------------------------------------------------------------------
    def _run_serial(self, jobs: list[JobSpec], ckpt_dir: str) -> list[JobResult]:
        previous = set_tracer(self.tracer)
        try:
            return [
                run_job(
                    spec,
                    ckpt_dir,
                    metrics=MetricsRegistry(),
                    on_event=self._dispatch_event,
                    heartbeat_seconds=self.heartbeat_seconds,
                )
                for spec in jobs
            ]
        finally:
            set_tracer(previous)

    # ------------------------------------------------------------------
    def _run_process(self, jobs: list[JobSpec], ckpt_dir: str) -> list[JobResult]:
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else methods[0])
        out_queue: mp.Queue = ctx.Queue()
        pending: deque[tuple[JobSpec, int]] = deque((spec, 0) for spec in jobs)
        running: dict[str, tuple[mp.Process, JobSpec, int, float]] = {}
        results: dict[str, JobResult] = {}

        def reap(job_id: str, spec: JobSpec, attempt: int, reason: str) -> None:
            """Handle a worker that died or overran without reporting."""
            self.metrics.inc(f"farm/{reason}")
            if attempt < spec.max_retries:
                self.metrics.inc("farm/retries")
                pending.append((spec, attempt + 1))
            else:
                results[job_id] = JobResult(
                    job_id=job_id,
                    status="failed",
                    retries=attempt,
                    error=f"worker {reason} after {attempt + 1} attempt(s)",
                )

        def drain(block_seconds: float) -> None:
            """Dispatch queued worker messages: events to the fleet, results in."""
            block = block_seconds
            while True:
                try:
                    tag, job_id, attempt, payload = out_queue.get(timeout=block)
                except queue_mod.Empty:
                    return
                block = 0.0  # only the first get blocks
                if tag == "event":
                    self._dispatch_event(payload)
                    continue
                result_dict = payload
                entry = running.get(job_id)
                if entry is not None and entry[2] == attempt:
                    proc = entry[0]
                    # bounded join: the result is already in hand, so a
                    # worker whose queue feeder hangs must not stall the
                    # supervision loop (and every other job's timeout)
                    proc.join(1.0)
                    if proc.is_alive():
                        self.metrics.inc("farm/lingering_workers")
                        proc.terminate()
                        proc.join(5.0)
                        if proc.is_alive():  # pragma: no cover - stubborn worker
                            proc.kill()
                            proc.join(5.0)
                    proc.close()
                    del running[job_id]
                    results[job_id] = JobResult.from_dict(result_dict)
                # else: stale result of a superseded attempt — drop it

        while pending or running:
            while pending and len(running) < self.workers:
                spec, attempt = pending.popleft()
                proc = ctx.Process(
                    target=_process_worker_entry,
                    args=(
                        spec.to_dict(),
                        ckpt_dir,
                        attempt,
                        out_queue,
                        self.trace,
                        self.heartbeat_seconds,
                    ),
                    daemon=True,
                )
                proc.start()
                deadline = (
                    time.monotonic() + spec.timeout_seconds
                    if spec.timeout_seconds is not None
                    else float("inf")
                )
                running[spec.job_id] = (proc, spec, attempt, deadline)

            drain(self.poll_seconds)

            now = time.monotonic()
            for job_id, (proc, spec, attempt, deadline) in list(running.items()):
                if job_id not in running:
                    continue  # completed during a grace drain below
                if not proc.is_alive():
                    # the exit may have raced its own result through the
                    # queue: give the pipe a moment before declaring death
                    grace = time.monotonic() + 0.5
                    while job_id in running and time.monotonic() < grace:
                        drain(0.02)
                    if job_id not in running:
                        continue
                    proc.join()
                    proc.close()
                    del running[job_id]
                    reap(job_id, spec, attempt, "worker_deaths")
                elif now >= deadline:
                    # the worker may have finished right at the deadline
                    # with its result still in the pipe: grace-drain before
                    # declaring a timeout, exactly like the death path
                    grace = time.monotonic() + 0.5
                    while job_id in running and time.monotonic() < grace:
                        drain(0.02)
                    if job_id not in running:
                        continue
                    proc.terminate()
                    proc.join(5.0)
                    if proc.is_alive():  # pragma: no cover - stubborn worker
                        proc.kill()
                        proc.join(5.0)
                    proc.close()
                    del running[job_id]
                    reap(job_id, spec, attempt, "timeouts")
        out_queue.close()
        return list(results.values())

    # ------------------------------------------------------------------
    def _run_batched(self, jobs: list[JobSpec], ckpt_dir: str) -> list[JobResult]:
        from repro.models import NNProjectionSolver, tompson_arch

        from .batching import BatchedInferenceService, BatchingSolverProxy

        nn_jobs = [j for j in jobs if j.solver == "nn"]
        service: BatchedInferenceService | None = None
        if nn_jobs:
            # the shared model: seeded by the first NN job so a single-job
            # batched farm matches its serial counterpart exactly
            first = nn_jobs[0]
            shared = build_solver(first, "nn", self.metrics)
            assert isinstance(shared, NNProjectionSolver)
            service = BatchedInferenceService(
                shared, max_wait=self.batch_max_wait, metrics=self.metrics
            )

        registered: dict[str, bool] = {}

        def leave_service(spec: JobSpec) -> None:
            if service is not None and registered.get(spec.job_id):
                registered[spec.job_id] = False
                service.unregister()

        def solver_factory(spec: JobSpec, kind: str, metrics: MetricsRegistry):
            if kind == "nn" and service is not None:
                return BatchingSolverProxy(service)
            leave_service(spec)  # degraded away from NN: stop batching on this job
            return build_solver(spec, kind, metrics)

        results: list[JobResult | None] = [None] * len(jobs)
        sem = threading.Semaphore(self.workers)

        def runner(i: int, spec: JobSpec) -> None:
            with sem:
                # register only once actually running, so queued jobs
                # don't make live batches wait for them
                if service is not None and spec.solver == "nn":
                    registered[spec.job_id] = True
                    service.register()
                m = MetricsRegistry()
                try:
                    results[i] = run_job(
                        spec,
                        ckpt_dir,
                        metrics=m,
                        solver_factory=solver_factory,
                        on_event=self._dispatch_event,
                        heartbeat_seconds=self.heartbeat_seconds,
                    )
                except BaseException as exc:
                    results[i] = JobResult(
                        job_id=spec.job_id,
                        status="failed",
                        error=f"{type(exc).__name__}: {exc}",
                        metrics=m.to_dict(),
                    )
                finally:
                    leave_service(spec)

        threads = [
            threading.Thread(target=runner, args=(i, spec), daemon=True)
            for i, spec in enumerate(jobs)
        ]
        # job threads share the farm tracer via the process default; the
        # tracer's per-thread buffers keep concurrent spans lock-free
        previous = set_tracer(self.tracer)
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            set_tracer(previous)
        return [r for r in results if r is not None]


# ----------------------------------------------------------------------
# the long-lived pool behind the serve tier
# ----------------------------------------------------------------------
class Pool:
    """A long-lived, *resizable* worker pool executing farm jobs.

    Where :class:`SimulationFarm` is batch-shaped (run one job list, exit),
    a :class:`Pool` stays up for the lifetime of a service: jobs arrive one
    at a time through :meth:`submit` into a priority queue, a fleet of
    worker threads pulls them through :func:`~repro.farm.worker.run_job`,
    and finished :class:`~repro.farm.jobs.JobResult`\\ s are delivered to
    the ``on_result`` callback (from the worker thread that produced them).

    The pool is the autoscaling substrate of :mod:`repro.serve`:

    * :meth:`resize` *grows* by spawning threads immediately and *shrinks*
      by draining — excess workers finish their current job and exit at
      the next job boundary; a busy worker is **never** killed mid-job.
    * :meth:`cancel` removes a queued job without running it, or sets the
      cooperative cancel flag of a running one (honoured by ``run_job`` at
      its next step boundary).
    * in-run failures degrade gracefully inside ``run_job`` exactly as on
      the farm; a harness-level exception becomes a ``failed`` result
      rather than a dead worker.

    All public methods are thread-safe; callbacks run on worker threads
    and must be thread-safe themselves.
    """

    _SENTINEL_PRIORITY = 1 << 30  # wake-up tokens sort after every real job

    def __init__(
        self,
        workers: int = 1,
        checkpoint_dir: str | Path | None = None,
        metrics: MetricsRegistry | None = None,
        on_event=None,
        on_result=None,
        heartbeat_seconds: float = 0.5,
        poll_seconds: float = 0.05,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.checkpoint_dir = str(checkpoint_dir) if checkpoint_dir is not None else None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.on_event = on_event
        self.on_result = on_result
        self.heartbeat_seconds = heartbeat_seconds
        self.poll_seconds = poll_seconds
        if self.checkpoint_dir is not None:
            swept = sweep_orphans(self.checkpoint_dir)
            if swept:
                self.metrics.inc("farm/orphan_checkpoints_swept", len(swept))
        self._queue: queue_mod.PriorityQueue = queue_mod.PriorityQueue()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []
        self._target = 0
        self._excess = 0  # shrink debt: workers asked to exit at the next boundary
        self._seq = 0
        self._queued: dict[str, JobSpec] = {}
        self._queued_at: dict[str, float] = {}
        # per-job lifecycle latencies, derived from the pool's own event
        # stream (submit -> pickup -> terminal); worker-side labeled series
        # ride home inside result.metrics and fold in _deliver's merge
        families = self.metrics.families
        self._queue_wait_hist = families.histogram(
            "farm_queue_wait_seconds",
            help="Submit-to-pickup wait of pool jobs.",
            unit="seconds",
        )
        self._job_run_hist = families.histogram(
            "farm_job_run_seconds",
            help="Worker-side job execution time by terminal status.",
            labels=("status",),
            unit="seconds",
        )
        self._jobs_by_status = families.counter(
            "farm_jobs_total",
            help="Terminal pool jobs by status.",
            labels=("status",),
        )
        self._cancelled_queued: set[str] = set()
        self._running: dict[str, threading.Event] = {}
        self._shutdown = False
        self.resize(workers)

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Target worker count (the last :meth:`resize` value)."""
        with self._lock:
            return self._target

    @property
    def alive(self) -> int:
        """Worker threads currently alive (> target while draining a shrink)."""
        with self._lock:
            return len(self._threads)

    @property
    def busy(self) -> int:
        """Workers currently executing a job."""
        with self._lock:
            return len(self._running)

    @property
    def queue_depth(self) -> int:
        """Jobs admitted but not yet picked up by a worker."""
        with self._lock:
            return len(self._queued)

    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec, priority: int = 1) -> None:
        """Enqueue one job; lower ``priority`` numbers run first."""
        if priority >= self._SENTINEL_PRIORITY:
            raise ValueError(f"priority must be < {self._SENTINEL_PRIORITY}")
        with self._lock:
            if self._shutdown:
                raise RuntimeError("pool is shut down")
            if spec.job_id in self._queued or spec.job_id in self._running:
                raise ValueError(f"job_id {spec.job_id!r} is already in the pool")
            self._seq += 1
            self._queued[spec.job_id] = spec
            self._queued_at[spec.job_id] = time.monotonic()
            self._queue.put((priority, self._seq, spec))
        self.metrics.inc("farm/pool/submitted")

    def cancel(self, job_id: str) -> str:
        """Cancel a job: ``"queued"`` | ``"running"`` | ``"unknown"``.

        Queued jobs are dequeued without running (a ``cancelled`` result is
        still delivered); running jobs get their cooperative cancel flag
        set and stop at the next step boundary.
        """
        with self._lock:
            if job_id in self._queued and job_id not in self._cancelled_queued:
                self._cancelled_queued.add(job_id)
                return "queued"
            flag = self._running.get(job_id)
            if flag is not None:
                flag.set()
                return "running"
        return "unknown"

    # ------------------------------------------------------------------
    def resize(self, workers: int) -> None:
        """Set the target worker count; grow now, shrink by draining."""
        if workers < 0:
            raise ValueError("workers must be >= 0")
        spawn = 0
        with self._lock:
            if self._shutdown:
                raise RuntimeError("pool is shut down")
            self._target = workers
            deficit = workers - (len(self._threads) - self._excess)
            if deficit > 0:
                # pay down shrink debt first, then spawn the remainder
                repay = min(self._excess, deficit)
                self._excess -= repay
                spawn = deficit - repay
                for _ in range(spawn):
                    t = threading.Thread(target=self._worker_loop, daemon=True)
                    self._threads.append(t)
            elif deficit < 0:
                self._excess += -deficit
                self.metrics.inc("farm/pool/shrink_requests", -deficit)
        # start outside the lock: a worker's first action is taking it
        if spawn:
            with self._lock:
                to_start = [t for t in self._threads if not t.is_alive() and not t.ident]
            for t in to_start:
                t.start()

    def drain(self, timeout: float | None = None) -> bool:
        """Block until no job is queued or running (True) or timeout (False)."""
        deadline = time.monotonic() + timeout if timeout is not None else None
        with self._idle:
            while self._queued or self._running:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining if remaining is not None else 1.0)
        return True

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> bool:
        """Stop the pool.  ``drain=True`` finishes queued + running jobs
        first; ``drain=False`` cancels queued jobs and asks running ones to
        stop at their next step boundary.  Returns False on timeout."""
        ok = True
        if drain:
            ok = self.drain(timeout)
        with self._lock:
            self._shutdown = True
            if not drain:
                for job_id in list(self._queued):
                    self._cancelled_queued.add(job_id)
                for flag in self._running.values():
                    flag.set()
            self._target = 0
            self._excess = len(self._threads)
            threads = list(self._threads)
        for t in threads:
            t.join(timeout=30.0)
            if t.is_alive():  # pragma: no cover - wedged worker
                ok = False
        return ok

    # ------------------------------------------------------------------
    def _deliver(self, result: JobResult) -> None:
        self.metrics.merge(result.metrics)
        self.metrics.inc("farm/jobs")
        self.metrics.inc(
            "farm/jobs_completed" if result.ok else
            ("farm/pool/cancelled" if result.status == "cancelled" else "farm/jobs_failed")
        )
        self._jobs_by_status.inc(status=result.status)
        if self.on_result is not None:
            self.on_result(result)

    def _worker_loop(self) -> None:
        me = threading.current_thread()
        while True:
            with self._lock:
                if self._excess > 0:
                    self._excess -= 1
                    self._threads.remove(me)
                    self.metrics.inc("farm/pool/drained_exits")
                    return
            try:
                _prio, _seq, spec = self._queue.get(timeout=self.poll_seconds)
            except queue_mod.Empty:
                continue
            with self._lock:
                self._queued.pop(spec.job_id, None)
                queued_at = self._queued_at.pop(spec.job_id, None)
                if spec.job_id in self._cancelled_queued:
                    self._cancelled_queued.discard(spec.job_id)
                    cancelled: JobResult | None = JobResult(
                        job_id=spec.job_id, status="cancelled"
                    )
                else:
                    cancelled = None
                    flag = threading.Event()
                    self._running[spec.job_id] = flag
            if cancelled is not None:
                self._deliver(cancelled)
                with self._idle:
                    self._idle.notify_all()
                continue
            if queued_at is not None:
                self._queue_wait_hist.observe(time.monotonic() - queued_at)
            m = MetricsRegistry()
            run_started = time.perf_counter()
            try:
                result = run_job(
                    spec,
                    self.checkpoint_dir,
                    metrics=m,
                    on_event=self.on_event,
                    heartbeat_seconds=self.heartbeat_seconds,
                    cancel=flag,
                )
            except BaseException as exc:  # harness error: report, keep the worker
                result = JobResult(
                    job_id=spec.job_id,
                    status="failed",
                    error=f"{type(exc).__name__}: {exc}",
                    metrics=m.to_dict(),
                )
            self._job_run_hist.observe(
                time.perf_counter() - run_started, status=result.status
            )
            with self._idle:
                self._running.pop(spec.job_id, None)
                self._idle.notify_all()
            self._deliver(result)
