"""Job execution: one :class:`JobSpec` in, one :class:`JobResult` out.

:func:`run_job` is the whole lifecycle of a simulation job and is backend
agnostic — the farm calls it from a worker process, a thread or inline:

1. build the input problem and the requested solver;
2. resume from the job's checkpoint if one exists (a previous attempt was
   preempted or crashed after saving);
3. step the simulation, checkpointing every ``spec.checkpoint_every`` steps
   and watching the DivNorm quality guard;
4. on *any* in-run failure — the NN solver raising, the run diverging past
   ``spec.divnorm_limit``, an injected fault — degrade gracefully: switch to
   the exact PCG solver and resume from the latest checkpoint (or restart
   from step 0 if none), mirroring the paper's "restart with the exact
   method" runtime policy (Algorithm 2's fallback);
5. report a structured :class:`JobResult` carrying the worker's private
   metrics snapshot for the farm to merge.

Hard faults (``fail_mode="crash"``, real segfaults, OOM kills) end the
process without a result; the pool reaps the corpse and retries the job,
which then resumes from the checkpoint in step 2.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.data import InputProblem
from repro.fluid import (
    FluidSimulator,
    JacobiSolver,
    MultigridSolver,
    PCGSolver,
    SpectralSolver,
)
from repro.metrics import MetricsRegistry

from .checkpoint import load_checkpoint, save_checkpoint
from .jobs import JobResult, JobSpec

__all__ = [
    "InjectedWorkerFailure",
    "SimulationDiverged",
    "build_solver",
    "run_job",
]

#: environment marker set by the process-pool entry so ``fail_mode="crash"``
#: only hard-exits inside an expendable worker process
_WORKER_ENV = "REPRO_FARM_WORKER"


class InjectedWorkerFailure(RuntimeError):
    """Artificial failure raised by ``fail_at_step`` fault injection."""


class SimulationDiverged(RuntimeError):
    """The run violated its quality requirement (DivNorm guard)."""


def build_solver(spec: JobSpec, kind: str, metrics: MetricsRegistry):
    """Construct the pressure solver ``kind`` for a job.

    ``kind`` is usually ``spec.solver`` but the degradation path passes
    ``"pcg"`` explicitly; ``spec.solver_params`` only apply to the solver
    the spec asked for, so the fallback PCG always uses its exact defaults.
    """
    params = dict(spec.solver_params) if kind == spec.solver else {}
    if kind == "pcg":
        return PCGSolver(metrics=metrics, **params)
    if kind == "jacobi-pcg":
        return PCGSolver(preconditioner="jacobi", metrics=metrics, **params)
    if kind == "jacobi":
        return JacobiSolver(metrics=metrics, **params)
    if kind == "multigrid":
        return MultigridSolver(metrics=metrics, **params)
    if kind == "spectral":
        return SpectralSolver(metrics=metrics, **params)
    if kind == "nn":
        from repro.models import NNProjectionSolver

        passes = params.pop("passes", 2)
        if spec.model_dir is not None:
            from repro.io import load_model

            model = load_model(spec.model_dir).network
        else:
            from repro.models import tompson_arch

            channels = params.pop("channels", 4)
            model = tompson_arch(channels).build(rng=spec.seed)
        return NNProjectionSolver(model, passes=passes, metrics=metrics, **params)
    raise ValueError(f"unknown solver kind {kind!r}")


def _checkpoint_path(spec: JobSpec, checkpoint_dir: str | Path | None) -> Path | None:
    if checkpoint_dir is None:
        return None
    return Path(checkpoint_dir) / f"{spec.job_id}.ckpt.npz"


def run_job(
    spec: JobSpec,
    checkpoint_dir: str | Path | None = None,
    metrics: MetricsRegistry | None = None,
    attempt: int = 0,
    solver_factory=None,
) -> JobResult:
    """Execute one job to completion (or bounded failure) and report it.

    ``solver_factory(spec, kind, metrics)``, when given, replaces
    :func:`build_solver` — the batched backend uses it to hand NN jobs a
    proxy that routes solves through the shared inference service.
    """
    m = metrics if metrics is not None else MetricsRegistry()
    factory = solver_factory if solver_factory is not None else build_solver
    ckpt = _checkpoint_path(spec, checkpoint_dir)
    t0 = time.perf_counter()

    def make_sim(kind: str) -> FluidSimulator:
        grid, source = InputProblem(spec.grid_size, spec.seed).materialize()
        return FluidSimulator(grid, factory(spec, kind, m), source, metrics=m)

    solver_kind = spec.solver
    sim = make_sim(solver_kind)
    resumed_from: int | None = None
    if ckpt is not None and ckpt.exists():
        sim.load_state(load_checkpoint(ckpt))
        resumed_from = sim.current_step
        m.inc("farm/resumes")

    degraded = False
    error: str | None = None
    status = "completed"
    inject_at = spec.fail_at_step if attempt == 0 else None
    while sim.current_step < spec.steps:
        try:
            if inject_at is not None and sim.current_step == inject_at:
                inject_at = None
                if spec.fail_mode == "crash" and os.environ.get(_WORKER_ENV):
                    os._exit(17)  # hard worker death: no result, no cleanup
                raise InjectedWorkerFailure(
                    f"injected failure at step {sim.current_step}"
                )
            rec = sim.step()
            if not np.isfinite(rec.divnorm) or (
                spec.divnorm_limit is not None and rec.divnorm > spec.divnorm_limit
            ):
                raise SimulationDiverged(
                    f"DivNorm {rec.divnorm:.3g} at step {rec.step} "
                    f"exceeds limit {spec.divnorm_limit}"
                )
            if (
                ckpt is not None
                and spec.checkpoint_every > 0
                and sim.current_step % spec.checkpoint_every == 0
            ):
                save_checkpoint(sim, ckpt)
                m.inc("farm/checkpoints")
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            if degraded:
                status, error = "failed", f"{type(exc).__name__}: {exc}"
                m.inc("farm/job_failures")
                break
            # graceful degradation: the exact method from the last good state
            degraded = True
            solver_kind = "pcg"
            m.inc("farm/degradations")
            sim = make_sim(solver_kind)
            if ckpt is not None and ckpt.exists():
                sim.load_state(load_checkpoint(ckpt))
                resumed_from = sim.current_step
                m.inc("farm/resumes")

    divnorms = sim.full_divnorm_history
    return JobResult(
        job_id=spec.job_id,
        status=status,
        steps_done=sim.current_step,
        solver_used=solver_kind,
        degraded=degraded,
        resumed_from=resumed_from,
        retries=attempt,
        wall_seconds=time.perf_counter() - t0,
        solve_seconds=sum(r.projection.solve_seconds for r in sim.records),
        final_divnorm=float(divnorms[-1]) if divnorms.size else float("nan"),
        cum_divnorm=float(divnorms.sum()),
        error=error,
        metrics=m.to_dict(),
    )
