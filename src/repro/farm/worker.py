"""Job execution: one :class:`JobSpec` in, one :class:`JobResult` out.

:func:`run_job` is the whole lifecycle of a simulation job and is backend
agnostic — the farm calls it from a worker process, a thread or inline:

1. build the input problem and the requested solver;
2. resume from the job's checkpoint if one exists (a previous attempt was
   preempted or crashed after saving);
3. step the simulation, checkpointing every ``spec.checkpoint_every`` steps
   and watching the DivNorm quality guard;
4. on *any* in-run failure — the NN solver raising, the run diverging past
   ``spec.divnorm_limit``, an injected fault — degrade gracefully: switch to
   the exact PCG solver and resume from the latest checkpoint (or restart
   from step 0 if none), mirroring the paper's "restart with the exact
   method" runtime policy (Algorithm 2's fallback);
5. report a structured :class:`JobResult` carrying the worker's private
   metrics snapshot for the farm to merge.

Hard faults (``fail_mode="crash"``, real segfaults, OOM kills) end the
process without a result; the pool reaps the corpse and retries the job,
which then resumes from the checkpoint in step 2.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.fluid import (
    FluidSimulator,
    JacobiSolver,
    MultigridSolver,
    PCGSolver,
    SimulationConfig,
    SpectralSolver,
    build_scenario,
    parse_scenario,
)
from repro.metrics import MetricsRegistry
from repro.trace import get_tracer

from .checkpoint import load_checkpoint, save_checkpoint, sweep_orphans
from .jobs import JobResult, JobSpec

__all__ = [
    "InjectedWorkerFailure",
    "SimulationDiverged",
    "build_solver",
    "run_job",
]

#: environment marker set by the process-pool entry so ``fail_mode="crash"``
#: only hard-exits inside an expendable worker process
_WORKER_ENV = "REPRO_FARM_WORKER"


class InjectedWorkerFailure(RuntimeError):
    """Artificial failure raised by ``fail_at_step`` fault injection."""


class SimulationDiverged(RuntimeError):
    """The run violated its quality requirement (DivNorm guard)."""


def build_solver(spec: JobSpec, kind: str, metrics: MetricsRegistry):
    """Construct the pressure solver ``kind`` for a job.

    ``kind`` is usually ``spec.solver`` but the degradation path passes
    ``"pcg"`` explicitly; ``spec.solver_params`` only apply to the solver
    the spec asked for, so the fallback PCG always uses its exact defaults.
    """
    params = dict(spec.solver_params) if kind == spec.solver else {}
    if kind == "pcg":
        return PCGSolver(metrics=metrics, **params)
    if kind == "jacobi-pcg":
        return PCGSolver(preconditioner="jacobi", metrics=metrics, **params)
    if kind == "jacobi":
        return JacobiSolver(metrics=metrics, **params)
    if kind == "multigrid":
        return MultigridSolver(metrics=metrics, **params)
    if kind == "spectral":
        return SpectralSolver(metrics=metrics, **params)
    if kind == "nn":
        from repro.models import NNProjectionSolver

        passes = params.pop("passes", 2)
        if spec.model_dir is not None:
            from repro.io import load_model

            model = load_model(spec.model_dir).network
        else:
            from repro.models import tompson_arch

            channels = params.pop("channels", 4)
            model = tompson_arch(channels).build(rng=spec.seed)
        return NNProjectionSolver(model, passes=passes, metrics=metrics, **params)
    if kind == "nn-pcg":
        from repro.fluid import NNPCGSolver

        if spec.model_dir is not None:
            from repro.io import load_model

            model = load_model(spec.model_dir).network
        else:
            from repro.models import tompson_arch

            channels = params.pop("channels", 4)
            model = tompson_arch(channels).build(rng=spec.seed)
        return NNPCGSolver(model, metrics=metrics, **params)
    raise ValueError(f"unknown solver kind {kind!r}")


def _checkpoint_path(spec: JobSpec, checkpoint_dir: str | Path | None) -> Path | None:
    if checkpoint_dir is None:
        return None
    return Path(checkpoint_dir) / f"{spec.checkpoint_key}.ckpt.npz"


def run_job(
    spec: JobSpec,
    checkpoint_dir: str | Path | None = None,
    metrics: MetricsRegistry | None = None,
    attempt: int = 0,
    solver_factory=None,
    on_event=None,
    heartbeat_seconds: float = 0.5,
    attach_trace: bool = False,
    cancel=None,
) -> JobResult:
    """Execute one job to completion (or bounded failure) and report it.

    ``solver_factory(spec, kind, metrics)``, when given, replaces
    :func:`build_solver` — the batched backend uses it to hand NN jobs a
    proxy that routes solves through the shared inference service.

    ``on_event(dict)``, when given, receives the job's telemetry stream:
    ``resume`` when picking up a checkpoint, ``job_start``, throttled
    ``heartbeat`` beats (at most one per ``heartbeat_seconds``),
    ``checkpoint``, ``pcg_fallback`` on graceful degradation and a
    terminal ``job_end``.  Events are plain dicts so any
    backend can ship them over its own channel; the same events also land
    in the process tracer (:func:`repro.trace.get_tracer`) when enabled.

    ``attach_trace=True`` ships the process tracer's snapshot inside
    ``JobResult.trace``.  Only the process backend sets it — its workers
    own a private per-process tracer, while the serial/batched backends
    share one farm tracer whose data would be duplicated per job.

    ``cancel``, when given, is a :class:`threading.Event`-like object
    checked between steps: once set, the job stops at the next step
    boundary with ``status="cancelled"`` (the serve tier's cooperative
    cancellation for already-running jobs).
    """
    m = metrics if metrics is not None else MetricsRegistry()
    factory = solver_factory if solver_factory is not None else build_solver
    ckpt = _checkpoint_path(spec, checkpoint_dir)
    t0 = time.perf_counter()
    tr = get_tracer()

    def emit(type_: str, **attrs) -> None:
        step = attrs.get("step")
        tr.event(type_, step=step, job_id=spec.job_id, **{k: v for k, v in attrs.items() if k != "step"})
        if on_event is not None:
            event = {
                "type": type_,
                "job_id": spec.job_id,
                "attempt": attempt,
                "pid": os.getpid(),
                "t": time.time(),
            }
            event.update(attrs)
            on_event(event)

    def make_sim(kind: str) -> FluidSimulator:
        sspec = parse_scenario(spec.scenario).with_defaults(grid=spec.grid_size)
        grid, driver = build_scenario(sspec, rng=spec.seed)
        solver = driver.wrap_solver(factory(spec, kind, m))
        overrides = getattr(driver, "config_overrides", {})
        config = SimulationConfig(**overrides) if overrides else None
        return FluidSimulator(grid, solver, driver, config=config, metrics=m)

    solver_kind = spec.solver
    with tr.span("job", job_id=spec.job_id, attempt=attempt) as job_span:
        sim = make_sim(solver_kind)
        resumed_from: int | None = None
        if ckpt is not None:
            # a previous attempt hard-killed mid-write leaves a torn
            # ``.tmp`` behind; it is never a valid snapshot, so drop it
            # before resuming from the last good checkpoint
            torn = ckpt.with_name(ckpt.name + ".tmp")
            if torn.exists():
                torn.unlink(missing_ok=True)
                m.inc("farm/orphan_checkpoints_swept")
        if ckpt is not None and ckpt.exists():
            sim.load_state(load_checkpoint(ckpt))
            resumed_from = sim.current_step
            m.inc("farm/resumes")
            emit("resume", step=sim.current_step)
        emit(
            "job_start",
            step=sim.current_step,
            solver=solver_kind,
            steps_total=spec.steps,
            grid_size=spec.grid_size,
            resumed_from=resumed_from,
        )

        degraded = False
        error: str | None = None
        status = "completed"
        inject_at = spec.fail_at_step if attempt == 0 else None
        last_beat = time.monotonic()
        while sim.current_step < spec.steps:
            if cancel is not None and cancel.is_set():
                status = "cancelled"
                m.inc("farm/jobs_cancelled")
                break
            try:
                if inject_at is not None and sim.current_step == inject_at:
                    inject_at = None
                    if spec.fail_mode == "crash" and os.environ.get(_WORKER_ENV):
                        os._exit(17)  # hard worker death: no result, no cleanup
                    raise InjectedWorkerFailure(
                        f"injected failure at step {sim.current_step}"
                    )
                rec = sim.step()
                now = time.monotonic()
                if on_event is not None and now - last_beat >= heartbeat_seconds:
                    last_beat = now
                    emit(
                        "heartbeat",
                        step=sim.current_step,
                        steps_total=spec.steps,
                        divnorm=float(rec.divnorm),
                        solver=solver_kind,
                    )
                if not np.isfinite(rec.divnorm) or (
                    spec.divnorm_limit is not None and rec.divnorm > spec.divnorm_limit
                ):
                    raise SimulationDiverged(
                        f"DivNorm {rec.divnorm:.3g} at step {rec.step} "
                        f"exceeds limit {spec.divnorm_limit}"
                    )
                if (
                    ckpt is not None
                    and spec.checkpoint_every > 0
                    and sim.current_step % spec.checkpoint_every == 0
                ):
                    save_checkpoint(sim, ckpt)
                    m.inc("farm/checkpoints")
                    emit("checkpoint", step=sim.current_step)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                if degraded:
                    status, error = "failed", f"{type(exc).__name__}: {exc}"
                    m.inc("farm/job_failures")
                    break
                # graceful degradation: the exact method from the last good state
                degraded = True
                failed_kind = solver_kind
                solver_kind = "pcg"
                m.inc("farm/degradations")
                # labeled by the solver that *failed*, not the fallback target:
                # the fleet-level question is "which solver degrades, where"
                m.families.counter(
                    "farm_pcg_fallbacks_total",
                    help="Graceful degradations to exact PCG by failing solver and scenario.",
                    labels=("solver", "scenario"),
                ).inc(solver=failed_kind, scenario=spec.scenario.split(":", 1)[0])
                emit(
                    "pcg_fallback",
                    step=sim.current_step,
                    reason=f"{type(exc).__name__}: {exc}",
                    solver=solver_kind,
                )
                sim = make_sim(solver_kind)
                if ckpt is not None and ckpt.exists():
                    sim.load_state(load_checkpoint(ckpt))
                    resumed_from = sim.current_step
                    m.inc("farm/resumes")
                    emit("resume", step=sim.current_step)

        if job_span is not None:
            job_span.attrs["status"] = status
            job_span.attrs["steps_done"] = sim.current_step
        emit(
            "job_end",
            step=sim.current_step,
            status=status,
            solver=solver_kind,
            degraded=degraded,
        )

    divnorms = sim.full_divnorm_history
    return JobResult(
        job_id=spec.job_id,
        status=status,
        steps_done=sim.current_step,
        solver_used=solver_kind,
        degraded=degraded,
        resumed_from=resumed_from,
        retries=attempt,
        wall_seconds=time.perf_counter() - t0,
        solve_seconds=sum(r.projection.solve_seconds for r in sim.records),
        final_divnorm=float(divnorms[-1]) if divnorms.size else float("nan"),
        cum_divnorm=float(divnorms.sum()),
        error=error,
        metrics=m.to_dict(),
        trace=tr.to_dict() if (attach_trace and tr.enabled) else {},
    )
