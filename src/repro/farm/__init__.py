"""``repro.farm`` — the concurrent simulation execution engine.

The execution layer above :class:`~repro.fluid.FluidSimulator`: declarative
job specs, a fault-tolerant worker pool with per-job timeout and bounded
retry, mid-run checkpoint/resume, graceful degradation to the exact PCG
solver, and a batched NN inference service that stacks pressure
projections from concurrent same-shape jobs into single CNN forward
passes.  Entry points: build a list of :class:`JobSpec`, hand it to
:class:`SimulationFarm.run`, read the :class:`FarmReport` — or use the
``repro farm`` CLI subcommand.
"""

from .batching import BatchedInferenceService, BatchingSolverProxy
from .checkpoint import load_checkpoint, save_checkpoint, sweep_orphans
from .jobs import JobResult, JobSpec, SOLVER_CHOICES
from .pool import BACKENDS, FarmReport, Pool, SimulationFarm
from .telemetry import FleetView, JobView, LiveRenderer, render_fleet
from .worker import InjectedWorkerFailure, SimulationDiverged, build_solver, run_job

__all__ = [
    "JobSpec",
    "JobResult",
    "SOLVER_CHOICES",
    "SimulationFarm",
    "FarmReport",
    "Pool",
    "BACKENDS",
    "sweep_orphans",
    "run_job",
    "build_solver",
    "InjectedWorkerFailure",
    "SimulationDiverged",
    "BatchedInferenceService",
    "BatchingSolverProxy",
    "save_checkpoint",
    "load_checkpoint",
    "FleetView",
    "JobView",
    "LiveRenderer",
    "render_fleet",
]
