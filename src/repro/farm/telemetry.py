"""Live farm telemetry: fold worker event streams into a fleet view.

Workers emit small plain-dict *events* while they run — ``job_start``,
throttled ``heartbeat`` progress beats, ``checkpoint``, ``resume``,
``pcg_fallback`` degradations and a terminal ``job_end`` — over the same
channel that
carries their results (the process backend's queue, or a direct callback
for the in-process backends).  :class:`FleetView` folds that stream into
one thread-safe table of per-job state, and :func:`render_fleet` formats
it as the text dashboard behind ``repro top``.

Events are deliberately independent of :mod:`repro.trace`: heartbeats flow
even when tracing is disabled, so the live view costs nothing but a dict
per beat.  When tracing *is* enabled the same events also land in the
worker's tracer and ship back inside ``JobResult.trace`` for offline
timeline analysis.
"""

from __future__ import annotations

import shutil
import sys
import threading
import time
from dataclasses import dataclass, field

__all__ = ["JobView", "FleetView", "render_fleet", "LiveRenderer"]

#: display order of job states in the fleet table
_STATE_ORDER = {
    "running": 0,
    "degraded": 1,
    "pending": 2,
    "completed": 3,
    "cancelled": 4,
    "failed": 5,
}

#: states no same-attempt event may leave again (late arrivals are folded
#: into ``updated`` only, never into a resurrected ``running``)
_TERMINAL_STATES = ("completed", "failed", "cancelled")


def _as_int(value, default: int) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        return default


def _as_float(value, default: float) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        return default


@dataclass
class JobView:
    """Last known state of one farm job, as seen through its events."""

    job_id: str
    state: str = "pending"  # pending | running | degraded | completed | failed
    step: int = 0
    steps_total: int = 0
    divnorm: float = float("nan")
    solver: str = ""
    pid: int | None = None
    attempt: int = 0
    updated: float = 0.0  # wall-clock time of the last event

    @property
    def progress(self) -> float:
        """Completed fraction of the step budget (0 when unknown)."""
        return self.step / self.steps_total if self.steps_total else 0.0

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "state": self.state,
            "step": self.step,
            "steps_total": self.steps_total,
            "divnorm": self.divnorm,
            "solver": self.solver,
            "pid": self.pid,
            "attempt": self.attempt,
            "updated": self.updated,
        }


class FleetView:
    """Thread-safe aggregate of per-job telemetry events.

    ``observe`` accepts the plain event dicts workers emit and updates the
    corresponding :class:`JobView`; readers take consistent snapshots with
    :meth:`jobs`.  The pool's supervision thread and any number of renderer
    threads may call in concurrently.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._jobs: dict[str, JobView] = {}
        self._counters: dict[str, int] = {}
        self.events_seen = 0

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a named fleet counter (admission rejects, cache hits, …).

        Counters are free-form so callers outside the farm (the serve tier)
        can surface their own tallies in the fleet header without the view
        needing to know about them up front.
        """
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counters(self) -> dict[str, int]:
        """Snapshot of named fleet counters, sorted by name."""
        with self._lock:
            return dict(sorted(self._counters.items()))

    def expect(self, job_ids: list[str], steps: dict[str, int] | None = None) -> None:
        """Pre-register jobs so the view shows pending work immediately."""
        with self._lock:
            for job_id in job_ids:
                view = self._jobs.setdefault(job_id, JobView(job_id=job_id))
                if steps and job_id in steps:
                    view.steps_total = steps[job_id]

    def observe(self, event: dict) -> None:
        """Fold one worker event into the fleet state (unknown types kept).

        Deliberately crash-proof: events arrive over queues from many
        workers and may be malformed, duplicated or out of order, and a
        telemetry fold must never take the supervision loop down.
        Malformed fields are ignored, ``step`` is monotonic within an
        attempt, and terminal states (``completed``/``failed``/
        ``cancelled``) are sticky — a late ``heartbeat`` or ``job_start``
        of the same attempt cannot resurrect a finished job, while a
        *higher* attempt (a retry) legitimately reopens it.
        """
        job_id = event.get("job_id") if isinstance(event, dict) else None
        if not job_id or not isinstance(job_id, str):
            return
        etype = str(event.get("type", ""))
        now = _as_float(event.get("t"), time.time())
        with self._lock:
            self.events_seen += 1
            view = self._jobs.setdefault(job_id, JobView(job_id=job_id))
            view.updated = max(view.updated, now)
            attempt = _as_int(event.get("attempt"), view.attempt)
            retry = attempt > view.attempt
            if retry:
                view.attempt = attempt
                view.step = 0  # a retry restarts (or re-resumes) the run
            if view.state in _TERMINAL_STATES and not retry:
                return  # sticky: late same-attempt events only refresh `updated`
            if "pid" in event:
                view.pid = event["pid"] if isinstance(event["pid"], int) else view.pid
            if "solver" in event:
                view.solver = str(event["solver"])
            if "steps_total" in event:
                view.steps_total = _as_int(event["steps_total"], view.steps_total)
            if "step" in event:
                # monotonic within one attempt: an out-of-order heartbeat
                # must not walk the progress bar backwards
                view.step = max(view.step, _as_int(event["step"], view.step))
            if "divnorm" in event:
                view.divnorm = _as_float(event["divnorm"], view.divnorm)
            if etype == "job_start":
                view.state = "running"
            elif etype == "pcg_fallback":
                view.state = "degraded"
                self._counters["pcg_fallbacks"] = self._counters.get("pcg_fallbacks", 0) + 1
            elif etype == "resume":
                self._counters["resumes"] = self._counters.get("resumes", 0) + 1
            elif etype == "job_end":
                status = event.get("status")
                view.state = status if status in _TERMINAL_STATES else "failed"
            elif etype in ("heartbeat", "checkpoint") and view.state == "pending":
                view.state = "running"

    def jobs(self) -> list[JobView]:
        """Snapshot of all job views, stable display order."""
        with self._lock:
            views = [JobView(**v.to_dict()) for v in self._jobs.values()]
        views.sort(key=lambda v: (_STATE_ORDER.get(v.state, 9), v.job_id))
        return views

    def counts(self) -> dict[str, int]:
        """Number of jobs per state."""
        out: dict[str, int] = {}
        for v in self.jobs():
            out[v.state] = out.get(v.state, 0) + 1
        return out

    def to_dict(self) -> dict:
        return {
            "events_seen": self.events_seen,
            "counters": self.counters(),
            "jobs": [v.to_dict() for v in self.jobs()],
        }


def _bar(fraction: float, width: int = 16) -> str:
    fraction = min(1.0, max(0.0, fraction))
    full = int(round(fraction * width))
    return "#" * full + "." * (width - full)


def render_fleet(fleet: FleetView, now: float | None = None, width: int | None = None) -> str:
    """Format the fleet as a fixed-width text table (the ``repro top`` body).

    ``width`` clamps every line (``None`` probes the terminal via
    :func:`shutil.get_terminal_size`, falling back to 100 in pipes).  The
    clamp is a hard truncation, never a crash: a 20-column terminal gets a
    20-column dashboard.
    """
    views = fleet.jobs()
    counts = fleet.counts()
    counters = fleet.counters()
    now = time.time() if now is None else now
    if width is None:
        width = shutil.get_terminal_size(fallback=(100, 24)).columns
    width = max(8, int(width))
    head = "  ".join(f"{state}:{n}" for state, n in sorted(counts.items()))
    header = f"farm: {len(views)} jobs  {head}"
    if counters:
        header += "  |  " + "  ".join(f"{name}:{n}" for name, n in counters.items())
    lines = [
        header,
        f"{'JOB':<16} {'STATE':<10} {'PROGRESS':<24} {'DIVNORM':>10} "
        f"{'SOLVER':<10} {'PID':>7} {'AGE':>6}",
    ]
    for v in views:
        progress = f"[{_bar(v.progress)}] {v.step}/{v.steps_total or '?'}"
        age = f"{now - v.updated:5.1f}s" if v.updated else "    --"
        finite = isinstance(v.divnorm, (int, float)) and v.divnorm == v.divnorm
        divnorm = f"{v.divnorm:10.3g}" if finite else "        --"
        lines.append(
            f"{v.job_id:<16} {v.state:<10} {progress:<24} {divnorm} "
            f"{v.solver:<10} {v.pid if v.pid is not None else '--':>7} {age}"
        )
    return "\n".join(line[:width] for line in lines)


class LiveRenderer:
    """Background thread that repaints a :class:`FleetView` periodically.

    Writes to ``stream`` (default stderr) every ``interval`` seconds while
    started; :meth:`stop` paints one final frame so the terminal ends on
    the fleet's terminal state.  Plain-text repaint (no cursor control), so
    it degrades gracefully in logs and pipes.
    """

    def __init__(self, fleet: FleetView, interval: float = 0.5, stream=None, alerts_fn=None):
        self.fleet = fleet
        self.interval = interval
        self.stream = stream if stream is not None else sys.stderr
        self.alerts_fn = alerts_fn  # () -> list[str], painted under the table
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _paint(self) -> None:
        frame = render_fleet(self.fleet)
        if self.alerts_fn is not None:
            try:
                alerts = list(self.alerts_fn())
            except Exception:
                alerts = []  # the alerts panel must never take the repaint down
            if alerts:
                frame += "\nalerts:\n" + "\n".join(f"  {line}" for line in alerts)
        print(frame, file=self.stream, flush=True)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._paint()

    def start(self) -> "LiveRenderer":
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
        self._paint()

    def __enter__(self) -> "LiveRenderer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
