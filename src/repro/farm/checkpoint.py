"""Checkpoint persistence: simulator state ↔ ``.npz`` files.

:meth:`repro.fluid.FluidSimulator.save_state` produces a dict of arrays;
this module round-trips it through a single ``.npz`` file so preempted or
crashed jobs resume mid-run instead of restarting.  Writes are atomic
(temp file + rename), so a worker killed mid-checkpoint never leaves a torn
file behind — the previous checkpoint stays valid.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.fluid.simulator import FluidSimulator

__all__ = [
    "CHECKPOINT_VERSION",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_step",
    "sweep_orphans",
]

#: format version written into every checkpoint file
CHECKPOINT_VERSION = 1


def save_checkpoint(sim: FluidSimulator, path: str | Path) -> Path:
    """Write the simulator's current state to ``path`` (atomically)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = sim.save_state()
    state["version"] = np.asarray(CHECKPOINT_VERSION, dtype=np.int64)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as f:  # file handle: savez must not append ".npz"
            np.savez(f, **state)
            # rename-before-durable is atomic in the namespace but not on
            # disk: fsync the payload so a crash right after the rename
            # cannot surface a torn-but-"valid" checkpoint
            f.flush()
            os.fsync(f.fileno())
        tmp.replace(path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def sweep_orphans(checkpoint_dir: str | Path) -> list[Path]:
    """Remove orphaned ``*.ckpt.npz.tmp`` files left by killed workers.

    :func:`save_checkpoint` unlinks its temp file when the *write* fails,
    but a worker hard-killed mid-write (OOM, ``kill -9``, the farm's own
    timeout escalation) leaves the torn temp behind.  The rename-last
    protocol means such a file is never a valid checkpoint, so it is always
    safe to delete — call this when a farm, pool or service starts up,
    before any worker is running.  Returns the paths removed.
    """
    removed: list[Path] = []
    root = Path(checkpoint_dir)
    if not root.is_dir():
        return removed
    for tmp in sorted(root.glob("*.ckpt.npz.tmp")):
        try:
            tmp.unlink()
        except OSError:  # pragma: no cover - raced or permission-denied
            continue
        removed.append(tmp)
    return removed


def load_checkpoint(path: str | Path) -> dict[str, np.ndarray]:
    """Read a checkpoint file back into a ``load_state``-compatible dict."""
    with np.load(Path(path)) as data:
        state = {name: data[name] for name in data.files}
    version = int(state.pop("version", CHECKPOINT_VERSION))
    if version > CHECKPOINT_VERSION:
        raise ValueError(f"checkpoint version {version} is newer than supported {CHECKPOINT_VERSION}")
    return state


def checkpoint_step(path: str | Path) -> int:
    """Peek at the step counter of a checkpoint without restoring it."""
    with np.load(Path(path)) as data:
        return int(data["step"])
