"""Job schema of the simulation farm: :class:`JobSpec` and :class:`JobResult`.

A *job* is one complete simulation run described declaratively — scenario
(grid size + input-problem seed), solver configuration, step budget, quality
requirement and fault-tolerance policy.  Specs are frozen, hashable and
JSON round-trippable, so job lists can be generated, sharded across worker
processes, persisted and replayed.

A :class:`JobResult` is the worker's account of what actually happened:
terminal status, how many steps ran, which solver finished the job (it may
differ from the requested one after a degradation), whether the job resumed
from a checkpoint, retry count, wall/solve seconds, the final DivNorm
diagnostics and the worker's metrics snapshot.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = ["JobSpec", "JobResult", "SOLVER_CHOICES", "CACHE_KEY_VERSION"]

#: version field folded into every :meth:`JobSpec.cache_key`; bump it when
#: the semantic-field set or the canonicalisation changes, so stale cache
#: entries and checkpoints can never be mistaken for current ones.
#: v2: ``model_dir`` is content-addressed (weights-manifest digest) instead
#: of canonicalising the directory *path* — retraining in place now re-keys
#: the job, and relocating identical weights keeps its key.
CACHE_KEY_VERSION = 2

#: solver identifiers a JobSpec may request
SOLVER_CHOICES = ("pcg", "jacobi-pcg", "jacobi", "multigrid", "spectral", "nn", "nn-pcg")


@dataclass(frozen=True)
class JobSpec:
    """Declarative description of one simulation run.

    Parameters
    ----------
    job_id:
        Unique identifier within a farm submission.
    grid_size, seed:
        Resolution and rng seed of the input problem.
    scenario:
        Scenario selector in the canonical ``name[:key=val,...]`` string
        form of :func:`repro.fluid.parse_scenario` (default
        ``smoke_plume``, the paper's workload).  The worker materialises it
        through the scenario registry with ``grid`` defaulted from
        ``grid_size`` and the rng seeded from ``seed``.
    steps:
        Step budget of the run.
    solver:
        Requested pressure solver (one of :data:`SOLVER_CHOICES`).
    solver_params:
        Keyword arguments forwarded to the solver constructor (e.g.
        ``{"tol": 1e-4}`` for PCG, ``{"passes": 2}`` for NN).
    model_dir:
        For ``solver="nn"`` / ``solver="nn-pcg"``: directory saved by
        :func:`repro.io.save_model` holding trained weights.  ``None``
        builds a seeded untrained Tompson-style network (useful for
        throughput work; the pure-NN solver then leans on the
        defect-correction passes and the divergence guard, while nn-pcg's
        safeguard keeps it exact regardless).
    divnorm_limit:
        Quality requirement: if a step's DivNorm exceeds this (or is not
        finite) the run is declared *diverged* and degrades to exact PCG.
        ``None`` disables the guard (non-finite values still trigger it).
    checkpoint_every:
        Save a checkpoint every N completed steps (0 disables).
    timeout_seconds:
        Wall-clock budget per attempt; the farm kills and retries a worker
        exceeding it.  ``None`` means unbounded.
    max_retries:
        How many times the farm may re-run the job after a worker fault
        (crash, timeout).  Retries resume from the latest checkpoint.
    fail_at_step:
        Fault injection for testing: trigger an artificial worker failure
        just before executing this step, on the first attempt only.
    fail_mode:
        Flavour of the injected failure: ``"raise"`` raises inside the
        stepping loop (exercises graceful degradation to PCG), ``"crash"``
        hard-kills the worker process (exercises the farm's reap/retry and
        checkpoint-resume path; downgraded to ``"raise"`` when the job runs
        in-process).
    """

    job_id: str
    grid_size: int = 32
    seed: int = 0
    scenario: str = "smoke_plume"
    steps: int = 16
    solver: str = "pcg"
    solver_params: dict = field(default_factory=dict)
    model_dir: str | None = None
    divnorm_limit: float | None = None
    checkpoint_every: int = 0
    timeout_seconds: float | None = None
    max_retries: int = 1
    fail_at_step: int | None = None
    fail_mode: str = "raise"

    def __post_init__(self):
        if self.solver not in SOLVER_CHOICES:
            raise ValueError(f"unknown solver {self.solver!r}; expected one of {SOLVER_CHOICES}")
        if self.fail_mode not in ("raise", "crash"):
            raise ValueError(f"unknown fail_mode {self.fail_mode!r}")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        # validate + canonicalise the scenario string against the registry
        from repro.fluid.scenarios import get_scenario, parse_scenario

        sspec = parse_scenario(self.scenario)
        get_scenario(sspec.name)
        object.__setattr__(self, "scenario", sspec.to_string())
        # frozen dataclass: route around __setattr__ to normalise the dict
        object.__setattr__(self, "solver_params", dict(self.solver_params))

    @property
    def scenario_spec(self):
        """The parsed :class:`repro.fluid.ScenarioSpec` of this job."""
        from repro.fluid.scenarios import parse_scenario

        return parse_scenario(self.scenario)

    def _weights_fingerprint(self) -> dict | None:
        """Content address of the model weights (``None`` without a model).

        A manifest digest: SHA-256 over each file's relative name and
        content hash, sorted, covering everything under ``model_dir``
        (``arch.json``/``weights.npz``/``meta.json`` for
        :func:`repro.io.save_model` outputs).  Identical weights keep the
        same fingerprint wherever the directory lives; retraining in place
        changes it.  A missing/empty directory falls back to the raw path
        (``{"path": ...}`` — structurally distinct from any digest) so key
        computation never raises for not-yet-materialised weights.
        """
        if self.model_dir is None:
            return None
        root = Path(self.model_dir)
        files = sorted(p for p in root.rglob("*") if p.is_file()) if root.is_dir() else []
        if not files:
            return {"path": str(self.model_dir)}
        h = hashlib.sha256()
        for p in files:
            h.update(p.relative_to(root).as_posix().encode("utf-8"))
            h.update(b"\0")
            h.update(hashlib.sha256(p.read_bytes()).digest())
        return {"sha256": h.hexdigest()}

    def _semantic_payload(self, with_steps: bool) -> dict:
        """The canonical document behind :meth:`cache_key`/:attr:`state_key`.

        Only fields that determine what the simulation *computes* appear;
        ``job_id``, checkpointing cadence/paths, timeouts, retry budgets
        and fault injection change how a job runs, never its output, and
        are deliberately excluded.  Model weights enter by *content*
        (:meth:`_weights_fingerprint`), never by path.
        """
        payload = {
            "v": CACHE_KEY_VERSION,
            "scenario": self.scenario,
            "grid_size": self.grid_size,
            "seed": self.seed,
            "solver": self.solver,
            "solver_params": self.solver_params,
            "model_weights": self._weights_fingerprint(),
            "divnorm_limit": self.divnorm_limit,
        }
        if with_steps:
            payload["steps"] = self.steps
        return payload

    def _digest(self, with_steps: bool) -> str:
        canonical = json.dumps(
            self._semantic_payload(with_steps), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def cache_key(self) -> str:
        """Deterministic content address of this job's *result* identity.

        The SHA-256 hex digest of a canonical JSON document over the fields
        that determine the simulation's output — scenario, grid size, seed,
        step budget, solver + parameters, model weights *content* and the
        DivNorm requirement — so two specs with equal keys produce
        bit-identical results.  The serve tier's result cache
        (:mod:`repro.serve.cache`) is addressed by this key.
        """
        return self._digest(with_steps=True)

    @property
    def state_key(self) -> str:
        """Content address of the job's *trajectory* identity.

        Same canonicalisation as :meth:`cache_key` minus the step budget: a
        checkpoint is a prefix of a trajectory, so it stays valid when the
        same run is resubmitted with a larger ``steps`` — while any change
        to the dynamics (scenario, seed, solver, requirement) re-keys it.
        """
        return self._digest(with_steps=False)

    @property
    def checkpoint_key(self) -> str:
        """Checkpoint-file stem: job id, scenario slug, trajectory-key prefix.

        The scenario slug keeps the name human-readable; the
        :attr:`state_key` prefix keeps a reused job id from silently
        resuming a checkpoint written under *any* different dynamics
        (other solver, seed, requirement — not just another scenario).
        """
        return f"{self.job_id}.{self.scenario_spec.slug}.{self.state_key[:8]}"

    def to_dict(self) -> dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "JobSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Dicts persisted before the scenario field existed load through a
        compat shim (``scenario`` defaults to ``smoke_plume``) with a
        :class:`DeprecationWarning` asking callers to re-serialise.
        """
        if "scenario" not in d:
            warnings.warn(
                "JobSpec dict without a 'scenario' field is deprecated; "
                "re-serialise the spec (defaulting to scenario='smoke_plume')",
                DeprecationWarning,
                stacklevel=2,
            )
        return cls(**d)


@dataclass
class JobResult:
    """Outcome of one job as reported by the worker that finished it."""

    job_id: str
    status: str  # "completed" | "failed" | "cancelled"
    steps_done: int = 0
    solver_used: str = ""
    degraded: bool = False
    resumed_from: int | None = None
    retries: int = 0
    wall_seconds: float = 0.0
    solve_seconds: float = 0.0
    final_divnorm: float = float("nan")
    cum_divnorm: float = 0.0
    error: str | None = None
    #: True when this result was served from a content-addressed result
    #: cache (:mod:`repro.serve`) instead of being re-simulated
    cached: bool = False
    metrics: dict = field(default_factory=dict)
    #: tracer snapshot (:meth:`repro.trace.Tracer.to_dict`) when the farm
    #: ran with tracing enabled; empty dict otherwise
    trace: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the job ran its full step budget."""
        return self.status == "completed"

    def to_dict(self) -> dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "JobResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(**d)
