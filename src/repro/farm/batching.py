"""Batched NN inference across concurrent simulations.

The paper's surrogate (like Tompson et al.'s CNN) earns its speedup from
amortising one forward pass over many grids.  A single simulation only ever
has one pressure solve in flight, so batching needs concurrency *above* the
simulator: this service sits between N same-shape simulation jobs (one
thread each) and one shared :class:`~repro.models.NNProjectionSolver`.

Each job's :class:`BatchingSolverProxy` submits its ``(b, solid)`` request
and blocks.  When every registered participant has a request pending — or a
``max_wait`` grace period expires, so a participant busy in advection (or
degraded to PCG) cannot stall the others — one submitting thread elects
itself *leader*, stacks the requests into a ``(N, 2, H, W)`` tensor via
:meth:`~repro.models.NNProjectionSolver.solve_many`, and distributes the
per-sample results.  NumPy releases the GIL inside the heavy kernels, so
leader inference overlaps with follower advection in plain threads.

Requests are grouped by grid shape; mixed-shape participants batch within
their shape group only.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.fluid.solver_api import PressureSolver, SolveResult
from repro.metrics import MetricsRegistry, get_metrics
from repro.models import NNProjectionSolver

__all__ = ["BatchedInferenceService", "BatchingSolverProxy"]


class _Request:
    __slots__ = ("b", "solid", "result", "error")

    def __init__(self, b: np.ndarray, solid: np.ndarray):
        self.b = b
        self.solid = solid
        self.result: SolveResult | None = None
        self.error: BaseException | None = None


class BatchedInferenceService:
    """Gather same-shape pressure solves into stacked CNN forward passes.

    Parameters
    ----------
    solver:
        The shared batch-capable NN solver; only one leader thread calls it
        at a time.
    max_wait:
        Grace period (seconds) a pending request waits for the rest of the
        registered participants before dispatching a partial batch.
    metrics:
        Registry receiving ``farm/batch/*`` counters; defaults to the
        process-wide registry.
    """

    def __init__(
        self,
        solver: NNProjectionSolver,
        max_wait: float = 0.05,
        metrics: MetricsRegistry | None = None,
    ):
        self.solver = solver
        self.max_wait = max_wait
        self._metrics = metrics
        self._cond = threading.Condition()
        self._pending: list[_Request] = []
        self._participants = 0
        self._busy = False
        # bumped whenever a dispatch completes; waiters use it to re-arm
        # their grace deadline instead of instantly "expiring" after a
        # long leader dispatch and fragmenting into partial batches
        self._generation = 0

    # ------------------------------------------------------------------
    def register(self) -> None:
        """Announce one more concurrent participant (a running job)."""
        with self._cond:
            self._participants += 1

    def unregister(self) -> None:
        """Remove a participant (job finished or degraded away from NN)."""
        with self._cond:
            self._participants = max(0, self._participants - 1)
            self._cond.notify_all()

    @property
    def participants(self) -> int:
        """Number of currently registered participants."""
        with self._cond:
            return self._participants

    # ------------------------------------------------------------------
    def _take_batch(self, shape: tuple[int, ...]) -> list[_Request]:
        batch = [r for r in self._pending if r.b.shape == shape]
        self._pending = [r for r in self._pending if r.b.shape != shape]
        return batch

    def solve(self, b: np.ndarray, solid: np.ndarray) -> SolveResult:
        """Submit one request and block until its batch has been solved."""
        m = self._metrics if self._metrics is not None else get_metrics()
        req = _Request(np.asarray(b), np.asarray(solid))
        deadline = time.monotonic() + self.max_wait
        batch: list[_Request] | None = None
        expected = 1
        with self._cond:
            self._pending.append(req)
            self._cond.notify_all()
            gen = self._generation
            while req.result is None and req.error is None:
                if self._generation != gen:
                    # a dispatch completed while this request waited: the
                    # freed participants can re-form a full batch, so the
                    # grace period starts over rather than expiring stale
                    gen = self._generation
                    deadline = time.monotonic() + self.max_wait
                same_shape = sum(1 for r in self._pending if r.b.shape == req.b.shape)
                expected = max(1, self._participants)
                full = same_shape >= expected
                expired = time.monotonic() >= deadline
                if not self._busy and same_shape > 0 and (full or expired):
                    # leader election: this thread dispatches the batch
                    self._busy = True
                    batch = self._take_batch(req.b.shape)
                    break
                timeout = None if full else max(1e-4, deadline - time.monotonic())
                self._cond.wait(timeout)
        if batch is None:
            if req.error is not None:
                raise req.error
            assert req.result is not None
            return req.result

        try:
            # pre-size the shared solver's plan at full registered capacity
            # so shrinking batches reuse one compiled arena (no rebuilds)
            ensure = getattr(self.solver, "ensure_capacity", None)
            if ensure is not None:
                ensure(batch[0].b.shape, max(len(batch), expected))
            results = self.solver.solve_many(
                [r.b for r in batch], [r.solid for r in batch]
            )
            m.inc("farm/batch/dispatches")
            m.inc("farm/batch/requests", len(batch))
            m.observe("farm/batch/size", float(len(batch)))
            if len(batch) < expected:
                m.inc("farm/batch/partial")
        except BaseException as exc:
            with self._cond:
                for r in batch:
                    r.error = exc
                self._busy = False
                self._generation += 1
                self._cond.notify_all()
            raise
        with self._cond:
            for r, res in zip(batch, results):
                r.result = res
            self._busy = False
            self._generation += 1
            self._cond.notify_all()
        assert req.result is not None
        return req.result


class BatchingSolverProxy(PressureSolver):
    """Per-job :class:`PressureSolver` façade over the shared service.

    Each concurrent job owns one proxy; ``solve`` forwards to the service
    and blocks until the stacked inference containing this request returns.
    """

    name = "nn-batched"

    def __init__(self, service: BatchedInferenceService):
        self.service = service

    def solve(self, b: np.ndarray, solid: np.ndarray) -> SolveResult:
        return self.service.solve(b, solid)

    def reset(self) -> None:  # the shared solver owns all cached state
        pass
