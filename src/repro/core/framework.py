"""Smart-fluidnet: the end-to-end framework (Figure 2).

Offline phase (:meth:`SmartFluidnet.build_offline`):

1. train the input (Tompson's) model;
2. search accurate models with the Auto-Keras-style plugin;
3. construct the transformed model family (four operations);
4. measure execution records of every model on calibration problems;
5. keep the (time, quality) Pareto front — the *model candidates*;
6. train the success-rate MLP on the candidates' records;
7. apply the Eq. 8 expected-time filter — the *runtime models*;
8. build the per-model (CumDivNorm_final, Qloss) KNN databases from small
   problems.

Online phase (:meth:`SmartFluidnet.run`): simulate with the quality-aware
model-switch controller (Algorithm 2), restarting with exact PCG when no
model can meet the requirement.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.data import InputProblem, collect_training_frames, generate_problems
from repro.fluid import (
    FluidSimulator,
    PCGSolver,
    RestartRequested,
    SimulationConfig,
    SimulationResult,
)
from repro.models import ArchSpec, TrainedModel, tompson_arch, train_model
from repro.trace import get_tracer

from .construction import ConstructionConfig, construct_model_family
from .knn import QlossKNNPredictor
from .metrics import quality_loss
from .pareto import pareto_select
from .records import (
    ExecutionRecord,
    ReferenceCache,
    collect_execution_records,
    run_problem,
)
from .scheduler import AdaptiveController, AdaptiveStats
from .search import SearchConfig, search_accurate_models
from .selection import SelectedModel, expected_total_time, select_runtime_models
from .selector_mlp import SuccessRateMLP

__all__ = ["UserRequirement", "OfflineConfig", "AdaptiveRunResult", "SmartFluidnet"]


@dataclass(frozen=True)
class UserRequirement:
    """U(q, t): ceilings on quality loss and execution (solver) time."""

    q: float
    t: float


@dataclass
class OfflineConfig:
    """Scale knobs of the offline phase (defaults sized for CPU runs)."""

    grid_size: int = 32
    n_train_problems: int = 6
    n_calibration_problems: int = 3
    n_small_problems: int = 8
    small_grid_size: int = 16
    train_steps: int = 8
    eval_steps: int = 16
    base_epochs: int = 40
    rollout_rounds: int = 2
    search: SearchConfig = field(default_factory=lambda: SearchConfig(iterations=2, keep=5))
    construction: ConstructionConfig = field(
        default_factory=lambda: ConstructionConfig(fine_tune_epochs=3)
    )
    solver_passes: int = 2
    max_runtime_models: int = 5
    mlp_topology: str = "mlp3"
    mlp_epochs: int = 300
    mlp_samples: int = 256
    check_interval: int = 5
    skip_first: int = 5
    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    run_search: bool = True


@dataclass
class AdaptiveRunResult:
    """Outcome of one online Smart-fluidnet run."""

    result: SimulationResult
    stats: AdaptiveStats
    restarted: bool
    total_seconds: float
    solve_seconds: float


class _CalibratedMLP:
    """Blend MLP predictions with empirical per-model success rates.

    Used only at the fixed offline requirement, where empirical rates are
    available from the very records that generated the MLP's labels; queries
    at other (q, t) pass through to the MLP unchanged.
    """

    def __init__(self, mlp: SuccessRateMLP, empirical: dict[str, float], weight: float = 0.5):
        self.mlp = mlp
        self.empirical = empirical
        self.weight = weight
        self._name_by_spec: dict[int, str] = {}

    def register(self, name: str, spec) -> None:
        self._name_by_spec[id(spec)] = name

    def predict(self, spec, q: float, t: float) -> float:
        raw = self.mlp.predict(spec, q, t)
        name = getattr(spec, "name", None)
        if name in self.empirical:
            return self.weight * raw + (1.0 - self.weight) * self.empirical[name]
        return raw


class SmartFluidnet:
    """The assembled framework: runtime models + predictors + requirement."""

    def __init__(
        self,
        runtime_models: list[SelectedModel],
        knn: QlossKNNPredictor,
        requirement: UserRequirement,
        mlp: SuccessRateMLP | None = None,
        candidates: list[TrainedModel] | None = None,
        records: list[ExecutionRecord] | None = None,
        config: OfflineConfig | None = None,
        exact_seconds: float = float("nan"),
    ):
        if not runtime_models:
            raise ValueError("Smart-fluidnet needs at least one runtime model")
        self.runtime_models = runtime_models
        self.knn = knn
        self.requirement = requirement
        self.mlp = mlp
        self.candidates = candidates or []
        self.records = records or []
        self.config = config or OfflineConfig()
        self.exact_seconds = exact_seconds

    # ------------------------------------------------------------------
    # offline phase
    # ------------------------------------------------------------------
    @classmethod
    def build_offline(
        cls,
        requirement: UserRequirement | None = None,
        base_arch: ArchSpec | None = None,
        config: OfflineConfig | None = None,
        rng=0,
        verbose: bool = False,
    ) -> "SmartFluidnet":
        """Run the full offline phase of Figure 2 and assemble the framework.

        When ``requirement`` is None, the paper's convention applies: the
        quality requirement is the input model's mean quality loss over the
        calibration problems, and the time budget is its mean solver time
        scaled by the Eq. 8 safety margin.
        """
        cfg = config or OfflineConfig()
        rng = np.random.default_rng(rng)

        def log(msg: str) -> None:
            if verbose:  # pragma: no cover
                print(f"[smart-fluidnet] {msg}")

        # 1. data + input model
        train_problems = generate_problems(cfg.n_train_problems, cfg.grid_size, split="train")
        data = collect_training_frames(train_problems, n_steps=cfg.train_steps)
        log(f"collected {len(data['x'])} training frames")
        base = train_model(
            base_arch or tompson_arch(),
            data,
            epochs=cfg.base_epochs,
            rng=rng,
            rollout_problems=train_problems,
            rollout_rounds=cfg.rollout_rounds,
        )
        base.spec.name = base.spec.name or "tompson"
        log(f"trained input model, loss={base.history.final_loss:.4f}")

        # 2. accurate models (Auto-Keras plugin)
        accurate: list[TrainedModel] = []
        if cfg.run_search:
            accurate = search_accurate_models(base.spec, data, cfg.search, rng=rng)
            log(f"search kept {len(accurate)} accurate models")

        # 3. transformed family
        family = construct_model_family(
            base, data, cfg.construction, rng=rng, rollout_problems=train_problems
        )
        log(f"constructed {len(family)} transformed models")
        all_models = [base] + accurate + family

        # 4. execution records on calibration problems
        calib = generate_problems(
            cfg.n_calibration_problems, cfg.grid_size, split="train"
        )[: cfg.n_calibration_problems]
        reference = ReferenceCache(cfg.eval_steps, cfg.simulation)
        records = collect_execution_records(all_models, calib, reference, cfg.solver_passes)
        log(f"collected {len(records)} execution records")

        by_model: dict[str, list[ExecutionRecord]] = {}
        for r in records:
            by_model.setdefault(r.model_name, []).append(r)
        mean_q = {k: float(np.mean([r.quality_loss for r in v])) for k, v in by_model.items()}
        mean_t = {k: float(np.mean([r.execution_seconds for r in v])) for k, v in by_model.items()}
        exact_seconds = float(
            np.mean([reference.reference(p).solve_seconds for p in calib])
        )

        # 5. Pareto candidates
        candidates = pareto_select(
            all_models,
            [mean_t[m.name] for m in all_models],
            [mean_q[m.name] for m in all_models],
        )
        log(f"pareto kept {len(candidates)} candidates")

        # default requirement: the input model's own statistics (paper Sec. 7)
        if requirement is None:
            requirement = UserRequirement(q=mean_q[base.name], t=exact_seconds)

        # 6. the success-rate MLP.  The paper trains it on the Pareto
        # candidates' records (14 models); at reduced scale the front holds
        # too few architectures for the MLP to learn architecture
        # sensitivity, so all constructed models' records are used — the
        # candidates are a subset, and queries only ever concern them.
        mlp = SuccessRateMLP.fit(
            records,
            {m.name: m.spec for m in all_models},
            topology=cfg.mlp_topology,
            epochs=cfg.mlp_epochs,
            n_samples_per_model=cfg.mlp_samples,
            rng=rng,
        )

        # 7. Eq. 8 selection.  The MLP's raw output is calibrated against
        # the empirical success rates observed on the calibration records:
        # with small record sets the sigmoid saturates, and an uncalibrated
        # 1.0 on a weak model would make it every run's starting model.
        from .records import success_rate as _success_rate

        calibrated = _CalibratedMLP(
            mlp,
            {
                name: _success_rate(recs, requirement.q, requirement.t)
                for name, recs in by_model.items()
            },
        )
        runtime = select_runtime_models(
            candidates,
            mean_t,
            calibrated,
            requirement.q,
            requirement.t,
            exact_seconds,
            cfg.max_runtime_models,
        )
        if not runtime:
            # fall back to the most accurate candidate so the runtime always
            # has something to run (the restart path still guards quality).
            # Score it at the actual requirement — an infinite time budget
            # must not leak into the MLP's t feature.
            best = min(candidates, key=lambda m: mean_q[m.name])
            prob = calibrated.predict(best.spec, requirement.q, requirement.t)
            runtime = [
                SelectedModel(
                    model=best,
                    success_prob=prob,
                    model_seconds=mean_t[best.name],
                    expected_seconds=expected_total_time(
                        prob, mean_t[best.name], exact_seconds
                    ),
                )
            ]
        log(f"selected {len(runtime)} runtime models")

        # 8. KNN databases from small problems
        small = generate_problems(cfg.n_small_problems, cfg.small_grid_size, split="train")
        small_ref = ReferenceCache(cfg.eval_steps, cfg.simulation)
        knn = QlossKNNPredictor(k=4)
        small_records = collect_execution_records(
            [s.model for s in runtime], small, small_ref, cfg.solver_passes
        )
        per_model: dict[str, list[tuple[float, float]]] = {}
        for r in small_records:
            per_model.setdefault(r.model_name, []).append(
                (r.cumdivnorm_final, r.quality_loss)
            )
        for name, pairs in per_model.items():
            knn.add_database(name, pairs)
        log("built KNN databases")

        return cls(
            runtime_models=runtime,
            knn=knn,
            requirement=requirement,
            mlp=mlp,
            candidates=candidates,
            records=records,
            config=cfg,
            exact_seconds=exact_seconds,
        )

    # ------------------------------------------------------------------
    # online phase
    # ------------------------------------------------------------------
    def run(
        self,
        problem: InputProblem,
        n_steps: int | None = None,
        use_mlp_start: bool = True,
        upgrade_only: bool = False,
        check_interval: int | None = None,
        models_override: list[SelectedModel] | None = None,
        knn_override: QlossKNNPredictor | None = None,
        nn_precond: bool = False,
    ) -> AdaptiveRunResult:
        """Simulate one input problem with adaptive model switching.

        If the controller predicts the requirement cannot be met by any
        model, the run restarts with the exact PCG method; the wasted time
        is charged to the total, as Eq. 8 assumes.  With
        ``nn_precond=True`` the controller instead escalates *in place* to
        the exact NN-preconditioned CG solver
        (:class:`repro.fluid.NNPCGSolver` built from the most accurate
        runtime model's network) — no trajectory is discarded and no
        restart cost is paid.  ``check_interval``, ``models_override`` and
        ``knn_override`` support the paper's sensitivity and ablation
        studies (Figures 12-13).
        """
        cfg = self.config
        steps = n_steps or cfg.eval_steps
        models = models_override or self.runtime_models
        nn_pcg = None
        if nn_precond:
            from repro.fluid import NNPCGSolver

            # the most accurate candidate's network proposes the directions;
            # CG's exact line search makes the rung exact regardless
            most_accurate = max(models, key=lambda s: s.model_seconds)
            nn_pcg = NNPCGSolver(most_accurate.model.network)
        controller = AdaptiveController(
            models,
            knn_override or self.knn,
            self.requirement.q,
            steps,
            check_interval=check_interval or cfg.check_interval,
            skip_first=cfg.skip_first,
            passes=cfg.solver_passes,
            use_mlp_start=use_mlp_start,
            upgrade_only=upgrade_only,
            nn_pcg=nn_pcg,
        )
        grid, source = problem.materialize()
        sim = FluidSimulator(grid, controller.initial_solver(), source, cfg.simulation, controller)
        t0 = time.perf_counter()
        restarted = False
        with get_tracer().span(
            "adaptive", steps=steps, start_model=controller.current.name
        ) as sp:
            try:
                result = sim.run(steps)
            except RestartRequested:
                restarted = True
                result = run_problem(PCGSolver(), problem, steps, cfg.simulation)
            if sp is not None:
                sp.attrs["restarted"] = restarted
                sp.attrs["switches"] = len(controller.stats.switches)
        total = time.perf_counter() - t0
        solve = result.solve_seconds + (
            sum(controller.stats.solve_seconds_per_model.values()) if restarted else 0.0
        )
        return AdaptiveRunResult(
            result=result,
            stats=controller.stats,
            restarted=restarted,
            total_seconds=total,
            solve_seconds=solve,
        )

    # ------------------------------------------------------------------
    def evaluate(
        self, problems: list[InputProblem], n_steps: int | None = None, **run_kwargs
    ) -> list[tuple[AdaptiveRunResult, float]]:
        """Run many problems, returning (run, quality-loss-vs-PCG) pairs."""
        steps = n_steps or self.config.eval_steps
        reference = ReferenceCache(steps, self.config.simulation)
        out = []
        for problem in problems:
            run = self.run(problem, steps, **run_kwargs)
            ref = reference.reference(problem)
            out.append((run, quality_loss(ref.density, run.result.density)))
        return out
