"""KNN prediction of the final quality loss (Section 6.1).

Offline, each runtime candidate model is exercised on a set of *small* input
problems; every run contributes one (CumDivNorm_final, Qloss) pair to a
per-model historical database stored as a balanced binary search tree.
Online, the runtime predicts a model's final quality loss as the mean Qloss
of the ``k`` database entries whose CumDivNorm_final is closest to the
extrapolated one (``k = 4`` in the paper).
"""

from __future__ import annotations

import numpy as np

from .bst import BinarySearchTree

__all__ = ["QlossKNNPredictor"]


class QlossKNNPredictor:
    """Per-model (CumDivNorm_final -> Qloss) nearest-neighbour predictor."""

    def __init__(self, k: int = 4):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._trees: dict[str, BinarySearchTree] = {}

    def add_database(self, model_name: str, pairs: list[tuple[float, float]]) -> None:
        """Install the historical database of one model (balanced build)."""
        if not pairs:
            raise ValueError(f"empty database for model {model_name!r}")
        self._trees[model_name] = BinarySearchTree.from_pairs(pairs)

    def add_observation(self, model_name: str, cumdivnorm_final: float, qloss: float) -> None:
        """Append one pair to a model's database (online refinement)."""
        tree = self._trees.setdefault(model_name, BinarySearchTree())
        tree.insert(cumdivnorm_final, qloss)

    def models(self) -> list[str]:
        """Names of models with a database."""
        return sorted(self._trees)

    def database_size(self, model_name: str) -> int:
        """Number of stored pairs for a model."""
        return len(self._trees.get(model_name, []))

    def predict(self, model_name: str, cumdivnorm_final: float) -> float:
        """Predicted Qloss: mean over the k nearest stored pairs."""
        tree = self._trees.get(model_name)
        if tree is None or len(tree) == 0:
            raise KeyError(f"no database for model {model_name!r}")
        neighbours = tree.nearest(cumdivnorm_final, self.k)
        return float(np.mean([q for _, q in neighbours]))
