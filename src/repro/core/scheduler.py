"""The quality-aware model-switch runtime (Section 6.2, Algorithm 2).

The controller plugs into :class:`repro.fluid.FluidSimulator` as a per-step
hook.  Every check interval it:

1. fits a linear trend through the tail of the CumDivNorm history and
   extrapolates CumDivNorm at the final step,
2. converts that to a predicted final quality loss ``Q'`` with the current
   model's KNN database,
3. compares ``Q'`` to the requirement ``q``: within tolerance -> keep the
   model; comfortably better -> switch one step *faster*; worse -> switch
   one step *more accurate*; no more accurate model left -> escalate to
   the exact NN-preconditioned CG solver when one was provided
   (``nn_pcg=...``, trace event ``nn_precond``), else request a restart
   with the exact PCG method (trace event ``pcg_fallback``).

The ``nn_pcg`` rung dominates the restart corner of the trade-off: instead
of abandoning the trajectory and re-simulating every step with MIC(0)-PCG,
the run continues in place under an *exact* solver that still spends its
iterations on NN inference — the paper's Algorithm 2 with the DCDM-style
middle ground between "trust the network" and "pay full PCG".

Candidates are ordered along the Pareto front (ascending solver time =
ascending accuracy).  The starting model is the one the MLP scored highest
(Algorithm 2 line 1); the "no MLP" ablation of Figure 12 starts from the
fastest model and only ever upgrades, sticking with the first model that
satisfies the requirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fluid import FluidSimulator, RestartRequested, StepRecord
from repro.metrics import MetricsRegistry, get_metrics
from repro.trace import get_tracer

from .knn import QlossKNNPredictor
from .regression import predict_final_cumdivnorm
from .selection import SelectedModel

__all__ = ["SwitchEvent", "AdaptiveStats", "AdaptiveController"]


@dataclass
class SwitchEvent:
    """One model-switch decision."""

    step: int
    from_model: str
    to_model: str
    predicted_qloss: float


@dataclass
class AdaptiveStats:
    """Bookkeeping of one adaptive run (Table 3 feeds on this)."""

    steps_per_model: dict[str, int] = field(default_factory=dict)
    solve_seconds_per_model: dict[str, float] = field(default_factory=dict)
    switches: list[SwitchEvent] = field(default_factory=list)
    predictions: list[tuple[int, float]] = field(default_factory=list)
    restart_requested: bool = False
    #: step at which the run escalated to the NN-preconditioned exact
    #: solver instead of restarting (``None`` when it never did)
    nn_precond_step: int | None = None

    def time_share(self) -> dict[str, float]:
        """Fraction of solver time spent in each model."""
        total = sum(self.solve_seconds_per_model.values())
        if total <= 0:
            return {k: 0.0 for k in self.solve_seconds_per_model}
        return {k: v / total for k, v in self.solve_seconds_per_model.items()}


class AdaptiveController:
    """Algorithm 2: periodic quality prediction and model switching."""

    def __init__(
        self,
        candidates: list[SelectedModel],
        knn: QlossKNNPredictor,
        q_requirement: float,
        total_steps: int,
        check_interval: int = 5,
        skip_first: int = 5,
        tolerance: float = 0.1,
        downshift_margin: float = 3.0,
        passes: int = 2,
        use_mlp_start: bool = True,
        upgrade_only: bool = False,
        nn_pcg=None,
        metrics: MetricsRegistry | None = None,
        scenario: str = "smoke_plume",
    ):
        if not candidates:
            raise ValueError("need at least one candidate model")
        if check_interval < 3:
            raise ValueError("check interval must allow a 3-point trend fit")
        # order along the quality/time trade-off: fastest first
        self.ladder = sorted(candidates, key=lambda s: s.model_seconds)
        self.knn = knn
        self.q = q_requirement
        self.total_steps = total_steps
        self.check_interval = check_interval
        self.skip_first = skip_first
        self.tolerance = tolerance
        self.downshift_margin = downshift_margin
        self.passes = passes
        self.upgrade_only = upgrade_only
        #: optional exact escalation rung (an NN-preconditioned CG
        #: :class:`~repro.fluid.solver_api.PressureSolver`); when set, a
        #: predicted requirement violation with no more accurate candidate
        #: switches to it in place instead of raising RestartRequested
        self.nn_pcg = nn_pcg
        self._metrics = metrics
        #: scenario label on the controller's decision counters (registry
        #: name only — parameters would blow label cardinality)
        self.scenario = scenario.split(":", 1)[0] if scenario else "smoke_plume"
        self._satisfied = False
        self._escalated = False

        if use_mlp_start:
            # highest success probability; on ties prefer the more accurate
            # (slower) model — starting too fast risks unrecoverable drift
            best = max(candidates, key=lambda s: (s.success_prob, s.model_seconds))
            self._idx = next(i for i, s in enumerate(self.ladder) if s.name == best.name)
        else:
            self._idx = 0  # fastest
        self.stats = AdaptiveStats()
        self._cumdivnorm: list[float] = []
        self._solvers = {s.name: s.model.solver(passes=passes) for s in self.ladder}

    # ------------------------------------------------------------------
    @property
    def current(self) -> SelectedModel:
        """The model currently approximating the projection."""
        return self.ladder[self._idx]

    def initial_solver(self):
        """Solver the simulation must start with (install before running)."""
        return self._solvers[self.current.name]

    # ------------------------------------------------------------------
    def __call__(self, sim: FluidSimulator, record: StepRecord) -> None:
        """Per-step hook: account usage, and decide at interval boundaries."""
        name = self.nn_pcg.name if self._escalated else self.current.name
        self.stats.steps_per_model[name] = self.stats.steps_per_model.get(name, 0) + 1
        self.stats.solve_seconds_per_model[name] = (
            self.stats.solve_seconds_per_model.get(name, 0.0) + record.projection.solve_seconds
        )
        self._cumdivnorm.append(
            (self._cumdivnorm[-1] if self._cumdivnorm else 0.0) + record.divnorm
        )
        if self._escalated:
            # the exact rung satisfies any DivNorm requirement by
            # construction; no further prediction or switching is useful
            return

        step = record.step
        if step + 1 <= self.skip_first:
            return
        if (step + 1 - self.skip_first) % self.check_interval != 0:
            return
        if step + 1 >= self.total_steps:
            return

        m = self._metrics if self._metrics is not None else get_metrics()
        m.inc("adaptive/checks")
        cdn_final = predict_final_cumdivnorm(
            np.asarray(self._cumdivnorm),
            self.total_steps,
            check_interval=self.check_interval,
        )
        try:
            q_pred = self.knn.predict(self.current.name, cdn_final)
        except KeyError:
            return  # no database for this model; keep running
        self.stats.predictions.append((step, q_pred))
        m.inc("adaptive/predictions")
        self._decide(sim, step, q_pred)

    # ------------------------------------------------------------------
    def _event_counter(self):
        """The labeled Algorithm 2 decision counter (fork-safe: resolved
        against the live default registry at event time, not construction)."""
        m = self._metrics if self._metrics is not None else get_metrics()
        return m.families.counter(
            "scheduler_events_total",
            help="Algorithm 2 decisions by event, target solver and scenario.",
            labels=("event", "solver", "scenario"),
        )

    def _switch(self, sim: FluidSimulator, step: int, new_idx: int, q_pred: float) -> None:
        old = self.current.name
        self._idx = new_idx
        sim.solver = self._solvers[self.current.name]
        m = self._metrics if self._metrics is not None else get_metrics()
        m.inc("adaptive/switches")
        self._event_counter().inc(
            event="model_switch", solver=self.current.name, scenario=self.scenario
        )
        self.stats.switches.append(
            SwitchEvent(step=step, from_model=old, to_model=self.current.name, predicted_qloss=q_pred)
        )
        get_tracer().event(
            "model_switch",
            step=step,
            from_model=old,
            to_model=self.current.name,
            predicted_qloss=q_pred,
        )

    def _decide(self, sim: FluidSimulator, step: int, q_pred: float) -> None:
        if self.upgrade_only and self._satisfied:
            return
        close = abs(q_pred - self.q) <= self.tolerance * self.q
        if close:
            self._satisfied = True
            return
        if q_pred < self.q:
            self._satisfied = True
            if self.upgrade_only:
                return
            # hysteresis: only trade quality for speed with real headroom,
            # otherwise prediction noise causes harmful churn
            headroom = self.q * (1.0 - self.downshift_margin * self.tolerance)
            if self._idx > 0 and q_pred < headroom:
                self._switch(sim, step, self._idx - 1, q_pred)
            return
        # predicted violation: go more accurate, escalate, or give up
        if self._idx + 1 < len(self.ladder):
            self._switch(sim, step, self._idx + 1, q_pred)
            return
        m = self._metrics if self._metrics is not None else get_metrics()
        if self.nn_pcg is not None:
            # third outcome: continue the trajectory in place under the
            # exact NN-preconditioned CG solver instead of restarting
            self._escalated = True
            old = self.current.name
            sim.solver = self.nn_pcg
            self.stats.nn_precond_step = step
            self.stats.switches.append(
                SwitchEvent(
                    step=step,
                    from_model=old,
                    to_model=self.nn_pcg.name,
                    predicted_qloss=q_pred,
                )
            )
            m.inc("adaptive/nn_preconds")
            self._event_counter().inc(
                event="nn_precond", solver=self.nn_pcg.name, scenario=self.scenario
            )
            get_tracer().event(
                "nn_precond",
                step=step,
                from_model=old,
                reason="qloss_requirement",
                predicted_qloss=q_pred,
                q_requirement=self.q,
            )
            return
        self.stats.restart_requested = True
        m.inc("adaptive/restarts")
        self._event_counter().inc(
            event="pcg_fallback", solver="pcg", scenario=self.scenario
        )
        get_tracer().event(
            "pcg_fallback",
            step=step,
            reason="qloss_requirement",
            predicted_qloss=q_pred,
            q_requirement=self.q,
        )
        raise RestartRequested(
            f"predicted qloss {q_pred:.4g} exceeds requirement {self.q:.4g} "
            "and no more accurate model is available"
        )
