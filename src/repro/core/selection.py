"""Expected-time model selection (Section 5.3, Eq. 8).

A candidate network is only worth deploying if, accounting for the risk of
violating the quality requirement and having to re-run the simulation with
the exact method, its expected total time

    T_total = r * T_model + (1 - r) * T'

stays below the user's time budget ``t`` (``r`` is the MLP-predicted success
probability, ``T'`` the exact-solver time).  At most ``max_models``
candidates survive, ranked by success probability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models import TrainedModel

from .selector_mlp import SuccessRateMLP

__all__ = ["SelectedModel", "expected_total_time", "select_runtime_models"]


@dataclass
class SelectedModel:
    """A runtime candidate with its offline statistics."""

    model: TrainedModel
    success_prob: float
    model_seconds: float
    expected_seconds: float

    @property
    def name(self) -> str:
        return self.model.name


def expected_total_time(success_prob: float, model_seconds: float, exact_seconds: float) -> float:
    """Eq. 8: expected time including the possible exact-method re-run."""
    if not 0.0 <= success_prob <= 1.0:
        raise ValueError("success probability must be in [0, 1]")
    return success_prob * model_seconds + (1.0 - success_prob) * exact_seconds


def select_runtime_models(
    candidates: list[TrainedModel],
    model_seconds: dict[str, float],
    mlp: SuccessRateMLP,
    q: float,
    t: float,
    exact_seconds: float,
    max_models: int = 5,
) -> list[SelectedModel]:
    """Apply the MLP + Eq. 8 filter and keep the top ``max_models``.

    Returns the survivors sorted by descending success probability.  May be
    empty when no candidate's expected time fits the budget.
    """
    scored: list[SelectedModel] = []
    for model in candidates:
        if model.name not in model_seconds:
            raise KeyError(f"no measured time for model {model.name!r}")
        prob = mlp.predict(model.spec, q, t)
        secs = model_seconds[model.name]
        expected = expected_total_time(prob, secs, exact_seconds)
        if expected <= t:
            scored.append(
                SelectedModel(
                    model=model,
                    success_prob=prob,
                    model_seconds=secs,
                    expected_seconds=expected,
                )
            )
    scored.sort(key=lambda s: s.success_prob, reverse=True)
    return scored[:max_models]
