"""The four model-transformation operations (Section 4).

Each operation maps a trained model to a new architecture, inheriting the
parent's weights wherever layer shapes still match (network morphism), so
the transformed model needs only a brief fine-tune instead of training from
scratch — the property that makes constructing 128 models tractable.

* ``shallow(G, L)``   — delete stage ``L``.
* ``narrow(G, L, r)`` — remove ``r`` randomly-chosen channels from stage ``L``
  (the paper uses ``r = |L| / 10``).
* ``pooling(G, L, m)`` — downsample stage ``L`` with a 2x2 max-pooling matrix
  (discarding 75% of its activations) and unpool to restore the grid size.
* ``dropout(G, L, p)`` — drop stage ``L`` activations with probability ``p``.
"""

from __future__ import annotations

import numpy as np

from repro.models import ArchSpec, TrainedModel
from repro.nn import Conv2d, Network

__all__ = [
    "shallow",
    "narrow",
    "pooling",
    "dropout",
    "inherit_matching_weights",
]


def inherit_matching_weights(
    parent_spec: ArchSpec,
    parent_net: Network,
    child_spec: ArchSpec,
    child_net: Network,
    stage_map: dict[int, int],
) -> int:
    """Copy convolution weights from parent to child where shapes match.

    ``stage_map`` maps child stage index -> parent stage index; the final
    1x1 convolution maps implicitly (index ``n_stages``).  Returns the
    number of convolutions copied.
    """
    parent_convs = parent_spec.stage_convs(parent_net)
    child_convs = child_spec.stage_convs(child_net)
    full_map = dict(stage_map)
    full_map[child_spec.n_stages] = parent_spec.n_stages  # final 1x1
    copied = 0
    for child_idx, parent_idx in full_map.items():
        src = parent_convs[parent_idx]
        dst = child_convs[child_idx]
        if src.weight.value.shape == dst.weight.value.shape:
            dst.weight.value[...] = src.weight.value
            dst.bias.value[...] = src.bias.value
            copied += 1
    return copied


def _child(model: TrainedModel, spec: ArchSpec, stage_map: dict[int, int], rng) -> TrainedModel:
    net = spec.build(rng=rng)
    inherit_matching_weights(model.spec, model.network, spec, net, stage_map)
    return TrainedModel(spec=spec, network=net, metadata={"parent": model.name})


def shallow(model: TrainedModel, stage: int, rng=None) -> TrainedModel:
    """Delete one stage of the network (operation 1)."""
    n = model.spec.n_stages
    if not 0 <= stage < n:
        raise ValueError(f"stage {stage} out of range 0..{n - 1}")
    if n <= 1:
        raise ValueError("cannot delete the only stage")
    spec = model.spec.copy()
    del spec.stages[stage]
    spec.name = f"{model.name}-shallow{stage}"
    # child stages before the cut map 1:1; later ones shift by one
    stage_map = {i: (i if i < stage else i + 1) for i in range(spec.n_stages)}
    return _child(model, spec, stage_map, rng)


def narrow(model: TrainedModel, stage: int, r: int | None = None, rng=None) -> TrainedModel:
    """Remove ``r`` random channels from one stage (operation 2).

    Inherits the parent's weights exactly by slicing: the narrowed stage
    keeps the rows of the surviving channels, and the following convolution
    keeps the matching input slices.
    """
    rng = np.random.default_rng(rng)
    n = model.spec.n_stages
    if not 0 <= stage < n:
        raise ValueError(f"stage {stage} out of range 0..{n - 1}")
    channels = model.spec.stages[stage].channels
    if r is None:
        r = max(1, channels // 10)  # the paper's r = |L| / 10
    if not 1 <= r < channels:
        raise ValueError(f"r must be in 1..{channels - 1}, got {r}")
    keep = np.sort(rng.choice(channels, size=channels - r, replace=False))

    spec = model.spec.copy()
    spec.stages[stage].channels = channels - r
    if spec.stages[stage].residual:
        # residual connections require matching channel counts; narrowing
        # breaks that, so the connection is dropped
        spec.stages[stage].residual = False
    spec.name = f"{model.name}-narrow{stage}x{r}"

    net = spec.build(rng=rng)
    stage_map = {i: i for i in range(n) if i != stage}
    inherit_matching_weights(model.spec, model.network, spec, net, stage_map)

    parent_convs = model.spec.stage_convs(model.network)
    child_convs = spec.stage_convs(net)
    src, dst = parent_convs[stage], child_convs[stage]
    if src.weight.value.shape[1] == dst.weight.value.shape[1]:
        dst.weight.value[...] = src.weight.value[keep]
        dst.bias.value[...] = src.bias.value[keep]
    nxt_src, nxt_dst = parent_convs[stage + 1], child_convs[stage + 1]
    if nxt_src.weight.value.shape[0] == nxt_dst.weight.value.shape[0]:
        nxt_dst.weight.value[...] = nxt_src.weight.value[:, keep]
        nxt_dst.bias.value[...] = nxt_src.bias.value
    return TrainedModel(spec=spec, network=net, metadata={"parent": model.name, "kept": keep})


def pooling(model: TrainedModel, stage: int, factor: int = 2, rng=None) -> TrainedModel:
    """Downsample one stage with max pooling (operation 3).

    A 2x2 pooling matrix discards 75% of the stage's activations; the
    convolution weights are shape-compatible and inherited unchanged.
    """
    n = model.spec.n_stages
    if not 0 <= stage < n:
        raise ValueError(f"stage {stage} out of range 0..{n - 1}")
    if factor not in (2, 4):
        raise ValueError("pooling factor must be 2 or 4")
    if model.spec.stages[stage].pool > 1:
        raise ValueError(f"stage {stage} is already pooled")
    spec = model.spec.copy()
    spec.stages[stage].pool = factor
    spec.stages[stage].unpool = factor
    spec.name = f"{model.name}-pool{stage}x{factor}"
    stage_map = {i: i for i in range(n)}
    return _child(model, spec, stage_map, rng)


def dropout(model: TrainedModel, stage: int, p: float = 0.1, rng=None) -> TrainedModel:
    """Attach dropout to one stage (operation 4)."""
    n = model.spec.n_stages
    if not 0 <= stage < n:
        raise ValueError(f"stage {stage} out of range 0..{n - 1}")
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    spec = model.spec.copy()
    spec.stages[stage].dropout = p
    spec.name = f"{model.name}-drop{stage}p{p:g}"
    stage_map = {i: i for i in range(n)}
    return _child(model, spec, stage_map, rng)
