"""Feature vectors for the success-rate MLP (Eq. 6).

Each training sample encodes the user requirement and the architecture of
one candidate network:

    F = (q, t, l_k, ker_k[9], chn_k[9], pool_k[9], unp_k[9], res_k[9])

for 3 + 5 * 9 = 48 components.  Features are standardised by fixed reference
scales so the MLP sees O(1) inputs regardless of the experiment scale.
"""

from __future__ import annotations

import numpy as np

from repro.models import ArchSpec, MAX_STAGES

__all__ = ["FEATURE_DIM", "build_feature_vector", "FeatureScaler"]

FEATURE_DIM = 3 + 5 * MAX_STAGES


def build_feature_vector(q: float, t: float, arch: ArchSpec) -> np.ndarray:
    """Raw 48-component feature vector of (requirement, architecture)."""
    vecs = arch.architecture_vectors()
    return np.concatenate(
        [
            np.array([q, t, float(arch.n_stages)]),
            vecs["ker"],
            vecs["chn"],
            vecs["pool"],
            vecs["unp"],
            vecs["res"],
        ]
    )


class FeatureScaler:
    """Column-wise standardisation fitted on a sample matrix.

    Constant columns keep scale 1 so they pass through centred.
    """

    def __init__(self):
        self.mean: np.ndarray | None = None
        self.scale: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "FeatureScaler":
        """Fit mean/std per column."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != FEATURE_DIM:
            raise ValueError(f"expected (n, {FEATURE_DIM}) features")
        self.mean = features.mean(axis=0)
        std = features.std(axis=0)
        self.scale = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Standardise features (requires a prior fit)."""
        if self.mean is None or self.scale is None:
            raise RuntimeError("scaler not fitted")
        return (np.asarray(features, dtype=np.float64) - self.mean) / self.scale
