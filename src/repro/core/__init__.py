"""Smart-fluidnet core: construction, selection and the adaptive runtime."""

from .metrics import (
    correlation_strength,
    cum_divnorm,
    pearson_r,
    quality_loss,
    spearman_r,
)
from .pareto import pareto_front, pareto_select
from .bst import BinarySearchTree, BSTNode
from .knn import QlossKNNPredictor
from .regression import LinearTrend, fit_linear_trend, predict_final_cumdivnorm
from .features import FEATURE_DIM, FeatureScaler, build_feature_vector
from .transforms import dropout, inherit_matching_weights, narrow, pooling, shallow
from .records import (
    ExecutionRecord,
    ReferenceCache,
    collect_execution_records,
    run_problem,
    success_rate,
)
from .selector_mlp import (
    MLP_TOPOLOGIES,
    SuccessRateMLP,
    build_success_mlp,
    make_training_samples,
)
from .selection import SelectedModel, expected_total_time, select_runtime_models
from .search import RBFSurrogate, SearchConfig, morph, search_accurate_models
from .construction import ConstructionConfig, construct_model_family
from .scheduler import AdaptiveController, AdaptiveStats, SwitchEvent
from .framework import AdaptiveRunResult, OfflineConfig, SmartFluidnet, UserRequirement

__all__ = [
    "quality_loss",
    "cum_divnorm",
    "pearson_r",
    "spearman_r",
    "correlation_strength",
    "pareto_front",
    "pareto_select",
    "BinarySearchTree",
    "BSTNode",
    "QlossKNNPredictor",
    "LinearTrend",
    "fit_linear_trend",
    "predict_final_cumdivnorm",
    "FEATURE_DIM",
    "FeatureScaler",
    "build_feature_vector",
    "shallow",
    "narrow",
    "pooling",
    "dropout",
    "inherit_matching_weights",
    "ExecutionRecord",
    "ReferenceCache",
    "collect_execution_records",
    "run_problem",
    "success_rate",
    "MLP_TOPOLOGIES",
    "SuccessRateMLP",
    "build_success_mlp",
    "make_training_samples",
    "SelectedModel",
    "expected_total_time",
    "select_runtime_models",
    "RBFSurrogate",
    "SearchConfig",
    "morph",
    "search_accurate_models",
    "ConstructionConfig",
    "construct_model_family",
    "AdaptiveController",
    "AdaptiveStats",
    "SwitchEvent",
    "AdaptiveRunResult",
    "OfflineConfig",
    "SmartFluidnet",
    "UserRequirement",
]
