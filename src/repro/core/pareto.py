"""Pareto-optimality model selection (Section 4, Figure 3).

After constructing the 133 models, Smart-fluidnet keeps only those on the
Pareto front of (time cost, quality loss) — the models that have the lowest
time cost, the lowest quality loss, or an unbeaten combination of both.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pareto_front", "pareto_select"]


def pareto_front(points: np.ndarray) -> np.ndarray:
    """Indices of non-dominated points, minimising every column.

    A point dominates another when it is no worse in every objective and
    strictly better in at least one.  Returns indices in ascending order of
    the first objective.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("points must be a (n, d) array")
    n = len(pts)
    keep = np.ones(n, dtype=bool)
    for i in range(n):
        if not keep[i]:
            continue
        dominated = (pts <= pts[i]).all(axis=1) & (pts < pts[i]).any(axis=1)
        if dominated.any():
            keep[i] = False
    idx = np.nonzero(keep)[0]
    return idx[np.argsort(pts[idx, 0], kind="stable")]


def pareto_select(items: list, times: list[float], qualities: list[float]) -> list:
    """Return the items on the (time, quality-loss) Pareto front."""
    if not (len(items) == len(times) == len(qualities)):
        raise ValueError("items, times and qualities must have equal length")
    if not items:
        return []
    idx = pareto_front(np.stack([np.asarray(times), np.asarray(qualities)], axis=1))
    return [items[i] for i in idx]
