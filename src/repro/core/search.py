"""Accurate-model search (the paper's Auto-Keras plugin, Section 4).

The paper feeds an existing network to Auto-Keras, which uses Bayesian
optimisation over network morphisms to propose architectures, and changes it
to emit the five most accurate models instead of one.  Offline Auto-Keras is
unavailable, so this module implements the same loop at small scale:

* *morphisms* — widen a stage, deepen the network, grow a kernel, toggle a
  residual connection (accuracy-oriented edits, the mirror image of the
  speed-oriented transformation operations);
* *surrogate* — an RBF-kernel regressor over the architecture feature
  vectors predicts the training loss of unseen candidates;
* *acquisition* — candidates are proposed in batches, ranked by surrogate
  mean minus an exploration bonus for unexplored regions, and only the best
  proposals are actually trained.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models import ArchSpec, TrainedModel, train_model
from repro.models.arch import MAX_STAGES, StageSpec

from .features import build_feature_vector

__all__ = ["SearchConfig", "morph", "search_accurate_models", "RBFSurrogate"]


@dataclass
class SearchConfig:
    """Budget of the accurate-model search."""

    iterations: int = 4
    proposals_per_iteration: int = 4
    evaluations_per_iteration: int = 2
    train_epochs: int = 8
    keep: int = 5
    max_channels: int = 32
    exploration: float = 0.3
    lr: float = 2e-3


def morph(spec: ArchSpec, rng: np.random.Generator, max_channels: int = 32) -> ArchSpec:
    """One random accuracy-oriented network morphism."""
    out = spec.copy()
    ops = ["widen", "deepen", "kernel", "residual"]
    if out.n_stages >= MAX_STAGES:
        ops.remove("deepen")
    op = rng.choice(ops)
    idx = int(rng.integers(out.n_stages))
    stage = out.stages[idx]
    if op == "widen":
        stage.channels = min(max_channels, max(stage.channels + 2, int(stage.channels * 1.25)))
    elif op == "deepen":
        out.stages.insert(idx, StageSpec(kernel=stage.kernel, channels=stage.channels))
    elif op == "kernel":
        stage.kernel = 5 if stage.kernel == 3 else 3
    else:
        prev = out.stages[idx - 1].channels if idx > 0 else out.in_channels
        if prev == stage.channels:
            stage.residual = not stage.residual
        else:
            stage.channels = prev
            stage.residual = True
    out.name = f"{spec.name or 'base'}-m{op}{idx}"
    return out


class RBFSurrogate:
    """Kernel regression over architecture features (Bayesian-lite)."""

    def __init__(self, bandwidth: float = 1.0):
        self.bandwidth = bandwidth
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    @staticmethod
    def _featurize(spec: ArchSpec) -> np.ndarray:
        # requirement components are irrelevant here; zero them out
        return build_feature_vector(0.0, 0.0, spec)

    def observe(self, spec: ArchSpec, loss: float) -> None:
        """Record an evaluated architecture."""
        f = self._featurize(spec)[None]
        self._x = f if self._x is None else np.concatenate([self._x, f])
        y = np.array([loss])
        self._y = y if self._y is None else np.concatenate([self._y, y])

    def predict(self, spec: ArchSpec) -> tuple[float, float]:
        """(mean, distance-to-data) for a candidate; distance drives exploration."""
        if self._x is None or self._y is None:
            return 0.0, float("inf")
        f = self._featurize(spec)
        scale = np.maximum(np.abs(self._x).max(axis=0), 1.0)
        d = np.linalg.norm((self._x - f) / scale, axis=1)
        w = np.exp(-((d / self.bandwidth) ** 2))
        if w.sum() < 1e-12:
            return float(self._y.mean()), float(d.min())
        return float((w * self._y).sum() / w.sum()), float(d.min())


def search_accurate_models(
    base: ArchSpec,
    data: dict[str, np.ndarray],
    config: SearchConfig | None = None,
    rng=0,
) -> list[TrainedModel]:
    """Search for the ``config.keep`` most accurate models around ``base``.

    Returns trained models sorted by ascending final training loss; the base
    architecture itself is always evaluated and may appear in the output.
    """
    config = config or SearchConfig()
    rng = np.random.default_rng(rng)
    surrogate = RBFSurrogate()
    evaluated: list[TrainedModel] = []
    seen: set[str] = set()

    def evaluate(spec: ArchSpec) -> None:
        key = repr(spec.to_dict()["stages"])
        if key in seen:
            return
        seen.add(key)
        model = train_model(spec, data, epochs=config.train_epochs, lr=config.lr, rng=rng)
        surrogate.observe(spec, model.history.final_loss)
        evaluated.append(model)

    base = base.copy()
    base.name = base.name or "base"
    evaluate(base)
    frontier = [base]
    for _ in range(config.iterations):
        proposals = []
        for _ in range(config.proposals_per_iteration):
            parent = frontier[int(rng.integers(len(frontier)))]
            proposals.append(morph(parent, rng, config.max_channels))
        scored = []
        for cand in proposals:
            mean, dist = surrogate.predict(cand)
            scored.append((mean - config.exploration * min(dist, 10.0), cand))
        scored.sort(key=lambda s: s[0])
        for _, cand in scored[: config.evaluations_per_iteration]:
            evaluate(cand)
        evaluated.sort(key=lambda m: m.history.final_loss)
        frontier = [m.spec for m in evaluated[: max(2, config.keep // 2)]]

    evaluated.sort(key=lambda m: m.history.final_loss)
    winners = evaluated[: config.keep]
    for i, model in enumerate(winners):
        model.spec.name = f"auto{i + 1}"
    return winners
