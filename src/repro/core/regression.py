"""Linear-regression prediction of the final CumDivNorm (Section 6.1).

Smart-fluidnet's runtime checks quality every ``check_interval`` (5) steps.
CumDivNorm grows quickly in the first few steps and then at a stable rate,
so within each interval the runtime skips the first two steps, fits a line
``f(x) = a x + b`` through the remaining three (step index, CumDivNorm)
points by least squares, and extrapolates to the final time step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LinearTrend", "fit_linear_trend", "predict_final_cumdivnorm"]


@dataclass
class LinearTrend:
    """A fitted line ``f(x) = slope * x + intercept``."""

    slope: float
    intercept: float

    def __call__(self, x: float) -> float:
        return self.slope * x + self.intercept


def fit_linear_trend(steps: np.ndarray, values: np.ndarray) -> LinearTrend:
    """Least-squares line through (step, value) points."""
    steps = np.asarray(steps, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if steps.shape != values.shape or steps.ndim != 1:
        raise ValueError("steps and values must be equal-length 1-D arrays")
    if len(steps) < 2:
        raise ValueError("need at least two points for a trend")
    a = np.stack([steps, np.ones_like(steps)], axis=1)
    coef, *_ = np.linalg.lstsq(a, values, rcond=None)
    return LinearTrend(slope=float(coef[0]), intercept=float(coef[1]))


def predict_final_cumdivnorm(
    cumdivnorm: np.ndarray,
    final_step: int,
    check_interval: int = 5,
    skip: int = 2,
) -> float:
    """Extrapolate CumDivNorm at ``final_step`` from the latest interval.

    ``cumdivnorm`` holds the values of all completed steps.  Within the most
    recent ``check_interval`` steps the first ``skip`` are discarded (the
    paper skips two of five so the trend is measured where growth is
    stable); the remainder fit the line.
    """
    cumdivnorm = np.asarray(cumdivnorm, dtype=np.float64)
    n = len(cumdivnorm)
    if n < check_interval:
        raise ValueError(f"need at least {check_interval} steps, have {n}")
    skip = min(skip, check_interval - 2)  # keep >= 2 points for the fit
    window = np.arange(n - check_interval + skip, n)
    trend = fit_linear_trend(window.astype(np.float64), cumdivnorm[window])
    return max(trend(float(final_step - 1)), float(cumdivnorm[-1]))
