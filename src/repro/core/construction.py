"""The model-construction pipeline (Section 4).

Starting from the input network (Tompson's model), the pipeline applies the
four transformation operations *in the paper's order* — the operations that
shed the most computation run first:

1. ``shallow`` on each deletable stage        ->  5 models
2. ``narrow`` ten times on each of those      -> +50 models (55)
3. ``pooling`` once on each of the 55         -> +55 models (110)
4. ``dropout`` on 18 randomly-chosen models   -> +18 models (128)

plus the five accurate models found by the Auto-Keras-style search = 133.
Every transformed model inherits its parent's weights and gets a brief
fine-tune.  All counts are configurable so tests and CI-scale benches can
run a miniature pipeline with the same structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models import TrainedModel, train_model

from . import transforms

__all__ = ["ConstructionConfig", "construct_model_family"]


@dataclass
class ConstructionConfig:
    """Counts and training budget of the construction pipeline.

    Defaults follow the paper exactly (5/10/…/18); shrink them for tests.
    """

    n_shallow: int = 5
    narrows_per_model: int = 10
    n_dropout: int = 18
    dropout_p: float = 0.1
    pooling_factor: int = 2
    fine_tune_epochs: int = 4
    lr: float = 1e-3
    batch_size: int = 16
    # optional self-rollout augmentation during each child's fine-tune:
    # closes the distribution gap so transformed models keep quality close
    # to their parent (see repro.models.training)
    rollout_rounds: int = 0
    rollout_epochs: int = 4
    rollout_steps: int = 6


def _fine_tune(
    model: TrainedModel, data, cfg: ConstructionConfig, rng, rollout_problems=None
) -> TrainedModel:
    if cfg.fine_tune_epochs <= 0:
        return model
    tuned = train_model(
        model.spec,
        data,
        epochs=cfg.fine_tune_epochs,
        lr=cfg.lr,
        batch_size=cfg.batch_size,
        rng=rng,
        network=model.network,
        rollout_problems=rollout_problems if cfg.rollout_rounds > 0 else None,
        rollout_rounds=cfg.rollout_rounds,
        rollout_epochs=cfg.rollout_epochs,
        rollout_steps=cfg.rollout_steps,
    )
    tuned.metadata.update(model.metadata)
    return tuned


def construct_model_family(
    base: TrainedModel,
    data: dict[str, np.ndarray],
    config: ConstructionConfig | None = None,
    rng=0,
    rollout_problems=None,
) -> list[TrainedModel]:
    """Apply the four-operation pipeline to ``base``; return the new models.

    The order (shallow -> narrow -> pooling -> dropout) matches Section 4:
    operations that remove more neurons run earlier, which the paper found
    generates models faster and more accurately than other orders.
    """
    cfg = config or ConstructionConfig()
    rng = np.random.default_rng(rng)

    # 1. shallow: delete each of up to n_shallow distinct stages
    n_stages = base.spec.n_stages
    deletable = min(cfg.n_shallow, n_stages if n_stages > 1 else 0)
    stage_choice = rng.permutation(n_stages)[:deletable]
    shallows: list[TrainedModel] = []
    for stage in sorted(int(s) for s in stage_choice):
        model = transforms.shallow(base, stage, rng=rng)
        shallows.append(_fine_tune(model, data, cfg, rng, rollout_problems))

    # 2. narrow: ten independent random narrows of each shallow model
    narrows: list[TrainedModel] = []
    for parent in shallows:
        for _ in range(cfg.narrows_per_model):
            stage = int(rng.integers(parent.spec.n_stages))
            if parent.spec.stages[stage].channels < 2:
                continue
            model = transforms.narrow(parent, stage, rng=rng)
            narrows.append(_fine_tune(model, data, cfg, rng, rollout_problems))

    generation_two = shallows + narrows

    # 3. pooling: one pooled variant of every model so far
    pooled: list[TrainedModel] = []
    for parent in generation_two:
        unpooled = [i for i, s in enumerate(parent.spec.stages) if s.pool == 1]
        if not unpooled:
            continue
        stage = int(rng.choice(unpooled))
        model = transforms.pooling(parent, stage, factor=cfg.pooling_factor, rng=rng)
        pooled.append(_fine_tune(model, data, cfg, rng, rollout_problems))

    generation_three = generation_two + pooled

    # 4. dropout on a random subset
    n_drop = min(cfg.n_dropout, len(generation_three))
    dropped: list[TrainedModel] = []
    if n_drop:
        for idx in rng.choice(len(generation_three), size=n_drop, replace=False):
            parent = generation_three[int(idx)]
            stage = int(rng.integers(parent.spec.n_stages))
            model = transforms.dropout(parent, stage, p=cfg.dropout_p, rng=rng)
            dropped.append(_fine_tune(model, data, cfg, rng, rollout_problems))

    family = generation_three + dropped

    # transformation parameters are drawn randomly, so two children can end
    # up with the same descriptive name; every name-keyed table downstream
    # (records, MLP, KNN, runtime stats) needs uniqueness
    seen: dict[str, int] = {}
    for model in family:
        name = model.spec.name
        if name in seen:
            seen[name] += 1
            model.spec.name = f"{name}#{seen[name]}"
        else:
            seen[name] = 1
    return family
