"""The offline output-quality-control MLP (Section 5, Figures 4-5).

Given a feature vector of (user requirement, network architecture), the MLP
predicts the probability that the network meets the requirement over the
input-problem population.  Training samples come from execution records: a
sample's label ``r_{k,q,t}`` is the fraction of model ``k``'s records that
satisfy ``U(q, t)`` for a randomly drawn requirement.

Five alternative topologies are provided (the paper's MLP1-MLP5, Figure 5)
plus the wider Figure 4 drawing; MLP3 is the paper's final choice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models import ArchSpec, TrainedModel
from repro.nn import Adam, Dense, MSELoss, Network, ReLU, Sigmoid, Trainer, TrainHistory

from .features import FEATURE_DIM, FeatureScaler, build_feature_vector
from .records import ExecutionRecord, success_rate

__all__ = [
    "MLP_TOPOLOGIES",
    "build_success_mlp",
    "make_training_samples",
    "SuccessRateMLP",
]

#: hidden-layer widths of the five MLP variants (input 48, output 1)
MLP_TOPOLOGIES: dict[str, tuple[int, ...]] = {
    "mlp1": (32, 16),
    "mlp2": (32, 16, 8),
    "mlp3": (32, 32, 16, 8),  # the paper's choice
    "mlp4": (64, 32, 32, 16, 8),
    "mlp5": (64, 64, 32, 32, 16, 8),
    "fig4": (32, 32, 16, 16, 8, 8),  # as drawn in Figure 4
}


def build_success_mlp(topology: str = "mlp3", rng=None) -> Network:
    """Build one of the named MLP topologies (ReLU hidden, sigmoid output)."""
    if topology not in MLP_TOPOLOGIES:
        raise ValueError(f"unknown topology {topology!r}; options: {sorted(MLP_TOPOLOGIES)}")
    rng = np.random.default_rng(rng)
    layers: list = []
    prev = FEATURE_DIM
    for width in MLP_TOPOLOGIES[topology]:
        layers.append(Dense(prev, width, rng=rng))
        layers.append(ReLU())
        prev = width
    layers.append(Dense(prev, 1, rng=rng))
    layers.append(Sigmoid())
    return Network(layers)


def make_training_samples(
    records: list[ExecutionRecord],
    models: dict[str, ArchSpec],
    n_samples_per_model: int = 64,
    rng=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate (features, labels) by sampling user requirements.

    Requirements (q, t) mix two draws: uniform over the records' span (with
    margins) for global coverage, and jittered resamples of observed values
    — the label ``r_{k,q,t}`` is a step-like function of (q, t) that only
    varies near the records' own quality/time values, so concentrating
    samples there is what lets the MLP resolve the decision boundary.
    """
    if not records:
        raise ValueError("no records")
    rng = np.random.default_rng(rng)
    by_model: dict[str, list[ExecutionRecord]] = {}
    for r in records:
        by_model.setdefault(r.model_name, []).append(r)

    q_vals = np.array([r.quality_loss for r in records])
    t_vals = np.array([r.execution_seconds for r in records])
    q_lo, q_hi = q_vals.min() * 0.5, q_vals.max() * 1.5
    t_lo, t_hi = t_vals.min() * 0.5, t_vals.max() * 1.5

    def draw(values: np.ndarray, lo: float, hi: float) -> float:
        if rng.random() < 0.5:
            return float(rng.uniform(lo, hi))
        return float(values[rng.integers(len(values))] * rng.uniform(0.75, 1.3))

    feats, labels = [], []
    for name, recs in by_model.items():
        if name not in models:
            raise KeyError(f"no architecture registered for model {name!r}")
        arch = models[name]
        for _ in range(n_samples_per_model):
            q = draw(q_vals, q_lo, q_hi)
            t = draw(t_vals, t_lo, t_hi)
            feats.append(build_feature_vector(q, t, arch))
            labels.append(success_rate(recs, q, t))
    return np.stack(feats), np.array(labels)[:, None]


@dataclass
class SuccessRateMLP:
    """Trained success-rate predictor with its feature scaler."""

    network: Network
    scaler: FeatureScaler
    history: TrainHistory | None = None
    topology: str = "mlp3"

    @classmethod
    def fit(
        cls,
        records: list[ExecutionRecord],
        models: dict[str, ArchSpec],
        topology: str = "mlp3",
        n_samples_per_model: int = 64,
        epochs: int = 150,
        lr: float = 3e-3,
        rng=0,
    ) -> "SuccessRateMLP":
        """Generate samples from records and train the MLP."""
        rng = np.random.default_rng(rng)
        feats, labels = make_training_samples(records, models, n_samples_per_model, rng)
        scaler = FeatureScaler().fit(feats)
        x = scaler.transform(feats)
        net = build_success_mlp(topology, rng=rng)
        trainer = Trainer(net, MSELoss(), Adam(net.parameters(), lr=lr), rng=rng)
        history = trainer.fit({"x": x, "y": labels}, epochs=epochs, batch_size=32)
        return cls(network=net, scaler=scaler, history=history, topology=topology)

    def predict(self, arch: ArchSpec, q: float, t: float) -> float:
        """Predicted probability that ``arch`` meets U(q, t)."""
        f = build_feature_vector(q, t, arch)[None]
        return float(self.network.forward(self.scaler.transform(f))[0, 0])

    def predict_many(self, models: list[TrainedModel], q: float, t: float) -> dict[str, float]:
        """Predictions for a list of trained models, by name."""
        return {m.name: self.predict(m.spec, q, t) for m in models}
