"""Balanced binary search tree with k-nearest-key queries.

The paper's runtime stores its (CumDivNorm_final, Qloss) history pairs "as a
binary search tree, such that finding the four pairs is cheap" (Section 6.1).
This is that tree: keys are floats, values arbitrary; ``nearest(key, k)``
returns the k entries whose keys are closest to the query.

The tree is built balanced from sorted input and supports incremental
insertion (unbalanced), which is all the runtime needs; queries walk the
root-to-leaf search path and then expand outward with predecessor/successor
steps, i.e. O(log n + k) on a balanced tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["BSTNode", "BinarySearchTree"]


@dataclass
class BSTNode:
    """A tree node holding one (key, value) pair."""

    key: float
    value: Any
    left: "BSTNode | None" = None
    right: "BSTNode | None" = None


class BinarySearchTree:
    """Float-keyed BST with balanced bulk construction and k-NN queries."""

    def __init__(self):
        self.root: BSTNode | None = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: list[tuple[float, Any]]) -> "BinarySearchTree":
        """Build a balanced tree from (key, value) pairs."""
        tree = cls()
        ordered = sorted(pairs, key=lambda kv: kv[0])

        def build(lo: int, hi: int) -> BSTNode | None:
            if lo >= hi:
                return None
            mid = (lo + hi) // 2
            node = BSTNode(ordered[mid][0], ordered[mid][1])
            node.left = build(lo, mid)
            node.right = build(mid + 1, hi)
            return node

        tree.root = build(0, len(ordered))
        tree._size = len(ordered)
        return tree

    def insert(self, key: float, value: Any) -> None:
        """Insert a pair (standard, unbalanced insertion)."""
        node = BSTNode(key, value)
        self._size += 1
        if self.root is None:
            self.root = node
            return
        cur = self.root
        while True:
            if key < cur.key:
                if cur.left is None:
                    cur.left = node
                    return
                cur = cur.left
            else:
                if cur.right is None:
                    cur.right = node
                    return
                cur = cur.right

    # ------------------------------------------------------------------
    def _inorder(self, node: BSTNode | None) -> Iterator[BSTNode]:
        if node is None:
            return
        yield from self._inorder(node.left)
        yield node
        yield from self._inorder(node.right)

    def items(self) -> list[tuple[float, Any]]:
        """All pairs in ascending key order."""
        return [(n.key, n.value) for n in self._inorder(self.root)]

    def height(self) -> int:
        """Tree height (0 for a single node, -1 for empty)."""

        def h(node: BSTNode | None) -> int:
            if node is None:
                return -1
            return 1 + max(h(node.left), h(node.right))

        return h(self.root)

    # ------------------------------------------------------------------
    def nearest(self, key: float, k: int = 4) -> list[tuple[float, Any]]:
        """The ``k`` pairs with keys closest to ``key`` (distance ties keep
        the smaller key).

        Walks the search path to find the insertion point, then merges
        outward over the two in-order frontiers — the BST equivalent of a
        two-pointer expansion around a sorted-array bisect.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if self.root is None:
            return []

        # two descending-stack iterators seeded from the root-to-leaf search
        # path: predecessors yield keys <= query in descending order,
        # successors yield keys > query in ascending order
        pred_stack: list[BSTNode] = []
        cur = self.root
        while cur is not None:
            if cur.key <= key:
                pred_stack.append(cur)
                cur = cur.right
            else:
                cur = cur.left

        succ_stack: list[BSTNode] = []
        cur = self.root
        while cur is not None:
            if cur.key > key:
                succ_stack.append(cur)
                cur = cur.left
            else:
                cur = cur.right

        def predecessors() -> Iterator[BSTNode]:
            while pred_stack:
                node = pred_stack.pop()
                yield node
                child = node.left
                while child is not None:
                    pred_stack.append(child)
                    child = child.right

        def successors() -> Iterator[BSTNode]:
            while succ_stack:
                node = succ_stack.pop()
                yield node
                child = node.right
                while child is not None:
                    succ_stack.append(child)
                    child = child.left

        pred = predecessors()
        succ = successors()
        lo = next(pred, None)
        hi = next(succ, None)
        out: list[tuple[float, Any]] = []
        while len(out) < min(k, self._size):
            if lo is None and hi is None:
                break
            if hi is None or (lo is not None and abs(lo.key - key) <= abs(hi.key - key)):
                out.append((lo.key, lo.value))
                lo = next(pred, None)
            else:
                out.append((hi.key, hi.value))
                hi = next(succ, None)
        return out
