"""Execution records (Section 5.1).

An execution record ``ER^k_n`` holds, for neural network ``k`` on input
problem ``n``, the achieved simulation quality loss and the execution time.
Records are the raw statistics behind the MLP's success-rate labels, the
Pareto analysis, and the (CumDivNorm_final, Qloss) KNN databases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data import InputProblem
from repro.fluid import FluidSimulator, PCGSolver, SimulationConfig, SimulationResult
from repro.models import TrainedModel

from .metrics import quality_loss

__all__ = [
    "ExecutionRecord",
    "ReferenceCache",
    "run_problem",
    "collect_execution_records",
    "success_rate",
]


@dataclass(frozen=True)
class ExecutionRecord:
    """Outcome of one (model, problem) run."""

    model_name: str
    problem_seed: int
    grid_size: int
    quality_loss: float
    execution_seconds: float
    cumdivnorm_final: float

    def meets(self, q: float, t: float) -> bool:
        """Whether this run satisfies the user requirement U(q, t)."""
        return self.quality_loss <= q and self.execution_seconds <= t


class ReferenceCache:
    """Run-and-cache PCG reference simulations per input problem."""

    def __init__(self, n_steps: int, config: SimulationConfig | None = None):
        self.n_steps = n_steps
        self.config = config or SimulationConfig()
        self._cache: dict[tuple[int, int], SimulationResult] = {}

    def reference(self, problem: InputProblem) -> SimulationResult:
        """The exact-solver result for a problem (cached)."""
        key = (problem.grid_size, problem.seed)
        if key not in self._cache:
            grid, source = problem.materialize()
            sim = FluidSimulator(grid, PCGSolver(), source, self.config)
            self._cache[key] = sim.run(self.n_steps)
        return self._cache[key]


def run_problem(
    solver,
    problem: InputProblem,
    n_steps: int,
    config: SimulationConfig | None = None,
) -> SimulationResult:
    """Run one problem with an arbitrary pressure solver."""
    grid, source = problem.materialize()
    sim = FluidSimulator(grid, solver, source, config or SimulationConfig())
    return sim.run(n_steps)


def collect_execution_records(
    models: list[TrainedModel],
    problems: list[InputProblem],
    reference: ReferenceCache,
    passes: int = 2,
) -> list[ExecutionRecord]:
    """Run every model on every problem and score against the reference.

    Execution time is the solver time of the approximate run (the part the
    networks replace); quality loss is Eq. 3 against the PCG density.
    """
    records: list[ExecutionRecord] = []
    for model in models:
        solver = model.solver(passes=passes)
        for problem in problems:
            ref = reference.reference(problem)
            res = run_problem(solver, problem, reference.n_steps, reference.config)
            records.append(
                ExecutionRecord(
                    model_name=model.name,
                    problem_seed=problem.seed,
                    grid_size=problem.grid_size,
                    quality_loss=quality_loss(ref.density, res.density),
                    execution_seconds=res.solve_seconds,
                    cumdivnorm_final=float(res.cumdivnorm_history[-1]),
                )
            )
    return records


def success_rate(records: list[ExecutionRecord], q: float, t: float) -> float:
    """Fraction of records meeting the requirement U(q, t) — the MLP label."""
    if not records:
        raise ValueError("no records")
    return float(np.mean([r.meets(q, t) for r in records]))
