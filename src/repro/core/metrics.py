"""Simulation-quality metrics.

* ``quality_loss`` — Eq. 3: the average relative error of the smoke density
  matrix against the reference (PCG) simulation.
* ``cum_divnorm`` — Eq. 9: the running sum of the per-step DivNorm values.
* ``pearson_r`` / ``spearman_r`` — Eqs. 10-11, used in Section 6.1 to show
  CumDivNorm and the running quality loss are strongly correlated.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "quality_loss",
    "cum_divnorm",
    "pearson_r",
    "spearman_r",
    "correlation_strength",
]


def quality_loss(reference_density: np.ndarray, approx_density: np.ndarray) -> float:
    """Average relative error of the smoke density matrix (Eq. 3).

    The raw Eq. 3 is the mean of ``rho* - rho``; the text describes it as
    the *average relative error*, so we take the mean absolute difference
    normalised by the reference's mean density (guarded against an all-empty
    reference frame).
    """
    if reference_density.shape != approx_density.shape:
        raise ValueError(
            f"density shapes differ: {reference_density.shape} vs {approx_density.shape}"
        )
    scale = float(np.abs(reference_density).mean())
    if scale < 1e-12:
        return float(np.abs(approx_density - reference_density).mean())
    return float(np.abs(approx_density - reference_density).mean() / scale)


def cum_divnorm(divnorm_history: np.ndarray) -> np.ndarray:
    """CumDivNorm (Eq. 9): cumulative sum of per-step DivNorm values."""
    return np.cumsum(np.asarray(divnorm_history, dtype=np.float64))


def pearson_r(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson product-moment correlation coefficient (Eq. 10)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("inputs must be 1-D arrays of equal length")
    if len(x) < 2:
        raise ValueError("need at least two points")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.sqrt((xc**2).sum() * (yc**2).sum())
    if denom < 1e-300:
        return 0.0
    return float((xc * yc).sum() / denom)


def _ranks(x: np.ndarray) -> np.ndarray:
    """Fractional ranks (ties get the average rank)."""
    order = np.argsort(x, kind="stable")
    ranks = np.empty(len(x), dtype=np.float64)
    ranks[order] = np.arange(1, len(x) + 1)
    # average ranks over ties
    sorted_x = x[order]
    i = 0
    while i < len(x):
        j = i
        while j + 1 < len(x) and sorted_x[j + 1] == sorted_x[i]:
            j += 1
        if j > i:
            avg = (i + j) / 2.0 + 1.0
            ranks[order[i : j + 1]] = avg
        i = j + 1
    return ranks


def spearman_r(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation coefficient (Eq. 11)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("inputs must be 1-D arrays of equal length")
    if len(x) < 2:
        raise ValueError("need at least two points")
    return pearson_r(_ranks(x), _ranks(y))


def correlation_strength(r: float) -> str:
    """The paper's qualitative bands: weak / medium / strong association."""
    a = abs(r)
    if a <= 0.29:
        return "weak" if a >= 0.10 else "none"
    if a <= 0.49:
        return "medium"
    return "strong"
