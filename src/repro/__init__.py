"""Smart-fluidnet: adaptive neural-network approximation for Eulerian fluid
simulation.

Reproduction of Dong, Liu, Xie & Li, "Adaptive Neural Network-Based
Approximation to Accelerate Eulerian Fluid Simulation" (SC '19).

Public surface
--------------
This package root is the stable facade: the names in ``__all__`` are the
supported entry points and keep working across refactors.

* simulation — :class:`FluidSimulator`, :class:`SimulationConfig`,
  :class:`SimulationResult`;
* scenarios — the workload registry: :class:`ScenarioSpec`,
  :func:`build_scenario`, :func:`parse_scenario`, :func:`list_scenarios`,
  :func:`register_scenario` (smoke plume, inflow jets, moving solids,
  free-surface liquids);
* solvers — :class:`PressureSolver` (the protocol), :class:`PCGSolver`,
  :class:`JacobiSolver`, :class:`MultigridSolver`, :class:`SpectralSolver`,
  :class:`NNProjectionSolver`, :class:`SolveResult`;
* the framework — :class:`SmartFluidnet`, :class:`UserRequirement`,
  :class:`OfflineConfig`;
* observability — the :mod:`repro.metrics` runtime-metrics module
  (:class:`MetricsRegistry`, :func:`get_metrics`), the :mod:`repro.trace`
  tracing/timeline module (:class:`Tracer`, :func:`get_tracer`) and
  :func:`repro.benchmark.run_bench`;
* the execution farm — :class:`JobSpec`, :class:`JobResult`,
  :class:`SimulationFarm`, :class:`FarmReport`.

Any other public name of :mod:`repro.fluid`, :mod:`repro.core` or
:mod:`repro.nn` remains reachable from the root through a deprecation shim
(emits :class:`DeprecationWarning`; import from the subpackage instead).

Subpackages
-----------
``repro.fluid``
    The mantaflow-equivalent substrate: 2-D MAC-grid smoke simulation with
    semi-Lagrangian advection, buoyancy and PCG/MICCG(0) pressure
    projection (plus Jacobi and multigrid solvers).
``repro.nn``
    A from-scratch NumPy neural-network framework (conv / pool / unpool /
    dense / dropout / residual, backprop, Adam, DivNorm loss, FLOP
    accounting).
``repro.models``
    Architecture specs, the Tompson and Yang baselines, training with
    rollout augmentation, and the NN pressure-solver adapter.
``repro.data``
    Reproducible input-problem datasets and training-frame collection.
``repro.core``
    Smart-fluidnet itself: the four transformation operations, the
    Auto-Keras-style accurate-model search, Pareto selection, the
    success-rate MLP, Eq. 8 filtering, the CumDivNorm/KNN quality
    predictors, and the quality-aware model-switch runtime (Algorithm 2).
``repro.farm``
    Concurrent simulation execution: job schema, fault-tolerant
    multiprocessing worker pool with timeouts/retries, atomic ``.npz``
    checkpoint/resume, and a batched NN-inference service that stacks
    same-shape pressure solves into one forward pass.
``repro.metrics``
    Runtime counters/timers with hierarchical scopes and JSON export.
``repro.trace``
    Structured tracing: nested spans, histogram metrics with percentiles,
    typed step-event streams, JSONL and Chrome ``trace_event`` export.
``repro.benchmark``
    The ``repro bench`` performance suite (writes ``BENCH_*.json``).
``repro.experiments``
    One module per table/figure of the paper's evaluation.
"""

from __future__ import annotations

import warnings

from . import metrics, trace
from .metrics import MetricsRegistry, get_metrics
from .trace import Tracer, get_tracer
from .core import OfflineConfig, SmartFluidnet, UserRequirement
from .fluid import (
    FluidSimulator,
    JacobiSolver,
    MultigridSolver,
    PCGSolver,
    PressureSolver,
    ScenarioSpec,
    SimulationConfig,
    SimulationResult,
    SolveResult,
    SpectralSolver,
    build_scenario,
    list_scenarios,
    parse_scenario,
    register_scenario,
)
from .farm import FarmReport, JobResult, JobSpec, SimulationFarm
from .models import NNProjectionSolver

__version__ = "1.10.0"

__all__ = [
    # framework
    "SmartFluidnet",
    "UserRequirement",
    "OfflineConfig",
    # simulation
    "FluidSimulator",
    "SimulationConfig",
    "SimulationResult",
    # scenario registry
    "ScenarioSpec",
    "register_scenario",
    "build_scenario",
    "parse_scenario",
    "list_scenarios",
    # solver protocol + implementations
    "PressureSolver",
    "SolveResult",
    "PCGSolver",
    "JacobiSolver",
    "MultigridSolver",
    "SpectralSolver",
    "NNProjectionSolver",
    # execution farm
    "JobSpec",
    "JobResult",
    "SimulationFarm",
    "FarmReport",
    # observability
    "metrics",
    "MetricsRegistry",
    "get_metrics",
    "trace",
    "Tracer",
    "get_tracer",
    "__version__",
]


def __getattr__(name: str):
    """Deprecation shim: resolve moved/unlisted names from the subpackages.

    Keeps historical root-level access (e.g. ``repro.MIC0Preconditioner``)
    working while steering callers to the canonical import location.
    """
    import importlib

    for subpackage in ("fluid", "core", "nn", "farm"):
        mod = importlib.import_module(f"repro.{subpackage}")
        if name in getattr(mod, "__all__", ()):
            warnings.warn(
                f"importing {name!r} from 'repro' is deprecated; "
                f"use 'repro.{subpackage}.{name}' instead",
                DeprecationWarning,
                stacklevel=2,
            )
            return getattr(mod, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
