"""Smart-fluidnet: adaptive neural-network approximation for Eulerian fluid
simulation.

Reproduction of Dong, Liu, Xie & Li, "Adaptive Neural Network-Based
Approximation to Accelerate Eulerian Fluid Simulation" (SC '19).

Subpackages
-----------
``repro.fluid``
    The mantaflow-equivalent substrate: 2-D MAC-grid smoke simulation with
    semi-Lagrangian advection, buoyancy and PCG/MICCG(0) pressure
    projection (plus Jacobi and multigrid solvers).
``repro.nn``
    A from-scratch NumPy neural-network framework (conv / pool / unpool /
    dense / dropout / residual, backprop, Adam, DivNorm loss, FLOP
    accounting).
``repro.models``
    Architecture specs, the Tompson and Yang baselines, training with
    rollout augmentation, and the NN pressure-solver adapter.
``repro.data``
    Reproducible input-problem datasets and training-frame collection.
``repro.core``
    Smart-fluidnet itself: the four transformation operations, the
    Auto-Keras-style accurate-model search, Pareto selection, the
    success-rate MLP, Eq. 8 filtering, the CumDivNorm/KNN quality
    predictors, and the quality-aware model-switch runtime (Algorithm 2).
``repro.experiments``
    One module per table/figure of the paper's evaluation.
"""

from .core import OfflineConfig, SmartFluidnet, UserRequirement

__version__ = "1.0.0"

__all__ = ["SmartFluidnet", "UserRequirement", "OfflineConfig", "__version__"]
