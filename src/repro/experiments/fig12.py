"""Figure 12: success rate with vs without the MLP controller.

Without the MLP, the runtime has every Pareto candidate available, starts
from the fastest and only ever upgrades (sticking once satisfied); with the
MLP, it runs on the filtered five models starting from the highest-scored
one.  The paper reports higher success rates with the MLP at every grid
size, at slightly lower raw speed (normalised performance 79-97%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import ReferenceCache
from repro.data import generate_problems

from .common import Artifacts, build_artifacts, format_table
from .runners import evaluate_adaptive, no_mlp_runtime

__all__ = ["Fig12Row", "Fig12Result", "run_fig12"]


@dataclass
class Fig12Row:
    grid_size: int
    success_with_mlp: float
    success_without_mlp: float
    perf_with_over_without: float  # normalised performance (paper: 0.79-0.97)


@dataclass
class Fig12Result:
    rows: list[Fig12Row]
    requirement_q: float

    def format(self) -> str:
        return format_table(
            ["Grid", "With MLP", "Without MLP", "Perf (with/without)"],
            [
                [
                    f"{r.grid_size}x{r.grid_size}",
                    f"{100 * r.success_with_mlp:.2f}%",
                    f"{100 * r.success_without_mlp:.2f}%",
                    f"{100 * r.perf_with_over_without:.0f}%",
                ]
                for r in self.rows
            ],
            title=f"Figure 12: MLP effectiveness (q <= {self.requirement_q:.4f})",
        )


def run_fig12(artifacts: Artifacts | None = None) -> Fig12Result:
    """Regenerate Figure 12 at the configured scale."""
    art = artifacts or build_artifacts()
    scale = art.scale
    fw = art.framework
    q_req = fw.requirement.q
    ablation_models, ablation_knn = no_mlp_runtime(fw)

    rows = []
    for grid in scale.grid_sizes:
        problems = generate_problems(scale.n_problems, grid, split="eval")
        reference = ReferenceCache(scale.n_steps)
        with_mlp = evaluate_adaptive(fw, problems, reference)
        without = evaluate_adaptive(
            fw,
            problems,
            reference,
            use_mlp_start=False,
            upgrade_only=True,
            models_override=ablation_models,
            knn_override=ablation_knn,
        )
        w_loss = np.array([s.quality_loss for s in with_mlp])
        o_loss = np.array([s.quality_loss for s in without])
        w_secs = float(np.mean([s.solve_seconds for s in with_mlp]))
        o_secs = float(np.mean([s.solve_seconds for s in without]))
        rows.append(
            Fig12Row(
                grid_size=grid,
                success_with_mlp=float((w_loss <= q_req).mean()),
                success_without_mlp=float((o_loss <= q_req).mean()),
                perf_with_over_without=o_secs / max(w_secs, 1e-12),
            )
        )
    return Fig12Result(rows=rows, requirement_q=q_req)
