"""Figure 6 + Section 6.1 correlations: DivNorm, CumDivNorm and Qloss^ts.

Runs one input problem in lockstep with an approximate model and the exact
PCG reference, recording after every time step the DivNorm, its running sum
(CumDivNorm) and the quality loss so far (Qloss^ts, the density error against
the reference frame).  The paper's observations:

1. DivNorm rises over the first steps and converges to a stable value;
2. CumDivNorm and Qloss^ts share the same growth trend, with strong
   Pearson (0.61) and Spearman (0.79) correlation across problems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import cum_divnorm, pearson_r, quality_loss, spearman_r
from repro.data import generate_problems
from repro.fluid import PCGSolver

from .common import Artifacts, build_artifacts, format_table
from .runners import density_history

__all__ = ["Fig6Result", "run_fig6"]


@dataclass
class Fig6Result:
    divnorm: np.ndarray  # per step
    cumdivnorm: np.ndarray
    qloss_ts: np.ndarray
    pearson: float
    spearman: float

    def format(self) -> str:
        steps = len(self.divnorm)
        idx = np.unique(np.linspace(0, steps - 1, min(8, steps)).astype(int))
        rows = [
            [int(i), self.divnorm[i], self.cumdivnorm[i], self.qloss_ts[i]] for i in idx
        ]
        table = format_table(
            ["Step", "DivNorm", "CumDivNorm", "Qloss^ts"],
            rows,
            title="Figure 6: per-step quality metrics",
        )
        return table + f"\nPearson rp = {self.pearson:.3f}, Spearman rs = {self.spearman:.3f}"


def run_fig6(
    artifacts: Artifacts | None = None,
    n_problems: int | None = None,
) -> Fig6Result:
    """Regenerate Figure 6 (first problem) and pooled correlations."""
    art = artifacts or build_artifacts()
    scale = art.scale
    n_problems = n_problems or min(3, scale.n_problems)
    problems = generate_problems(n_problems, scale.base_grid, split="eval")

    all_cdn: list[float] = []
    all_q: list[float] = []
    first: Fig6Result | None = None
    for problem in problems:
        ref_frames, _ = density_history(PCGSolver(), problem, scale.n_steps)
        solver = art.tompson.solver(passes=2)
        approx_frames, sim = density_history(solver, problem, scale.n_steps)
        divnorm = np.array([r.divnorm for r in sim.records])
        cdn = cum_divnorm(divnorm)
        q_ts = np.array(
            [quality_loss(ref_frames[i], approx_frames[i]) for i in range(scale.n_steps)]
        )
        all_cdn.extend(cdn.tolist())
        all_q.extend(q_ts.tolist())
        if first is None:
            first = Fig6Result(divnorm, cdn, q_ts, 0.0, 0.0)

    assert first is not None
    first.pearson = pearson_r(np.array(all_cdn), np.array(all_q))
    first.spearman = spearman_r(np.array(all_cdn), np.array(all_q))
    return first
