"""Figures 10-11 and Table 3: the runtime system under the microscope.

* Figure 10 — speedup of each Pareto candidate used *alone* for the whole
  simulation, next to Smart-fluidnet's adaptive speedup (which lands near
  the candidates' median: the price of adaptivity).
* Figure 11 — quality-loss distribution of each candidate alone vs Smart;
  Smart's variance is smaller than any fixed model's.
* Table 3 — for the MLP-selected runtime models: the MLP success
  probability and the share of adaptive solver time spent in each.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import ReferenceCache
from repro.data import generate_problems

from .common import Artifacts, build_artifacts, format_table
from .fig9_table2 import BoxStats
from .runners import evaluate_adaptive, evaluate_solver

__all__ = ["CandidateRow", "Fig10_11Result", "Table3Result", "run_fig10_11_table3"]


@dataclass
class CandidateRow:
    model: str
    speedup: float
    qloss: BoxStats
    success: float


@dataclass
class Fig10_11Result:
    candidates: list[CandidateRow]
    smart: CandidateRow
    requirement_q: float

    def format(self) -> str:
        rows = [
            [c.model, c.speedup, c.qloss.median, c.qloss.iqr, f"{100 * c.success:.1f}%"]
            for c in self.candidates + [self.smart]
        ]
        return format_table(
            ["Model", "Speedup", "Qloss median", "Qloss IQR", "Success"],
            rows,
            title="Figures 10-11: candidates alone vs Smart-fluidnet",
        )


@dataclass
class Table3Result:
    probabilities: dict[str, float]
    time_share: dict[str, float]

    def format(self) -> str:
        rows = [
            [name, f"{100 * self.probabilities.get(name, 0):.2f}%", f"{100 * share:.2f}%"]
            for name, share in sorted(self.time_share.items(), key=lambda kv: -kv[1])
        ]
        return format_table(
            ["Model", "Prob. (MLP)", "Time share"],
            rows,
            title="Table 3: runtime-model usage",
        )


def run_fig10_11_table3(
    artifacts: Artifacts | None = None,
) -> tuple[Fig10_11Result, Table3Result]:
    """Regenerate Figures 10-11 and Table 3 at the configured scale."""
    art = artifacts or build_artifacts()
    scale = art.scale
    fw = art.framework
    q_req = fw.requirement.q
    problems = generate_problems(scale.n_problems, scale.base_grid, split="eval")
    reference = ReferenceCache(scale.n_steps)
    pcg_secs = float(np.mean([reference.reference(p).solve_seconds for p in problems]))

    candidates = []
    for model in fw.candidates:
        stats = evaluate_solver(
            lambda m=model: m.solver(passes=fw.config.solver_passes), problems, reference
        )
        losses = np.array([s.quality_loss for s in stats])
        secs = float(np.mean([s.solve_seconds for s in stats]))
        candidates.append(
            CandidateRow(
                model=model.name,
                speedup=pcg_secs / max(secs, 1e-12),
                qloss=BoxStats.of(losses),
                success=float((losses <= q_req).mean()),
            )
        )

    smart_stats = evaluate_adaptive(fw, problems, reference)
    s_losses = np.array([s.quality_loss for s in smart_stats])
    s_secs = float(np.mean([s.solve_seconds for s in smart_stats]))
    smart = CandidateRow(
        model="smart-fluidnet",
        speedup=pcg_secs / max(s_secs, 1e-12),
        qloss=BoxStats.of(s_losses),
        success=float((s_losses <= q_req).mean()),
    )

    # Table 3: aggregate solver-time share over the adaptive runs
    share_totals: dict[str, float] = {}
    for s in smart_stats:
        for name, secs in s.stats.solve_seconds_per_model.items():
            share_totals[name] = share_totals.get(name, 0.0) + secs
    total = sum(share_totals.values()) or 1.0
    table3 = Table3Result(
        probabilities={sel.name: sel.success_prob for sel in fw.runtime_models},
        time_share={k: v / total for k, v in share_totals.items()},
    )
    return Fig10_11Result(candidates=candidates, smart=smart, requirement_q=q_req), table3
