"""Figure 5: training-loss curves of the five MLP topologies.

The paper trains MLP1-MLP5 on the execution-record samples and picks MLP3
for its balance of convergence speed, final loss and model size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import MLP_TOPOLOGIES, SuccessRateMLP

from .common import Artifacts, build_artifacts, format_table

__all__ = ["Fig5Result", "run_fig5"]


@dataclass
class Fig5Result:
    curves: dict[str, list[float]]  # per-epoch training loss per topology
    final: dict[str, float]
    param_counts: dict[str, int]

    def format(self) -> str:
        rows = [
            [name, self.param_counts[name], self.curves[name][0], self.final[name]]
            for name in sorted(self.curves)
        ]
        return format_table(
            ["MLP", "Params", "First-epoch loss", "Final loss"],
            rows,
            title="Figure 5: MLP topology training losses",
        )


def run_fig5(
    artifacts: Artifacts | None = None,
    epochs: int = 120,
    topologies: tuple[str, ...] = ("mlp1", "mlp2", "mlp3", "mlp4", "mlp5"),
) -> Fig5Result:
    """Train each MLP variant on the same samples and record loss curves."""
    art = artifacts or build_artifacts()
    fw = art.framework
    cand_names = {m.name for m in fw.candidates}
    records = [r for r in fw.records if r.model_name in cand_names]
    archs = {m.name: m.spec for m in fw.candidates}

    curves: dict[str, list[float]] = {}
    final: dict[str, float] = {}
    params: dict[str, int] = {}
    for name in topologies:
        if name not in MLP_TOPOLOGIES:
            raise ValueError(f"unknown topology {name!r}")
        mlp = SuccessRateMLP.fit(records, archs, topology=name, epochs=epochs, rng=7)
        curves[name] = list(mlp.history.train_loss)
        final[name] = mlp.history.final_loss
        params[name] = mlp.network.param_count()
    return Fig5Result(curves=curves, final=final, param_counts=params)
