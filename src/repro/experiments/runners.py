"""Run helpers shared by the experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import (
    QlossKNNPredictor,
    ReferenceCache,
    SelectedModel,
    SmartFluidnet,
    collect_execution_records,
    quality_loss,
    run_problem,
)
from repro.data import InputProblem, generate_problems
from repro.fluid import FluidSimulator, PCGSolver, SimulationConfig

__all__ = [
    "RunStat",
    "evaluate_solver",
    "evaluate_adaptive",
    "density_history",
    "no_mlp_runtime",
]


@dataclass
class RunStat:
    """Per-problem outcome of one method."""

    problem_seed: int
    quality_loss: float
    solve_seconds: float
    cumdivnorm_final: float
    restarted: bool = False
    stats: object = None


def evaluate_solver(
    solver_factory,
    problems: list[InputProblem],
    reference: ReferenceCache,
) -> list[RunStat]:
    """Run a (re-created per problem) solver over problems vs the reference.

    ``solver_factory`` is a zero-argument callable returning a fresh solver;
    per-problem re-creation keeps cached preconditioners from leaking
    between differently-shaped problems.
    """
    out = []
    for problem in problems:
        ref = reference.reference(problem)
        res = run_problem(solver_factory(), problem, reference.n_steps, reference.config)
        out.append(
            RunStat(
                problem_seed=problem.seed,
                quality_loss=quality_loss(ref.density, res.density),
                solve_seconds=res.solve_seconds,
                cumdivnorm_final=float(res.cumdivnorm_history[-1]),
            )
        )
    return out


def evaluate_adaptive(
    framework: SmartFluidnet,
    problems: list[InputProblem],
    reference: ReferenceCache,
    **run_kwargs,
) -> list[RunStat]:
    """Run Smart-fluidnet over problems vs the reference."""
    out = []
    for problem in problems:
        ref = reference.reference(problem)
        run = framework.run(problem, reference.n_steps, **run_kwargs)
        out.append(
            RunStat(
                problem_seed=problem.seed,
                quality_loss=quality_loss(ref.density, run.result.density),
                solve_seconds=run.solve_seconds,
                cumdivnorm_final=float(run.result.cumdivnorm_history[-1]),
                restarted=run.restarted,
                stats=run.stats,
            )
        )
    return out


def density_history(solver, problem: InputProblem, n_steps: int, config=None):
    """Run one problem, capturing the density field after every step."""
    grid, source = problem.materialize()
    histories = []
    sim = FluidSimulator(grid, solver, source, config or SimulationConfig())
    for _ in range(n_steps):
        sim.step()
        histories.append(grid.density.copy())
    return histories, sim


def no_mlp_runtime(
    framework: SmartFluidnet, small_problems: list[InputProblem] | None = None
) -> tuple[list[SelectedModel], QlossKNNPredictor]:
    """The Figure 12 ablation: all Pareto candidates, no MLP filtering.

    Builds SelectedModel wrappers (probability 0: unknown) for every Pareto
    candidate and KNN databases for the ones the MLP-filtered runtime does
    not already cover.
    """
    cfg = framework.config
    by_model: dict[str, list[float]] = {}
    by_time: dict[str, list[float]] = {}
    for r in framework.records:
        by_model.setdefault(r.model_name, []).append(r.quality_loss)
        by_time.setdefault(r.model_name, []).append(r.execution_seconds)
    selected = [
        SelectedModel(
            model=m,
            success_prob=0.0,
            model_seconds=float(np.mean(by_time[m.name])),
            expected_seconds=float(np.mean(by_time[m.name])),
        )
        for m in framework.candidates
    ]
    knn = QlossKNNPredictor(k=4)
    for name in framework.knn.models():
        # shared databases: copy the existing trees' contents
        pairs = framework.knn._trees[name].items()
        knn.add_database(name, pairs)
    missing = [s for s in selected if s.name not in set(knn.models())]
    if missing:
        small = small_problems or generate_problems(
            cfg.n_small_problems, cfg.small_grid_size, split="train"
        )
        ref = ReferenceCache(cfg.eval_steps, cfg.simulation)
        records = collect_execution_records(
            [s.model for s in missing], small, ref, cfg.solver_passes
        )
        per_model: dict[str, list[tuple[float, float]]] = {}
        for r in records:
            per_model.setdefault(r.model_name, []).append((r.cumdivnorm_final, r.quality_loss))
        for name, pairs in per_model.items():
            knn.add_database(name, pairs)
    return selected, knn
