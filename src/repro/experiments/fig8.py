"""Figure 8: speedup over PCG across grid sizes, Tompson vs Smart-fluidnet.

The paper reports speedups (solver execution time, relative to PCG) for the
five grid sizes, with Smart-fluidnet beating Tompson's model in every case
(1.46x on average).  The trained networks are fully convolutional, so the
same models evaluate at every grid size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import ReferenceCache
from repro.data import generate_problems

from .common import Artifacts, build_artifacts, format_table
from .runners import evaluate_adaptive, evaluate_solver

__all__ = ["Fig8Row", "Fig8Result", "run_fig8"]


@dataclass
class Fig8Row:
    grid_size: int
    pcg_seconds: float
    tompson_speedup: float
    smart_speedup: float


@dataclass
class Fig8Result:
    rows: list[Fig8Row]

    @property
    def mean_smart_over_tompson(self) -> float:
        """Smart's mean advantage over Tompson (the paper reports 1.46x)."""
        return float(np.mean([r.smart_speedup / r.tompson_speedup for r in self.rows]))

    def format(self) -> str:
        table = format_table(
            ["Grid", "PCG (s)", "Tompson speedup", "Smart speedup"],
            [[f"{r.grid_size}x{r.grid_size}", r.pcg_seconds, r.tompson_speedup, r.smart_speedup] for r in self.rows],
            title="Figure 8: speedup over PCG by grid size",
        )
        return table + f"\nmean Smart/Tompson = {self.mean_smart_over_tompson:.2f}x"


def run_fig8(artifacts: Artifacts | None = None) -> Fig8Result:
    """Regenerate Figure 8 at the configured scale."""
    art = artifacts or build_artifacts()
    scale = art.scale
    rows = []
    for grid in scale.grid_sizes:
        problems = generate_problems(scale.n_problems, grid, split="eval")
        reference = ReferenceCache(scale.n_steps)
        pcg_secs = float(np.mean([reference.reference(p).solve_seconds for p in problems]))
        tomp = evaluate_solver(lambda: art.tompson.solver(passes=2), problems, reference)
        smart = evaluate_adaptive(art.framework, problems, reference)
        t_mean = float(np.mean([s.solve_seconds for s in tomp]))
        s_mean = float(np.mean([s.solve_seconds for s in smart]))
        rows.append(
            Fig8Row(
                grid_size=grid,
                pcg_seconds=pcg_secs,
                tompson_speedup=pcg_secs / max(t_mean, 1e-12),
                smart_speedup=pcg_secs / max(s_mean, 1e-12),
            )
        )
    return Fig8Result(rows=rows)
