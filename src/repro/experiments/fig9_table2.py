"""Figure 9 and Table 2: quality-loss distributions and success rates by
grid size.

Figure 9 boxplots the per-problem quality loss of Tompson vs Smart-fluidnet
for each grid size; the paper's observations are that Smart's outputs sit
closer to the target and vary less.  Table 2 reports the percentage of input
problems whose simulation meets the quality requirement (the requirement is
Tompson's mean loss, the paper's convention).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import ReferenceCache
from repro.data import generate_problems

from .common import Artifacts, build_artifacts, format_table
from .runners import evaluate_adaptive, evaluate_solver

__all__ = ["BoxStats", "Fig9Table2Row", "Fig9Table2Result", "run_fig9_table2"]


@dataclass
class BoxStats:
    """Five-number summary of a sample (the paper's boxplots)."""

    median: float
    q1: float
    q3: float
    lo: float
    hi: float
    mean: float

    @classmethod
    def of(cls, values: np.ndarray) -> "BoxStats":
        v = np.asarray(values, dtype=np.float64)
        return cls(
            median=float(np.median(v)),
            q1=float(np.percentile(v, 25)),
            q3=float(np.percentile(v, 75)),
            lo=float(v.min()),
            hi=float(v.max()),
            mean=float(v.mean()),
        )

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


@dataclass
class Fig9Table2Row:
    grid_size: int
    tompson: BoxStats
    smart: BoxStats
    tompson_success: float
    smart_success: float


@dataclass
class Fig9Table2Result:
    rows: list[Fig9Table2Row]
    requirement_q: float

    def format(self) -> str:
        fig9 = format_table(
            ["Grid", "Tompson med [q1,q3]", "Smart med [q1,q3]"],
            [
                [
                    f"{r.grid_size}x{r.grid_size}",
                    f"{r.tompson.median:.4f} [{r.tompson.q1:.4f},{r.tompson.q3:.4f}]",
                    f"{r.smart.median:.4f} [{r.smart.q1:.4f},{r.smart.q3:.4f}]",
                ]
                for r in self.rows
            ],
            title="Figure 9: quality-loss distribution by grid size",
        )
        table2 = format_table(
            ["Grid", "Tompson success", "Smart success"],
            [
                [
                    f"{r.grid_size}x{r.grid_size}",
                    f"{100 * r.tompson_success:.2f}%",
                    f"{100 * r.smart_success:.2f}%",
                ]
                for r in self.rows
            ],
            title=f"Table 2: success rate at q <= {self.requirement_q:.4f}",
        )
        return fig9 + "\n\n" + table2


def run_fig9_table2(artifacts: Artifacts | None = None) -> Fig9Table2Result:
    """Regenerate Figure 9 and Table 2 at the configured scale."""
    art = artifacts or build_artifacts()
    scale = art.scale
    q_req = art.framework.requirement.q
    rows = []
    for grid in scale.grid_sizes:
        problems = generate_problems(scale.n_problems, grid, split="eval")
        reference = ReferenceCache(scale.n_steps)
        tomp = evaluate_solver(lambda: art.tompson.solver(passes=2), problems, reference)
        smart = evaluate_adaptive(art.framework, problems, reference)
        t_loss = np.array([s.quality_loss for s in tomp])
        s_loss = np.array([s.quality_loss for s in smart])
        rows.append(
            Fig9Table2Row(
                grid_size=grid,
                tompson=BoxStats.of(t_loss),
                smart=BoxStats.of(s_loss),
                tompson_success=float((t_loss <= q_req).mean()),
                smart_success=float((s_loss <= q_req).mean()),
            )
        )
    return Fig9Table2Result(rows=rows, requirement_q=q_req)
