"""Figure 13: sensitivity of the success rate to the check interval.

The paper sweeps the runtime's check interval and finds that success drops
as the interval grows (switching reacts too slowly), with 5 the best
setting; the minimum interval is bounded below by the two skipped steps
plus the three trend-fit points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import ReferenceCache
from repro.data import generate_problems

from .common import Artifacts, build_artifacts, format_table
from .runners import evaluate_adaptive

__all__ = ["Fig13Result", "run_fig13"]

PAPER_INTERVALS = (5, 8, 10, 12, 14, 16, 20)


@dataclass
class Fig13Result:
    intervals: list[int]
    success_rates: list[float]
    requirement_q: float

    def format(self) -> str:
        return format_table(
            ["Check interval", "Success rate"],
            [[i, f"{100 * s:.2f}%"] for i, s in zip(self.intervals, self.success_rates)],
            title=f"Figure 13: check-interval sensitivity (q <= {self.requirement_q:.4f})",
        )

    def best_interval(self) -> int:
        return self.intervals[int(np.argmax(self.success_rates))]


def run_fig13(
    artifacts: Artifacts | None = None,
    intervals: tuple[int, ...] | None = None,
) -> Fig13Result:
    """Regenerate Figure 13 at the configured scale."""
    art = artifacts or build_artifacts()
    scale = art.scale
    fw = art.framework
    q_req = fw.requirement.q
    # intervals larger than the run leave no decision point at all: with the
    # configured skip there must be at least one check before the last step
    skip = fw.config.skip_first
    chosen = [i for i in (intervals or PAPER_INTERVALS) if skip + i < scale.n_steps]
    if not chosen:
        chosen = [5]
    problems = generate_problems(scale.n_problems, scale.base_grid, split="eval")
    reference = ReferenceCache(scale.n_steps)
    rates = []
    for interval in chosen:
        stats = evaluate_adaptive(fw, problems, reference, check_interval=interval)
        losses = np.array([s.quality_loss for s in stats])
        rates.append(float((losses <= q_req).mean()))
    return Fig13Result(intervals=chosen, success_rates=rates, requirement_q=q_req)
