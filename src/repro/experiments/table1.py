"""Table 1: execution time and quality loss of PCG / Tompson / Yang.

The paper reports, averaged over its input problems, the Poisson-solve
execution time and the mean quality loss of the exact PCG solver and the two
neural baselines.  The expected shape: PCG is orders of magnitude slower
with (by definition here) zero loss; Yang is faster than Tompson but several
times less accurate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import ReferenceCache
from repro.data import generate_problems
from repro.fluid import PCGSolver

from .common import Artifacts, build_artifacts, format_table
from .runners import evaluate_solver

__all__ = ["Table1Row", "Table1Result", "run_table1"]

#: paper-reported values for side-by-side comparison (ms, qloss)
PAPER_TABLE1 = {
    "pcg": (2.34e8, None),
    "tompson": (7.19e4, 1.3e-2),
    "yang": (3.20e4, 4.9e-2),
}


@dataclass
class Table1Row:
    method: str
    execution_ms: float
    avg_quality_loss: float | None


@dataclass
class Table1Result:
    rows: list[Table1Row]

    def format(self) -> str:
        return format_table(
            ["Method", "Execution Time (ms)", "Avg. Quality Loss"],
            [[r.method, r.execution_ms, "--" if r.avg_quality_loss is None else r.avg_quality_loss] for r in self.rows],
            title="Table 1: solver comparison",
        )

    def by_method(self, name: str) -> Table1Row:
        return next(r for r in self.rows if r.method == name)


def run_table1(artifacts: Artifacts | None = None) -> Table1Result:
    """Regenerate Table 1 at the configured scale."""
    art = artifacts or build_artifacts()
    scale = art.scale
    problems = generate_problems(scale.n_problems, scale.base_grid, split="eval")
    reference = ReferenceCache(scale.n_steps)

    # the paper's baseline cost is its standard MICCG(0) implementation —
    # time the matrix-free reference backend, not the geometry-compiled
    # kernels (the two are bitwise identical in output, so the quality
    # reference itself still comes from the fast default)
    pcg_stats = evaluate_solver(
        lambda: PCGSolver(backend="reference"), problems, reference
    )
    pcg_ms = float(np.mean([s.solve_seconds for s in pcg_stats]) * 1000.0)
    rows = [Table1Row("pcg", pcg_ms, None)]
    for name, model in (("tompson", art.tompson), ("yang", art.yang)):
        stats = evaluate_solver(lambda m=model: m.solver(passes=2), problems, reference)
        rows.append(
            Table1Row(
                method=name,
                execution_ms=float(np.mean([s.solve_seconds for s in stats]) * 1000.0),
                avg_quality_loss=float(np.mean([s.quality_loss for s in stats])),
            )
        )
    return Table1Result(rows=rows)
