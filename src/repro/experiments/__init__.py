"""Experiment harness: one module per table/figure of the paper."""

from .common import Artifacts, ExperimentScale, build_artifacts, format_table, get_scale
from .runners import (
    RunStat,
    density_history,
    evaluate_adaptive,
    evaluate_solver,
    no_mlp_runtime,
)
from .table1 import PAPER_TABLE1, Table1Result, Table1Row, run_table1
from .fig1 import Fig1Result, run_fig1
from .fig3 import Fig3Point, Fig3Result, run_fig3
from .fig5 import Fig5Result, run_fig5
from .fig6 import Fig6Result, run_fig6
from .fig8 import Fig8Result, Fig8Row, run_fig8
from .fig9_table2 import BoxStats, Fig9Table2Result, Fig9Table2Row, run_fig9_table2
from .fig10_11_table3 import (
    CandidateRow,
    Fig10_11Result,
    Table3Result,
    run_fig10_11_table3,
)
from .fig12 import Fig12Result, Fig12Row, run_fig12
from .fig13 import PAPER_INTERVALS, Fig13Result, run_fig13
from .table4 import Table4Result, Table4Row, run_table4
from .sec4_sensitivity import SensitivityResult, run_sec4_sensitivity
from .report import REPORT_SECTIONS, generate_report

__all__ = [
    "Artifacts",
    "ExperimentScale",
    "build_artifacts",
    "format_table",
    "get_scale",
    "RunStat",
    "density_history",
    "evaluate_adaptive",
    "evaluate_solver",
    "no_mlp_runtime",
    "PAPER_TABLE1",
    "Table1Result",
    "Table1Row",
    "run_table1",
    "Fig1Result",
    "run_fig1",
    "Fig3Point",
    "Fig3Result",
    "run_fig3",
    "Fig5Result",
    "run_fig5",
    "Fig6Result",
    "run_fig6",
    "Fig8Result",
    "Fig8Row",
    "run_fig8",
    "BoxStats",
    "Fig9Table2Result",
    "Fig9Table2Row",
    "run_fig9_table2",
    "CandidateRow",
    "Fig10_11Result",
    "Table3Result",
    "run_fig10_11_table3",
    "Fig12Result",
    "Fig12Row",
    "run_fig12",
    "PAPER_INTERVALS",
    "Fig13Result",
    "run_fig13",
    "Table4Result",
    "Table4Row",
    "run_table4",
    "SensitivityResult",
    "run_sec4_sensitivity",
    "REPORT_SECTIONS",
    "generate_report",
]
