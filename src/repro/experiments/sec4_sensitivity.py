"""Section 4 sensitivity studies of the transformation parameters.

The paper varies four construction parameters and observes the effect on
simulation quality:

1. pruning more than one layer causes large quality violations;
2. pooling 10% of neurons matches 5% quality at better speed, while 20-30%
   lose too much;
3. dropout rates of 5% and 10% beat 15%;
4. applying dropout to 15-20 models yields the 2-5 runtime models the
   scheduler wants.

We reproduce each sweep at reduced scale: pool counts substitute for neuron
percentages (our pooling operates on whole stages), and quality is measured
as mean Qloss over evaluation problems after a fixed fine-tune.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import ReferenceCache, dropout, pooling, shallow
from repro.data import generate_problems
from repro.models import TrainedModel, train_model

from .common import Artifacts, build_artifacts, format_table
from .runners import evaluate_solver

__all__ = ["SensitivityResult", "run_sec4_sensitivity"]


@dataclass
class SensitivityResult:
    prune_depth: dict[int, float]  # layers pruned -> mean qloss
    pool_stages: dict[int, float]  # stages pooled -> mean qloss
    dropout_rate: dict[float, float]  # p -> mean qloss
    n_dropout_models: dict[int, int]  # n_dropout -> family size

    def format(self) -> str:
        parts = [
            format_table(
                ["Layers pruned", "Mean Qloss"],
                [[k, v] for k, v in sorted(self.prune_depth.items())],
                title="Sensitivity (1): pruning depth",
            ),
            format_table(
                ["Stages pooled", "Mean Qloss"],
                [[k, v] for k, v in sorted(self.pool_stages.items())],
                title="Sensitivity (2): pooling amount",
            ),
            format_table(
                ["Dropout rate", "Mean Qloss"],
                [[k, v] for k, v in sorted(self.dropout_rate.items())],
                title="Sensitivity (3): dropout rate",
            ),
            format_table(
                ["# dropout models", "Family size"],
                [[k, v] for k, v in sorted(self.n_dropout_models.items())],
                title="Sensitivity (4): dropout-model count",
            ),
        ]
        return "\n\n".join(parts)


def _mean_qloss(model: TrainedModel, problems, reference, passes=2) -> float:
    stats = evaluate_solver(lambda: model.solver(passes=passes), problems, reference)
    return float(np.mean([s.quality_loss for s in stats]))


def run_sec4_sensitivity(artifacts: Artifacts | None = None) -> SensitivityResult:
    """Regenerate the Section 4 sensitivity sweeps at reduced scale."""
    art = artifacts or build_artifacts()
    scale = art.scale
    data = art.train_data
    base = art.tompson
    rng = np.random.default_rng(11)
    problems = generate_problems(max(2, scale.n_problems // 2), scale.base_grid, split="eval")
    reference = ReferenceCache(scale.n_steps)
    tune = dict(epochs=art.scale.offline.construction.fine_tune_epochs, rng=rng)

    def tuned(model: TrainedModel) -> TrainedModel:
        return train_model(model.spec, data, network=model.network, **tune)

    # (1) pruning depth: 1 vs 2 deleted stages
    prune_depth = {}
    one = tuned(shallow(base, stage=2, rng=rng))
    prune_depth[1] = _mean_qloss(one, problems, reference)
    two = tuned(shallow(one, stage=1, rng=rng))
    prune_depth[2] = _mean_qloss(two, problems, reference)

    # (2) pooling amount: 1, 2, 3 pooled stages
    pool_stages = {}
    cur = base
    for n_pooled in (1, 2, 3):
        unpooled = [i for i, s in enumerate(cur.spec.stages) if s.pool == 1]
        cur = tuned(pooling(cur, stage=int(rng.choice(unpooled)), rng=rng))
        pool_stages[n_pooled] = _mean_qloss(cur, problems, reference)

    # (3) dropout rate
    dropout_rate = {}
    for p in (0.05, 0.10, 0.15):
        model = tuned(dropout(base, stage=2, p=p, rng=rng))
        dropout_rate[p] = _mean_qloss(model, problems, reference)

    # (4) number of dropout models: family size bookkeeping (cheap: no tuning)
    from repro.core import ConstructionConfig, construct_model_family

    n_dropout_models = {}
    for n_drop in (2, 4, 6):
        cfg = ConstructionConfig(
            n_shallow=2, narrows_per_model=1, n_dropout=n_drop, fine_tune_epochs=0
        )
        family = construct_model_family(base, data, cfg, rng=rng)
        n_dropout_models[n_drop] = len(family)

    return SensitivityResult(
        prune_depth=prune_depth,
        pool_stages=pool_stages,
        dropout_rate=dropout_rate,
        n_dropout_models=n_dropout_models,
    )
