"""Full evaluation report: run every experiment and emit one document.

Used by ``python -m repro experiment ...`` for single tables and by
:func:`generate_report` / the benchmark suite for the complete set.  The
report interleaves each regenerated table with the paper's reference
numbers, mirroring EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

from .common import Artifacts, build_artifacts

__all__ = ["generate_report", "REPORT_SECTIONS"]

#: (section title, experiment runner name, paper reference line)
REPORT_SECTIONS: list[tuple[str, str, str]] = [
    ("Table 1 — solver comparison", "run_table1",
     "paper: PCG 2.34e8 ms; Tompson 7.19e4 ms / 0.013; Yang 3.20e4 ms / 0.049"),
    ("Figure 1 — quality-loss distribution", "run_fig1",
     "paper: 65.42% of inputs violate q = 0.01"),
    ("Figure 3 — family scatter + Pareto front", "run_fig3",
     "paper: 133 models, 14 selected"),
    ("Figure 5 — MLP topologies", "run_fig5",
     "paper: MLP3 chosen for accuracy/size balance"),
    ("Figure 6 — CumDivNorm vs quality", "run_fig6",
     "paper: rp = 0.61, rs = 0.79"),
    ("Figure 8 — speedup by grid size", "run_fig8",
     "paper: Smart 590x over PCG, 1.46x over Tompson"),
    ("Figure 9 / Table 2 — quality + success by grid size", "run_fig9_table2",
     "paper: Smart success up to 91.05% vs Tompson 46.38% at 1024^2"),
    ("Figures 10-11 / Table 3 — runtime analysis", "run_fig10_11_table3",
     "paper: candidates 141-541x; top model 50.56% of time"),
    ("Figure 12 — MLP effectiveness", "run_fig12",
     "paper: 88.86% mean success with MLP, higher everywhere"),
    ("Figure 13 — check interval", "run_fig13",
     "paper: best at interval 5"),
    ("Table 4 — resource usage", "run_table4",
     "paper @512^2: PCG 1250M/332MB, Tompson 243.79M/299MB, Smart 110.97M/1069MB"),
    ("Section 4 — sensitivity studies", "run_sec4_sensitivity",
     "paper: 1 pruned layer max; 10% pooling; 10% dropout; 15-20 dropout models"),
]


def generate_report(
    artifacts: Artifacts | None = None,
    sections: list[str] | None = None,
    output: str | Path | None = None,
) -> str:
    """Run the selected experiments and return the combined report text."""
    import repro.experiments as experiments

    art = artifacts or build_artifacts()
    parts = [
        "Smart-fluidnet evaluation report",
        f"scale = {art.scale.name}, grids = {art.scale.grid_sizes}, "
        f"problems = {art.scale.n_problems}, steps = {art.scale.n_steps}",
        f"requirement: qloss <= {art.requirement.q:.4f}, t <= {art.requirement.t:.3f}s",
        "=" * 72,
    ]
    for title, runner_name, paper in REPORT_SECTIONS:
        if sections is not None and runner_name not in sections:
            continue
        runner = getattr(experiments, runner_name)
        result = runner(art)
        parts.append(f"\n## {title}\n({paper})\n")
        if isinstance(result, tuple):
            parts.extend(part.format() for part in result)
        else:
            parts.append(result.format())
    text = "\n".join(parts)
    if output is not None:
        Path(output).write_text(text + "\n")
    return text
