"""Figure 3: scatter of quality loss vs time cost over the model family.

Every constructed model contributes one (time, quality-loss) point from the
construction-time execution records; the Pareto-selected candidates are the
red points of the paper's figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .common import Artifacts, build_artifacts, format_table

__all__ = ["Fig3Point", "Fig3Result", "run_fig3"]


@dataclass
class Fig3Point:
    model: str
    time_seconds: float
    quality_loss: float
    selected: bool


@dataclass
class Fig3Result:
    points: list[Fig3Point]

    @property
    def n_models(self) -> int:
        return len(self.points)

    @property
    def n_selected(self) -> int:
        return sum(p.selected for p in self.points)

    def format(self) -> str:
        rows = [
            [p.model, p.time_seconds, p.quality_loss, "*" if p.selected else ""]
            for p in sorted(self.points, key=lambda p: p.time_seconds)
        ]
        return format_table(
            ["Model", "Time (s)", "Quality loss", "Pareto"],
            rows,
            title=f"Figure 3: model family scatter ({self.n_selected}/{self.n_models} selected)",
        )


def run_fig3(artifacts: Artifacts | None = None) -> Fig3Result:
    """Regenerate Figure 3 from the framework's construction records."""
    art = artifacts or build_artifacts()
    fw = art.framework
    by_model: dict[str, list] = {}
    for r in fw.records:
        by_model.setdefault(r.model_name, []).append(r)
    selected = {m.name for m in fw.candidates}
    points = [
        Fig3Point(
            model=name,
            time_seconds=float(np.mean([r.execution_seconds for r in recs])),
            quality_loss=float(np.mean([r.quality_loss for r in recs])),
            selected=name in selected,
        )
        for name, recs in by_model.items()
    ]
    return Fig3Result(points=points)
