"""Figure 1: distribution of the Tompson model's quality loss.

The paper histograms the quality loss of Tompson's model over its input
problems, showing a wide spread (most mass between 0.01 and 0.02), which
motivates using multiple models: a fixed model violates tight requirements
on a large fraction of inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import ReferenceCache
from repro.data import generate_problems

from .common import Artifacts, build_artifacts, format_table
from .runners import evaluate_solver

__all__ = ["Fig1Result", "run_fig1"]


@dataclass
class Fig1Result:
    bin_edges: np.ndarray
    proportions: np.ndarray
    losses: np.ndarray

    def format(self) -> str:
        rows = [
            [f"[{self.bin_edges[i]:.3f}, {self.bin_edges[i + 1]:.3f})", f"{100 * p:.1f}%"]
            for i, p in enumerate(self.proportions)
        ]
        return format_table(
            ["Quality-loss bin", "Proportion of inputs"],
            rows,
            title="Figure 1: Tompson quality-loss distribution",
        )

    def violation_rate(self, q: float) -> float:
        """Fraction of inputs whose loss exceeds a requirement ``q``."""
        return float((self.losses > q).mean())


def run_fig1(artifacts: Artifacts | None = None, n_bins: int = 10) -> Fig1Result:
    """Regenerate Figure 1 at the configured scale."""
    art = artifacts or build_artifacts()
    scale = art.scale
    problems = generate_problems(scale.n_problems, scale.base_grid, split="eval")
    reference = ReferenceCache(scale.n_steps)
    stats = evaluate_solver(lambda: art.tompson.solver(passes=2), problems, reference)
    losses = np.array([s.quality_loss for s in stats])
    edges = np.linspace(0.0, max(losses.max() * 1.05, 1e-6), n_bins + 1)
    counts, _ = np.histogram(losses, bins=edges)
    return Fig1Result(bin_edges=edges, proportions=counts / len(losses), losses=losses)
