"""Table 4: resource usage (FLOP per step, memory) of PCG / Tompson / Smart.

FLOPs are analytic (hardware-independent): the PCG count follows its
measured iteration count on a representative problem; network counts come
from the static accounting.  Memory is the resident float32 footprint: PCG's
solver fields, one network's parameters + activations for Tompson, and all
runtime models resident at once for Smart-fluidnet — which is why Smart
trades higher memory for fewer FLOPs, exactly the shape of the paper's
table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import ReferenceCache
from repro.data import generate_problems
from repro.fluid import PCGSolver, divergence, poisson_rhs
from repro.nn import pcg_flops, pcg_memory_bytes

from .common import Artifacts, build_artifacts, format_table

__all__ = ["Table4Row", "Table4Result", "run_table4"]


@dataclass
class Table4Row:
    method: str
    mflop_single_step: float
    memory_mb: float


@dataclass
class Table4Result:
    rows: list[Table4Row]
    grid_size: int

    def format(self) -> str:
        return format_table(
            ["Method", "FLOP single step (M)", "Memory (MB)"],
            [[r.method, r.mflop_single_step, r.memory_mb] for r in self.rows],
            title=f"Table 4: resource usage at {self.grid_size}x{self.grid_size}",
        )

    def by_method(self, name: str) -> Table4Row:
        return next(r for r in self.rows if r.method == name)


def run_table4(artifacts: Artifacts | None = None) -> Table4Result:
    """Regenerate Table 4 at the configured scale."""
    art = artifacts or build_artifacts()
    scale = art.scale
    grid_size = scale.base_grid
    problem = generate_problems(1, grid_size, split="eval")[0]

    # PCG: measure the iteration count of a representative single step
    grid, source = problem.materialize()
    source.apply(grid, 0.05)
    b = poisson_rhs(divergence(grid), grid.solid, dt=0.05, rho=1.0, dx=grid.dx)
    res = PCGSolver().solve(b, grid.solid)
    n_fluid = int(grid.fluid.sum())
    n_cells = grid_size * grid_size
    pcg_row = Table4Row(
        method="pcg",
        mflop_single_step=pcg_flops(n_fluid, res.iterations) / 1e6,
        memory_mb=pcg_memory_bytes(n_cells) / (1024 * 1024),
    )

    shape = (grid_size, grid_size)
    tomp_usage = art.tompson.solver(passes=art.framework.config.solver_passes).resource_usage(shape)
    tomp_row = Table4Row("tompson", tomp_usage.mflops, tomp_usage.memory_mb)

    # Smart: FLOPs weighted by the runtime models' observed usage; memory is
    # all runtime models resident simultaneously
    usages = [
        sel.model.solver(passes=art.framework.config.solver_passes).resource_usage(shape)
        for sel in art.framework.runtime_models
    ]
    smart_flops = float(np.mean([u.flops for u in usages]))
    smart_memory = float(sum(u.memory_bytes for u in usages))
    smart_row = Table4Row("smart-fluidnet", smart_flops / 1e6, smart_memory / (1024 * 1024))

    return Table4Result(rows=[pcg_row, tomp_row, smart_row], grid_size=grid_size)
