"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``     run one smoke-plume problem and print/render the result
``experiment``   regenerate one of the paper's tables/figures
``offline``      build the Smart-fluidnet offline phase and save it
``report``       run every experiment and write one combined report
``adaptive``     run the adaptive online phase from a saved framework
"""

from __future__ import annotations

import argparse
import sys
import time

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "table1": "run_table1",
    "fig1": "run_fig1",
    "fig3": "run_fig3",
    "fig5": "run_fig5",
    "fig6": "run_fig6",
    "fig8": "run_fig8",
    "fig9": "run_fig9_table2",
    "table2": "run_fig9_table2",
    "fig13": "run_fig13",
    "table4": "run_table4",
    "sec4": "run_sec4_sensitivity",
    "fig12": "run_fig12",
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Smart-fluidnet reproduction (SC'19) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one smoke-plume input problem")
    sim.add_argument("--grid", type=int, default=32)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--steps", type=int, default=16)
    sim.add_argument("--solver", choices=["pcg", "jacobi-pcg", "multigrid"], default="pcg")
    sim.add_argument("--ascii", action="store_true", help="print an ASCII rendering")
    sim.add_argument("--pgm", type=str, default=None, help="save the final frame as PGM")

    exp = sub.add_parser("experiment", help="regenerate a table/figure of the paper")
    exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    exp.add_argument("--scale", choices=["ci", "default", "paper"], default=None)

    off = sub.add_parser("offline", help="build the offline phase and save it")
    off.add_argument("output", type=str, help="directory to save the framework into")
    off.add_argument("--grid", type=int, default=32)
    off.add_argument("--seed", type=int, default=0)

    rep = sub.add_parser("report", help="run every experiment and write one report")
    rep.add_argument("--scale", choices=["ci", "default", "paper"], default=None)
    rep.add_argument("--output", type=str, default=None)

    ada = sub.add_parser("adaptive", help="run the adaptive phase from a saved framework")
    ada.add_argument("framework", type=str, help="directory saved by 'offline'")
    ada.add_argument("--grid", type=int, default=32)
    ada.add_argument("--seed", type=int, default=0)
    ada.add_argument("--steps", type=int, default=16)
    return parser


def _cmd_simulate(args) -> int:
    from repro.data import InputProblem
    from repro.fluid import FluidSimulator, MultigridSolver, PCGSolver
    from repro import viz

    solver = {
        "pcg": lambda: PCGSolver(),
        "jacobi-pcg": lambda: PCGSolver(preconditioner="jacobi"),
        "multigrid": lambda: MultigridSolver(),
    }[args.solver]()
    grid, source = InputProblem(args.grid, args.seed).materialize()
    sim = FluidSimulator(grid, solver, source)
    t0 = time.perf_counter()
    result = sim.run(args.steps)
    dt = time.perf_counter() - t0
    print(
        f"{args.grid}x{args.grid}, {args.steps} steps with {args.solver}: "
        f"{dt:.2f}s total, {result.solve_seconds:.2f}s in the pressure solver"
    )
    if args.ascii:
        print(viz.to_ascii(result.density))
    if args.pgm:
        path = viz.save_pgm(result.density, args.pgm)
        print(f"wrote {path}")
    return 0


def _cmd_experiment(args) -> int:
    import repro.experiments as experiments
    from repro.experiments import build_artifacts, get_scale

    artifacts = build_artifacts(get_scale(args.scale))
    runner = getattr(experiments, _EXPERIMENTS[args.name])
    result = runner(artifacts)
    if isinstance(result, tuple):
        for part in result:
            print(part.format())
    else:
        print(result.format())
    return 0


def _cmd_offline(args) -> int:
    from repro.core import OfflineConfig, SmartFluidnet
    from repro.io import save_framework

    cfg = OfflineConfig(grid_size=args.grid)
    framework = SmartFluidnet.build_offline(config=cfg, rng=args.seed, verbose=True)
    path = save_framework(framework, args.output)
    print(f"saved framework with {len(framework.runtime_models)} runtime models to {path}")
    return 0


def _cmd_report(args) -> int:
    from repro.experiments import build_artifacts, generate_report, get_scale

    text = generate_report(build_artifacts(get_scale(args.scale)), output=args.output)
    print(text)
    if args.output:
        print(f"\nwrote {args.output}")
    return 0


def _cmd_adaptive(args) -> int:
    from repro.data import InputProblem
    from repro.io import load_framework

    framework = load_framework(args.framework)
    run = framework.run(InputProblem(args.grid, args.seed), args.steps)
    print(f"requirement: qloss <= {framework.requirement.q:.4f}")
    print(f"restarted: {run.restarted}")
    print(f"steps per model: {run.stats.steps_per_model}")
    for sw in run.stats.switches:
        print(f"  step {sw.step}: {sw.from_model} -> {sw.to_model}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return {
        "simulate": _cmd_simulate,
        "experiment": _cmd_experiment,
        "offline": _cmd_offline,
        "report": _cmd_report,
        "adaptive": _cmd_adaptive,
    }[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
