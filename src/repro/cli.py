"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``     run one scenario and print/render the result
``scenarios``    list the registered scenarios and their parameters
``experiment``   regenerate one of the paper's tables/figures
``offline``      build the Smart-fluidnet offline phase and save it
``report``       run every experiment and write one combined report
``adaptive``     run the adaptive online phase from a saved framework
``bench``        run the performance suite and write ``BENCH_<tag>.json``
``farm``         run a fleet of simulation jobs on the concurrent farm
``top``          run a farm fleet with a live terminal status view
``serve``        run the simulation service on a local unix socket
``submit``       submit one job to a running service and await the result
``health``       query a running service's SLO burn-rate health report
``trace``        summarise or dump a trace file written by ``--trace``

``simulate``, ``farm``, ``top`` and ``bench`` share one ``--scenario``
selector in the form ``name[:key=val,key=val]`` (e.g.
``--scenario dam_break:grid=64,gravity=3.0``); ``repro scenarios`` lists
the registry with per-scenario parameter docs.

``simulate`` and ``adaptive`` accept ``--json`` for structured output: the
per-step records plus the run's full metrics profile, suitable for piping
into analysis tools.  ``simulate``, ``adaptive`` and ``farm`` accept
``--trace PATH`` to record a structured timeline (nested spans, typed step
events, latency histograms) and write it in Chrome ``trace_event`` format —
loadable in Perfetto / ``chrome://tracing`` and readable back with
``repro trace``.  The common ``--grid/--seed/--steps`` options are defined
once on shared parent parsers.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "table1": "run_table1",
    "fig1": "run_fig1",
    "fig3": "run_fig3",
    "fig5": "run_fig5",
    "fig6": "run_fig6",
    "fig8": "run_fig8",
    "fig9": "run_fig9_table2",
    "table2": "run_fig9_table2",
    "fig13": "run_fig13",
    "table4": "run_table4",
    "sec4": "run_sec4_sensitivity",
    "fig12": "run_fig12",
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    # shared options: every problem-running command takes the same
    # --grid/--seed (and, where stepping, --steps) arguments
    problem = argparse.ArgumentParser(add_help=False)
    problem.add_argument("--grid", type=int, default=32, help="grid resolution (NxN)")
    problem.add_argument("--seed", type=int, default=0, help="input-problem seed")
    scenario = argparse.ArgumentParser(add_help=False)
    scenario.add_argument(
        "--scenario", type=str, default="smoke_plume", metavar="NAME[:K=V,...]",
        help="scenario selector from the registry, e.g. smoke_plume or "
        "dam_break:grid=64 (see 'repro scenarios'); scenario parameters "
        "override --grid",
    )
    stepping = argparse.ArgumentParser(add_help=False)
    stepping.add_argument("--steps", type=int, default=16, help="simulation steps")
    tracing = argparse.ArgumentParser(add_help=False)
    tracing.add_argument(
        "--trace", type=str, default=None, metavar="PATH",
        help="record a structured trace (spans + step events + histograms) "
        "and write it as a Chrome trace_event file at PATH",
    )

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Smart-fluidnet reproduction (SC'19) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser(
        "simulate",
        parents=[problem, scenario, stepping, tracing],
        help="run one scenario (default: the smoke-plume input problem)",
    )
    sim.add_argument(
        "--solver",
        choices=["pcg", "jacobi-pcg", "jacobi", "multigrid", "spectral", "nn", "nn-pcg"],
        default="pcg",
    )
    sim.add_argument(
        "--precision", choices=["fp32", "fp64"], default="fp64",
        help="NN inference precision (nn/nn-pcg solvers only): fp32 compiles "
        "the fast single-precision plan, fp64 stays bitwise-identical to the "
        "legacy forward",
    )
    sim.add_argument(
        "--model", type=str, default=None, metavar="DIR",
        help="trained-model directory (repro.io.save_model layout) for the "
        "nn/nn-pcg solvers; default: seeded untrained Tompson network",
    )
    sim.add_argument(
        "--backend", choices=["kernel", "reference"], default="kernel",
        help="PCG execution backend: compiled geometry kernels or the "
        "matrix-free reference path (identical results)",
    )
    sim.add_argument(
        "--warm-start", action="store_true",
        help="warm-start PCG from the previous step's pressure",
    )
    sim.add_argument("--ascii", action="store_true", help="print an ASCII rendering")
    sim.add_argument("--pgm", type=str, default=None, help="save the final frame as PGM")
    sim.add_argument(
        "--json", action="store_true",
        help="emit step records + metrics profile as JSON on stdout",
    )

    scn = sub.add_parser(
        "scenarios", help="list the registered scenarios and their parameters"
    )
    scn.add_argument(
        "--json", action="store_true",
        help="emit the registry (names, descriptions, params) as JSON",
    )

    exp = sub.add_parser("experiment", help="regenerate a table/figure of the paper")
    exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    exp.add_argument("--scale", choices=["ci", "default", "paper"], default=None)

    off = sub.add_parser(
        "offline", parents=[problem], help="build the offline phase and save it"
    )
    off.add_argument("output", type=str, help="directory to save the framework into")

    rep = sub.add_parser("report", help="run every experiment and write one report")
    rep.add_argument("--scale", choices=["ci", "default", "paper"], default=None)
    rep.add_argument("--output", type=str, default=None)

    ada = sub.add_parser(
        "adaptive",
        parents=[problem, stepping, tracing],
        help="run the adaptive phase from a saved framework",
    )
    ada.add_argument("framework", type=str, help="directory saved by 'offline'")
    ada.add_argument(
        "--json", action="store_true",
        help="emit run statistics + metrics profile as JSON on stdout",
    )

    ben = sub.add_parser(
        "bench", help="run the performance suite and write BENCH_<tag>.json"
    )
    ben.add_argument(
        "--scale", choices=["smoke", "ci", "default", "paper"], default="default"
    )
    ben.add_argument("--seed", type=int, default=0)
    ben.add_argument(
        "--scenario", type=str, default=None, metavar="NAME[:K=V,...]",
        help="restrict the scenario_sweep benchmark to one scenario "
        "(default: sweep every registered scenario)",
    )
    ben.add_argument(
        "--output", type=str, default=None,
        help="output JSON path (default: BENCH_<tag>.json in the current directory)",
    )

    def add_farm_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=8, help="number of jobs in the fleet")
        p.add_argument(
            "--solver",
            choices=["pcg", "jacobi-pcg", "jacobi", "multigrid", "spectral", "nn", "nn-pcg"],
            default="pcg", help="pressure solver every job requests",
        )
        p.add_argument(
            "--model", type=str, default=None, metavar="DIR",
            help="trained-model directory for nn/nn-pcg jobs "
            "(default: seeded untrained Tompson network)",
        )
        p.add_argument(
            "--solver-backend", choices=["kernel", "reference"], default=None,
            help="PCG execution backend for pcg/jacobi-pcg jobs "
            "(default: the solver's own default, kernel)",
        )
        p.add_argument(
            "--precision", choices=["fp32", "fp64"], default="fp64",
            help="NN inference precision for nn jobs (fp64 = bitwise-identical "
            "default, fp32 = fast single-precision plan)",
        )
        p.add_argument(
            "--backend", choices=["process", "batched", "serial"], default="process",
            help="process pool (fault-tolerant), in-process batched NN threads, or serial baseline",
        )
        p.add_argument("--workers", type=int, default=None, help="concurrent job slots")
        p.add_argument(
            "--checkpoint-every", type=int, default=4,
            help="checkpoint each job every N steps (0 disables)",
        )
        p.add_argument(
            "--checkpoint-dir", type=str, default=None,
            help="checkpoint directory (default: temporary, per run)",
        )
        p.add_argument("--timeout", type=float, default=None, help="per-attempt seconds budget")
        p.add_argument("--retries", type=int, default=1, help="max retries per job after hard faults")
        p.add_argument(
            "--inject-failure", type=int, default=None, metavar="JOB_INDEX",
            help="fault-inject one worker failure into job JOB_INDEX mid-run",
        )
        p.add_argument(
            "--fail-mode", choices=["raise", "crash"], default="crash",
            help="flavour of the injected failure (crash = hard worker death)",
        )

    frm = sub.add_parser(
        "farm",
        parents=[problem, scenario, stepping, tracing],
        help="run a fleet of simulation jobs on the concurrent farm",
    )
    add_farm_options(frm)
    frm.add_argument(
        "--json", action="store_true",
        help="emit the full farm report (per-job results + merged metrics) as JSON",
    )

    top = sub.add_parser(
        "top",
        parents=[problem, scenario, stepping, tracing],
        help="run a farm fleet with a live terminal status view",
    )
    add_farm_options(top)
    top.add_argument(
        "--interval", type=float, default=0.5,
        help="live view repaint interval in seconds",
    )

    srv = sub.add_parser(
        "serve",
        parents=[tracing],
        help="run the simulation service on a local unix socket",
    )
    srv.add_argument(
        "--socket", type=str, default="repro-serve.sock",
        help="unix socket path the service listens on",
    )
    srv.add_argument(
        "--cache-dir", type=str, default=None,
        help="content-addressed result-cache directory (default: disabled)",
    )
    srv.add_argument(
        "--cache-entries", type=int, default=256,
        help="LRU capacity of the result cache",
    )
    srv.add_argument(
        "--checkpoint-dir", type=str, default=None,
        help="job checkpoint directory (orphan .tmp files swept at startup)",
    )
    srv.add_argument("--min-workers", type=int, default=1, help="autoscaler floor")
    srv.add_argument("--max-workers", type=int, default=4, help="autoscaler ceiling")
    srv.add_argument(
        "--rate", type=float, default=None,
        help="per-tenant sustained submissions/second (default: unlimited)",
    )
    srv.add_argument("--burst", type=float, default=8, help="per-tenant burst allowance")
    srv.add_argument(
        "--max-pending", type=int, default=16,
        help="per-tenant cap on admitted-but-unfinished jobs",
    )
    srv.add_argument(
        "--drain-timeout", type=float, default=None,
        help="seconds to wait for in-flight jobs at shutdown (default: unbounded)",
    )
    srv.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="expose Prometheus metrics on http://127.0.0.1:PORT/metrics "
        "(0 picks a free port; default: scrape endpoint disabled)",
    )

    sbm = sub.add_parser(
        "submit",
        parents=[problem, scenario, stepping],
        help="submit one job to a running service and await the result",
    )
    sbm.add_argument(
        "--socket", type=str, default="repro-serve.sock",
        help="unix socket path of the running service",
    )
    sbm.add_argument(
        "--solver",
        choices=["pcg", "jacobi-pcg", "jacobi", "multigrid", "spectral", "nn", "nn-pcg"],
        default="pcg",
    )
    sbm.add_argument(
        "--model", type=str, default=None, metavar="DIR",
        help="trained-model directory for nn/nn-pcg jobs",
    )
    sbm.add_argument("--job-id", type=str, default=None, help="job id (default: generated)")
    sbm.add_argument("--tenant", type=str, default="default", help="tenant the job bills to")
    sbm.add_argument(
        "--priority", type=int, default=1, help="queue priority (lower runs first)"
    )
    sbm.add_argument(
        "--watch", action="store_true",
        help="stream the job's live telemetry events while it runs",
    )
    sbm.add_argument(
        "--timeout", type=float, default=None, help="seconds to wait for the result"
    )
    sbm.add_argument(
        "--json", action="store_true", help="emit the full JobResult as JSON"
    )

    hlt = sub.add_parser(
        "health", help="query a running service's SLO burn-rate health report"
    )
    hlt.add_argument(
        "--socket", type=str, default="repro-serve.sock",
        help="unix socket path of the running service",
    )
    hlt.add_argument(
        "--json", action="store_true", help="emit the full health report as JSON"
    )

    trc = sub.add_parser(
        "trace", help="summarise or dump a trace file written by --trace"
    )
    trc.add_argument("file", type=str, help="trace file (Chrome JSON or JSONL)")
    trc.add_argument(
        "--summary", action="store_true",
        help="print only the per-span latency table (p50/p95/p99 from "
        "histogram data)",
    )
    trc.add_argument(
        "--events", nargs="?", const="all", default=None, metavar="TYPE",
        help="list the typed step events (optionally only of TYPE)",
    )
    return parser


class _TraceRecorder:
    """Context manager enabling the process tracer for one CLI run.

    Installs an enabled :class:`repro.trace.Tracer` as the process default
    when ``path`` is given (no-op otherwise), restores the previous tracer
    on exit and writes the Chrome ``trace_event`` file.
    """

    def __init__(self, path: str | None):
        self.path = path
        self.tracer = None
        self._previous = None

    def __enter__(self) -> "_TraceRecorder":
        if self.path is not None:
            from repro.trace import Tracer, set_tracer

            self.tracer = Tracer(enabled=True)
            self._previous = set_tracer(self.tracer)
        return self

    def __exit__(self, *exc) -> None:
        if self.tracer is None:
            return
        from repro.trace import set_tracer

        set_tracer(self._previous)
        if exc[0] is None:
            self.tracer.write_chrome(self.path)
            print(f"wrote trace to {self.path}", file=sys.stderr)


def _step_dict(rec) -> dict:
    """One StepRecord as a plain-JSON dict."""
    return {
        "step": rec.step,
        "divnorm": rec.divnorm,
        "step_seconds": rec.step_seconds,
        "solver": rec.projection.solver_name,
        "solve_seconds": rec.projection.solve_seconds,
        "iterations": rec.projection.iterations,
        "converged": rec.projection.converged,
        "pre_divergence": rec.projection.pre_divergence,
        "post_divergence": rec.projection.post_divergence,
        "flops": rec.projection.flops,
    }


def _cmd_simulate(args) -> int:
    from repro.fluid import (
        FluidSimulator,
        JacobiSolver,
        MultigridSolver,
        PCGSolver,
        SimulationConfig,
        SpectralSolver,
        build_scenario,
        parse_scenario,
    )
    from repro.metrics import MetricsRegistry
    from repro import viz

    metrics = MetricsRegistry()

    def network():
        if args.model is not None:
            from repro.io import load_model

            return load_model(args.model).network
        from repro.models import tompson_arch

        return tompson_arch(4).build(rng=args.seed)

    def nn_solver():
        from repro.models import NNProjectionSolver

        return NNProjectionSolver(
            network(), passes=2, metrics=metrics, precision=args.precision
        )

    def nn_pcg_solver():
        from repro.fluid import NNPCGSolver

        return NNPCGSolver(network(), metrics=metrics, precision=args.precision)

    solver = {
        "pcg": lambda: PCGSolver(
            warm_start=args.warm_start, metrics=metrics, backend=args.backend
        ),
        "jacobi-pcg": lambda: PCGSolver(
            preconditioner="jacobi", warm_start=args.warm_start,
            metrics=metrics, backend=args.backend,
        ),
        "jacobi": lambda: JacobiSolver(metrics=metrics),
        "multigrid": lambda: MultigridSolver(metrics=metrics),
        "spectral": lambda: SpectralSolver(
            metrics=metrics,
            fallback=PCGSolver(metrics=metrics, backend=args.backend),
        ),
        "nn": nn_solver,
        "nn-pcg": nn_pcg_solver,
    }[args.solver]()
    sspec = parse_scenario(args.scenario).with_defaults(grid=args.grid)
    grid, driver = build_scenario(sspec, rng=args.seed)
    solver = driver.wrap_solver(solver)
    overrides = getattr(driver, "config_overrides", {})
    config = SimulationConfig(**overrides) if overrides else None
    sim = FluidSimulator(grid, solver, driver, config=config, metrics=metrics)
    t0 = time.perf_counter()
    with _TraceRecorder(args.trace):
        result = sim.run(args.steps)
    dt = time.perf_counter() - t0
    if args.json:
        print(
            json.dumps(
                {
                    "command": "simulate",
                    "config": {
                        "grid": grid.nx,
                        "seed": args.seed,
                        "steps": args.steps,
                        "scenario": sspec.to_string(),
                        "solver": args.solver,
                        "backend": args.backend,
                        "precision": args.precision,
                        "warm_start": args.warm_start,
                    },
                    "total_seconds": dt,
                    "solve_seconds": result.solve_seconds,
                    "steps": [_step_dict(r) for r in result.records],
                    "metrics": metrics.to_dict(),
                },
                indent=2,
            )
        )
    else:
        print(
            f"{sspec.name} {grid.nx}x{grid.ny}, {args.steps} steps with {args.solver}: "
            f"{dt:.2f}s total, {result.solve_seconds:.2f}s in the pressure solver"
        )
    if args.ascii:
        print(viz.to_ascii(result.density))
    if args.pgm:
        path = viz.save_pgm(result.density, args.pgm)
        if not args.json:
            print(f"wrote {path}")
    return 0


def _cmd_scenarios(args) -> int:
    from repro.fluid import list_scenarios

    infos = list_scenarios()
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "name": info.name,
                        "description": info.description,
                        "params": [
                            {"name": p.name, "default": p.default, "doc": p.doc}
                            for p in info.params
                        ],
                    }
                    for info in infos
                ],
                indent=2,
            )
        )
        return 0
    for info in infos:
        print(f"{info.name}")
        if info.description:
            print(f"    {info.description}")
        for p in info.params:
            doc = f"  -- {p.doc}" if p.doc else ""
            print(f"    {p.name}={p.default!r}{doc}")
    return 0


def _cmd_experiment(args) -> int:
    import repro.experiments as experiments
    from repro.experiments import build_artifacts, get_scale

    artifacts = build_artifacts(get_scale(args.scale))
    runner = getattr(experiments, _EXPERIMENTS[args.name])
    result = runner(artifacts)
    if isinstance(result, tuple):
        for part in result:
            print(part.format())
    else:
        print(result.format())
    return 0


def _cmd_offline(args) -> int:
    from repro.core import OfflineConfig, SmartFluidnet
    from repro.io import save_framework

    cfg = OfflineConfig(grid_size=args.grid)
    framework = SmartFluidnet.build_offline(config=cfg, rng=args.seed, verbose=True)
    path = save_framework(framework, args.output)
    print(f"saved framework with {len(framework.runtime_models)} runtime models to {path}")
    return 0


def _cmd_report(args) -> int:
    from repro.experiments import build_artifacts, generate_report, get_scale

    text = generate_report(build_artifacts(get_scale(args.scale)), output=args.output)
    print(text)
    if args.output:
        print(f"\nwrote {args.output}")
    return 0


def _cmd_adaptive(args) -> int:
    from repro.data import InputProblem
    from repro.io import load_framework
    from repro.metrics import MetricsRegistry, set_metrics

    metrics = MetricsRegistry()
    previous = set_metrics(metrics)  # capture instrumentation of the whole run
    try:
        framework = load_framework(args.framework)
        with _TraceRecorder(args.trace):
            run = framework.run(InputProblem(args.grid, args.seed), args.steps)
    finally:
        set_metrics(previous)
    if args.json:
        print(
            json.dumps(
                {
                    "command": "adaptive",
                    "config": {"grid": args.grid, "seed": args.seed, "steps": args.steps},
                    "requirement_qloss": framework.requirement.q,
                    "restarted": run.restarted,
                    "total_seconds": run.total_seconds,
                    "solve_seconds": run.solve_seconds,
                    "steps_per_model": run.stats.steps_per_model,
                    "solve_seconds_per_model": run.stats.solve_seconds_per_model,
                    "switches": [
                        {
                            "step": sw.step,
                            "from": sw.from_model,
                            "to": sw.to_model,
                            "predicted_qloss": sw.predicted_qloss,
                        }
                        for sw in run.stats.switches
                    ],
                    "steps": [_step_dict(r) for r in run.result.records],
                    "metrics": metrics.to_dict(),
                },
                indent=2,
            )
        )
        return 0
    print(f"requirement: qloss <= {framework.requirement.q:.4f}")
    print(f"restarted: {run.restarted}")
    print(f"steps per model: {run.stats.steps_per_model}")
    for sw in run.stats.switches:
        print(f"  step {sw.step}: {sw.from_model} -> {sw.to_model}")
    return 0


def _cmd_bench(args) -> int:
    from repro.benchmark import DEFAULT_TAG, run_bench, write_bench

    report = run_bench(scale=args.scale, seed=args.seed, scenario=args.scenario)
    output = args.output or f"BENCH_{DEFAULT_TAG}.json"
    path = write_bench(report, output)
    cache = next(b for b in report["benchmarks"] if b["name"] == "pcg_geometry_cache")
    rev = report.get("git_revision") or "unknown"
    if report.get("git_dirty"):
        rev += "+dirty"
    print(
        f"wrote {path} ({args.scale} scale, rev {rev}): repeated-geometry PCG speedup "
        f"{cache['speedup']:.3f}x (cold {cache['cold_seconds']:.4f}s, "
        f"cached {cache['cached_seconds']:.4f}s)"
    )
    return 0


def _build_farm_specs(args) -> list:
    """Translate the shared farm/top CLI options into a JobSpec fleet."""
    from repro.data import generate_problems
    from repro.farm import JobSpec
    from repro.fluid import parse_scenario

    sspec = parse_scenario(args.scenario)
    grid_size = int(sspec.get("grid", args.grid))
    problems = generate_problems(args.jobs, grid_size)
    fail_step = max(1, args.steps // 2)
    solver_params = {}
    if args.solver_backend is not None and args.solver in ("pcg", "jacobi-pcg"):
        solver_params["backend"] = args.solver_backend
    if args.solver == "nn" and args.precision != "fp64":
        solver_params["precision"] = args.precision
    elif args.solver == "nn-pcg":
        # the flag's fp64 default means "bitwise replay" here too, overriding
        # the solver's own fp32 fast-path default
        solver_params["precision"] = args.precision
    model_dir = args.model if args.solver in ("nn", "nn-pcg") else None
    return [
        JobSpec(
            job_id=f"job-{i:03d}",
            grid_size=grid_size,
            seed=p.seed + args.seed,
            scenario=sspec.to_string(),
            steps=args.steps,
            solver=args.solver,
            solver_params=solver_params,
            model_dir=model_dir,
            checkpoint_every=args.checkpoint_every,
            timeout_seconds=args.timeout,
            max_retries=args.retries,
            fail_at_step=fail_step if i == args.inject_failure else None,
            fail_mode=args.fail_mode,
        )
        for i, p in enumerate(problems)
    ]


def _build_farm(args):
    from repro.farm import SimulationFarm

    return SimulationFarm(
        workers=args.workers,
        backend=args.backend,
        checkpoint_dir=args.checkpoint_dir,
        trace=args.trace is not None,
    )


def _write_farm_trace(farm, path: str | None) -> None:
    if path is not None:
        farm.tracer.write_chrome(path)
        print(f"wrote trace to {path}", file=sys.stderr)


def _print_farm_report(args, report) -> None:
    print(
        f"{args.backend} farm, {report.workers} worker(s): "
        f"{len(report.completed)}/{len(report.results)} jobs completed "
        f"in {report.wall_seconds:.2f}s "
        f"({report.jobs_per_second:.2f} jobs/s, {report.steps_per_second:.1f} steps/s)"
    )
    for r in report.results:
        notes = []
        if r.degraded:
            notes.append("degraded->pcg")
        if r.resumed_from is not None:
            notes.append(f"resumed@{r.resumed_from}")
        if r.retries:
            notes.append(f"retries={r.retries}")
        if r.error:
            notes.append(r.error)
        suffix = f" [{', '.join(notes)}]" if notes else ""
        print(
            f"  {r.job_id}: {r.status} ({r.steps_done}/{args.steps} steps, "
            f"{r.solver_used}){suffix}"
        )


def _cmd_farm(args) -> int:
    farm = _build_farm(args)
    report = farm.run(_build_farm_specs(args))
    _write_farm_trace(farm, args.trace)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0 if not report.failed else 1
    _print_farm_report(args, report)
    return 0 if not report.failed else 1


def _cmd_top(args) -> int:
    from repro.farm import LiveRenderer
    from repro.obs import SeriesRecorder, SLOEngine, default_farm_slos

    farm = _build_farm(args)
    # live SLO panel: sample the fleet's event-fed state each repaint and
    # surface any burning objectives under the fleet table.  The flat
    # farm/* counters are no use here — worker registries only merge into
    # farm.metrics after every job finishes, by which time the renderer
    # has exited — whereas FleetView folds worker events as they arrive.
    fleet = farm.fleet
    recorder = SeriesRecorder(interval=min(1.0, max(0.1, args.interval)))

    def terminal_jobs() -> float:
        counts = fleet.counts()
        return float(sum(counts.get(s, 0) for s in ("completed", "failed", "cancelled")))

    recorder.add_source("farm_jobs", terminal_jobs)
    recorder.add_source(
        "farm_jobs_failed", lambda: float(fleet.counts().get("failed", 0))
    )
    recorder.add_source(
        "farm_degradations", lambda: float(fleet.counters().get("pcg_fallbacks", 0))
    )
    recorder.add_source(
        "farm_resumes", lambda: float(fleet.counters().get("resumes", 0))
    )
    engine = SLOEngine(recorder, default_farm_slos())

    def alerts() -> list[str]:
        recorder.tick()
        lines = []
        for status in engine.evaluate():
            if status.state in ("warning", "critical"):
                value = (
                    f"{status.value:.3g}"
                    if isinstance(status.value, (int, float))
                    else "--"
                )
                lines.append(
                    f"[{status.state}] {status.name}: {status.objective} (value {value})"
                )
        return lines

    with LiveRenderer(farm.fleet, interval=args.interval, alerts_fn=alerts):
        report = farm.run(_build_farm_specs(args))
    _write_farm_trace(farm, args.trace)
    _print_farm_report(args, report)
    return 0 if not report.failed else 1


def _cmd_serve(args) -> int:
    import asyncio
    import os
    import signal

    from repro.serve import ServiceServer, SimulationService, TenantQuota

    async def run() -> int:
        service = SimulationService(
            cache_dir=args.cache_dir,
            cache_entries=args.cache_entries,
            checkpoint_dir=args.checkpoint_dir,
            min_workers=args.min_workers,
            max_workers=args.max_workers,
            default_quota=TenantQuota(
                rate=args.rate, burst=args.burst, max_pending=args.max_pending
            ),
        )
        await service.start()
        server = ServiceServer(service, args.socket)
        await server.start()
        scrape = None
        if args.metrics_port is not None:
            from repro.obs import ScrapeServer

            scrape = ScrapeServer(service.metrics_text, port=args.metrics_port)
            port = scrape.start()
            print(
                f"metrics on http://127.0.0.1:{port}/metrics", file=sys.stderr
            )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        print(
            f"serving on {args.socket} "
            f"(workers {args.min_workers}..{args.max_workers}, "
            f"cache {'off' if args.cache_dir is None else args.cache_dir})",
            file=sys.stderr,
        )
        await stop.wait()
        # graceful shutdown: stop accepting, drain in-flight jobs, persist
        # the cache index (service.stop flushes it)
        print("shutting down: draining in-flight jobs", file=sys.stderr)
        if scrape is not None:
            scrape.stop()
        await server.stop()
        drained = await service.stop(drain=True, timeout=args.drain_timeout)
        try:
            os.unlink(args.socket)
        except OSError:
            pass
        print("drained" if drained else "drain timed out", file=sys.stderr)
        return 0 if drained else 1

    with _TraceRecorder(args.trace):
        return asyncio.run(run())


def _cmd_submit(args) -> int:
    import asyncio
    import os

    from repro.farm import JobSpec
    from repro.fluid import parse_scenario
    from repro.serve import ServeError, ServiceClient

    sspec = parse_scenario(args.scenario)
    job_id = args.job_id or f"cli-{os.getpid()}-{time.monotonic_ns() % 1_000_000}"
    spec = JobSpec(
        job_id=job_id,
        grid_size=int(sspec.get("grid", args.grid)),
        seed=args.seed,
        scenario=sspec.to_string(),
        steps=args.steps,
        solver=args.solver,
        model_dir=args.model if args.solver in ("nn", "nn-pcg") else None,
    )

    async def run() -> int:
        async with await ServiceClient.open(args.socket) as client:
            job = await client.submit(spec, tenant=args.tenant, priority=args.priority)
            if not args.json:
                print(
                    f"{job['job_id']}: {job['status']}"
                    + (" (cache hit)" if job["cached"] else "")
                )
            if args.watch and job["status"] not in ("completed", "failed", "cancelled"):
                async with await ServiceClient.open(args.socket) as watcher:
                    async for event in watcher.watch(job["job_id"]):
                        etype = event.get("type", "?")
                        step = event.get("step")
                        at = f" step {step}" if step is not None else ""
                        print(f"  {etype}{at}", file=sys.stderr)
            result = await client.result(job["job_id"], timeout=args.timeout)
            if args.json:
                print(json.dumps(result.to_dict(), indent=2))
            else:
                note = " (cached)" if result.cached else ""
                print(
                    f"{result.job_id}: {result.status}{note} "
                    f"({result.steps_done}/{args.steps} steps, {result.solver_used}, "
                    f"{result.wall_seconds:.2f}s)"
                )
            return 0 if result.ok else 1

    try:
        return asyncio.run(run())
    except ServeError as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 2
    except (ConnectionRefusedError, FileNotFoundError):
        print(f"error: no service listening on {args.socket}", file=sys.stderr)
        return 2


def _cmd_health(args) -> int:
    import asyncio

    from repro.serve import ServeError, ServiceClient

    async def run() -> int:
        async with await ServiceClient.open(args.socket) as client:
            health = await client.health()
        if args.json:
            print(json.dumps(health, indent=2))
            return 0 if health.get("state") in ("ok", "no_data") else 1
        print(f"state: {health.get('state', '?')}")
        for slo in health.get("slos", []):
            value = slo.get("value")
            shown = f"{value:.4g}" if isinstance(value, (int, float)) else "--"
            print(
                f"  [{slo.get('state', '?'):<8}] {slo.get('name')}: "
                f"{slo.get('objective')}  value={shown}"
            )
            for tier in slo.get("tiers", []):
                if tier.get("firing"):
                    print(
                        f"      burn[{tier['severity']}]: "
                        f"short={tier['short_burn']:.2f}x "
                        f"long={tier['long_burn']:.2f}x "
                        f"(threshold {tier['factor']}x)"
                    )
        return 0 if health.get("state") in ("ok", "no_data") else 1

    try:
        return asyncio.run(run())
    except ServeError as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 2
    except (ConnectionRefusedError, FileNotFoundError):
        print(f"error: no service listening on {args.socket}", file=sys.stderr)
        return 2


def _cmd_trace(args) -> int:
    from repro.trace import format_summary, read_trace

    tracer = read_trace(args.file)
    if args.events is not None:
        type_ = None if args.events == "all" else args.events
        for ev in tracer.events(type_):
            attrs = " ".join(f"{k}={v}" for k, v in sorted(ev.attrs.items()))
            step = f"step {ev.step:>5}" if ev.step is not None else "step     -"
            print(f"{ev.type:<14} {step}  {attrs}")
        return 0
    if not args.summary:
        spans = tracer.spans()
        events = tracer.events()
        by_type: dict[str, int] = {}
        for ev in events:
            by_type[ev.type] = by_type.get(ev.type, 0) + 1
        counts = "  ".join(f"{t}:{n}" for t, n in sorted(by_type.items()))
        print(f"{args.file}: {len(spans)} spans, {len(events)} events  {counts}")
    print(format_summary(tracer))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return {
        "simulate": _cmd_simulate,
        "scenarios": _cmd_scenarios,
        "experiment": _cmd_experiment,
        "offline": _cmd_offline,
        "report": _cmd_report,
        "adaptive": _cmd_adaptive,
        "bench": _cmd_bench,
        "farm": _cmd_farm,
        "top": _cmd_top,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "health": _cmd_health,
        "trace": _cmd_trace,
    }[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
