"""Model training: DivNorm optimisation with rollout augmentation.

Training only on exact-solver states leaves a distribution gap: at inference
the network sees divergence fields produced by *its own* imperfect
projections.  Because the DivNorm objective is unsupervised (no PCG labels
needed), we close the gap DAgger-style: roll the simulator forward with the
partially-trained network, harvest the states it visits, and fine-tune on
the combined set.  This mirrors the long-term-stability training of the
original FluidNet.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.fluid import FluidSimulator, SimulationConfig, divnorm_weights
from repro.fluid.pcg import SolveResult
from repro.nn import Adam, DivNormLoss, Network, TrainHistory, Trainer

from .arch import ArchSpec
from .solver import NNProjectionSolver

__all__ = [
    "TrainedModel",
    "rollout_frames",
    "train_model",
    "train_nn_pcg_model",
    "merge_datasets",
]


@dataclass
class TrainedModel:
    """An architecture together with its trained weights and measurements."""

    spec: ArchSpec
    network: Network
    history: TrainHistory | None = None
    inference_seconds: float = float("nan")  # measured per-solve time
    quality_loss: float = float("nan")  # measured mean Qloss
    metadata: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        """Model name (from the architecture spec)."""
        return self.spec.name or "model"

    def solver(self, passes: int = 2) -> NNProjectionSolver:
        """Wrap the trained network as a pressure solver."""
        return NNProjectionSolver(self.network, name=self.name, passes=passes)

    def nn_pcg_solver(self, **kwargs):
        """Wrap the trained network as an exact NN-preconditioned CG solver.

        Keyword arguments pass through to
        :class:`repro.fluid.NNPCGSolver` (``tol``, ``window``, ``cycles``,
        ``precision``, ...).  Unlike :meth:`solver`, the result converges
        to PCG tolerance on every input — the network only steers the
        search directions.
        """
        from repro.fluid import NNPCGSolver

        kwargs.setdefault("name", f"{self.name}_pcg")
        return NNPCGSolver(self.network, **kwargs)


class _HarvestingSolver:
    """Solve with a wrapped solver while harvesting normalised rhs frames."""

    def __init__(self, inner, sink: list, stride: int = 1):
        self.inner = inner
        self.sink = sink
        self.stride = stride
        self.name = getattr(inner, "name", "harvest")
        self._count = 0

    def solve(self, b: np.ndarray, solid: np.ndarray) -> SolveResult:
        if self._count % self.stride == 0:
            fluid = ~solid
            if fluid.any():
                from repro.fluid.laplacian import remove_nullspace

                bz = remove_nullspace(b, solid)
                sigma = float(bz[fluid].std())
                if sigma > 1e-12:
                    self.sink.append((bz / sigma, solid.copy()))
        self._count += 1
        return self.inner.solve(b, solid)


def rollout_frames(
    network: Network,
    problems,
    n_steps: int = 8,
    stride: int = 1,
    passes: int = 2,
    config: SimulationConfig | None = None,
) -> dict[str, np.ndarray]:
    """Collect DivNorm training frames from network-driven rollouts."""
    raw: list[tuple[np.ndarray, np.ndarray]] = []
    for prob in problems:
        grid, source = prob.materialize()
        solver = _HarvestingSolver(NNProjectionSolver(network, passes=passes), raw, stride)
        FluidSimulator(grid, solver, source, config or SimulationConfig()).run(n_steps)
    if not raw:
        raise ValueError("rollouts produced no usable frames")
    xs = np.stack([np.stack([bn, solid.astype(np.float64)]) for bn, solid in raw])
    bs = xs[:, :1]
    solids = np.stack([solid for _, solid in raw])
    weights = np.stack([divnorm_weights(solid) for _, solid in raw])
    return {"x": xs, "b": bs, "solid": solids, "weights": weights}


def merge_datasets(*datasets: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Concatenate datasets over the keys they all share."""
    keys = set(datasets[0])
    for d in datasets[1:]:
        keys &= set(d)
    return {k: np.concatenate([d[k] for d in datasets]) for k in keys}


def train_model(
    spec: ArchSpec,
    data: dict[str, np.ndarray],
    epochs: int = 30,
    lr: float = 2e-3,
    batch_size: int = 16,
    rng=0,
    network: Network | None = None,
    rollout_problems=None,
    rollout_rounds: int = 0,
    rollout_epochs: int = 15,
    rollout_steps: int = 8,
) -> TrainedModel:
    """Train (or fine-tune) a model with the DivNorm objective.

    If ``network`` is given, training fine-tunes those weights (used by the
    transformation operations for weight inheritance); otherwise a fresh
    network is built from ``spec``.  When ``rollout_problems`` is provided,
    ``rollout_rounds`` of self-rollout augmentation follow the initial fit.
    """
    rng = np.random.default_rng(rng)
    net = network if network is not None else spec.build(rng=rng)
    trainer = Trainer(net, DivNormLoss(), Adam(net.parameters(), lr=lr), rng=rng)
    history = trainer.fit(data, epochs=epochs, batch_size=batch_size)
    if rollout_problems and rollout_rounds > 0:
        for _ in range(rollout_rounds):
            extra = rollout_frames(net, rollout_problems, n_steps=rollout_steps)
            merged = merge_datasets(
                {k: data[k] for k in ("x", "b", "solid", "weights")}, extra
            )
            more = trainer.fit(merged, epochs=rollout_epochs, batch_size=batch_size)
            history.train_loss.extend(more.train_loss)
            history.step_loss.extend(more.step_loss)

    # measure single-solve inference time on a representative frame
    solver = NNProjectionSolver(net, passes=1)
    b = data["b"][0, 0]
    solid = data["solid"][0]
    t0 = time.perf_counter()
    reps = 3
    for _ in range(reps):
        solver.solve(b, solid)
    inference = (time.perf_counter() - t0) / reps
    return TrainedModel(spec=spec, network=net, history=history, inference_seconds=inference)


def train_nn_pcg_model(
    problems=None,
    spec: ArchSpec | None = None,
    epochs: int = 30,
    lr: float = 2e-3,
    batch_size: int = 16,
    rng=0,
    n_steps: int = 8,
    grid_size: int = 64,
    n_problems: int = 6,
) -> TrainedModel:
    """The reproducible training recipe behind the NN-preconditioned solver.

    Direction networks for :class:`repro.fluid.NNPCGSolver` must handle
    both the step's Poisson rhs (iteration 1) and the CG residuals every
    later iteration feeds them.  This merges the standard rhs dataset
    (:func:`repro.data.collect_training_frames`) with harvested MIC(0)-PCG
    residual frames (:func:`repro.data.collect_residual_frames`) and fits
    the unsupervised DivNorm objective — a residual is just another
    Poisson problem, so no extra labels are needed.  Training at 64²
    transfers to larger grids because the solver applies the network
    across a restriction pyramid whose levels match the training scale.

    The committed bench weights (``results/models/nn_pcg_bench``) are the
    output of this function at its defaults; see ``repro.benchmark``.
    """
    from repro.data import (
        collect_residual_frames,
        collect_training_frames,
        generate_problems,
    )

    if problems is None:
        problems = generate_problems(n_problems, grid_size, split="train")
    data = collect_training_frames(problems, n_steps=n_steps)
    residuals = collect_residual_frames(problems, data=data)
    merged = merge_datasets(data, residuals)
    if spec is None:
        from .tompson import tompson_arch

        spec = tompson_arch(channels=8, name="nn_pcg")
    return train_model(spec, merged, epochs=epochs, lr=lr, batch_size=batch_size, rng=rng)
