"""Architecture specification for the approximation CNNs.

The paper's transformation operations (Section 4) and the 48-dimensional MLP
feature vector (Eq. 6) both operate on a *stage-structured* view of a
network: up to nine stages, each described by kernel size, channel count,
pooling size, unpooling size and residual flag.  :class:`ArchSpec` is that
view; :meth:`ArchSpec.build` lowers it to a concrete
:class:`repro.nn.Network`.

A stage expands to ``[MaxPool(pool) ->] Conv(k, c) -> ReLU [-> Upsample(unpool)]
[-> Dropout(p)]``, optionally wrapped in a residual connection when input and
output shapes match.  Pooling *before* the convolution makes a pooled stage
genuinely cheaper (the convolution runs at the reduced resolution), which is
the point of the paper's pooling transformation: discard 75% of a layer's
neurons to trade accuracy for speed.  A final 1x1 convolution maps to the
single pressure output channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict

import numpy as np

from repro.nn import Conv2d, Dropout, MaxPool2d, Network, ReLU, Residual, Upsample2d

__all__ = ["StageSpec", "ArchSpec", "MAX_STAGES"]

#: the MLP feature vector reserves nine slots per architecture property
MAX_STAGES = 9


@dataclass
class StageSpec:
    """One convolutional stage of an approximation network."""

    kernel: int = 3
    channels: int = 8
    pool: int = 1  # 1 = no pooling, 2 = 2x2 max pooling
    unpool: int = 1  # upsampling factor restoring the spatial size
    dropout: float = 0.0
    residual: bool = False

    def validate(self) -> None:
        """Raise ValueError if the stage is malformed."""
        if self.kernel % 2 == 0 or self.kernel < 1:
            raise ValueError(f"kernel must be odd and positive, got {self.kernel}")
        if self.channels < 1:
            raise ValueError("channels must be >= 1")
        if self.pool != self.unpool:
            raise ValueError(
                "pool and unpool must match so the stage preserves the grid size"
            )
        if self.pool not in (1, 2, 4):
            raise ValueError(f"unsupported pool factor {self.pool}")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")


@dataclass
class ArchSpec:
    """A stage-structured network architecture.

    ``in_channels`` defaults to 2 (velocity divergence + geometry), and the
    output is always a single pressure channel, as in the paper's Eq. 4.
    """

    stages: list[StageSpec] = field(default_factory=list)
    in_channels: int = 2
    name: str = ""

    def validate(self) -> None:
        """Raise ValueError if any stage (or the stage count) is invalid."""
        if not 1 <= len(self.stages) <= MAX_STAGES:
            raise ValueError(f"need 1..{MAX_STAGES} stages, got {len(self.stages)}")
        for s in self.stages:
            s.validate()

    # ------------------------------------------------------------------
    def build(self, rng=None) -> Network:
        """Instantiate a trainable network for this architecture."""
        self.validate()
        rng = np.random.default_rng(rng)
        layers = []
        prev = self.in_channels
        for s in self.stages:
            stage_layers: list = []
            if s.pool > 1:
                stage_layers.append(MaxPool2d(s.pool))
            stage_layers.append(Conv2d(prev, s.channels, kernel=s.kernel, rng=rng))
            stage_layers.append(ReLU())
            if s.unpool > 1:
                stage_layers.append(Upsample2d(s.unpool))
            if s.dropout > 0.0:
                stage_layers.append(Dropout(s.dropout, rng=rng))
            if s.residual and prev == s.channels:
                layers.append(Residual(stage_layers))
            else:
                layers.extend(stage_layers)
            prev = s.channels
        layers.append(Conv2d(prev, 1, kernel=1, rng=rng))
        return Network(layers)

    # ------------------------------------------------------------------
    @property
    def n_stages(self) -> int:
        """Number of convolutional stages."""
        return len(self.stages)

    def copy(self) -> "ArchSpec":
        """Deep copy of the spec."""
        return ArchSpec(
            stages=[StageSpec(**asdict(s)) for s in self.stages],
            in_channels=self.in_channels,
            name=self.name,
        )

    def architecture_vectors(self) -> dict[str, np.ndarray]:
        """Per-property vectors padded to :data:`MAX_STAGES` (Eq. 6 pieces).

        Returns the five nine-component vectors the MLP feature vector is
        made of: kernel sizes, channel counts, pooling sizes, unpooling
        sizes and residual flags.
        """
        def padded(values):
            out = np.zeros(MAX_STAGES)
            out[: len(values)] = values
            return out

        return {
            "ker": padded([s.kernel for s in self.stages]),
            "chn": padded([s.channels for s in self.stages]),
            "pool": padded([s.pool for s in self.stages]),
            "unp": padded([s.unpool for s in self.stages]),
            "res": padded([float(s.residual) for s in self.stages]),
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "name": self.name,
            "in_channels": self.in_channels,
            "stages": [asdict(s) for s in self.stages],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ArchSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            stages=[StageSpec(**s) for s in data["stages"]],
            in_channels=data.get("in_channels", 2),
            name=data.get("name", ""),
        )

    def stage_convs(self, network: Network) -> list[Conv2d]:
        """Return the Conv2d of each stage (plus the final 1x1) of a network
        built from this spec, in stage order.

        Used by the transformation operations to inherit weights from a
        parent model (network morphism).
        """
        convs: list[Conv2d] = []
        for layer in network.layers:
            if isinstance(layer, Residual):
                convs.extend(l for l in layer.layers if isinstance(l, Conv2d))
            elif isinstance(layer, Conv2d):
                convs.append(layer)
        if len(convs) != len(self.stages) + 1:
            raise ValueError("network does not match this spec")
        return convs

    def total_neurons(self) -> int:
        """Channel-count sum, the paper's proxy for a layer's neuron count."""
        return sum(s.channels for s in self.stages)

    def __repr__(self) -> str:  # pragma: no cover
        desc = ",".join(
            f"{s.channels}k{s.kernel}" + ("p" if s.pool > 1 else "") + ("r" if s.residual else "")
            + (f"d{s.dropout:.2f}" if s.dropout else "")
            for s in self.stages
        )
        return f"ArchSpec({self.name or 'anon'}: {desc})"
