"""The Tompson et al. baseline model (the paper's reference [10]).

Tompson's FluidNet is an unsupervised CNN with five stages of convolution
and ReLU that maps (velocity divergence, geometry) to the pressure field and
is trained with the weighted-divergence objective (DivNorm).  We reproduce
that architecture as an :class:`~repro.models.arch.ArchSpec`; the channel
width defaults to a CPU-friendly scale and can be raised to the paper's
original widths by callers with more compute.
"""

from __future__ import annotations

from .arch import ArchSpec, StageSpec

__all__ = ["tompson_arch", "TOMPSON_STAGES"]

#: number of conv+ReLU stages in Tompson's model
TOMPSON_STAGES = 5


def tompson_arch(channels: int = 8, kernel: int = 3, name: str = "tompson") -> ArchSpec:
    """Five-stage convolution + ReLU architecture (Tompson's model).

    Parameters
    ----------
    channels:
        Width of the hidden stages.  The original model is wider; 8 keeps
        CPU training in seconds while preserving the architecture family.
    kernel:
        Convolution kernel size of every stage.
    """
    stages = [StageSpec(kernel=kernel, channels=channels) for _ in range(TOMPSON_STAGES)]
    return ArchSpec(stages=stages, in_channels=2, name=name)
