"""Approximation models: architecture specs, baselines and the solver adapter."""

from .arch import ArchSpec, StageSpec, MAX_STAGES
from .tompson import tompson_arch, TOMPSON_STAGES
from .yang import YangModel
from .solver import NNProjectionSolver
from .training import TrainedModel, merge_datasets, rollout_frames, train_model

__all__ = [
    "ArchSpec",
    "StageSpec",
    "MAX_STAGES",
    "tompson_arch",
    "TOMPSON_STAGES",
    "YangModel",
    "NNProjectionSolver",
    "TrainedModel",
    "train_model",
    "rollout_frames",
    "merge_datasets",
]
