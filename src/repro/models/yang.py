"""The Yang et al. baseline model (the paper's reference [11]).

Yang's data-driven projection predicts each cell's pressure from a small
local patch of features with a shared multi-layer perceptron — much cheaper
and less accurate than Tompson's full-field CNN, which is exactly the role
it plays in the paper's Table 1.  The patch MLP is implemented as a
:class:`repro.nn.Layer`, so it trains with the same Trainer/losses as the
CNNs and plugs into the same :class:`~repro.models.solver.NNProjectionSolver`.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn import Dense, Layer, Network, Parameter, ReLU

__all__ = ["YangModel"]


class YangModel(Layer):
    """Shared per-cell patch MLP: (N, C, H, W) -> (N, 1, H, W).

    Each cell's prediction is an MLP applied to the ``patch x patch``
    neighbourhood of all input channels, with zero padding at the border.
    """

    def __init__(self, in_channels: int = 2, patch: int = 3, hidden: tuple[int, ...] = (24, 12), rng=None):
        if patch % 2 == 0:
            raise ValueError("patch size must be odd")
        self.in_channels = in_channels
        self.patch = patch
        feat = in_channels * patch * patch
        rng = np.random.default_rng(rng)
        layers: list[Layer] = []
        prev = feat
        for width in hidden:
            layers.append(Dense(prev, width, rng=rng))
            layers.append(ReLU())
            prev = width
        layers.append(Dense(prev, 1, rng=rng))
        self.mlp = Network(layers)
        self._in_shape: tuple[int, ...] | None = None

    def parameters(self) -> list[Parameter]:
        return self.mlp.parameters()

    def _patches(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.patch
        pad = k // 2
        xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        win = sliding_window_view(xp, (k, k), axis=(2, 3))  # (N, C, H, W, k, k)
        return win.transpose(0, 2, 3, 1, 4, 5).reshape(n * h * w, c * k * k)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(f"expected (N,{self.in_channels},H,W), got {x.shape}")
        n, _, h, w = x.shape
        self._in_shape = x.shape
        flat = self.mlp.forward(self._patches(x), training=training)
        return flat.reshape(n, h, w, 1).transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._in_shape
        k = self.patch
        pad = k // 2
        gflat = grad.transpose(0, 2, 3, 1).reshape(n * h * w, 1)
        dpatches = self.mlp.backward(gflat).reshape(n, h, w, c, k, k)
        dxp = np.zeros((n, c, h + 2 * pad, w + 2 * pad))
        for i in range(k):
            for j in range(k):
                dxp[:, :, i : i + h, j : j + w] += dpatches[:, :, :, :, i, j].transpose(0, 3, 1, 2)
        return dxp[:, :, pad : pad + h, pad : pad + w]

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        _, h, w = input_shape
        return (1, h, w)

    def flops(self, input_shape: tuple[int, ...]) -> float:
        _, h, w = input_shape
        per_cell = self.mlp.flops((self.in_channels * self.patch * self.patch,))
        return per_cell * h * w

    def __repr__(self) -> str:  # pragma: no cover
        return f"YangModel(patch={self.patch})"
