"""Adapter exposing a trained network as a pressure solver.

The Poisson solve ``A p = b`` is linear, so two tricks apply:

* **scale equivariance** — the network is trained on unit-variance
  right-hand sides; the adapter normalises ``b`` by its standard deviation
  over fluid cells and rescales the prediction, so one model covers all
  magnitudes;
* **defect correction** — the prediction can be refined by re-applying the
  network to the residual: ``p <- p + NN(b - A p)``.  Each pass costs one
  inference and multiplies the residual by the network's one-shot error
  factor.

The paper's GPU-scale CNNs reach their reported quality in a single
inference; our CPU-scale CNNs use a small number of passes (default 2) to
land in the same quality band — a documented substitution (see DESIGN.md).
The returned pressure is zeroed on solids and mean-centred over fluid,
matching the exact solver's convention.
"""

from __future__ import annotations

import numpy as np

from repro.fluid.operators import apply_laplacian
from repro.fluid.pcg import SolveResult
from repro.nn import Layer, Network, analyze_network

__all__ = ["NNProjectionSolver"]


class NNProjectionSolver:
    """Pressure-solver protocol implementation backed by a neural network."""

    def __init__(self, model: Layer, name: str = "nn", passes: int = 2):
        if passes < 1:
            raise ValueError("passes must be >= 1")
        self.model = model
        self.name = name
        self.passes = passes

    def solve(self, b: np.ndarray, solid: np.ndarray) -> SolveResult:
        """Approximate the Poisson solution with ``passes`` network inferences."""
        fluid = ~solid
        nf = int(fluid.sum())
        if nf == 0:
            return SolveResult(np.zeros_like(b), 0, True, 0.0)
        from repro.fluid.laplacian import remove_nullspace

        b = remove_nullspace(b, solid)
        geo = solid.astype(np.float64)

        p = np.zeros_like(b)
        r = b
        done = 0
        for _ in range(self.passes):
            sigma = float(r[fluid].std())
            if sigma < 1e-300:
                break
            x = np.stack([r / sigma, geo])[None]
            dp = self.model.forward(x, training=False)[0, 0] * sigma
            p = p + np.where(fluid, dp, 0.0)
            r = remove_nullspace(b - apply_laplacian(p, solid), solid)
            done += 1
        p = remove_nullspace(p, solid)
        residual = float(np.abs(r[fluid]).max())
        flops = done * (self.model.flops((2,) + b.shape) + 12.0 * nf)
        return SolveResult(p, done, True, residual, flops)

    def resource_usage(self, shape: tuple[int, int]):
        """Static FLOP/parameter/memory profile for a given grid shape.

        FLOPs cover all refinement passes of one solve.
        """
        if isinstance(self.model, Network):
            usage = analyze_network(self.model, (2,) + shape)
        else:
            from repro.nn.accounting import ResourceUsage

            usage = ResourceUsage(
                flops=self.model.flops((2,) + shape),
                params=self.model.param_count(),
                memory_bytes=float(self.model.param_count() * 4 + 3 * shape[0] * shape[1] * 4),
            )
        usage.flops = self.passes * (usage.flops + 12.0 * shape[0] * shape[1])
        return usage
