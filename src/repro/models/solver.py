"""Adapter exposing a trained network as a pressure solver.

The Poisson solve ``A p = b`` is linear, so two tricks apply:

* **scale equivariance** — the network is trained on unit-variance
  right-hand sides; the adapter normalises ``b`` by its standard deviation
  over fluid cells and rescales the prediction, so one model covers all
  magnitudes;
* **defect correction** — the prediction can be refined by re-applying the
  network to the residual: ``p <- p + NN(b - A p)``.  Each pass costs one
  inference and multiplies the residual by the network's one-shot error
  factor.

The paper's GPU-scale CNNs reach their reported quality in a single
inference; our CPU-scale CNNs use a small number of passes (default 2) to
land in the same quality band — a documented substitution (see DESIGN.md).
The returned pressure is zeroed on solids and mean-centred over fluid,
matching the exact solver's convention.

Hot-path caching: the stacked network input ``(1, 2, H, W)`` is a reused
workspace buffer, and the float view of the geometry channel is cached per
solid mask, so steady-state inference performs no per-call input
allocations.  ``reset()`` drops both.
"""

from __future__ import annotations

import numpy as np

from repro.fluid.operators import apply_laplacian
from repro.fluid.solver_api import MaskKeyedCache, PressureSolver, SolveResult
from repro.metrics import MetricsRegistry, get_metrics
from repro.nn import Layer, Network, analyze_network

__all__ = ["NNProjectionSolver"]


class NNProjectionSolver(PressureSolver):
    """Pressure-solver protocol implementation backed by a neural network."""

    def __init__(
        self,
        model: Layer,
        name: str = "nn",
        passes: int = 2,
        metrics: MetricsRegistry | None = None,
    ):
        if passes < 1:
            raise ValueError("passes must be >= 1")
        self.model = model
        self.name = name
        self.passes = passes
        self._metrics = metrics
        self._geo_cache = MaskKeyedCache("nn_geometry")
        self._x: np.ndarray | None = None  # reused (1, 2, H, W) input workspace

    def reset(self) -> None:
        """Drop the cached geometry channel and all workspace buffers."""
        self._geo_cache.clear()
        self._x = None
        stack = [self.model]
        while stack:
            layer = stack.pop()
            if hasattr(layer, "reset_workspace"):
                layer.reset_workspace()
            stack.extend(getattr(layer, "layers", []))

    def solve(self, b: np.ndarray, solid: np.ndarray) -> SolveResult:
        """Approximate the Poisson solution with ``passes`` network inferences."""
        metrics = self._metrics if self._metrics is not None else get_metrics()
        with metrics.timer(f"solver/{self.name}/solve"):
            result = self._solve(b, solid, metrics)
        metrics.inc(f"solver/{self.name}/solves")
        metrics.inc(f"solver/{self.name}/inferences", result.iterations)
        return result

    def _solve(self, b: np.ndarray, solid: np.ndarray, metrics: MetricsRegistry) -> SolveResult:
        fluid = ~solid
        nf = int(fluid.sum())
        if nf == 0:
            return SolveResult(np.zeros_like(b), 0, True, 0.0)
        from repro.fluid.laplacian import remove_nullspace

        b = remove_nullspace(b, solid)
        geo = self._geo_cache.get(solid, lambda: solid.astype(np.float64), metrics)

        if self._x is None or self._x.shape[2:] != b.shape:
            self._x = np.empty((1, 2) + b.shape, dtype=np.float64)
        self._x[0, 1] = geo

        p = np.zeros_like(b)
        r = b
        done = 0
        for _ in range(self.passes):
            sigma = float(r[fluid].std())
            if sigma < 1e-300:
                break
            np.divide(r, sigma, out=self._x[0, 0])
            dp = self.model.forward(self._x, training=False)[0, 0] * sigma
            p = p + np.where(fluid, dp, 0.0)
            r = remove_nullspace(b - apply_laplacian(p, solid), solid)
            done += 1
        p = remove_nullspace(p, solid)
        residual = float(np.abs(r[fluid]).max())
        flops = done * (self.model.flops((2,) + b.shape) + 12.0 * nf)
        return SolveResult(p, done, True, residual, flops)

    def resource_usage(self, shape: tuple[int, int]):
        """Static FLOP/parameter/memory profile for a given grid shape.

        FLOPs cover all refinement passes of one solve.
        """
        if isinstance(self.model, Network):
            usage = analyze_network(self.model, (2,) + shape)
        else:
            from repro.nn.accounting import ResourceUsage

            usage = ResourceUsage(
                flops=self.model.flops((2,) + shape),
                params=self.model.param_count(),
                memory_bytes=float(self.model.param_count() * 4 + 3 * shape[0] * shape[1] * 4),
            )
        usage.flops = self.passes * (usage.flops + 12.0 * shape[0] * shape[1])
        return usage
