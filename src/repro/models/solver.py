"""Adapter exposing a trained network as a pressure solver.

The Poisson solve ``A p = b`` is linear, so two tricks apply:

* **scale equivariance** — the network is trained on unit-variance
  right-hand sides; the adapter normalises ``b`` by its standard deviation
  over fluid cells and rescales the prediction, so one model covers all
  magnitudes;
* **defect correction** — the prediction can be refined by re-applying the
  network to the residual: ``p <- p + NN(b - A p)``.  Each pass costs one
  inference and multiplies the residual by the network's one-shot error
  factor.

The paper's GPU-scale CNNs reach their reported quality in a single
inference; our CPU-scale CNNs use a small number of passes (default 2) to
land in the same quality band — a documented substitution (see DESIGN.md).
The returned pressure is zeroed on solids and mean-centred over fluid,
matching the exact solver's convention.

Hot-path caching: the stacked network input ``(N, 2, H, W)`` is a reused
workspace buffer, and the float view of the geometry channel is cached per
solid mask, so steady-state inference performs no per-call input
allocations.  ``reset()`` drops both.

Inference engine: forward passes run through a compiled
:class:`repro.nn.InferencePlan` (built lazily per input shape and batch
capacity, rebuilt only when either grows).  ``precision="fp64"`` (default)
compiles the bitwise-replay plan, so results are bit-for-bit identical to
the legacy layer-by-layer forward; ``precision="fp32"`` compiles the
single-precision fast path — the normalised residual is cast to float32 on
the way into the plan and the predicted pressure increment is cast back to
float64 here at the solver boundary, so everything downstream (PCG-grade
residual accounting, DivNorm histories, checkpoints) stays double.  Models
outside the plan vocabulary fall back to the legacy forward (counted via
``solver/<name>/plan_unsupported``).

Batch dimension: :meth:`NNProjectionSolver.solve_many` assembles *several*
same-shape problems (possibly with different solid masks) into one stacked
``(N, 2, H, W)`` tensor and runs the defect-correction passes as batched
forward passes — one CNN inference per pass for the whole batch, which is
how the farm's batched inference service amortises inference across
concurrent simulations (cf. Tompson et al.'s batched training/inference).
The single-sample :meth:`~NNProjectionSolver.solve` is the ``N = 1`` case
of the same code path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.fluid.kernels import GeometryKernels
from repro.fluid.solver_api import MaskKeyedCache, PressureSolver, SolveResult
from repro.metrics import MetricsRegistry, get_metrics
from repro.nn import InferencePlan, Layer, Network, PlanError, analyze_network
from repro.trace import get_tracer

__all__ = ["NNProjectionSolver"]

_PRECISIONS = {"fp32": np.float32, "fp64": np.float64}


class NNProjectionSolver(PressureSolver):
    """Pressure-solver protocol implementation backed by a neural network."""

    def __init__(
        self,
        model: Layer,
        name: str = "nn",
        passes: int = 2,
        metrics: MetricsRegistry | None = None,
        precision: str = "fp64",
    ):
        if passes < 1:
            raise ValueError("passes must be >= 1")
        if precision not in _PRECISIONS:
            raise ValueError(
                f"precision must be one of {sorted(_PRECISIONS)}, got {precision!r}"
            )
        self.model = model
        self.name = name
        self.passes = passes
        self.precision = precision
        self._metrics = metrics
        self._geo_cache = MaskKeyedCache("nn_geometry")
        # multi-entry: batched farm solves interleave several geometries
        self._kernels_cache = MaskKeyedCache("kernels", capacity=16)
        self._x: np.ndarray | None = None  # reused (N, 2, H, W) input workspace
        self._plan: InferencePlan | None = None
        self._plan_unsupported = False

    def reset(self) -> None:
        """Drop the cached geometry channel and all workspace buffers."""
        self._geo_cache.clear()
        self._kernels_cache.clear()
        self._x = None
        self._plan = None
        self._plan_unsupported = False
        stack = [self.model]
        while stack:
            layer = stack.pop()
            if hasattr(layer, "reset_workspace"):
                layer.reset_workspace()
            stack.extend(getattr(layer, "layers", []))

    def ensure_capacity(self, shape: tuple[int, int], capacity: int) -> None:
        """Pre-size the input workspace and inference plan for a batch.

        The farm's batched inference service calls this once at full batch
        capacity so that shrinking batches (jobs finishing at different
        steps) run through leading-axis views of one plan instead of
        triggering rebuilds.
        """
        shape = tuple(shape)
        capacity = int(capacity)
        if (
            self._x is None
            or self._x.shape[0] < capacity
            or self._x.shape[2:] != shape
        ):
            self._x = np.empty((capacity, 2) + shape, dtype=np.float64)
        metrics = self._metrics if self._metrics is not None else get_metrics()
        self._ensure_plan(shape, self._x.shape[0], metrics)

    def _ensure_plan(
        self, shape: tuple[int, int], capacity: int, metrics: MetricsRegistry
    ) -> InferencePlan | None:
        """The compiled plan for ``(2,) + shape`` at ``capacity``, or None.

        Plans are compiled once per (input shape, batch capacity); models
        outside the plan vocabulary permanently fall back to the legacy
        layer-by-layer forward (counted, not raised).
        """
        if self._plan_unsupported:
            return None
        plan = self._plan
        if (
            plan is not None
            and plan.input_shape == (2,) + shape
            and plan.capacity == capacity
        ):
            return plan
        tracer = get_tracer()
        try:
            with metrics.timer(f"solver/{self.name}/plan_build"):
                with tracer.span(
                    "plan_build", solver=self.name, capacity=capacity
                ):
                    self._plan = InferencePlan(
                        self.model,
                        (2,) + shape,
                        batch_capacity=capacity,
                        dtype=_PRECISIONS[self.precision],
                    )
        except PlanError:
            self._plan = None
            self._plan_unsupported = True
            metrics.inc(f"solver/{self.name}/plan_unsupported")
            return None
        metrics.inc(f"solver/{self.name}/plan_builds")
        tracer.event(
            "plan_build",
            solver=self.name,
            shape=list(shape),
            capacity=capacity,
            precision=self.precision,
        )
        return self._plan

    def _infer(self, x: np.ndarray, metrics: MetricsRegistry) -> np.ndarray:
        """One stacked forward pass through the plan (legacy on fallback)."""
        plan = self._ensure_plan(x.shape[2:], self._x.shape[0], metrics)
        if plan is None:
            return self.model.forward(x, training=False)
        return plan.run(x)

    def solve(self, b: np.ndarray, solid: np.ndarray) -> SolveResult:
        """Approximate the Poisson solution with ``passes`` network inferences."""
        metrics = self._metrics if self._metrics is not None else get_metrics()
        with metrics.timer(f"solver/{self.name}/solve"):
            result = self._solve_many([b], [solid], metrics)[0]
        metrics.inc(f"solver/{self.name}/solves")
        metrics.inc(f"solver/{self.name}/inferences", result.iterations)
        return result

    def solve_many(
        self, bs: Sequence[np.ndarray], solids: Sequence[np.ndarray]
    ) -> list[SolveResult]:
        """Solve several same-shape problems with stacked batch inference.

        All right-hand sides (and masks) must share one ``(H, W)`` shape;
        the masks themselves may differ — each sample carries its own
        geometry channel.  Every defect-correction pass runs the CNN once
        over the whole ``(N, 2, H, W)`` stack, so inference cost per sample
        drops with batch size.  Results match per-sample :meth:`solve`
        calls exactly (same operations, same order).
        """
        metrics = self._metrics if self._metrics is not None else get_metrics()
        with metrics.timer(f"solver/{self.name}/solve_batch"):
            results = self._solve_many(list(bs), list(solids), metrics)
        metrics.inc(f"solver/{self.name}/batch_solves")
        metrics.inc(f"solver/{self.name}/solves", len(results))
        metrics.inc(f"solver/{self.name}/batched_samples", len(results))
        metrics.inc(
            f"solver/{self.name}/inferences", sum(r.iterations for r in results)
        )
        return results

    def _solve_many(
        self,
        bs: list[np.ndarray],
        solids: list[np.ndarray],
        metrics: MetricsRegistry,
    ) -> list[SolveResult]:
        if len(bs) != len(solids):
            raise ValueError(f"{len(bs)} right-hand sides but {len(solids)} masks")
        n = len(bs)
        if n == 0:
            return []
        shape = bs[0].shape
        for arr in list(bs) + list(solids):
            if arr.shape != shape:
                raise ValueError(
                    f"batched solve requires one shared shape, got {arr.shape} != {shape}"
                )
        from repro.fluid.laplacian import remove_nullspace

        fluids = [~s for s in solids]
        nfs = [int(f.sum()) for f in fluids]

        # stacked input workspace; capacity-based so shrinking batches
        # (jobs finishing at different times) reuse the same buffer
        if (
            self._x is None
            or self._x.shape[0] < n
            or self._x.shape[2:] != shape
        ):
            self._x = np.empty((n, 2) + shape, dtype=np.float64)
        x = self._x[:n]
        for i, solid in enumerate(solids):
            if n == 1:
                x[i, 1] = self._geo_cache.get(
                    solid, lambda: solid.astype(np.float64), metrics
                )
            else:
                x[i, 1] = solid

        B = [remove_nullspace(b, s) if nf else np.zeros_like(b) for b, s, nf in zip(bs, solids, nfs)]
        P = [np.zeros_like(b) for b in bs]
        R = list(B)
        # defect-correction residuals run through the compiled CSR Laplacian
        # (bitwise equal to apply_laplacian, see repro.fluid.kernels)
        kerns = [
            self._kernels_cache.get(s, lambda s=s: GeometryKernels(s), metrics)
            for s in solids
        ]
        done = [0] * n
        for _ in range(self.passes):
            sigmas = [
                float(R[i][fluids[i]].std()) if nfs[i] else 0.0 for i in range(n)
            ]
            active = [i for i in range(n) if sigmas[i] >= 1e-300]
            if not active:
                break
            for i in range(n):
                if i in active:
                    np.divide(R[i], sigmas[i], out=x[i, 0])
                else:
                    x[i, 0] = 0.0
            out = self._infer(x, metrics)
            for i in active:
                dp = out[i, 0] * sigmas[i]
                P[i] = P[i] + np.where(fluids[i], dp, 0.0)
                kern = kerns[i]
                lap = kern.scatter(kern.matvec(kern.gather(P[i])))
                R[i] = remove_nullspace(B[i] - lap, solids[i])
                done[i] += 1

        results = []
        model_flops = self.model.flops((2,) + shape)
        for i in range(n):
            if nfs[i] == 0:
                results.append(SolveResult(np.zeros_like(bs[i]), 0, True, 0.0))
                continue
            p = remove_nullspace(P[i], solids[i])
            residual = float(np.abs(R[i][fluids[i]]).max())
            flops = done[i] * (model_flops + 12.0 * nfs[i])
            results.append(SolveResult(p, done[i], True, residual, flops))
        return results

    def resource_usage(self, shape: tuple[int, int]):
        """Static FLOP/parameter/memory profile for a given grid shape.

        FLOPs cover all refinement passes of one solve.
        """
        if isinstance(self.model, Network):
            usage = analyze_network(self.model, (2,) + shape)
        else:
            from repro.nn.accounting import ResourceUsage

            usage = ResourceUsage(
                flops=self.model.flops((2,) + shape),
                params=self.model.param_count(),
                memory_bytes=float(self.model.param_count() * 4 + 3 * shape[0] * shape[1] * 4),
            )
        usage.flops = self.passes * (usage.flops + 12.0 * shape[0] * shape[1])
        return usage
