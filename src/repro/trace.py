"""Structured tracing: spans, histograms, step events, timeline export.

This module is the *temporal* half of the observability stack.  Where
:mod:`repro.metrics` answers "how much / how long in aggregate", tracing
answers "when, in what order, and inside what" — the questions the
Smart-fluidnet runtime loop raises: when did the controller switch models,
why did a run fall back to exact PCG, and where inside one step the
wall-clock went.

Concepts
--------
spans
    Nested timed regions (``sim`` > ``step`` > ``projection`` >
    ``solve/pcg``) with ids, parent links and free-form attributes.  The
    :class:`Tracer` records them per thread without locks on the hot path;
    export interleaves all threads on one wall-clock axis.
histograms
    :class:`HistogramStat` — fixed log-bucket latency histograms, mergeable
    like :class:`~repro.metrics.TimerStat`, giving p50/p95/p99 instead of
    just min/mean/max.  Every completed span feeds the histogram of its
    span name.
step events
    A typed event stream (:class:`Event`): ``step``, ``divnorm``,
    ``model_switch``, ``pcg_fallback``, ``checkpoint``, ``plan_build`` and
    the farm job/heartbeat types.  The simulator and the adaptive
    controller emit these, forming a per-run timeline that maps directly
    onto the paper's Figure 5 / Algorithm 2 quantities (see DESIGN.md).
export
    ``write_jsonl`` emits one JSON object per line; ``write_chrome`` emits
    the Chrome ``trace_event`` format, loadable in ``chrome://tracing`` or
    Perfetto.  The chrome file embeds the full structured snapshot under a
    top-level ``"repro"`` key (ignored by viewers), so :func:`read_trace`
    restores a lossless :class:`Tracer` from either format.

Disabled tracers are no-ops cheap enough to leave in every hot path —
mirroring the ``enabled=False`` contract of :mod:`repro.metrics` — and the
process-wide default (:func:`get_tracer`) starts *disabled*; ``repro
simulate --trace`` and the farm's ``trace=True`` install enabled ones.
All timestamps are wall-clock (``time.time()``) so traces from different
worker processes merge onto one axis without shifting; durations are
measured with ``time.perf_counter()`` for resolution.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "EVENT_TYPES",
    "Event",
    "Span",
    "HistogramStat",
    "Tracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "read_trace",
    "summarize",
    "event_type_counts",
    "slowest_spans",
    "format_summary",
]

#: the typed step-event vocabulary (see DESIGN.md for the paper mapping)
EVENT_TYPES = frozenset(
    {
        "step",  # one simulation step completed (seconds, solver)
        "divnorm",  # per-step DivNorm sample (Eq. 5 / Figure 5 trajectory)
        "model_switch",  # Algorithm 2 switched the runtime model
        "pcg_fallback",  # Algorithm 2 gave up / farm degraded to exact PCG
        "nn_precond",  # Algorithm 2 escalated to the NN-preconditioned CG solver
        "checkpoint",  # a job checkpoint was written
        "plan_build",  # an NN inference plan was compiled
        "job_start",  # a farm job (attempt) began executing
        "job_end",  # a farm job attempt reached a terminal state
        "heartbeat",  # periodic worker progress sample
        "resume",  # a job picked up a checkpoint (retry or pcg fallback)
    }
)


@dataclass
class Event:
    """One typed timeline event.

    ``t`` is wall-clock unix seconds (0.0 when unknown, e.g. events
    reconstructed from a pre-tracing checkpoint); ``step`` is the
    simulation step the event refers to, when it refers to one.
    """

    type: str
    step: int | None = None
    t: float = 0.0
    attrs: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.type not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {self.type!r}; expected one of {sorted(EVENT_TYPES)}"
            )

    def to_dict(self) -> dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "type": self.type,
            "step": self.step,
            "t": self.t,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Event":
        """Rebuild an event from :meth:`to_dict` output."""
        step = d.get("step")
        return cls(
            type=d["type"],
            step=None if step is None else int(step),
            t=float(d.get("t", 0.0)),
            attrs=dict(d.get("attrs", {})),
        )


@dataclass
class Span:
    """One completed (or in-flight) timed region."""

    name: str
    span_id: str
    parent_id: str | None = None
    t: float = 0.0  # wall-clock start (unix seconds)
    dur: float = 0.0  # duration in seconds
    attrs: dict = field(default_factory=dict)
    pid: int = 0
    tid: int = 0

    def to_dict(self) -> dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t": self.t,
            "dur": self.dur,
            "attrs": dict(self.attrs),
            "pid": self.pid,
            "tid": self.tid,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(
            name=d["name"],
            span_id=str(d["span_id"]),
            parent_id=d.get("parent_id"),
            t=float(d.get("t", 0.0)),
            dur=float(d.get("dur", 0.0)),
            attrs=dict(d.get("attrs", {})),
            pid=int(d.get("pid", 0)),
            tid=int(d.get("tid", 0)),
        )


# ----------------------------------------------------------------------
# histogram metric
# ----------------------------------------------------------------------

_HIST_FLOOR = 1e-9  # 1 ns: everything below lands in bucket 0
_HIST_GROWTH = 2.0 ** 0.25  # 4 buckets per doubling (~19% resolution)
_LOG_GROWTH = math.log(_HIST_GROWTH)


def _bucket_of(value: float) -> int:
    if value <= _HIST_FLOOR:
        return 0
    return int(math.floor(math.log(value / _HIST_FLOOR) / _LOG_GROWTH + 1e-12))


def _bucket_bounds(index: int) -> tuple[float, float]:
    lo = _HIST_FLOOR * _HIST_GROWTH**index
    return lo, lo * _HIST_GROWTH


@dataclass
class HistogramStat:
    """Fixed log-bucket histogram of a positive-valued metric (latencies).

    Buckets grow geometrically (4 per doubling, ~19% wide), so quantile
    estimates carry a bounded relative error at any scale from nanoseconds
    to minutes.  Like :class:`~repro.metrics.TimerStat` it is empty-safe and
    merge is commutative and associative, so per-worker histograms fold
    into a farm-level view in any order.
    """

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: dict[int, int] = field(default_factory=dict)

    def add(self, value: float) -> None:
        """Fold one observation into the histogram."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        idx = _bucket_of(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        """Mean observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (geometric bucket midpoint, clamped).

        Returns ``nan`` when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return math.nan
        rank = q * (self.count - 1)
        cum = 0
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            if cum > rank:
                lo, hi = _bucket_bounds(idx)
                mid = math.sqrt(lo * hi)
                return min(self.max, max(self.min, mid))
        return self.max  # pragma: no cover - defensive

    def merge(self, other: "HistogramStat") -> "HistogramStat":
        """Fold another histogram into this one (commutative); returns self."""
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        return self

    def to_dict(self) -> dict:
        """Plain-JSON representation (``min``/``max`` null when empty)."""
        empty = self.count == 0
        return {
            "count": self.count,
            "total": self.total,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "HistogramStat":
        """Inverse of :meth:`to_dict` (empty stats normalise exactly)."""
        count = int(d.get("count", 0))
        if count == 0:
            return cls()
        return cls(
            count=count,
            total=float(d.get("total", 0.0)),
            min=math.inf if d.get("min") is None else float(d["min"]),
            max=-math.inf if d.get("max") is None else float(d["max"]),
            buckets={int(k): int(v) for k, v in d.get("buckets", {}).items()},
        )


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------


class _ThreadBuffer:
    """Per-thread recording state: no locks on the hot path."""

    __slots__ = ("tid", "spans", "events", "histograms", "stack", "seq")

    def __init__(self, tid: int):
        self.tid = tid
        self.spans: list[Span] = []
        self.events: list[Event] = []
        self.histograms: dict[str, HistogramStat] = {}
        self.stack: list[Span] = []
        self.seq = 0


class Tracer:
    """Record spans, histograms and typed events; export timelines.

    A disabled tracer (``enabled=False``) turns every operation into a
    cheap no-op, so instrumentation stays unconditionally in hot paths —
    the CI bench gate holds the enabled-vs-disabled simulation overhead
    under 5%.

    Thread model: each thread appends to its own buffer (created once under
    a small lock), so concurrent farm threads never contend; snapshots and
    exports interleave the buffers on the shared wall-clock axis.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._buffers: list[_ThreadBuffer] = []
        # state folded in from merge()/from_dict(): other processes' spans
        self._merged_spans: list[Span] = []
        self._merged_events: list[Event] = []
        self._merged_hists: dict[str, HistogramStat] = {}

    # ------------------------------------------------------------------
    def _buf(self) -> _ThreadBuffer:
        buf = getattr(self._tls, "buf", None)
        if buf is None:
            buf = _ThreadBuffer(threading.get_ident())
            self._tls.buf = buf
            with self._lock:
                self._buffers.append(buf)
        return buf

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs):
        """Time a nested region; yields the live :class:`Span` (or None).

        The yielded span's ``attrs`` may be filled in during the block
        (e.g. iteration counts known only after a solve).
        """
        if not self.enabled:
            yield None
            return
        buf = self._buf()
        buf.seq += 1
        sp = Span(
            name=name,
            span_id=f"{os.getpid()}:{buf.tid}:{buf.seq}",
            parent_id=buf.stack[-1].span_id if buf.stack else None,
            t=time.time(),
            attrs=attrs,
            pid=os.getpid(),
            tid=buf.tid,
        )
        buf.stack.append(sp)
        t0 = time.perf_counter()
        try:
            yield sp
        finally:
            sp.dur = time.perf_counter() - t0
            buf.stack.pop()
            buf.spans.append(sp)
            h = buf.histograms.get(name)
            if h is None:
                h = buf.histograms[name] = HistogramStat()
            h.add(sp.dur)

    def event(self, type_: str, step: int | None = None, **attrs) -> Event | None:
        """Record one typed timeline event (no-op when disabled)."""
        if not self.enabled:
            return None
        ev = Event(type=type_, step=step, t=time.time(), attrs=attrs)
        self._buf().events.append(ev)
        return ev

    def record(self, event: Event) -> None:
        """Append an already-constructed :class:`Event` (no-op if disabled)."""
        if not self.enabled:
            return
        self._buf().events.append(event)

    def observe(self, name: str, value: float) -> None:
        """Feed one observation into histogram ``name`` directly."""
        if not self.enabled:
            return
        buf = self._buf()
        h = buf.histograms.get(name)
        if h is None:
            h = buf.histograms[name] = HistogramStat()
        h.add(value)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def spans(self) -> list[Span]:
        """All completed spans, sorted by start time."""
        with self._lock:
            bufs = list(self._buffers)
        out = list(self._merged_spans)
        for buf in bufs:
            out.extend(buf.spans)
        out.sort(key=lambda s: s.t)
        return out

    def events(self, type_: str | None = None) -> list[Event]:
        """All events (optionally of one type), ordered by step then time."""
        with self._lock:
            bufs = list(self._buffers)
        out = list(self._merged_events)
        for buf in bufs:
            out.extend(buf.events)
        if type_ is not None:
            out = [e for e in out if e.type == type_]
        out.sort(key=lambda e: (e.step if e.step is not None else -1, e.t))
        return out

    @property
    def histograms(self) -> dict[str, HistogramStat]:
        """Merged per-name histograms across all threads (a fresh copy)."""
        with self._lock:
            bufs = list(self._buffers)
        out: dict[str, HistogramStat] = {
            k: HistogramStat.from_dict(v.to_dict()) for k, v in self._merged_hists.items()
        }
        for buf in bufs:
            for name, h in buf.histograms.items():
                mine = out.get(name)
                if mine is None:
                    mine = out[name] = HistogramStat()
                mine.merge(h)
        return out

    def reset(self) -> None:
        """Drop everything recorded so far (keeps enabled state)."""
        with self._lock:
            self._buffers = []
            self._tls = threading.local()
            self._merged_spans = []
            self._merged_events = []
            self._merged_hists = {}

    # ------------------------------------------------------------------
    # (de)serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless plain-JSON snapshot of the whole trace."""
        return {
            "schema": "repro-trace/v1",
            "spans": [s.to_dict() for s in self.spans()],
            "events": [e.to_dict() for e in self.events()],
            "histograms": {k: v.to_dict() for k, v in sorted(self.histograms.items())},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Tracer":
        """Rebuild a tracer from a :meth:`to_dict` snapshot."""
        tr = cls(enabled=True)
        tr._merged_spans = [Span.from_dict(s) for s in d.get("spans", [])]
        tr._merged_events = [Event.from_dict(e) for e in d.get("events", [])]
        tr._merged_hists = {
            k: HistogramStat.from_dict(v) for k, v in d.get("histograms", {}).items()
        }
        return tr

    def merge(self, other: "Tracer | dict") -> "Tracer":
        """Fold another tracer (or snapshot dict) into this one.

        Wall-clock timestamps are absolute, so traces from different
        processes interleave without shifting.  Returns ``self``.
        """
        if isinstance(other, dict):
            if not other:
                return self
            other = Tracer.from_dict(other)
        with self._lock:
            self._merged_spans.extend(other.spans())
            self._merged_events.extend(other.events())
            for name, h in other.histograms.items():
                mine = self._merged_hists.get(name)
                if mine is None:
                    mine = self._merged_hists[name] = HistogramStat()
                mine.merge(h)
        return self

    # ------------------------------------------------------------------
    # export formats
    # ------------------------------------------------------------------
    def write_jsonl(self, path: str | Path) -> Path:
        """Write the trace as JSON-lines; returns the path written."""
        path = Path(path)
        with open(path, "w") as f:
            f.write(json.dumps({"kind": "meta", "schema": "repro-trace/v1"}) + "\n")
            for sp in self.spans():
                f.write(json.dumps({"kind": "span", **sp.to_dict()}) + "\n")
            for ev in self.events():
                f.write(json.dumps({"kind": "event", **ev.to_dict()}) + "\n")
            for name, h in sorted(self.histograms.items()):
                f.write(
                    json.dumps({"kind": "histogram", "name": name, **h.to_dict()}) + "\n"
                )
        return path

    def to_chrome(self) -> dict:
        """The trace as a Chrome ``trace_event`` JSON object.

        Loadable in ``chrome://tracing`` / Perfetto; the ``"repro"`` key
        carries the lossless structured snapshot (viewers ignore it).
        """
        snapshot = self.to_dict()
        spans, events = snapshot["spans"], snapshot["events"]
        t0 = min(
            [s["t"] for s in spans] + [e["t"] for e in events if e["t"]] or [0.0]
        )
        trace_events = []
        for s in spans:
            trace_events.append(
                {
                    "name": s["name"],
                    "cat": "span",
                    "ph": "X",
                    "ts": (s["t"] - t0) * 1e6,
                    "dur": s["dur"] * 1e6,
                    "pid": s["pid"],
                    "tid": s["tid"],
                    "args": s["attrs"],
                }
            )
        for e in events:
            args = dict(e["attrs"])
            if e["step"] is not None:
                args["step"] = e["step"]
            trace_events.append(
                {
                    "name": e["type"],
                    "cat": "event",
                    "ph": "i",
                    "s": "p",
                    "ts": ((e["t"] - t0) * 1e6) if e["t"] else 0.0,
                    "pid": os.getpid(),
                    "tid": 0,
                    "args": args,
                }
            )
        trace_events.sort(key=lambda te: te["ts"])
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "repro": snapshot,
        }

    def write_chrome(self, path: str | Path) -> Path:
        """Write the Chrome-trace JSON file; returns the path written."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome(), indent=None) + "\n")
        return path

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Tracer(enabled={self.enabled}, {len(self.spans())} spans, "
            f"{len(self.events())} events)"
        )


def read_trace(path: str | Path) -> Tracer:
    """Load a trace written by :meth:`Tracer.write_chrome` or ``write_jsonl``.

    Plain Chrome traces without the embedded ``"repro"`` snapshot are also
    accepted: spans and events are reconstructed from ``traceEvents`` and
    histograms are rebuilt from span durations.
    """
    path = Path(path)
    text = path.read_text()
    first = text.lstrip()[:1]
    if first == "{" and '"kind"' not in text.splitlines()[0]:
        doc = json.loads(text)
        if "repro" in doc:
            return Tracer.from_dict(doc["repro"])
        if "traceEvents" in doc:
            return _from_chrome_events(doc["traceEvents"])
        return Tracer.from_dict(doc)
    # JSONL
    tr = Tracer(enabled=True)
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        kind = rec.pop("kind", None)
        if kind == "span":
            tr._merged_spans.append(Span.from_dict(rec))
        elif kind == "event":
            tr._merged_events.append(Event.from_dict(rec))
        elif kind == "histogram":
            tr._merged_hists[rec.pop("name")] = HistogramStat.from_dict(rec)
    return tr


def _from_chrome_events(trace_events: list[dict]) -> Tracer:
    tr = Tracer(enabled=True)
    seq = 0
    for te in trace_events:
        if te.get("ph") == "X":
            seq += 1
            sp = Span(
                name=te.get("name", "?"),
                span_id=str(seq),
                t=float(te.get("ts", 0.0)) / 1e6,
                dur=float(te.get("dur", 0.0)) / 1e6,
                attrs=dict(te.get("args", {})),
                pid=int(te.get("pid", 0)),
                tid=int(te.get("tid", 0)),
            )
            tr._merged_spans.append(sp)
            h = tr._merged_hists.setdefault(sp.name, HistogramStat())
            h.add(sp.dur)
        elif te.get("ph") == "i":
            args = dict(te.get("args", {}))
            step = args.pop("step", None)
            name = te.get("name", "")
            if name in EVENT_TYPES:
                tr._merged_events.append(
                    Event(
                        type=name,
                        step=None if step is None else int(step),
                        t=float(te.get("ts", 0.0)) / 1e6,
                        attrs=args,
                    )
                )
    return tr


# ----------------------------------------------------------------------
# summaries
# ----------------------------------------------------------------------


def summarize(tracer: Tracer) -> dict[str, dict]:
    """Per-span-name latency summary (count/total/mean/p50/p95/p99)."""
    out: dict[str, dict] = {}
    for name, h in sorted(tracer.histograms.items()):
        out[name] = {
            "count": h.count,
            "total": h.total,
            "mean": h.mean,
            "p50": h.quantile(0.50),
            "p95": h.quantile(0.95),
            "p99": h.quantile(0.99),
            "min": None if h.count == 0 else h.min,
            "max": None if h.count == 0 else h.max,
        }
    return out


def event_type_counts(tracer: Tracer) -> dict[str, int]:
    """Events per type, sorted by descending count then name.

    Answers "what happened how often" (checkpoints, fallbacks, model
    switches, heartbeats) without walking the raw event stream.
    """
    counts: dict[str, int] = {}
    for ev in tracer.events():
        counts[ev.type] = counts.get(ev.type, 0) + 1
    return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))


def slowest_spans(tracer: Tracer, n: int = 5) -> list[Span]:
    """The ``n`` longest individual spans, slowest first.

    The per-name summary shows which *kind* of span dominates; this shows
    the worst *instances* — with their span ids and attrs, which exemplar-
    carrying histograms link back to.
    """
    return sorted(tracer.spans(), key=lambda sp: sp.dur, reverse=True)[: max(0, n)]


def _fmt_seconds(s: float | None) -> str:
    if s is None or (isinstance(s, float) and math.isnan(s)):
        return "-"
    if s >= 1.0:
        return f"{s:.3f}s"
    if s >= 1e-3:
        return f"{s * 1e3:.2f}ms"
    return f"{s * 1e6:.1f}us"


def format_summary(tracer: Tracer) -> str:
    """Human-readable trace summary: per-span table, event counts, slowest.

    Three sections answer "what dominated" without loading Perfetto: the
    aggregate per-span-name latency table, events-per-type counts, and the
    top-5 slowest individual spans with their span ids and attrs.
    """
    rows = summarize(tracer)
    if not rows:
        lines = ["(no spans recorded)"]
    else:
        name_w = max(len("span"), max(len(n) for n in rows))
        header = (
            f"{'span':<{name_w}}  {'count':>7}  {'total':>9}  {'mean':>9}  "
            f"{'p50':>9}  {'p95':>9}  {'p99':>9}  {'max':>9}"
        )
        lines = [header, "-" * len(header)]
        for name, r in rows.items():
            lines.append(
                f"{name:<{name_w}}  {r['count']:>7d}  {_fmt_seconds(r['total']):>9}  "
                f"{_fmt_seconds(r['mean']):>9}  {_fmt_seconds(r['p50']):>9}  "
                f"{_fmt_seconds(r['p95']):>9}  {_fmt_seconds(r['p99']):>9}  "
                f"{_fmt_seconds(r['max']):>9}"
            )
    counts = event_type_counts(tracer)
    if counts:
        lines.append("")
        lines.append("events: " + "  ".join(f"{t}={c}" for t, c in counts.items()))
    slowest = slowest_spans(tracer, 5)
    if slowest:
        lines.append("")
        lines.append("slowest spans:")
        for sp in slowest:
            attrs = ""
            if sp.attrs:
                inner = ", ".join(f"{k}={v}" for k, v in sorted(sp.attrs.items()))
                attrs = f"  {{{inner}}}"
            lines.append(
                f"  {_fmt_seconds(sp.dur):>9}  {sp.name}  [span {sp.span_id}]{attrs}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# process-wide default (fork-aware, like repro.metrics)
# ----------------------------------------------------------------------

#: Shared disabled tracer: safe zero-overhead default for library code.
NULL_TRACER = Tracer(enabled=False)

# The process default starts *disabled*: tracing is opt-in (CLI --trace,
# farm trace=True), unlike metrics whose default registry records always.
_default = Tracer(enabled=False)
_default_pid = os.getpid()


def get_tracer() -> Tracer:
    """The process-wide default tracer instrumented code records into.

    Fork-aware: a forked child inherits the parent's tracer object, whose
    buffers the parent would never see; the first call after a PID change
    installs a fresh (disabled) tracer in the child.  Workers that trace
    install their own enabled tracer via :func:`set_tracer` and ship the
    snapshot home inside their :class:`~repro.farm.jobs.JobResult`.
    """
    global _default, _default_pid
    if os.getpid() != _default_pid:
        _default = Tracer(enabled=False)
        _default_pid = os.getpid()
    return _default


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-wide default tracer; returns the previous one."""
    global _default, _default_pid
    previous = _default
    _default = tracer
    _default_pid = os.getpid()
    return previous
