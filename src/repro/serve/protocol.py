"""Wire protocol of the serve tier: length-prefixed JSON frames.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  The framing is deliberately minimal — the service
listens on a *local* unix socket, so there is no TLS, compression or
negotiation, just unambiguous message boundaries over a byte stream.

Requests are JSON objects with an ``op`` field (``submit`` / ``status`` /
``result`` / ``cancel`` / ``watch`` / ``stats``) and op-specific fields;
responses carry ``ok`` plus either the op's payload or an ``error`` object
``{"code", "type", "message"}`` whose ``code`` round-trips the typed
exception hierarchy rooted at :class:`ServeError` (so a client can re-raise
``quota_exceeded`` as a :class:`~repro.serve.admission.QuotaExceededError`
rather than a stringly-typed failure).  ``watch`` is the one streaming op:
the server answers with any number of ``{"event": ...}`` frames and a
terminal ``{"done": true}``.
"""

from __future__ import annotations

import asyncio
import json
import struct

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ServeError",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "write_frame",
]

#: hard upper bound on one frame's payload; a result with a full metrics
#: profile is ~10-100 KiB, so anything near this limit is a framing bug
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ServeError(RuntimeError):
    """Base of the serve tier's typed error hierarchy.

    Every subclass pins a stable ``code`` string that crosses the wire in
    error responses; :meth:`repro.serve.client.ServiceClient` maps codes
    back to the matching exception class.
    """

    code = "error"


class ProtocolError(ServeError):
    """Malformed frame: bad header, oversized payload or invalid JSON."""

    code = "protocol_error"


def encode_frame(message: dict) -> bytes:
    """One message as wire bytes: length header + JSON payload."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    """Parse one frame payload back into a message dict."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame payload must be a JSON object, got {type(message).__name__}")
    return message


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:  # clean close between frames
            return None
        raise ProtocolError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_payload(payload)


async def write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    """Write one frame and flush it to the transport."""
    writer.write(encode_frame(message))
    await writer.drain()
