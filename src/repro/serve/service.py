"""The serve tier itself: :class:`SimulationService` and its socket server.

:class:`SimulationService` is the in-process API — an asyncio front end
over a resizable :class:`repro.farm.pool.Pool` of simulation workers:

* **submit** consults the content-addressed :class:`~repro.serve.cache.
  ResultCache` first (a hit is answered instantly and skips the pending
  cap — it costs no worker time — but still drains one rate token), then
  per-tenant :class:`~repro.serve.admission.AdmissionController` quotas,
  then enqueues into the pool at the requested priority.
* an :class:`~repro.serve.autoscaler.Autoscaler` grows and shrinks the
  worker fleet with queue depth; shrink always drains, never kills.
* worker telemetry events are bridged from pool threads onto the event
  loop and fanned out to **watch** subscribers; they also fold into a
  live :class:`~repro.farm.telemetry.FleetView`.
* **stop(drain=True)** finishes every admitted job before exiting;
  ``drain=False`` cancels cooperatively and resolves still-pending
  result futures with ``cancelled`` results.  Either way the cache
  index is flushed to disk.

:class:`ServiceServer` exposes the same API over a local unix socket
using the length-prefixed JSON frames of :mod:`repro.serve.protocol`.

All service methods must be called from the event loop that ran
:meth:`SimulationService.start`; only the pool callbacks hop threads.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.farm.jobs import JobResult, JobSpec
from repro.farm.pool import Pool
from repro.farm.telemetry import FleetView
from repro.metrics import MetricsRegistry
from repro.obs.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.obs.prometheus import OPENMETRICS_CONTENT_TYPE, render_prometheus
from repro.obs.slo import SLO, SLOEngine, default_serve_slos
from repro.obs.timeseries import SeriesRecorder
from repro.trace import HistogramStat

from .admission import AdmissionController, TenantQuota
from .autoscaler import Autoscaler
from .cache import ResultCache
from .protocol import ProtocolError, ServeError, read_frame, write_frame

__all__ = [
    "DuplicateJobError",
    "InvalidSpecError",
    "ShuttingDownError",
    "SimulationService",
    "ServiceServer",
    "UnknownJobError",
]

_TERMINAL = ("completed", "failed", "cancelled")


class UnknownJobError(ServeError):
    """The referenced job_id was never submitted to this service."""

    code = "unknown_job"


class DuplicateJobError(ServeError):
    """A job with this job_id is already tracked by the service."""

    code = "duplicate_job"


class ShuttingDownError(ServeError):
    """The service is stopping and no longer accepts submissions."""

    code = "shutting_down"


class InvalidSpecError(ServeError):
    """The submitted spec dict failed :class:`JobSpec` validation."""

    code = "invalid_spec"


@dataclass
class _Job:
    """One tracked submission: spec, bookkeeping and its waiters."""

    spec: JobSpec
    tenant: str
    priority: int
    status: str = "queued"
    admitted: bool = False
    cached: bool = False
    submitted_at: float = 0.0
    result: JobResult | None = None
    future: asyncio.Future = None  # set by the service on the loop
    watchers: list[asyncio.Queue] = field(default_factory=list)

    def summary(self) -> dict:
        return {
            "job_id": self.spec.job_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "status": self.status,
            "cached": self.cached,
            "cache_key": self.spec.cache_key(),
        }


class SimulationService:
    """Long-lived simulation-as-a-service front end (in-process API).

    Parameters
    ----------
    cache_dir:
        Result-cache directory; ``None`` disables caching entirely.
    cache_entries:
        LRU capacity of the result cache.
    checkpoint_dir:
        Checkpoint directory handed to the pool (orphan-swept at start).
    min_workers, max_workers:
        Autoscaling band of the worker fleet.
    default_quota, quotas:
        Admission limits (service-wide default + per-tenant overrides).
    autoscale_seconds:
        Cadence of the background autoscaler loop.
    metrics:
        Registry shared by the pool, cache, admission and autoscaler.
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        cache_entries: int | None = 256,
        checkpoint_dir: str | Path | None = None,
        min_workers: int = 1,
        max_workers: int = 4,
        default_quota: TenantQuota | None = None,
        quotas: dict[str, TenantQuota] | None = None,
        autoscale_seconds: float = 0.25,
        heartbeat_seconds: float = 0.5,
        metrics: MetricsRegistry | None = None,
        clock=time.monotonic,
        obs_interval: float = 1.0,
        slos: list[SLO] | None = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = (
            ResultCache(cache_dir, max_entries=cache_entries, metrics=self.metrics)
            if cache_dir is not None
            else None
        )
        self.admission = AdmissionController(
            default_quota=default_quota if default_quota is not None else TenantQuota(),
            quotas=quotas,
            clock=clock,
        )
        self.checkpoint_dir = checkpoint_dir
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.autoscale_seconds = autoscale_seconds
        self.heartbeat_seconds = heartbeat_seconds
        #: live per-job telemetry folded from pool worker events
        self.fleet = FleetView()
        self.pool: Pool | None = None
        self.autoscaler: Autoscaler | None = None
        self._jobs: dict[str, _Job] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._scaler_task: asyncio.Task | None = None
        self._obs_task: asyncio.Task | None = None
        self._stopping = False

        # --- labeled metric families (scraped via the metrics op) --------
        families = self.metrics.families
        self._submit_total = families.counter(
            "serve_submit_total",
            help="Submissions by tenant and outcome (accepted/cached/rejection code).",
            labels=("tenant", "outcome"),
        )
        self._submit_latency = families.histogram(
            "serve_submit_to_result_seconds",
            help="Submit-to-terminal-result latency by tenant.",
            labels=("tenant",),
            unit="seconds",
        )
        self._cache_by_scenario = families.counter(
            "serve_cache_requests_total",
            help="Result-cache lookups by scenario and outcome.",
            labels=("scenario", "outcome"),
        )
        self._jobs_by_status = families.counter(
            "serve_jobs_total",
            help="Terminal jobs by status (completed/failed/cancelled).",
            labels=("status",),
        )

        # --- time series + SLO engine (the repro health surface) ---------
        self.obs_interval = obs_interval
        self.recorder = SeriesRecorder(interval=obs_interval, clock=clock)
        self._register_series()
        self.slo_engine = SLOEngine(
            self.recorder, slos if slos is not None else default_serve_slos()
        )

    # ------------------------------------------------------------------
    # observability wiring
    # ------------------------------------------------------------------
    def _register_series(self) -> None:
        """Declare the recorded series the stock SLOs evaluate against."""
        counters = self.metrics.counters
        rec = self.recorder

        def flat(*names: str):
            return lambda: sum(counters.get(n, 0.0) for n in names)

        rec.add_source("serve_submitted", flat("serve/submitted"))
        rec.add_source("serve_rejected", flat("serve/rejected"))
        rec.add_source("serve_cache_misses", flat("serve/cache/misses"))
        rec.add_source(
            "serve_cache_requests", flat("serve/cache/hits", "serve/cache/misses")
        )
        rec.add_source("serve_jobs_failed", flat("serve/jobs_failed"))
        rec.add_source(
            "serve_jobs_finished",
            flat("serve/jobs_completed", "serve/jobs_failed", "serve/jobs_cancelled"),
        )
        rec.add_source("farm_degradations", flat("farm/degradations"))
        rec.add_source("serve_queue_depth", lambda: self.pool.queue_depth)
        rec.add_source("serve_workers", lambda: self.pool.alive)
        rec.add_source("serve_workers_busy", lambda: self.pool.busy)
        rec.add_source("serve_submit_to_result_p99", self._latency_p99)

    def _latency_p99(self) -> float:
        """p99 submit-to-result latency across all tenants (merged series)."""
        merged = HistogramStat()
        for _, (stat, _exemplar) in self._submit_latency.samples():
            merged.merge(stat)
        if merged.count == 0:
            raise ValueError("no latency observations yet")  # recorder skips
        return merged.quantile(0.99)

    async def _obs_loop(self) -> None:
        """Background sampling loop feeding the recorder at obs cadence."""
        while not self._stopping:
            self.recorder.tick()
            await asyncio.sleep(self.obs_interval)

    def _tenant_outcome(self, tenant: str, outcome: str) -> None:
        """Count a submit outcome, folding tenant-cardinality overflow.

        Tenant names arrive from clients, so the label is potentially
        unbounded; past the family's series cap new tenants aggregate
        under ``_overflow`` instead of failing the submission (the raise-
        don't-OOM guard stays for genuinely programmatic label abuse).
        """
        self._submit_total.labels_or_overflow(
            "tenant", tenant=tenant, outcome=outcome
        ).inc()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spin up the worker pool and the background autoscaler."""
        if self.pool is not None:
            raise RuntimeError("service already started")
        self._loop = asyncio.get_running_loop()
        self.pool = Pool(
            workers=self.min_workers,
            checkpoint_dir=self.checkpoint_dir,
            metrics=self.metrics,
            on_event=self._on_pool_event,
            on_result=self._on_pool_result,
            heartbeat_seconds=self.heartbeat_seconds,
            poll_seconds=0.02,
        )
        self.autoscaler = Autoscaler(
            self.pool,
            min_workers=self.min_workers,
            max_workers=self.max_workers,
            interval_seconds=self.autoscale_seconds,
            metrics=self.metrics,
        )
        self._scaler_task = asyncio.create_task(self.autoscaler.run())
        self._obs_task = asyncio.create_task(self._obs_loop())

    async def stop(self, drain: bool = True, timeout: float | None = None) -> bool:
        """Stop the service; True when every job reached a terminal state.

        ``drain=True`` finishes all admitted jobs first (bounded by
        ``timeout``); ``drain=False`` cancels queued jobs and asks running
        ones to stop at their next step boundary.  The cache LRU index is
        flushed either way.
        """
        self._stopping = True
        ok = True
        if self.autoscaler is not None:
            self.autoscaler.stop()
        if self._scaler_task is not None:
            await self._scaler_task
            self._scaler_task = None
        if self._obs_task is not None:
            self._obs_task.cancel()
            try:
                await self._obs_task
            except asyncio.CancelledError:
                pass
            self._obs_task = None
        if self.pool is not None:
            loop = asyncio.get_running_loop()
            if drain:
                ok = await loop.run_in_executor(None, self.pool.drain, timeout)
            # past this point any still-admitted job is cancelled at its
            # next step boundary; workers exit at the next job boundary
            ok = await loop.run_in_executor(
                None, lambda: self.pool.shutdown(False, timeout)
            ) and ok
        # let already-scheduled result callbacks land before sweeping
        await asyncio.sleep(0)
        for job in self._jobs.values():
            if job.status not in _TERMINAL:
                self._finish(
                    JobResult(
                        job_id=job.spec.job_id,
                        status="cancelled",
                        error="service shutdown",
                    )
                )
        if self.cache is not None:
            self.cache.flush()
        return ok

    # ------------------------------------------------------------------
    # pool callbacks (worker threads) -> event loop
    # ------------------------------------------------------------------
    def _on_pool_event(self, event: dict) -> None:
        self.fleet.observe(event)  # FleetView is thread-safe
        self._post(self._publish, event)

    def _on_pool_result(self, result: JobResult) -> None:
        self._post(self._finish, result)

    def _post(self, fn, arg) -> None:
        try:
            self._loop.call_soon_threadsafe(fn, arg)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    def _publish(self, event: dict) -> None:
        job = self._jobs.get(event.get("job_id")) if isinstance(event, dict) else None
        if job is None:
            return
        if event.get("type") == "job_start" and job.status == "queued":
            job.status = "running"
        for q in job.watchers:
            q.put_nowait(event)

    def _finish(self, result: JobResult) -> None:
        job = self._jobs.get(result.job_id)
        if job is None or job.status in _TERMINAL:
            return
        job.status = result.status
        job.result = result
        job.cached = result.cached
        if job.admitted:
            job.admitted = False
            self.admission.release(job.tenant)
        if self.cache is not None and result.ok and not result.cached:
            self.cache.put(job.spec.cache_key(), result)
        if job.future is not None and not job.future.done():
            job.future.set_result(result)
        terminal = {
            "type": "result",
            "job_id": result.job_id,
            "status": result.status,
            "cached": result.cached,
            "t": time.time(),
        }
        self.fleet.observe(terminal)
        for q in job.watchers:
            q.put_nowait(terminal)
            q.put_nowait(None)  # sentinel: stream is over
        job.watchers.clear()
        self.metrics.inc(f"serve/jobs_{result.status}")
        self._jobs_by_status.inc(status=result.status)
        if job.submitted_at:
            elapsed = time.time() - job.submitted_at
            self._submit_latency.labels_or_overflow(
                "tenant", tenant=job.tenant
            ).observe(elapsed)

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec, tenant: str = "default", priority: int = 1) -> dict:
        """Submit one job; returns its status summary.

        Raises the typed :class:`ServeError` hierarchy on rejection:
        :class:`DuplicateJobError`, :class:`ShuttingDownError`, or an
        :class:`~repro.serve.admission.AdmissionError` subclass.  A result
        -cache hit completes the job immediately (``cached=True`` in the
        summary) without worker time or a pending slot — but it still
        drains one rate token, so cached specs stay rate-limited.
        """
        if self.pool is None:
            raise RuntimeError("service not started")
        if self._stopping:
            raise ShuttingDownError("service is shutting down")
        if spec.job_id in self._jobs:
            raise DuplicateJobError(f"job_id {spec.job_id!r} was already submitted")
        job = _Job(
            spec=spec,
            tenant=tenant,
            priority=priority,
            submitted_at=time.time(),
            future=self._loop.create_future(),
        )
        self.metrics.inc("serve/submitted")
        scenario = spec.scenario.split(":", 1)[0]
        if self.cache is not None:
            hit = self.cache.get(spec.cache_key())
            self._cache_by_scenario.inc(
                scenario=scenario, outcome="hit" if hit is not None else "miss"
            )
            if hit is not None:
                self.fleet.bump("cache_hits")
                # a hit costs no worker time (no pending slot) but is still
                # a submission: bill the tenant's token bucket
                try:
                    self.admission.charge(tenant)
                except ServeError as exc:
                    self.metrics.inc("serve/rejected")
                    self.fleet.bump("admission_rejects")
                    self._tenant_outcome(tenant, exc.code)
                    raise
                # re-badge the stored result as *this* job's answer
                served = JobResult.from_dict({**hit.to_dict(), "job_id": spec.job_id})
                served.cached = True
                self._jobs[spec.job_id] = job
                self._tenant_outcome(tenant, "cached")
                self._finish(served)
                return job.summary()
        try:
            self.admission.admit(tenant)
        except ServeError as exc:
            self.metrics.inc("serve/rejected")
            self.fleet.bump("admission_rejects")
            self._tenant_outcome(tenant, exc.code)
            raise
        job.admitted = True
        self._tenant_outcome(tenant, "accepted")
        self._jobs[spec.job_id] = job
        self.pool.submit(spec, priority=priority)
        self.autoscaler.tick()  # react to the new demand immediately
        return job.summary()

    def _job(self, job_id: str) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"unknown job_id {job_id!r}")
        return job

    def status(self, job_id: str) -> dict:
        """Current status summary of one job."""
        return self._job(job_id).summary()

    async def result(self, job_id: str, timeout: float | None = None) -> JobResult:
        """Wait for (and return) the job's terminal :class:`JobResult`."""
        job = self._job(job_id)
        if job.result is not None:
            return job.result
        return await asyncio.wait_for(asyncio.shield(job.future), timeout)

    def cancel(self, job_id: str) -> dict:
        """Request cancellation; returns ``{"job_id", "outcome"}``.

        ``outcome`` is ``"queued"`` (dequeued, will never run),
        ``"running"`` (stops at the next step boundary) or ``"finished"``
        (already terminal — nothing to do).
        """
        job = self._job(job_id)
        if job.status in _TERMINAL:
            return {"job_id": job_id, "outcome": "finished"}
        outcome = self.pool.cancel(job_id)
        if outcome == "unknown":
            # not in the pool yet/anymore but not terminal here: the result
            # callback is in flight — treat as finished-any-moment
            outcome = "finished"
        return {"job_id": job_id, "outcome": outcome}

    def subscribe(self, job_id: str) -> asyncio.Queue:
        """A queue of this job's live telemetry events.

        Yields worker event dicts and a final ``None`` sentinel once the
        job is terminal.  Subscribing to an already-finished job yields
        just its terminal ``result`` event.
        """
        job = self._job(job_id)
        q: asyncio.Queue = asyncio.Queue()
        if job.status in _TERMINAL:
            q.put_nowait(
                {
                    "type": "result",
                    "job_id": job_id,
                    "status": job.status,
                    "cached": job.cached,
                    "t": time.time(),
                }
            )
            q.put_nowait(None)
        else:
            job.watchers.append(q)
        return q

    def unsubscribe(self, job_id: str, q: asyncio.Queue) -> None:
        """Detach a watcher queue (no-op if already detached)."""
        job = self._jobs.get(job_id)
        if job is not None and q in job.watchers:
            job.watchers.remove(q)

    def stats(self) -> dict:
        """One JSON-able snapshot of the whole service."""
        by_status: dict[str, int] = {}
        for job in self._jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            "jobs": {
                "total": len(self._jobs),
                "by_status": by_status,
                "cached": sum(1 for j in self._jobs.values() if j.cached),
            },
            "admission": self.admission.snapshot(),
            "cache": self.cache.stats() if self.cache is not None else None,
            "pool": self.autoscaler.snapshot() if self.autoscaler is not None else None,
        }

    def metrics_text(self, openmetrics: bool = False) -> str:
        """The Prometheus exposition of every metric surface.

        Labeled families (including worker series merged home through the
        pool) plus the flat counter/timer registry.  ``openmetrics=True``
        renders the OpenMetrics exposition, which additionally carries
        exemplars linking slow histogram buckets to their trace spans —
        the classic ``0.0.4`` page must not (classic parsers reject them).
        """
        return render_prometheus(
            self.metrics.families, self.metrics, openmetrics=openmetrics
        )

    def health(self) -> dict:
        """SLO burn-rate evaluation over the recorded series.

        Ticks the recorder opportunistically first (so a freshly-started
        service still reports against current samples), then evaluates
        every declared SLO.  ``state`` is the worst across SLOs:
        ``ok`` < ``warning`` < ``critical``; ``no_data`` means a series
        has no traffic to judge yet.
        """
        self.recorder.tick()
        report = self.slo_engine.to_dict()
        report["recorder"] = {
            "interval_seconds": self.recorder.interval,
            "series": self.recorder.names(),
        }
        return report


# ----------------------------------------------------------------------
# the unix-socket front end
# ----------------------------------------------------------------------
class ServiceServer:
    """Expose a :class:`SimulationService` over a local unix socket.

    One connection handles any number of sequential request frames; the
    streaming ``watch`` op holds the connection until the watched job is
    terminal.  Typed :class:`ServeError`\\ s become ``error`` responses
    with their stable ``code``; unexpected exceptions are reported as
    ``internal`` without taking the server down.
    """

    def __init__(self, service: SimulationService, socket_path: str | Path):
        self.service = service
        self.socket_path = str(socket_path)
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        """Bind the unix socket and start accepting connections."""
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=self.socket_path
        )

    async def stop(self) -> None:
        """Stop accepting connections and close the listener."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    await write_frame(writer, _error_response(exc))
                    break
                if request is None:
                    break
                try:
                    await self._dispatch(request, writer)
                except ServeError as exc:
                    await write_frame(writer, _error_response(exc))
                except Exception as exc:  # keep the server alive
                    await write_frame(
                        writer,
                        {
                            "ok": False,
                            "error": {
                                "code": "internal",
                                "type": type(exc).__name__,
                                "message": str(exc),
                            },
                        },
                    )
        except (ConnectionResetError, BrokenPipeError):  # client went away
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, request: dict, writer) -> None:
        op = request.get("op")
        if op == "submit":
            spec_dict = request.get("spec")
            if not isinstance(spec_dict, dict):
                raise ProtocolError("submit needs a 'spec' object")
            try:
                spec = JobSpec.from_dict(spec_dict)
            except (TypeError, ValueError) as exc:
                raise InvalidSpecError(str(exc)) from exc
            summary = self.service.submit(
                spec,
                tenant=str(request.get("tenant", "default")),
                priority=int(request.get("priority", 1)),
            )
            await write_frame(writer, {"ok": True, "job": summary})
        elif op == "status":
            await write_frame(
                writer, {"ok": True, "job": self.service.status(_job_id(request))}
            )
        elif op == "result":
            timeout = request.get("timeout")
            result = await self.service.result(
                _job_id(request), timeout=float(timeout) if timeout is not None else None
            )
            await write_frame(writer, {"ok": True, "result": result.to_dict()})
        elif op == "cancel":
            await write_frame(
                writer, {"ok": True, **self.service.cancel(_job_id(request))}
            )
        elif op == "watch":
            job_id = _job_id(request)
            q = self.service.subscribe(job_id)
            await write_frame(writer, {"ok": True, "watching": job_id})
            try:
                while True:
                    event = await q.get()
                    if event is None:
                        await write_frame(writer, {"done": True})
                        break
                    await write_frame(writer, {"event": event})
            finally:
                self.service.unsubscribe(job_id, q)
        elif op == "stats":
            await write_frame(writer, {"ok": True, "stats": self.service.stats()})
        elif op == "metrics":
            openmetrics = bool(request.get("openmetrics", False))
            await write_frame(
                writer,
                {
                    "ok": True,
                    "content_type": (
                        OPENMETRICS_CONTENT_TYPE if openmetrics else PROMETHEUS_CONTENT_TYPE
                    ),
                    "text": self.service.metrics_text(openmetrics=openmetrics),
                },
            )
        elif op == "health":
            await write_frame(writer, {"ok": True, "health": self.service.health()})
        else:
            raise ProtocolError(f"unknown op {op!r}")


def _job_id(request: dict) -> str:
    job_id = request.get("job_id")
    if not isinstance(job_id, str) or not job_id:
        raise ProtocolError(f"op {request.get('op')!r} needs a 'job_id' string")
    return job_id


def _error_response(exc: ServeError) -> dict:
    return {
        "ok": False,
        "error": {"code": exc.code, "type": type(exc).__name__, "message": str(exc)},
    }
