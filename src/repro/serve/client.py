"""Async client of the serve tier's unix-socket protocol.

:class:`ServiceClient` speaks the length-prefixed JSON frames of
:mod:`repro.serve.protocol` and maps ``error`` responses back to the
typed exception hierarchy — a ``quota_exceeded`` rejection raises
:class:`~repro.serve.admission.QuotaExceededError` on the client exactly
as it did on the server, so callers branch on exception type, never on
message strings.
"""

from __future__ import annotations

from pathlib import Path

import asyncio

from repro.farm.jobs import JobResult, JobSpec

from .admission import AdmissionError, QueueFullError, QuotaExceededError
from .protocol import ProtocolError, ServeError, read_frame, write_frame
from .service import (
    DuplicateJobError,
    InvalidSpecError,
    ShuttingDownError,
    UnknownJobError,
)

__all__ = ["ServiceClient", "connect"]

#: wire code -> exception class; unknown codes fall back to ServeError
_CODE_TO_ERROR = {
    cls.code: cls
    for cls in (
        ProtocolError,
        AdmissionError,
        QuotaExceededError,
        QueueFullError,
        UnknownJobError,
        DuplicateJobError,
        ShuttingDownError,
        InvalidSpecError,
    )
}


def _raise_from_error(error: dict) -> None:
    code = error.get("code", "error") if isinstance(error, dict) else "error"
    message = error.get("message", "") if isinstance(error, dict) else str(error)
    raise _CODE_TO_ERROR.get(code, ServeError)(message)


class ServiceClient:
    """One connection to a running :class:`~repro.serve.service.ServiceServer`.

    Use as an async context manager (or :func:`connect`)::

        async with await connect(sock) as client:
            job = await client.submit(spec, tenant="batch")
            result = await client.result(job["job_id"])
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def open(cls, socket_path: str | Path) -> "ServiceClient":
        """Connect to the service socket."""
        reader, writer = await asyncio.open_unix_connection(str(socket_path))
        return cls(reader, writer)

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        """Close the connection."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    async def _request(self, message: dict) -> dict:
        await write_frame(self._writer, message)
        response = await read_frame(self._reader)
        if response is None:
            raise ProtocolError("server closed the connection mid-request")
        if not response.get("ok", False):
            _raise_from_error(response.get("error"))
        return response

    async def submit(
        self, spec: JobSpec, tenant: str = "default", priority: int = 1
    ) -> dict:
        """Submit a job; returns its status summary (may be a cache hit)."""
        response = await self._request(
            {"op": "submit", "spec": spec.to_dict(), "tenant": tenant, "priority": priority}
        )
        return response["job"]

    async def status(self, job_id: str) -> dict:
        """Current status summary of one job."""
        return (await self._request({"op": "status", "job_id": job_id}))["job"]

    async def result(self, job_id: str, timeout: float | None = None) -> JobResult:
        """Block until the job is terminal; returns its :class:`JobResult`."""
        message = {"op": "result", "job_id": job_id}
        if timeout is not None:
            message["timeout"] = timeout
        return JobResult.from_dict((await self._request(message))["result"])

    async def cancel(self, job_id: str) -> str:
        """Request cancellation; returns the outcome string."""
        return (await self._request({"op": "cancel", "job_id": job_id}))["outcome"]

    async def stats(self) -> dict:
        """The service's stats snapshot."""
        return (await self._request({"op": "stats"}))["stats"]

    async def metrics(self, openmetrics: bool = False) -> str:
        """The service's metrics in Prometheus text exposition format.

        ``openmetrics=True`` asks for the OpenMetrics exposition instead
        (exemplars, ``# EOF`` trailer).
        """
        request = {"op": "metrics"}
        if openmetrics:
            request["openmetrics"] = True
        return (await self._request(request))["text"]

    async def health(self) -> dict:
        """The service's SLO health report (state + per-objective burn rates)."""
        return (await self._request({"op": "health"}))["health"]

    async def watch(self, job_id: str):
        """Async-iterate the job's live telemetry events until terminal.

        The connection is dedicated to the stream while iterating; make a
        second client for concurrent requests.
        """
        await self._request({"op": "watch", "job_id": job_id})
        while True:
            frame = await read_frame(self._reader)
            if frame is None:
                raise ProtocolError("server closed the connection mid-watch")
            if frame.get("done"):
                return
            if not frame.get("ok", True):  # error mid-stream
                _raise_from_error(frame.get("error"))
            yield frame.get("event")


async def connect(socket_path: str | Path) -> ServiceClient:
    """Shorthand for :meth:`ServiceClient.open`."""
    return await ServiceClient.open(socket_path)
