"""Content-addressed result cache: ``cache_key`` → persisted ``JobResult``.

Entries live under a sharded on-disk store — ``root/<key[:2]>/<key>.json``
— addressed by :meth:`repro.farm.jobs.JobSpec.cache_key`, the SHA-256 of
the spec's canonical semantic document.  Because the key is derived from
*what the simulation computes* (scenario, grid, seed, steps, solver,
params, requirement) and nothing else, two tenants submitting the same
configuration under different job ids share one entry, and a spec change
that alters the output can never alias a stale entry.

Writes are atomic (tmp file + fsync + ``os.replace``), so a crash mid-put
leaves either the previous entry or none — never a torn JSON file.  An
``index.json`` at the root persists the LRU recency order across restarts;
if it is missing or corrupt the cache rebuilds the index by scanning the
shards (recency then falls back to file mtimes).  Eviction is LRU beyond
``max_entries``: evicted entries are unlinked from disk, not just
forgotten.

Only ``completed`` results are cached — a failure is not a reusable fact
about the configuration, it is a fact about one attempt.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

from repro.farm.jobs import JobResult
from repro.metrics import MetricsRegistry

__all__ = ["ResultCache"]

_INDEX_NAME = "index.json"


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class ResultCache:
    """Sharded, LRU-bounded, crash-safe store of completed job results.

    Parameters
    ----------
    root:
        Directory the store lives in (created if missing).
    max_entries:
        LRU capacity; ``None`` means unbounded.
    metrics:
        Registry receiving ``serve/cache/{hits,misses,puts,evictions}``.
    """

    def __init__(
        self,
        root: str | Path,
        max_entries: int | None = 256,
        metrics: MetricsRegistry | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        self.root = Path(root)
        self.max_entries = max_entries
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        #: key -> entry path, in LRU order (oldest first)
        self._index: OrderedDict[str, Path] = OrderedDict()
        self.root.mkdir(parents=True, exist_ok=True)
        self._load_index()

    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _scan_entries(self) -> list[tuple[float, str, Path]]:
        found: list[tuple[float, str, Path]] = []
        for shard in self.root.iterdir():
            if not (shard.is_dir() and len(shard.name) == 2):
                continue
            for entry in shard.glob("*.json"):
                key = entry.stem
                if len(key) == 64 and key.startswith(shard.name):
                    try:
                        mtime = entry.stat().st_mtime
                    except OSError:  # pragma: no cover - raced unlink
                        continue
                    found.append((mtime, key, entry))
        return sorted(found)

    def _load_index(self) -> None:
        """Adopt the persisted recency order, falling back to a shard scan.

        The index is advisory (recency only): entries present on disk but
        missing from it are appended by scan, entries it names that no
        longer exist are dropped.  A corrupt index therefore costs LRU
        precision, never data.
        """
        keys: list[str] = []
        index_file = self.root / _INDEX_NAME
        try:
            loaded = json.loads(index_file.read_text(encoding="utf-8"))
            if isinstance(loaded, dict) and isinstance(loaded.get("keys"), list):
                keys = [k for k in loaded["keys"] if isinstance(k, str)]
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            keys = []
        on_disk = {key: path for _mtime, key, path in self._scan_entries()}
        for key in keys:
            if key in on_disk:
                self._index[key] = on_disk.pop(key)
        for key, path in on_disk.items():  # mtime order: oldest first
            self._index[key] = path

    def _persist_index(self) -> None:
        _atomic_write_text(
            self.root / _INDEX_NAME,
            json.dumps({"keys": list(self._index)}, separators=(",", ":")),
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._index

    def get(self, key: str) -> JobResult | None:
        """The cached result under ``key``, or ``None`` on a miss.

        A hit refreshes the entry's LRU recency.  An unreadable entry
        (deleted or corrupted behind the cache's back) is dropped and
        counted as a miss.
        """
        with self._lock:
            path = self._index.get(key)
            if path is None:
                self.metrics.inc("serve/cache/misses")
                return None
            try:
                result = JobResult.from_dict(json.loads(path.read_text(encoding="utf-8")))
            except (OSError, json.JSONDecodeError, UnicodeDecodeError, TypeError):
                self._index.pop(key, None)
                path.unlink(missing_ok=True)
                self.metrics.inc("serve/cache/misses")
                return None
            self._index.move_to_end(key)
            self.metrics.inc("serve/cache/hits")
            return result

    def put(self, key: str, result: JobResult) -> bool:
        """Store a completed result under ``key``; False if not cacheable."""
        if not result.ok:
            return False
        with self._lock:
            path = self._entry_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            _atomic_write_text(path, json.dumps(result.to_dict(), separators=(",", ":")))
            self._index[key] = path
            self._index.move_to_end(key)
            self.metrics.inc("serve/cache/puts")
            while self.max_entries is not None and len(self._index) > self.max_entries:
                _evicted_key, evicted_path = self._index.popitem(last=False)
                evicted_path.unlink(missing_ok=True)
                self.metrics.inc("serve/cache/evictions")
        return True

    def flush(self) -> None:
        """Persist the LRU index (atomic) — call at shutdown."""
        with self._lock:
            self._persist_index()

    def stats(self) -> dict:
        """Occupancy and hit/miss counters for the stats surface."""
        with self._lock:
            entries = len(self._index)
        return {
            "entries": entries,
            "max_entries": self.max_entries,
            "hits": int(self.metrics.counter("serve/cache/hits")),
            "misses": int(self.metrics.counter("serve/cache/misses")),
            "puts": int(self.metrics.counter("serve/cache/puts")),
            "evictions": int(self.metrics.counter("serve/cache/evictions")),
        }
