"""Per-tenant admission control: token-bucket quotas and pending caps.

Millions of users do not get an unbounded right to simulate: every tenant
(an API key, a product surface, a batch pipeline) carries a
:class:`TenantQuota` — a token-bucket *rate* limit smoothing sustained load,
a *burst* allowance for interactive spikes, and a *max_pending* cap bounding
how much of the queue one tenant may occupy.  :class:`AdmissionController`
enforces all three at submission time and raises **typed** errors
(:class:`QuotaExceededError`, :class:`QueueFullError`) so callers and the
wire protocol can distinguish "slow down" from "you already have too much
queued" without parsing message strings.

Cache hits bypass only the *pending* cap: serving a content-addressed
result costs microseconds and no worker time, so it never occupies a
queue slot — but it is still a submission, and :meth:`AdmissionController.
charge` bills it to the tenant's token bucket.  Without that charge, a
tenant could hammer popular cached specs at unbounded rate, converting
the cache into a rate-limit escape hatch.

The controller takes an injectable ``clock`` so quota behaviour is
deterministic under test.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from .protocol import ServeError

__all__ = [
    "TenantQuota",
    "TokenBucket",
    "AdmissionError",
    "QuotaExceededError",
    "QueueFullError",
    "AdmissionController",
    "DEFAULT_QUOTA",
]


class AdmissionError(ServeError):
    """A submission was rejected by admission control."""

    code = "admission_denied"

    def __init__(self, message: str, tenant: str = ""):
        super().__init__(message)
        self.tenant = tenant


class QuotaExceededError(AdmissionError):
    """The tenant's token bucket is empty — sustained rate exceeded."""

    code = "quota_exceeded"


class QueueFullError(AdmissionError):
    """The tenant already has ``max_pending`` jobs queued or running."""

    code = "queue_full"


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits of one tenant.

    ``rate`` is the sustained submission rate in jobs/second (token refill);
    ``burst`` is the bucket capacity — how many jobs may arrive back-to-back
    after an idle period; ``max_pending`` bounds the tenant's jobs that are
    admitted but not yet finished.  ``rate=None`` disables rate limiting
    (the bucket never empties); ``max_pending=None`` disables the cap.
    """

    rate: float | None = 4.0
    burst: float = 8.0
    max_pending: int | None = 16

    def __post_init__(self):
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be > 0 (or None to disable)")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError("max_pending must be >= 1 (or None to disable)")


#: the quota applied to tenants without an explicit entry
DEFAULT_QUOTA = TenantQuota()


class TokenBucket:
    """A standard token bucket: ``burst`` capacity refilled at ``rate``/s."""

    def __init__(self, rate: float | None, burst: float, clock=time.monotonic):
        self.rate = rate
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._refilled = clock()

    def _refill(self) -> None:
        now = self._clock()
        if self.rate is not None:
            self._tokens = min(self.burst, self._tokens + (now - self._refilled) * self.rate)
        self._refilled = now

    @property
    def available(self) -> float:
        """Tokens currently in the bucket."""
        self._refill()
        return self._tokens if self.rate is not None else self.burst

    def try_take(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if present; False (and no change) otherwise."""
        if self.rate is None:
            return True
        self._refill()
        if self._tokens + 1e-12 < n:
            return False
        self._tokens -= n
        return True


class _TenantState:
    __slots__ = ("quota", "bucket", "pending", "admitted", "rejected")

    def __init__(self, quota: TenantQuota, clock):
        self.quota = quota
        self.bucket = TokenBucket(quota.rate, quota.burst, clock)
        self.pending = 0
        self.admitted = 0
        self.rejected = 0


class AdmissionController:
    """Thread-safe per-tenant admission decisions.

    ``admit`` either records one pending job for the tenant or raises a
    typed :class:`AdmissionError`; the owner must call ``release`` exactly
    once per admitted job when it reaches a terminal state (completed,
    failed or cancelled), returning the pending slot.
    """

    def __init__(
        self,
        default_quota: TenantQuota = DEFAULT_QUOTA,
        quotas: dict[str, TenantQuota] | None = None,
        clock=time.monotonic,
    ):
        self.default_quota = default_quota
        self._quotas = dict(quotas or {})
        self._clock = clock
        self._tenants: dict[str, _TenantState] = {}
        self._lock = threading.Lock()

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            quota = self._quotas.get(tenant, self.default_quota)
            state = self._tenants[tenant] = _TenantState(quota, self._clock)
        return state

    def quota_for(self, tenant: str) -> TenantQuota:
        """The quota a tenant is (or would be) admitted under."""
        with self._lock:
            return self._state(tenant).quota

    def admit(self, tenant: str) -> None:
        """Admit one job for ``tenant`` or raise a typed rejection.

        The pending cap is checked before the bucket so a rejected-for-
        backlog submission does not also burn a rate token.
        """
        with self._lock:
            state = self._state(tenant)
            quota = state.quota
            if quota.max_pending is not None and state.pending >= quota.max_pending:
                state.rejected += 1
                raise QueueFullError(
                    f"tenant {tenant!r} already has {state.pending} pending job(s) "
                    f"(max_pending={quota.max_pending})",
                    tenant=tenant,
                )
            if not state.bucket.try_take(1.0):
                state.rejected += 1
                raise QuotaExceededError(
                    f"tenant {tenant!r} exceeded its submission rate "
                    f"(rate={quota.rate}/s, burst={quota.burst})",
                    tenant=tenant,
                )
            state.pending += 1
            state.admitted += 1

    def charge(self, tenant: str) -> None:
        """Bill one rate token without occupying a pending slot.

        The admission path for requests that cost no worker time (result
        -cache hits): the pending cap does not apply, but the submission
        still drains the tenant's token bucket so cached specs cannot be
        hammered at unbounded rate.  Raises :class:`QuotaExceededError`
        when the bucket is empty.
        """
        with self._lock:
            state = self._state(tenant)
            if not state.bucket.try_take(1.0):
                state.rejected += 1
                raise QuotaExceededError(
                    f"tenant {tenant!r} exceeded its submission rate "
                    f"(rate={state.quota.rate}/s, burst={state.quota.burst})",
                    tenant=tenant,
                )
            state.admitted += 1

    def release(self, tenant: str) -> None:
        """Return one pending slot after a job reaches a terminal state."""
        with self._lock:
            state = self._tenants.get(tenant)
            if state is not None and state.pending > 0:
                state.pending -= 1

    def pending(self, tenant: str) -> int:
        """Admitted-but-unfinished jobs of ``tenant``."""
        with self._lock:
            state = self._tenants.get(tenant)
            return state.pending if state is not None else 0

    def snapshot(self) -> dict:
        """Per-tenant admission counters for the stats surface."""
        with self._lock:
            return {
                tenant: {
                    "pending": s.pending,
                    "admitted": s.admitted,
                    "rejected": s.rejected,
                    "tokens": round(s.bucket.available, 3),
                    "rate": s.quota.rate,
                    "burst": s.quota.burst,
                    "max_pending": s.quota.max_pending,
                }
                for tenant, s in sorted(self._tenants.items())
            }
