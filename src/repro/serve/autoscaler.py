"""Worker-fleet autoscaling: size the pool to the admitted load.

The policy is deliberately a pure function — :func:`plan_workers` maps
observable load (queue depth, busy workers) to a target fleet size inside
``[min_workers, max_workers]`` — so it is trivially unit-testable and the
:class:`Autoscaler` wrapper only owns the *when* (a periodic tick) and the
*how* (calling :meth:`repro.farm.pool.Pool.resize`, which grows by
spawning and shrinks by draining — never by killing a busy worker).
"""

from __future__ import annotations

import asyncio

from repro.metrics import MetricsRegistry

__all__ = ["plan_workers", "Autoscaler"]


def plan_workers(
    queue_depth: int,
    busy: int,
    current: int,
    min_workers: int,
    max_workers: int,
) -> int:
    """Target fleet size for the observed load.

    One worker per unit of admitted demand (running + queued jobs),
    clamped to the configured band: an empty service drains down to
    ``min_workers``, a deep queue grows one-to-one until ``max_workers``.
    """
    if min_workers < 0 or max_workers < min_workers:
        raise ValueError("need 0 <= min_workers <= max_workers")
    demand = busy + queue_depth
    return max(min_workers, min(max_workers, demand))


class Autoscaler:
    """Periodically resize a :class:`~repro.farm.pool.Pool` to the load.

    ``tick()`` makes one synchronous scaling decision (used directly by
    tests and by the service between submissions); :meth:`run` is the
    asyncio loop driving ticks every ``interval_seconds`` until
    :meth:`stop`.
    """

    def __init__(
        self,
        pool,
        min_workers: int = 1,
        max_workers: int = 4,
        interval_seconds: float = 0.25,
        metrics: MetricsRegistry | None = None,
    ):
        if min_workers < 0 or max_workers < min_workers:
            raise ValueError("need 0 <= min_workers <= max_workers")
        self.pool = pool
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.interval_seconds = interval_seconds
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._stop = asyncio.Event()
        families = self.metrics.families
        self._gauge_workers = families.gauge(
            "serve_workers", help="Worker threads currently in the pool."
        )
        self._gauge_busy = families.gauge(
            "serve_workers_busy", help="Workers currently executing a job."
        )
        self._gauge_queue = families.gauge(
            "serve_queue_depth", help="Jobs admitted but not yet picked up."
        )
        self._scale_events = families.counter(
            "serve_autoscale_events_total",
            help="Autoscaler resize decisions by direction.",
            labels=("direction",),
        )

    def tick(self) -> int:
        """Make one scaling decision; returns the (possibly new) target.

        Every tick also refreshes the fleet gauges (queue depth, worker
        and busy counts), so the scrape surface tracks load at autoscaler
        cadence even when no resize happens.
        """
        current = self.pool.workers
        queue_depth = self.pool.queue_depth
        busy = self.pool.busy
        self._gauge_workers.set(current)
        self._gauge_busy.set(busy)
        self._gauge_queue.set(queue_depth)
        target = plan_workers(
            queue_depth=queue_depth,
            busy=busy,
            current=current,
            min_workers=self.min_workers,
            max_workers=self.max_workers,
        )
        if target != current:
            if target > current:
                self.metrics.inc("serve/autoscaler/grow_events")
                self._scale_events.inc(direction="grow")
            else:
                self.metrics.inc("serve/autoscaler/shrink_events")
                self._scale_events.inc(direction="shrink")
            self.pool.resize(target)
        return target

    async def run(self) -> None:
        """Tick every ``interval_seconds`` until :meth:`stop` is called.

        ``stop()`` may legitimately land *before* this coroutine is first
        scheduled (a service started and immediately stopped), so the stop
        event is never cleared here — a one-shot loop per Autoscaler.
        """
        while not self._stop.is_set():
            self.tick()
            try:
                await asyncio.wait_for(self._stop.wait(), self.interval_seconds)
            except asyncio.TimeoutError:
                continue

    def stop(self) -> None:
        """Ask :meth:`run` to exit after its current tick."""
        self._stop.set()

    def snapshot(self) -> dict:
        """Scaling state for the stats surface."""
        return {
            "workers": self.pool.workers,
            "alive": self.pool.alive,
            "busy": self.pool.busy,
            "queue_depth": self.pool.queue_depth,
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "grow_events": int(self.metrics.counter("serve/autoscaler/grow_events")),
            "shrink_events": int(self.metrics.counter("serve/autoscaler/shrink_events")),
        }
