"""repro.serve — simulation-as-a-service on top of the farm.

A long-lived asyncio tier turning the batch-shaped simulation farm into a
service: jobs are submitted (in-process or over a local unix socket),
admitted under per-tenant token-bucket quotas, answered instantly from a
content-addressed result cache when the same configuration was already
simulated, executed on an autoscaled pool of workers that shrinks by
draining (never by killing), and observable live through per-job progress
streams.

Layers, bottom up:

``protocol``
    Length-prefixed JSON framing and the root of the typed, wire-stable
    error hierarchy (:class:`ServeError` and its ``code`` strings).
``admission``
    :class:`TenantQuota` / :class:`AdmissionController`: rate, burst and
    pending-cap enforcement with typed rejections.
``cache``
    :class:`ResultCache`: sharded on-disk store addressed by
    :meth:`repro.farm.jobs.JobSpec.cache_key`, atomic writes, LRU
    eviction, crash-rebuildable index.
``autoscaler``
    :func:`plan_workers` (pure policy) + :class:`Autoscaler` (the loop)
    sizing the :class:`repro.farm.pool.Pool` to queue depth.
``service``
    :class:`SimulationService` (the in-process API) and
    :class:`ServiceServer` (the unix-socket front end).
``client``
    :class:`ServiceClient`: the async socket client re-raising typed
    errors from wire codes.
"""

from .admission import (
    DEFAULT_QUOTA,
    AdmissionController,
    AdmissionError,
    QueueFullError,
    QuotaExceededError,
    TenantQuota,
    TokenBucket,
)
from .autoscaler import Autoscaler, plan_workers
from .cache import ResultCache
from .client import ServiceClient, connect
from .protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    ServeError,
    decode_payload,
    encode_frame,
    read_frame,
    write_frame,
)
from .service import (
    DuplicateJobError,
    InvalidSpecError,
    ServiceServer,
    ShuttingDownError,
    SimulationService,
    UnknownJobError,
)

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "Autoscaler",
    "DEFAULT_QUOTA",
    "DuplicateJobError",
    "InvalidSpecError",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "QueueFullError",
    "QuotaExceededError",
    "ResultCache",
    "ServeError",
    "ServiceClient",
    "ServiceServer",
    "ShuttingDownError",
    "SimulationService",
    "TenantQuota",
    "TokenBucket",
    "UnknownJobError",
    "connect",
    "decode_payload",
    "encode_frame",
    "plan_workers",
    "read_frame",
    "write_frame",
]
