"""Persistence for trained models and assembled frameworks.

Architectures serialise to JSON (human-diffable); weights to ``.npz``; the
pair round-trips a :class:`~repro.models.TrainedModel`.  A whole
:class:`~repro.core.SmartFluidnet` (runtime models + KNN databases +
requirement) round-trips through a directory, so the expensive offline phase
can be shipped to the machines that only run the online phase.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core import QlossKNNPredictor, SelectedModel, SmartFluidnet, UserRequirement
from repro.models import ArchSpec, TrainedModel

__all__ = ["save_model", "load_model", "save_framework", "load_framework"]


def save_model(model: TrainedModel, directory: str | Path) -> Path:
    """Write a trained model (spec JSON + weights npz) to a directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "arch.json").write_text(json.dumps(model.spec.to_dict(), indent=2))
    weights = {f"p{i}": p.value for i, p in enumerate(model.network.parameters())}
    np.savez(directory / "weights.npz", **weights)
    meta = {
        "inference_seconds": model.inference_seconds,
        "quality_loss": model.quality_loss,
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    return directory


def load_model(directory: str | Path) -> TrainedModel:
    """Rebuild a trained model saved by :func:`save_model`."""
    directory = Path(directory)
    spec = ArchSpec.from_dict(json.loads((directory / "arch.json").read_text()))
    network = spec.build(rng=0)
    with np.load(directory / "weights.npz") as data:
        params = network.parameters()
        if len(data.files) != len(params):
            raise ValueError(
                f"weight count mismatch: file has {len(data.files)}, "
                f"architecture needs {len(params)}"
            )
        for i, p in enumerate(params):
            stored = data[f"p{i}"]
            if stored.shape != p.value.shape:
                raise ValueError(f"shape mismatch for parameter {i}")
            p.value[...] = stored
    meta = json.loads((directory / "meta.json").read_text())
    return TrainedModel(
        spec=spec,
        network=network,
        inference_seconds=meta.get("inference_seconds", float("nan")),
        quality_loss=meta.get("quality_loss", float("nan")),
    )


def save_framework(framework: SmartFluidnet, directory: str | Path) -> Path:
    """Persist a built Smart-fluidnet (runtime models, KNN, requirement)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {
        "requirement": {"q": framework.requirement.q, "t": framework.requirement.t},
        "exact_seconds": framework.exact_seconds,
        "models": [],
        "knn_k": framework.knn.k,
    }
    for i, sel in enumerate(framework.runtime_models):
        sub = directory / f"model{i}"
        save_model(sel.model, sub)
        entry = {
            "dir": sub.name,
            "name": sel.name,
            "success_prob": sel.success_prob,
            "model_seconds": sel.model_seconds,
            "expected_seconds": sel.expected_seconds,
            "knn": framework.knn._trees[sel.name].items()
            if sel.name in framework.knn._trees
            else [],
        }
        manifest["models"].append(entry)
    (directory / "framework.json").write_text(json.dumps(manifest, indent=2))
    return directory


def load_framework(directory: str | Path) -> SmartFluidnet:
    """Rebuild a Smart-fluidnet saved by :func:`save_framework`."""
    directory = Path(directory)
    manifest = json.loads((directory / "framework.json").read_text())
    knn = QlossKNNPredictor(k=manifest.get("knn_k", 4))
    runtime: list[SelectedModel] = []
    for entry in manifest["models"]:
        model = load_model(directory / entry["dir"])
        model.spec.name = entry["name"]
        runtime.append(
            SelectedModel(
                model=model,
                success_prob=entry["success_prob"],
                model_seconds=entry["model_seconds"],
                expected_seconds=entry["expected_seconds"],
            )
        )
        if entry["knn"]:
            knn.add_database(entry["name"], [tuple(p) for p in entry["knn"]])
    req = manifest["requirement"]
    return SmartFluidnet(
        runtime_models=runtime,
        knn=knn,
        requirement=UserRequirement(q=req["q"], t=req["t"]),
        exact_seconds=manifest.get("exact_seconds", float("nan")),
    )
