"""Training-frame collection for the approximation networks.

Runs the exact (PCG) simulation over a set of input problems and records,
at every pressure solve, the normalised Poisson right-hand side, the
geometry, the exact pressure, the solid mask and the DivNorm weights.  The
resulting dict-of-arrays feeds :class:`repro.nn.Trainer` directly, for both
the unsupervised DivNorm objective (``b``/``solid``/``weights``) and the
supervised MSE objective (``y``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fluid import (
    FluidSimulator,
    PCGSolver,
    SimulationConfig,
    divnorm_weights,
)
from repro.fluid.pcg import SolveResult
from .problems import InputProblem

__all__ = ["RecordingSolver", "collect_training_frames"]


@dataclass
class RecordingSolver:
    """Wrap an exact solver, capturing (b, solution) pairs at each solve."""

    inner: PCGSolver
    samples: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = field(default_factory=list)
    stride: int = 1
    _count: int = 0

    @property
    def name(self) -> str:
        return self.inner.name

    def solve(self, b: np.ndarray, solid: np.ndarray) -> SolveResult:
        res = self.inner.solve(b, solid)
        if self._count % self.stride == 0:
            self.samples.append((b.copy(), res.pressure.copy(), solid.copy()))
        self._count += 1
        return res


def collect_training_frames(
    problems: list[InputProblem],
    n_steps: int = 8,
    stride: int = 2,
    config: SimulationConfig | None = None,
) -> dict[str, np.ndarray]:
    """Build a training dataset of normalised Poisson problems.

    Returns a dict with keys ``x`` (N,2,H,W), ``b`` (N,1,H,W), ``y``
    (N,1,H,W), ``solid`` (N,H,W) and ``weights`` (N,H,W).  All grids in
    ``problems`` must share one size.
    """
    if not problems:
        raise ValueError("no problems given")
    sizes = {p.grid_size for p in problems}
    if len(sizes) != 1:
        raise ValueError(f"mixed grid sizes in one dataset: {sorted(sizes)}")

    xs, bs, ys, solids, weights = [], [], [], [], []
    for prob in problems:
        grid, source = prob.materialize()
        rec = RecordingSolver(PCGSolver(), stride=stride)
        sim = FluidSimulator(grid, rec, source, config or SimulationConfig())
        sim.run(n_steps)
        w = divnorm_weights(grid.solid)
        for b, p, solid in rec.samples:
            fluid = ~solid
            if not fluid.any():
                continue
            from repro.fluid.laplacian import remove_nullspace

            bz = remove_nullspace(b, solid)
            sigma = float(bz[fluid].std())
            if sigma < 1e-12:
                continue
            bn = bz / sigma
            pn = remove_nullspace(p, solid) / sigma
            xs.append(np.stack([bn, solid.astype(np.float64)]))
            bs.append(bn[None])
            ys.append(pn[None])
            solids.append(solid)
            weights.append(w)

    if not xs:
        raise ValueError("no usable frames collected (all-zero divergence?)")
    return {
        "x": np.stack(xs),
        "b": np.stack(bs),
        "y": np.stack(ys),
        "solid": np.stack(solids),
        "weights": np.stack(weights),
    }
