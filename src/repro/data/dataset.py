"""Training-frame collection for the approximation networks.

Runs the exact (PCG) simulation over a set of input problems and records,
at every pressure solve, the normalised Poisson right-hand side, the
geometry, the exact pressure, the solid mask and the DivNorm weights.  The
resulting dict-of-arrays feeds :class:`repro.nn.Trainer` directly, for both
the unsupervised DivNorm objective (``b``/``solid``/``weights``) and the
supervised MSE objective (``y``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fluid import (
    FluidSimulator,
    PCGSolver,
    SimulationConfig,
    divnorm_weights,
)
from repro.fluid.pcg import SolveResult
from .problems import InputProblem

__all__ = ["RecordingSolver", "collect_training_frames", "collect_residual_frames"]


@dataclass
class RecordingSolver:
    """Wrap an exact solver, capturing (b, solution) pairs at each solve."""

    inner: PCGSolver
    samples: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = field(default_factory=list)
    stride: int = 1
    _count: int = 0

    @property
    def name(self) -> str:
        return self.inner.name

    def solve(self, b: np.ndarray, solid: np.ndarray) -> SolveResult:
        res = self.inner.solve(b, solid)
        if self._count % self.stride == 0:
            self.samples.append((b.copy(), res.pressure.copy(), solid.copy()))
        self._count += 1
        return res


def collect_training_frames(
    problems: list[InputProblem],
    n_steps: int = 8,
    stride: int = 2,
    config: SimulationConfig | None = None,
) -> dict[str, np.ndarray]:
    """Build a training dataset of normalised Poisson problems.

    Returns a dict with keys ``x`` (N,2,H,W), ``b`` (N,1,H,W), ``y``
    (N,1,H,W), ``solid`` (N,H,W) and ``weights`` (N,H,W).  All grids in
    ``problems`` must share one size.
    """
    if not problems:
        raise ValueError("no problems given")
    sizes = {p.grid_size for p in problems}
    if len(sizes) != 1:
        raise ValueError(f"mixed grid sizes in one dataset: {sorted(sizes)}")

    xs, bs, ys, solids, weights = [], [], [], [], []
    for prob in problems:
        grid, source = prob.materialize()
        rec = RecordingSolver(PCGSolver(), stride=stride)
        sim = FluidSimulator(grid, rec, source, config or SimulationConfig())
        sim.run(n_steps)
        w = divnorm_weights(grid.solid)
        for b, p, solid in rec.samples:
            fluid = ~solid
            if not fluid.any():
                continue
            from repro.fluid.laplacian import remove_nullspace

            bz = remove_nullspace(b, solid)
            sigma = float(bz[fluid].std())
            if sigma < 1e-12:
                continue
            bn = bz / sigma
            pn = remove_nullspace(p, solid) / sigma
            xs.append(np.stack([bn, solid.astype(np.float64)]))
            bs.append(bn[None])
            ys.append(pn[None])
            solids.append(solid)
            weights.append(w)

    if not xs:
        raise ValueError("no usable frames collected (all-zero divergence?)")
    return {
        "x": np.stack(xs),
        "b": np.stack(bs),
        "y": np.stack(ys),
        "solid": np.stack(solids),
        "weights": np.stack(weights),
    }


def collect_residual_frames(
    problems: list[InputProblem],
    n_steps: int = 8,
    stride: int = 2,
    residual_stride: int = 5,
    tol: float = 1e-8,
    max_iterations: int = 120,
    max_problems: int = 24,
    config: SimulationConfig | None = None,
    data: dict[str, np.ndarray] | None = None,
) -> dict[str, np.ndarray]:
    """Harvest normalised *CG residuals* for NN-preconditioned-CG training.

    A network trained only on Poisson right-hand sides never sees the
    inputs it gets inside flexible CG: after the first iteration the
    residual's spectrum differs sharply from any rhs (smooth components
    shrink first under MIC(0), high-frequency ones under NN directions).
    This closes that distribution gap the same way rollout augmentation
    closes the simulator's: replay recorded Poisson problems through plain
    MIC(0)-PCG and capture every ``residual_stride``-th intermediate
    residual ``r_k`` (skipping ``k=0``, which *is* the rhs), normalised by
    its own standard deviation — exactly the solver's inference-time
    normalisation.

    Returns the ``collect_training_frames`` keys minus ``y`` (residuals
    have no cheap exact target; training uses the unsupervised DivNorm
    objective, for which a residual is just another Poisson problem), so
    :func:`repro.models.merge_datasets` combines both dicts directly.
    Pass ``data`` to reuse an existing rhs collection instead of
    re-simulating.
    """
    from repro.fluid import GeometryKernels, MIC0Preconditioner
    from repro.fluid.laplacian import remove_nullspace

    if data is None:
        data = collect_training_frames(problems, n_steps=n_steps, stride=stride, config=config)
    bs = data["b"][:max_problems, 0]
    solids = data["solid"][:max_problems].astype(bool)

    xs: list[tuple[np.ndarray, np.ndarray]] = []
    for b, solid in zip(bs, solids):
        kern = GeometryKernels(solid)
        apply_m = kern.mic_factor(MIC0Preconditioner(solid)).apply
        bf = kern.gather(remove_nullspace(b, solid))
        bnorm = float(np.abs(bf).max())
        if bnorm < 1e-300:
            continue
        pf = np.zeros(kern.n)
        rf = bf.copy()
        z = apply_m(rf)
        s = z.copy()
        sigma = float(z @ rf)
        for it in range(max_iterations):
            if it % residual_stride == 0 and it > 0:
                sg = float(rf.std())
                if sg > 1e-12:
                    xs.append((kern.scatter(rf / sg), solid))
            w = kern.matvec(s)
            denom = float(w @ s)
            if abs(denom) < 1e-300:
                break
            alpha = sigma / denom
            pf += alpha * s
            rf -= alpha * w
            if float(np.abs(rf).max()) <= tol * bnorm:
                break
            z = apply_m(rf)
            sigma_new = float(z @ rf)
            s = z + (sigma_new / sigma) * s
            sigma = sigma_new

    if not xs:
        raise ValueError("no residual frames harvested (solves converged immediately?)")
    x = np.stack([np.stack([r, solid.astype(np.float64)]) for r, solid in xs])
    solid_arr = np.stack([solid for _, solid in xs])
    return {
        "x": x,
        "b": x[:, :1],
        "solid": solid_arr,
        "weights": np.stack([divnorm_weights(s) for s in solid_arr]),
    }
