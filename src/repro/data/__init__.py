"""Datasets: input problems and training-frame collection."""

from .problems import EVAL_SEED_BASE, TRAIN_SEED_BASE, InputProblem, generate_problems
from .dataset import RecordingSolver, collect_residual_frames, collect_training_frames

__all__ = [
    "InputProblem",
    "generate_problems",
    "TRAIN_SEED_BASE",
    "EVAL_SEED_BASE",
    "RecordingSolver",
    "collect_training_frames",
    "collect_residual_frames",
]
