"""Input-problem datasets.

The paper evaluates on 20,480 *input problems*: randomised smoke-plume
initial conditions (turbulent velocity + random occupancy objects).  An
:class:`InputProblem` is a lightweight, reproducible handle (grid size +
seed) that materialises the actual grid on demand, so datasets of any size
are cheap to enumerate and shard.

Training and evaluation sets use disjoint seed ranges, reproducing the
paper's "no overlapping between the training and test datasets".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fluid import MACGrid2D, ScenarioSpec, SmokeSource, build_scenario

__all__ = ["InputProblem", "generate_problems", "TRAIN_SEED_BASE", "EVAL_SEED_BASE"]

#: seed offsets keeping the two datasets disjoint
TRAIN_SEED_BASE = 1_000_000
EVAL_SEED_BASE = 2_000_000


@dataclass(frozen=True)
class InputProblem:
    """A reproducible smoke-plume input problem."""

    grid_size: int
    seed: int
    with_obstacles: bool = True

    def materialize(self) -> tuple[MACGrid2D, SmokeSource]:
        """Build the initial grid and smoke source for this problem.

        Routed through the scenario registry; bit-for-bit identical to the
        historical direct ``make_smoke_plume`` call for the same seed.
        """
        spec = ScenarioSpec(
            "smoke_plume", grid=self.grid_size, with_obstacles=self.with_obstacles
        )
        return build_scenario(spec, rng=self.seed)


def generate_problems(
    n: int,
    grid_size: int,
    split: str = "eval",
    with_obstacles: bool = True,
) -> list[InputProblem]:
    """Enumerate ``n`` problems of one grid size from a dataset split.

    ``split`` is ``"train"`` or ``"eval"``; the two use disjoint seeds.
    """
    if split == "train":
        base = TRAIN_SEED_BASE
    elif split == "eval":
        base = EVAL_SEED_BASE
    else:
        raise ValueError(f"unknown split {split!r}")
    base += grid_size * 10_000  # grid sizes also get disjoint streams
    return [InputProblem(grid_size, base + i, with_obstacles) for i in range(n)]
