"""Lightweight visualisation of simulation fields (no plotting deps).

The paper's output artefact is "a smoke dense matrix of a rendered smoke
frame"; this module renders those matrices without external libraries:

* :func:`to_ascii` — terminal rendering with density ramp characters;
* :func:`to_pgm` / :func:`save_pgm` — portable graymap images any viewer
  opens;
* :func:`frame_strip` — several frames side by side (time-lapse strips);
* :func:`render_velocity` — speed-magnitude field of a MAC grid.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["to_ascii", "to_pgm", "save_pgm", "frame_strip", "render_velocity"]

_RAMP = " .:-=+*#%@"


def _normalise(field: np.ndarray, vmax: float | None = None) -> np.ndarray:
    field = np.asarray(field, dtype=np.float64)
    hi = float(vmax) if vmax is not None else float(field.max())
    if hi <= 0:
        return np.zeros_like(field)
    return np.clip(field / hi, 0.0, 1.0)


def to_ascii(field: np.ndarray, width: int = 48, vmax: float | None = None) -> str:
    """Render a scalar field as an ASCII-art block (one char per cell).

    The field is downsampled by striding to at most ``width`` columns; rows
    are halved again because terminal glyphs are ~2x taller than wide.
    """
    norm = _normalise(field, vmax)
    ny, nx = norm.shape
    sx = max(1, int(np.ceil(nx / width)))
    sy = sx * 2
    sampled = norm[::sy, ::sx]
    idx = np.minimum((sampled * len(_RAMP)).astype(int), len(_RAMP) - 1)
    return "\n".join("".join(_RAMP[i] for i in row) for row in idx)


def to_pgm(field: np.ndarray, vmax: float | None = None) -> bytes:
    """Encode a scalar field as a binary PGM (P5) image."""
    norm = _normalise(field, vmax)
    pixels = (norm * 255).astype(np.uint8)
    ny, nx = pixels.shape
    header = f"P5\n{nx} {ny}\n255\n".encode("ascii")
    return header + pixels.tobytes()


def save_pgm(field: np.ndarray, path: str | Path, vmax: float | None = None) -> Path:
    """Write a scalar field to a ``.pgm`` file and return the path."""
    path = Path(path)
    if path.suffix != ".pgm":
        path = path.with_suffix(".pgm")
    path.write_bytes(to_pgm(field, vmax))
    return path


def frame_strip(frames: list[np.ndarray], gap: int = 2, vmax: float | None = None) -> np.ndarray:
    """Concatenate frames horizontally (with a bright separator) for a
    time-lapse strip; returns one array suitable for :func:`save_pgm`."""
    if not frames:
        raise ValueError("no frames")
    shapes = {f.shape for f in frames}
    if len(shapes) != 1:
        raise ValueError(f"frames differ in shape: {shapes}")
    hi = vmax if vmax is not None else max(float(f.max()) for f in frames) or 1.0
    ny = frames[0].shape[0]
    sep = np.full((ny, gap), hi)
    parts: list[np.ndarray] = []
    for i, f in enumerate(frames):
        if i:
            parts.append(sep)
        parts.append(np.asarray(f, dtype=np.float64))
    return np.concatenate(parts, axis=1)


def render_velocity(grid) -> np.ndarray:
    """Speed magnitude at cell centres of a MAC grid (solids zeroed)."""
    uc, vc = grid.velocity_at_centers()
    speed = np.sqrt(uc**2 + vc**2)
    speed[grid.solid] = 0.0
    return speed
