"""NN-preconditioned flexible conjugate gradient (DCDM-style).

The paper's Algorithm 2 treats the CNN as all-or-nothing: when a network
run misses the DivNorm requirement, the runtime abandons it and pays a full
MIC(0)-PCG solve.  The DCDM/MLPCG line of work (Kaneda et al.; cf. Tompson
et al.) shows the stronger middle ground: feed the CNN's prediction on the
*current residual* back into conjugate gradient as that iteration's search
direction.  CG's exact line search and A-orthogonalization then keep the
exact solver's convergence guarantee — the loop iterates until the true
residual meets the tolerance — while good directions cut the iteration
count far below the MIC(0) preconditioner's.

Direction generator
-------------------
DCDM's GPU-scale networks are deep enough to span the whole grid; our
CPU-scale five-stage CNNs have an 11-cell receptive field and cannot
produce the global (smooth) components of ``A^{-1} r`` at 128² — a single
forward pass proposes directions that stall CG's tail.  The adapter
therefore composes the *same* network across a power-of-two residual
pyramid, V-cycle style (cf. FluidNet's multi-scale stack and geometric
multigrid's coarse-grid correction):

1. at each level, the network smooths the level residual:
   ``q_l = NN(r_l / sigma_l) * sigma_l`` (``sigma_l`` the fluid-cell std,
   the training-time normalisation), run through the per-shape fp32
   :class:`repro.nn.InferencePlan` fast path;
2. the remaining residual ``r_l - A_l q_l`` is restricted (2x2 sum — the
   factor-4 stencil rescale built in) to the next level, corrected there
   recursively, and the coarse correction is prolonged back (bilinear) and
   followed by one more network application on what is left;
3. optionally the whole cycle repeats ``cycles`` times on the updated
   residual (defect correction, like ``NNProjectionSolver``'s passes).

The receptive field covers a doubling fraction of each coarser level, so
the composition reaches global modes while every constituent operation is
still "the network forward on the current residual" — a documented
CPU-scale substitution for DCDM's single giant network (see DESIGN.md).

CG wrapper
----------
Each proposed direction is A-orthogonalized (modified Gram-Schmidt)
against a bounded window of previous directions (default 2, following
DCDM) using cached ``A s_j`` products, then applied with the exact line
search ``alpha = (q·r)/(q·Aq)``.  A **safeguard** replaces the direction
with the classic MIC(0) one ``M^{-1} r`` whenever the NN proposal
degenerates — non-finite, vanishing ``q·Aq`` after orthogonalization, or
non-descent (``q·r <= 0``) — so an untrained or adversarial network can
slow the solver down but never break convergence.

All CG-state linear algebra runs on flat fluid-cell vectors through the
per-geometry :class:`~repro.fluid.kernels.GeometryKernels` CSR Laplacian
(bitwise equal to ``apply_laplacian``); the MIC(0) factorisation, the
residual pyramid and the float geometry channels are held in
:class:`~repro.fluid.solver_api.MaskKeyedCache`\\ s keyed on the solid
mask.  The direction window lives on the stack of one ``solve`` call and
no state carries between solves, so repeated calls on identical inputs
are bit-for-bit identical.

Convergence semantics match :class:`~repro.fluid.pcg.PCGSolver`: the
right-hand side is compatibility-projected per component, the tolerance is
the relative infinity norm ``|r| <= tol * |b|`` over fluid cells, and the
returned pressure is nullspace-free.
"""

from __future__ import annotations

import time

import numpy as np

from repro.metrics import MetricsRegistry, get_metrics
from repro.trace import get_tracer

from .kernels import GeometryKernels
from .laplacian import remove_nullspace, stencil_arrays
from .operators import apply_laplacian
from .pcg import MIC0Preconditioner
from .solver_api import MaskKeyedCache, PressureSolver, SolveResult

__all__ = ["NNPCGSolver"]

_PRECISIONS = {"fp32": np.float32, "fp64": np.float64}

#: below this, a denominator/sigma is treated as exactly zero (matches PCG)
_TINY = 1e-300


class _PyramidLevel:
    """One level of the residual pyramid: mask + stencil diagonal + channel."""

    __slots__ = ("solid", "fluid", "adiag", "geo")

    def __init__(self, solid: np.ndarray):
        self.solid = solid
        self.fluid = ~solid
        self.adiag, _, _ = stencil_arrays(solid)
        self.geo = solid.astype(np.float64)


def _build_pyramid(solid: np.ndarray, min_size: int) -> list[_PyramidLevel]:
    """Power-of-two coarsening of the solid mask (finest first).

    Unlike the multigrid hierarchy (interior-aligned, for re-discretised
    coarse *operators*), this coarsens the whole grid 2x2 — the coarse
    levels only shape search-direction proposals, never a system that must
    be solved exactly, so alignment of the wall ring is not load-bearing.
    A coarse cell is solid when at least half of its four children are;
    the border wall is re-imposed so every level is a valid domain.
    """
    levels = [_PyramidLevel(solid)]
    cur = solid
    while (
        cur.shape[0] % 2 == 0
        and cur.shape[1] % 2 == 0
        and min(cur.shape) // 2 >= min_size
    ):
        ny, nx = cur.shape
        coarse = cur.reshape(ny // 2, 2, nx // 2, 2).sum(axis=(1, 3)) >= 2
        coarse[0, :] = coarse[-1, :] = True
        coarse[:, 0] = coarse[:, -1] = True
        if not (~coarse).any():
            break
        levels.append(_PyramidLevel(coarse))
        cur = coarse
    return levels


def _restrict(r: np.ndarray, coarse: _PyramidLevel) -> np.ndarray:
    """2x2 sum restriction (the factor-4 stencil rescale built in)."""
    ny, nx = r.shape
    rc = r.reshape(ny // 2, 2, nx // 2, 2).sum(axis=(1, 3))
    return np.where(coarse.fluid, rc, 0.0)


def _prolong(e: np.ndarray, fine: _PyramidLevel) -> np.ndarray:
    """Bilinear (cell-centred) prolongation of a coarse correction."""
    from scipy.ndimage import zoom

    out = zoom(e, 2, order=1, mode="nearest", grid_mode=True)
    return np.where(fine.fluid, out, 0.0)


class NNPCGSolver(PressureSolver):
    """Flexible CG whose search directions come from a neural network.

    Parameters
    ----------
    model:
        The trained network (``repro.nn`` layer); its forward passes on the
        (pyramid-restricted) residual become each iteration's search
        direction.
    name:
        Solver name used in metrics/span keys (default ``"nn_pcg"``).
    tol:
        Relative residual tolerance (infinity norm, relative to ``|b|``) —
        same convention as :class:`~repro.fluid.pcg.PCGSolver`.
    max_iterations:
        Iteration cap; the solver reports non-convergence beyond it.
    window:
        Number of previous directions to A-orthogonalize against (DCDM
        uses 2).  Each window entry costs one dot+axpy pair per iteration.
    cycles:
        Network V-cycles per proposed direction (defect correction on the
        direction itself).  2 roughly halves the iteration count at twice
        the inference cost per iteration.
    min_level:
        Pyramid coarsening stops before any side would drop below this.
        ``min_level`` >= the grid size disables the pyramid entirely,
        giving DCDM's original single-level direction.
    precision:
        ``"fp32"`` (default) compiles the single-precision inference fast
        path; ``"fp64"`` the bitwise-replay plan.  The CG state (``p``,
        ``r``, all reductions) is always float64 — precision only affects
        the quality of proposed directions, never the residual accounting,
        so convergence checks stay PCG-grade.
    metrics:
        Registry receiving solver counters/timers; defaults to the
        process-wide registry.
    """

    def __init__(
        self,
        model,
        name: str = "nn_pcg",
        tol: float = 1e-5,
        max_iterations: int = 2000,
        window: int = 2,
        cycles: int = 2,
        min_level: int = 8,
        precision: str = "fp32",
        metrics: MetricsRegistry | None = None,
    ):
        if window < 0:
            raise ValueError("window must be >= 0")
        if cycles < 1:
            raise ValueError("cycles must be >= 1")
        if min_level < 4:
            raise ValueError("min_level must be >= 4")
        if precision not in _PRECISIONS:
            raise ValueError(
                f"precision must be one of {sorted(_PRECISIONS)}, got {precision!r}"
            )
        self.model = model
        self.name = name
        self.tol = tol
        self.max_iterations = max_iterations
        self.window = window
        self.cycles = cycles
        self.min_level = min_level
        self.precision = precision
        self._metrics = metrics
        self._pyramid_cache = MaskKeyedCache("nn_pyramid")
        self._kernels_cache = MaskKeyedCache("kernels", capacity=16)
        self._mic_cache = MaskKeyedCache("mic0")
        # per-shape inference plans and (1, 2, H, W) input workspaces: the
        # pyramid runs the same network at every level's shape
        self._plans: dict[tuple[int, int], object] = {}
        self._xs: dict[tuple[int, int], np.ndarray] = {}
        self._plan_unsupported = False

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all cached geometry artifacts, workspaces and plans."""
        self._pyramid_cache.clear()
        self._kernels_cache.clear()
        self._mic_cache.clear()
        self._plans.clear()
        self._xs.clear()
        self._plan_unsupported = False
        stack = [self.model]
        while stack:
            layer = stack.pop()
            if hasattr(layer, "reset_workspace"):
                layer.reset_workspace()
            stack.extend(getattr(layer, "layers", []))

    def ensure_capacity(self, shape: tuple[int, int], capacity: int = 1) -> None:
        """Pre-compile the inference plans for every pyramid level of ``shape``.

        Mirrors :meth:`repro.models.NNProjectionSolver.ensure_capacity` so
        call sites that pre-warm plans before the hot loop (farm workers,
        benches) can treat both NN solvers uniformly.  Level shapes depend
        only on the grid shape, so no mask is needed.
        """
        metrics = self._metrics if self._metrics is not None else get_metrics()
        shape = tuple(shape)
        while True:
            self._workspace(shape, max(1, int(capacity)))
            self._ensure_plan(shape, metrics)
            ny, nx = shape
            if ny % 2 or nx % 2 or min(ny, nx) // 2 < self.min_level:
                break
            shape = (ny // 2, nx // 2)

    # ------------------------------------------------------------------
    def _workspace(self, shape: tuple[int, int], capacity: int = 1) -> np.ndarray:
        x = self._xs.get(shape)
        if x is None or x.shape[0] < capacity:
            x = self._xs[shape] = np.empty(
                (capacity, 2) + shape, dtype=np.float64
            )
        return x

    def _ensure_plan(self, shape, metrics):
        """Compiled plan for ``(2,) + shape``, or None on plan fallback."""
        from repro.nn import InferencePlan, PlanError

        if self._plan_unsupported:
            return None
        shape = tuple(shape)
        plan = self._plans.get(shape)
        capacity = self._xs[shape].shape[0] if shape in self._xs else 1
        if plan is not None and plan.capacity >= capacity:
            return plan
        tracer = get_tracer()
        build_started = time.perf_counter()
        try:
            with metrics.timer(f"solver/{self.name}/plan_build"):
                with tracer.span("plan_build", solver=self.name, capacity=capacity) as bsp:
                    plan = InferencePlan(
                        self.model,
                        (2,) + shape,
                        batch_capacity=capacity,
                        dtype=_PRECISIONS[self.precision],
                    )
        except PlanError:
            self._plan_unsupported = True
            metrics.inc(f"solver/{self.name}/plan_unsupported")
            return None
        self._plans[shape] = plan
        metrics.inc(f"solver/{self.name}/plan_builds")
        metrics.families.histogram(
            "nn_plan_build_seconds",
            help="InferencePlan compile time by solver and precision.",
            labels=("solver", "precision"),
            unit="seconds",
        ).observe(
            time.perf_counter() - build_started,
            exemplar=bsp.span_id if bsp is not None else None,
            solver=self.name,
            precision=self.precision,
        )
        tracer.event(
            "plan_build",
            solver=self.name,
            shape=list(shape),
            capacity=capacity,
            precision=self.precision,
        )
        return plan

    def _nn_apply(self, r: np.ndarray, level: _PyramidLevel, metrics) -> np.ndarray:
        """One network application at one level: ``NN(r/sigma) * sigma``."""
        fluid = level.fluid
        sigma = float(r[fluid].std()) if fluid.any() else 0.0
        if not np.isfinite(sigma) or sigma < _TINY:
            return np.zeros_like(r)
        shape = r.shape
        x = self._workspace(shape)
        np.divide(r, sigma, out=x[0, 0])
        x[0, 1] = level.geo
        plan = self._ensure_plan(shape, metrics)
        if plan is None:
            out = self.model.forward(x[:1], training=False)
        else:
            out = plan.run(x[:1])
        q = out[0, 0].astype(np.float64, copy=False) * sigma
        return np.where(fluid, q, 0.0)

    def _nn_vcycle(
        self, r: np.ndarray, levels: list[_PyramidLevel], idx: int, metrics
    ) -> np.ndarray:
        """Recursive multiscale correction: smooth, restrict, correct, smooth."""
        level = levels[idx]
        q = self._nn_apply(r, level, metrics)
        if idx < len(levels) - 1:
            rr = np.where(
                level.fluid,
                r - apply_laplacian(q, level.solid, deg=level.adiag),
                0.0,
            )
            ec = self._nn_vcycle(_restrict(rr, levels[idx + 1]), levels, idx + 1, metrics)
            q = q + _prolong(ec, level)
            rr = np.where(
                level.fluid,
                r - apply_laplacian(q, level.solid, deg=level.adiag),
                0.0,
            )
            q = q + self._nn_apply(rr, level, metrics)
        return q

    def _direction(
        self, rf: np.ndarray, kern: GeometryKernels, levels, metrics
    ) -> np.ndarray | None:
        """The network's proposed direction for the residual ``rf`` (flat)."""
        r = kern.scatter(rf)
        top = levels[0]
        q = self._nn_vcycle(r, levels, 0, metrics)
        for _ in range(self.cycles - 1):
            rr = np.where(
                top.fluid, r - apply_laplacian(q, top.solid, deg=top.adiag), 0.0
            )
            q = q + self._nn_vcycle(rr, levels, 0, metrics)
        qf = kern.gather(q)
        return qf if np.all(np.isfinite(qf)) else None

    @staticmethod
    def _orthogonalize(q: np.ndarray, directions) -> np.ndarray:
        """Modified Gram-Schmidt A-orthogonalization against the window."""
        for s, As, sAs in directions:
            q = q - (float(q @ As) / sAs) * s
        return q

    # ------------------------------------------------------------------
    def solve(self, b: np.ndarray, solid: np.ndarray) -> SolveResult:
        """Solve ``A p = b`` on fluid cells; returns mean-zero pressure."""
        metrics = self._metrics if self._metrics is not None else get_metrics()
        tr = get_tracer()
        with metrics.timer(f"solver/{self.name}/solve"), tr.span(
            f"solve/{self.name}", precision=self.precision, window=self.window
        ) as sp:
            result, nn_steps, safeguard_steps = self._solve(b, solid, metrics)
            if sp is not None:
                sp.attrs["iterations"] = result.iterations
                sp.attrs["converged"] = result.converged
                sp.attrs["nn_steps"] = nn_steps
                sp.attrs["safeguard_steps"] = safeguard_steps
        # per-solve iteration distribution (log-bucket histogram, mergeable
        # across workers like the span-latency histograms)
        tr.observe(f"solve/{self.name}/iterations", float(result.iterations))
        metrics.inc(f"solver/{self.name}/solves")
        metrics.inc(f"solver/{self.name}/iterations", result.iterations)
        metrics.inc(f"solver/{self.name}/nn_steps", nn_steps)
        metrics.inc(f"solver/{self.name}/safeguard_steps", safeguard_steps)
        metrics.families.histogram(
            "solver_iterations",
            help="Iterations per pressure solve by solver.",
            labels=("solver",),
        ).observe(
            result.iterations,
            exemplar=sp.span_id if sp is not None else None,
            solver=self.name,
        )
        return result

    def _solve(
        self, b: np.ndarray, solid: np.ndarray, metrics: MetricsRegistry
    ) -> tuple[SolveResult, int, int]:
        kern: GeometryKernels = self._kernels_cache.get(
            solid, lambda: GeometryKernels(solid), metrics
        )
        nf = kern.n

        # compatibility projection: remove the per-component null space
        b = remove_nullspace(b, solid)
        bf = kern.gather(b)
        bnorm = float(np.abs(bf).max()) if nf else 0.0
        history = [bnorm]
        if bnorm < _TINY:
            return SolveResult(np.zeros_like(b), 0, True, 0.0, 0.0, history), 0, 0
        tol_abs = self.tol * bnorm

        mic = self._mic_cache.get(solid, lambda: MIC0Preconditioner(solid), metrics)
        apply_m = kern.mic_factor(mic).apply
        levels = self._pyramid_cache.get(
            solid, lambda: _build_pyramid(solid, self.min_level), metrics
        )

        pf = np.zeros(nf)
        rf = bf.copy()
        rnorm = bnorm
        model_flops = sum(
            float(self.model.flops((2,) + lev.solid.shape)) for lev in levels
        ) * (2.0 - (1.0 if len(levels) == 1 else 0.0)) * self.cycles
        flops = 0.0
        it = 0
        converged = False
        nn_steps = 0
        safeguard_steps = 0
        # (direction, A @ direction, direction·A·direction) sliding window;
        # rebuilt every solve so results are history-independent
        directions: list[tuple[np.ndarray, np.ndarray, float]] = []

        for it in range(1, self.max_iterations + 1):
            q = self._direction(rf, kern, levels, metrics)
            used_nn = q is not None
            if used_nn:
                q = self._orthogonalize(q, directions)
                Aq = kern.matvec(q)
                qAq = float(q @ Aq)
                qr = float(q @ rf)
                flops += model_flops
                # degenerate after orthogonalization (vanishing energy norm)
                # or a non-descent direction: the step would stall or move
                # uphill, so fall back to the classic preconditioned one
                used_nn = (
                    np.isfinite(qAq)
                    and np.isfinite(qr)
                    and qAq > _TINY
                    and qr > 0.0
                )
            if not used_nn:
                q = self._orthogonalize(apply_m(rf), directions)
                Aq = kern.matvec(q)
                qAq = float(q @ Aq)
                qr = float(q @ rf)
                safeguard_steps += 1
                if not (np.isfinite(qAq) and qAq > _TINY):
                    it -= 1  # no step was taken
                    break
            else:
                nn_steps += 1

            alpha = qr / qAq
            pf += alpha * q
            rf -= alpha * Aq
            flops += (40.0 + 8.0 * len(directions)) * nf
            directions.append((q, Aq, qAq))
            if len(directions) > self.window:
                directions.pop(0)
            rnorm = float(np.abs(rf).max())
            history.append(rnorm)
            if rnorm <= tol_abs:
                converged = True
                break

        p = remove_nullspace(kern.scatter(pf), solid)
        rnorm = float(np.abs(rf).max())
        result = SolveResult(p, it, converged, rnorm, flops, history)
        return result, nn_steps, safeguard_steps

    # ------------------------------------------------------------------
    def resource_usage(self, shape: tuple[int, int]):
        """Static per-iteration FLOP/parameter/memory profile."""
        from repro.nn import Network, analyze_network

        if isinstance(self.model, Network):
            usage = analyze_network(self.model, (2,) + shape)
        else:
            from repro.nn.accounting import ResourceUsage

            usage = ResourceUsage(
                flops=self.model.flops((2,) + shape),
                params=self.model.param_count(),
                memory_bytes=float(
                    self.model.param_count() * 4 + 3 * shape[0] * shape[1] * 4
                ),
            )
        # pyramid levels shrink 4x per step: the full multiscale stack costs
        # less than 2x the finest level even before the repeat cycles
        usage.flops = 2.0 * self.cycles * usage.flops + (
            40.0 + 8.0 * self.window
        ) * shape[0] * shape[1]
        return usage
