"""The scenario universe: registry-driven simulation workloads.

The paper evaluates one workload class — the randomised 2-D smoke plume — so
historically this module held exactly that generator.  It is now a registry
of *scenarios*: named, parameterised workload builders spanning smoke plumes,
side-mounted inflow jets, moving solid obstacles, vortex-street and
plume-collision configurations, and free-surface liquids (dam break,
sloshing tank) backed by :mod:`repro.fluid.levelset`.

The pieces:

* :class:`ScenarioSpec` — a frozen, hashable, JSON-round-trippable value
  (``name`` + scalar params) identifying one scenario instance.  The
  canonical string form ``name:key=val,key=val`` is what the CLI's
  ``--scenario`` flag accepts (:func:`parse_scenario`).
* the registry — :func:`register_scenario` (decorator),
  :func:`build_scenario` (spec + rng → ``(grid, driver)``),
  :func:`list_scenarios` / :func:`get_scenario` for discovery, with
  per-scenario parameter docs (:class:`ScenarioParam`).
* drivers — a scenario's *driver* is the per-step actor handed to
  :class:`~repro.fluid.simulator.FluidSimulator` as its ``source``:
  :class:`SmokeSource` (emission + directional inflow),
  :class:`MovingSolidDriver` (prescribed-motion obstacles),
  :class:`CompositeDriver` (several drivers in sequence) and
  :class:`~repro.fluid.levelset.LevelSetDriver` (free surfaces).  Drivers
  may carry ``config_overrides`` (simulation-config tweaks), wrap the
  pressure solver (``wrap_solver``) and participate in checkpoints
  (``state_arrays`` / ``load_state_arrays``).

:func:`make_smoke_plume` remains as the legacy entry point; its keyword
sprawl is deprecated in favour of ``build_scenario(ScenarioSpec(...))``.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass
from typing import Callable

import numpy as np

from .geometry import disc_mask, random_obstacles
from .grid import CellType, MACGrid2D
from .levelset import LevelSetDriver, signed_distance
from .turbulence import apply_turbulent_velocity

__all__ = [
    "ScenarioSpec",
    "ScenarioParam",
    "ScenarioInfo",
    "ScenarioDriver",
    "SmokeSource",
    "CompositeDriver",
    "MovingSolidDriver",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "build_scenario",
    "parse_scenario",
    "make_smoke_plume",
]

_SCALARS = (bool, int, float, str)
_RESERVED_CHARS = (",", "=", ":")


def _format_value(v) -> str:
    if v is None:
        return "none"
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, float):
        return repr(v)
    return str(v)


def _parse_value(text: str):
    low = text.lower()
    if low in ("none", "null"):
        return None
    if low == "true":
        return True
    if low == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


class ScenarioSpec:
    """A frozen, hashable identifier of one scenario instance.

    ``name`` selects a registered scenario; ``params`` carry scalar
    overrides (int/float/bool/str, or ``None`` meaning "use the scenario's
    randomised default").  Specs round-trip through JSON dicts
    (:meth:`to_dict`/:meth:`from_dict`) and through the canonical CLI
    string ``name:key=val,key=val`` (:meth:`to_string`/
    :func:`parse_scenario`); parameters are kept sorted so equal specs
    always serialise identically.
    """

    __slots__ = ("name", "params")

    def __init__(self, name: str, /, **params):
        if not name or not isinstance(name, str):
            raise ValueError(f"scenario name must be a non-empty string, got {name!r}")
        if any(c in name for c in _RESERVED_CHARS):
            raise ValueError(f"scenario name {name!r} contains a reserved character")
        for key, value in params.items():
            if value is not None and not isinstance(value, _SCALARS):
                raise TypeError(
                    f"scenario parameter {key!r} must be a scalar "
                    f"(int/float/bool/str/None), got {type(value).__name__}"
                )
            if isinstance(value, str) and any(c in value for c in _RESERVED_CHARS):
                raise ValueError(f"scenario parameter {key}={value!r} contains a reserved character")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "params", tuple(sorted(params.items())))

    def __setattr__(self, name, value):
        raise AttributeError("ScenarioSpec is frozen")

    def __delattr__(self, name):
        raise AttributeError("ScenarioSpec is frozen")

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ScenarioSpec)
            and self.name == other.name
            and self.params == other.params
        )

    def __hash__(self) -> int:
        return hash((self.name, self.params))

    def __repr__(self) -> str:
        return f"ScenarioSpec({self.to_string()!r})"

    def get(self, key: str, default=None):
        """The value of parameter ``key``, or ``default`` if absent."""
        return dict(self.params).get(key, default)

    def with_defaults(self, **defaults) -> "ScenarioSpec":
        """A spec with ``defaults`` filled in for parameters not yet set."""
        have = dict(self.params)
        missing = {k: v for k, v in defaults.items() if k not in have}
        if not missing:
            return self
        return ScenarioSpec(self.name, **have, **missing)

    def to_string(self) -> str:
        """Canonical ``name:key=val,key=val`` form (sorted parameters)."""
        if not self.params:
            return self.name
        body = ",".join(f"{k}={_format_value(v)}" for k, v in self.params)
        return f"{self.name}:{body}"

    def to_dict(self) -> dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, d: dict) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(d["name"], **dict(d.get("params") or {}))

    @property
    def slug(self) -> str:
        """Filesystem-safe identifier; parameterised specs get a hash suffix."""
        if not self.params:
            return self.name
        digest = hashlib.sha1(self.to_string().encode()).hexdigest()[:8]
        return f"{self.name}-{digest}"


def parse_scenario(text: "str | ScenarioSpec") -> ScenarioSpec:
    """Parse the CLI scenario syntax ``name[:key=val,key=val]`` into a spec.

    Values parse as ``none``/``true``/``false``, int, float, then string.
    Passing an existing :class:`ScenarioSpec` returns it unchanged.
    """
    if isinstance(text, ScenarioSpec):
        return text
    name, sep, rest = text.strip().partition(":")
    params: dict = {}
    if sep:
        for item in rest.split(","):
            key, eq, value = item.partition("=")
            if not eq or not key.strip():
                raise ValueError(
                    f"malformed scenario parameter {item!r} in {text!r}; "
                    "expected name:key=val,key=val"
                )
            params[key.strip()] = _parse_value(value.strip())
    return ScenarioSpec(name.strip(), **params)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioParam:
    """One declared scenario parameter: name, default and doc line."""

    name: str
    default: object
    doc: str = ""


@dataclass(frozen=True)
class ScenarioInfo:
    """A registry entry: builder plus its declared parameter schema."""

    name: str
    description: str
    params: tuple
    builder: Callable


_REGISTRY: dict[str, ScenarioInfo] = {}


def register_scenario(name: str, description: str = "", params: tuple = ()):
    """Decorator registering ``builder(params, rng) -> (grid, driver)``.

    ``params`` declares the accepted parameters with defaults and doc
    lines; :func:`build_scenario` merges them with the spec's overrides and
    rejects undeclared names.
    """

    def decorator(builder: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = ScenarioInfo(
            name=name, description=description, params=tuple(params), builder=builder
        )
        return builder

    return decorator


def get_scenario(name: str) -> ScenarioInfo:
    """The registry entry for ``name`` (ValueError when unknown)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown scenario {name!r}; registered: {known}") from None


def list_scenarios() -> list[ScenarioInfo]:
    """All registered scenarios, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def build_scenario(
    spec: "ScenarioSpec | str", rng: "np.random.Generator | int | None" = None
):
    """Materialise a scenario: validated spec + rng → ``(grid, driver)``.

    The driver is the simulator's per-step ``source`` (possibly a
    :class:`CompositeDriver`); pass it to
    :class:`~repro.fluid.simulator.FluidSimulator` together with the grid,
    and let it wrap the pressure solver (``driver.wrap_solver``) and
    override simulation-config fields (``driver.config_overrides``).
    """
    spec = parse_scenario(spec)
    info = get_scenario(spec.name)
    declared = {p.name for p in info.params}
    given = dict(spec.params)
    unknown = sorted(set(given) - declared)
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {unknown} for scenario {spec.name!r}; "
            f"declared: {sorted(declared)}"
        )
    merged = {p.name: p.default for p in info.params}
    merged.update(given)
    return info.builder(merged, np.random.default_rng(rng))


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------
class ScenarioDriver:
    """Base class of scenario drivers (the simulator's ``source`` hook).

    A driver is called once per step *before* advection (``apply``), may
    replace the pressure solver (``wrap_solver``, e.g. the level-set
    driver's liquid-only solve), may override simulation-config fields
    (``config_overrides``) and contributes named arrays to checkpoints
    (``state_arrays`` / ``load_state_arrays``).  All hooks default to
    no-ops so stateless emitters stay trivial.
    """

    #: :class:`~repro.fluid.simulator.SimulationConfig` field overrides
    config_overrides: dict = {}

    def apply(self, grid: MACGrid2D, dt: float) -> None:
        """Act on the grid at the start of one step."""

    def wrap_solver(self, solver):
        """Optionally replace the configured pressure solver."""
        return solver

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Checkpointable driver state (empty for stateless drivers)."""
        return {}

    def load_state_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        """Restore state saved by :meth:`state_arrays`."""


_DIRECTIONS = ("up", "down", "left", "right")


@dataclass
class SmokeSource(ScenarioDriver):
    """A region that continuously emits smoke with a directional inflow.

    Attributes
    ----------
    mask:
        Boolean (ny, nx) emission region.
    rate:
        Density added per unit time inside the region (clamped to 1).
    inflow:
        Inflow speed imposed on the faces adjacent to the region.
    direction:
        Which way the inflow points: ``"up"`` (the classic plume, negative
        v), ``"down"``, ``"left"`` or ``"right"`` (u faces — side-mounted
        jets).

    Emission and inflow are clamped against the *current* solid mask every
    application, so a moving obstacle sweeping through the source region
    masks it rather than being overwritten.
    """

    mask: np.ndarray
    rate: float = 2.0
    inflow: float = 0.8
    direction: str = "up"

    def __post_init__(self):
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"unknown direction {self.direction!r}; expected one of {_DIRECTIONS}"
            )

    def apply(self, grid: MACGrid2D, dt: float) -> None:
        """Emit smoke and impose the inflow velocity (in place)."""
        solid = grid.solid
        emit = self.mask & ~solid
        grid.density[emit] = np.minimum(grid.density[emit] + self.rate * dt, 1.0)
        if self.direction in ("up", "down"):
            faces = np.zeros((grid.ny + 1, grid.nx), dtype=bool)
            faces[:-1, :] |= emit
            faces[1:, :] |= emit
            blocked = np.zeros_like(faces)
            blocked[:-1, :] |= solid
            blocked[1:, :] |= solid
            faces &= ~blocked
            grid.v[faces] = -self.inflow if self.direction == "up" else self.inflow
        else:
            faces = np.zeros((grid.ny, grid.nx + 1), dtype=bool)
            faces[:, :-1] |= emit
            faces[:, 1:] |= emit
            blocked = np.zeros_like(faces)
            blocked[:, :-1] |= solid
            blocked[:, 1:] |= solid
            faces &= ~blocked
            grid.u[faces] = self.inflow if self.direction == "right" else -self.inflow
        grid.enforce_solid_boundaries()


class CompositeDriver(ScenarioDriver):
    """Several drivers applied in sequence (one scenario, many actors).

    ``config_overrides`` merge left to right; checkpoint arrays are
    namespaced by child index so stateful children round-trip unchanged.
    """

    def __init__(self, *drivers):
        self.drivers = list(drivers)
        overrides: dict = {}
        for d in self.drivers:
            overrides.update(getattr(d, "config_overrides", {}))
        self.config_overrides = overrides

    def apply(self, grid: MACGrid2D, dt: float) -> None:
        for d in self.drivers:
            d.apply(grid, dt)

    def wrap_solver(self, solver):
        for d in self.drivers:
            solver = d.wrap_solver(solver)
        return solver

    def state_arrays(self) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for i, d in enumerate(self.drivers):
            for key, value in d.state_arrays().items():
                out[f"{i}/{key}"] = value
        return out

    def load_state_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        for i, d in enumerate(self.drivers):
            prefix = f"{i}/"
            sub = {k[len(prefix):]: v for k, v in arrays.items() if k.startswith(prefix)}
            if sub:
                d.load_state_arrays(sub)


class MovingSolidDriver(ScenarioDriver):
    """A solid obstacle following a prescribed trajectory.

    ``mask_at(t)`` returns the obstacle's boolean cell mask at time ``t``;
    ``velocity_at(t)`` its rigid velocity ``(vx, vy)`` in world units.
    Each step the driver clears the previous dynamic solid cells back to
    fluid, stamps the new mask, prescribes the solid velocity on the grid
    (:meth:`MACGrid2D.set_solid_velocity` — the projection then sees the
    motion as a normal-velocity boundary condition) and purges smoke from
    inside the solid.  Because the solid mask changes between steps, every
    ``MaskKeyedCache``-backed artefact (MIC(0) factors, geometry kernels,
    the NN solver's geometry channel) re-keys automatically.
    """

    def __init__(self, base_solid: np.ndarray, mask_at: Callable, velocity_at: Callable):
        self.base_solid = np.asarray(base_solid, dtype=bool).copy()
        self.mask_at = mask_at
        self.velocity_at = velocity_at
        self.t = 0.0

    def apply(self, grid: MACGrid2D, dt: float) -> None:
        self.t += dt
        mask = np.asarray(self.mask_at(self.t), dtype=bool) & ~self.base_solid
        vx, vy = self.velocity_at(self.t)
        dyn_old = grid.solid & ~self.base_solid
        grid.flags[dyn_old & ~mask] = CellType.FLUID
        grid.flags[mask] = CellType.SOLID
        solid_u = np.zeros(grid.shape, dtype=np.float64)
        solid_v = np.zeros(grid.shape, dtype=np.float64)
        solid_u[mask] = vx
        solid_v[mask] = vy
        grid.set_solid_velocity(solid_u, solid_v)
        grid.density[mask] = 0.0
        grid.enforce_solid_boundaries()

    def state_arrays(self) -> dict[str, np.ndarray]:
        return {"t": np.asarray(self.t, dtype=np.float64)}

    def load_state_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        self.t = float(np.asarray(arrays["t"]))


# ----------------------------------------------------------------------
# scenario builders
# ----------------------------------------------------------------------
def _build_smoke_plume(
    nx: int,
    ny: int,
    rng: "np.random.Generator | int | None" = None,
    with_obstacles: bool = True,
    turbulence_magnitude: "float | None" = None,
    n_objects: "int | None" = None,
) -> tuple[MACGrid2D, SmokeSource]:
    rng = np.random.default_rng(rng)
    grid = MACGrid2D(nx, ny)
    if with_obstacles:
        grid.add_solid(random_obstacles((ny, nx), rng, n_objects=n_objects))
    if turbulence_magnitude is None:
        turbulence_magnitude = float(rng.uniform(0.3, 1.0))
    apply_turbulent_velocity(grid, rng, magnitude=turbulence_magnitude)

    # source: a horizontal strip near the bottom centre, kept off obstacles
    mask = np.zeros((ny, nx), dtype=bool)
    w = max(2, nx // 6)
    cx = nx // 2 + int(rng.integers(-nx // 8, nx // 8 + 1))
    x0 = int(np.clip(cx - w // 2, 1, nx - 1 - w))
    y0 = ny - 1 - max(2, ny // 10)
    mask[y0 : y0 + 2, x0 : x0 + w] = True
    mask &= ~grid.solid
    source = SmokeSource(mask=mask)
    source.apply(grid, dt=0.5)  # seed a little smoke so frame 0 is not empty
    return grid, source


def _bottom_source_mask(n: int) -> np.ndarray:
    """The centred bottom emission strip shared by several scenarios."""
    mask = np.zeros((n, n), dtype=bool)
    w = max(2, n // 6)
    x0 = (n - w) // 2
    y0 = n - 1 - max(2, n // 10)
    mask[y0 : y0 + 2, x0 : x0 + w] = True
    return mask


@register_scenario(
    "smoke_plume",
    description="the paper's randomised buoyant smoke plume (turbulent start, random obstacles)",
    params=(
        ScenarioParam("grid", 32, "grid resolution (NxN)"),
        ScenarioParam("with_obstacles", True, "drop random solid obstacles"),
        ScenarioParam("turbulence", None, "initial turbulence magnitude (none = randomised)"),
        ScenarioParam("n_objects", None, "number of random obstacles (none = randomised)"),
    ),
)
def _scenario_smoke_plume(params: dict, rng: np.random.Generator):
    turbulence = params["turbulence"]
    n_objects = params["n_objects"]
    return _build_smoke_plume(
        int(params["grid"]),
        int(params["grid"]),
        rng=rng,
        with_obstacles=bool(params["with_obstacles"]),
        turbulence_magnitude=None if turbulence is None else float(turbulence),
        n_objects=None if n_objects is None else int(n_objects),
    )


@register_scenario(
    "inflow_jet",
    description="side-mounted jet emitter driving a shear layer across the box",
    params=(
        ScenarioParam("grid", 32, "grid resolution (NxN)"),
        ScenarioParam("speed", 1.2, "jet inflow speed"),
        ScenarioParam("height", 0.5, "jet centre height as a fraction of the box"),
        ScenarioParam("width", 0.25, "jet thickness as a fraction of the box"),
        ScenarioParam("side", "left", "wall the jet enters from (left or right)"),
    ),
)
def _scenario_inflow_jet(params: dict, rng: np.random.Generator):
    n = int(params["grid"])
    grid = MACGrid2D(n, n)
    half = max(1, int(round(0.5 * float(params["width"]) * n)))
    cy = int(round(float(params["height"]) * n))
    y0 = max(1, cy - half)
    y1 = min(n - 1, cy + half)
    mask = np.zeros((n, n), dtype=bool)
    if params["side"] == "left":
        mask[y0:y1, 1:3] = True
        direction = "right"
    elif params["side"] == "right":
        mask[y0:y1, n - 3 : n - 1] = True
        direction = "left"
    else:
        raise ValueError(f"inflow_jet side must be 'left' or 'right', got {params['side']!r}")
    source = SmokeSource(
        mask=mask, rate=1.5, inflow=float(params["speed"]), direction=direction
    )
    source.apply(grid, dt=0.5)
    return grid, source


@register_scenario(
    "moving_cylinder",
    description="oscillating solid disc sweeping through a buoyant plume",
    params=(
        ScenarioParam("grid", 32, "grid resolution (NxN)"),
        ScenarioParam("radius", 0.12, "disc radius as a fraction of the box"),
        ScenarioParam("period", 3.2, "oscillation period in time units"),
        ScenarioParam("amplitude", 0.22, "sweep amplitude as a fraction of the box"),
    ),
)
def _scenario_moving_cylinder(params: dict, rng: np.random.Generator):
    n = int(params["grid"])
    grid = MACGrid2D(n, n)
    radius = max(1.5, float(params["radius"]) * n)
    amplitude = float(params["amplitude"]) * n
    omega = 2.0 * np.pi / float(params["period"])
    cx0, cy = 0.5 * n, 0.45 * n
    shape, dx = (n, n), grid.dx

    def mask_at(t: float) -> np.ndarray:
        return disc_mask(shape, cx0 + amplitude * np.sin(omega * t), cy, radius)

    def velocity_at(t: float) -> tuple[float, float]:
        return (amplitude * dx * omega * np.cos(omega * t), 0.0)

    mover = MovingSolidDriver(grid.solid.copy(), mask_at, velocity_at)
    source = SmokeSource(mask=_bottom_source_mask(n))
    mover.apply(grid, dt=0.0)  # place the disc without advancing its clock
    source.apply(grid, dt=0.5)  # seed frame 0
    return grid, CompositeDriver(mover, source)


@register_scenario(
    "karman_street",
    description="constant side inflow past a fixed disc (Karman-vortex-street setup)",
    params=(
        ScenarioParam("grid", 32, "grid resolution (NxN)"),
        ScenarioParam("speed", 1.5, "inflow speed at the left wall"),
        ScenarioParam("radius", 0.08, "disc radius as a fraction of the box"),
    ),
)
def _scenario_karman_street(params: dict, rng: np.random.Generator):
    n = int(params["grid"])
    grid = MACGrid2D(n, n)
    radius = max(2.0, float(params["radius"]) * n)
    grid.add_solid(disc_mask((n, n), 0.3 * n, 0.5 * n, radius))
    speed = float(params["speed"])
    # the box is sealed (solid border), so a full-height wind strip would be
    # cancelled by the projection; drive only the middle half and let the
    # return flow use the outer quarters
    inflow_mask = np.zeros((n, n), dtype=bool)
    inflow_mask[n // 4 : n - n // 4, 1:3] = True
    # dye only a centreline band so the street is visible in the density
    dye = np.zeros((n, n), dtype=bool)
    half = max(1, n // 10)
    dye[n // 2 - half : n // 2 + half, 1:3] = True
    wind = SmokeSource(mask=inflow_mask, rate=0.0, inflow=speed, direction="right")
    tracer = SmokeSource(mask=dye, rate=2.0, inflow=speed, direction="right")
    driver = CompositeDriver(wind, tracer)
    driver.config_overrides = {"buoyancy": 0.0, "vorticity_eps": 0.2}
    driver.apply(grid, dt=0.5)
    return grid, driver


@register_scenario(
    "plume_collision",
    description="two facing jets colliding head-on mid-domain",
    params=(
        ScenarioParam("grid", 32, "grid resolution (NxN)"),
        ScenarioParam("speed", 1.0, "inflow speed of both jets"),
        ScenarioParam("offset", 0.06, "vertical offset between the jets (fraction, breaks symmetry)"),
    ),
)
def _scenario_plume_collision(params: dict, rng: np.random.Generator):
    n = int(params["grid"])
    grid = MACGrid2D(n, n)
    speed = float(params["speed"])
    half = max(1, n // 10)
    off = int(round(float(params["offset"]) * n))
    cl, cr = n // 2 - off, n // 2 + off
    left = np.zeros((n, n), dtype=bool)
    left[max(1, cl - half) : min(n - 1, cl + half), 1:3] = True
    right = np.zeros((n, n), dtype=bool)
    right[max(1, cr - half) : min(n - 1, cr + half), n - 3 : n - 1] = True
    driver = CompositeDriver(
        SmokeSource(mask=left, rate=2.0, inflow=speed, direction="right"),
        SmokeSource(mask=right, rate=2.0, inflow=speed, direction="left"),
    )
    driver.apply(grid, dt=0.5)
    return grid, driver


@register_scenario(
    "dam_break",
    description="free-surface dam break: a water column collapses under gravity",
    params=(
        ScenarioParam("grid", 32, "grid resolution (NxN)"),
        ScenarioParam("fill_x", 0.35, "column width as a fraction of the box"),
        ScenarioParam("fill_y", 0.7, "column height as a fraction of the box"),
        ScenarioParam("gravity", 2.0, "gravity acceleration (downward)"),
        ScenarioParam("reinit_every", 4, "redistance the level set every N steps (0 = never)"),
    ),
)
def _scenario_dam_break(params: dict, rng: np.random.Generator):
    n = int(params["grid"])
    grid = MACGrid2D(n, n)
    liquid = np.zeros((n, n), dtype=bool)
    w = max(2, int(round(float(params["fill_x"]) * n)))
    h = max(2, int(round(float(params["fill_y"]) * n)))
    liquid[n - 1 - h : n - 1, 1 : 1 + w] = True
    liquid &= ~grid.solid
    driver = LevelSetDriver(
        signed_distance(liquid),
        grid.solid.copy(),
        gravity=float(params["gravity"]),
        reinit_every=int(params["reinit_every"]),
    )
    driver.classify(grid)
    return grid, driver


@register_scenario(
    "sloshing_tank",
    description="free-surface tank with a tilted initial surface sloshing under gravity",
    params=(
        ScenarioParam("grid", 32, "grid resolution (NxN)"),
        ScenarioParam("depth", 0.4, "mean liquid depth as a fraction of the box"),
        ScenarioParam("tilt", 0.25, "initial surface tilt (height difference fraction)"),
        ScenarioParam("gravity", 2.0, "gravity acceleration (downward)"),
        ScenarioParam("reinit_every", 4, "redistance the level set every N steps (0 = never)"),
    ),
)
def _scenario_sloshing_tank(params: dict, rng: np.random.Generator):
    n = int(params["grid"])
    grid = MACGrid2D(n, n)
    ys, xs = np.mgrid[0:n, 0:n]
    # surface row per column: tilted plane around the mean depth
    surface = (1.0 - float(params["depth"])) * n + float(params["tilt"]) * n * (
        (xs + 0.5) / n - 0.5
    )
    liquid = (ys + 0.5) > surface
    liquid &= ~grid.solid
    driver = LevelSetDriver(
        signed_distance(liquid),
        grid.solid.copy(),
        gravity=float(params["gravity"]),
        reinit_every=int(params["reinit_every"]),
    )
    driver.classify(grid)
    return grid, driver


# ----------------------------------------------------------------------
# legacy entry point
# ----------------------------------------------------------------------
_UNSET = object()


def make_smoke_plume(
    nx: int,
    ny: int,
    rng: "np.random.Generator | int | None" = None,
    with_obstacles: "bool | object" = _UNSET,
    turbulence_magnitude: "float | None | object" = _UNSET,
    n_objects: "int | None | object" = _UNSET,
) -> tuple[MACGrid2D, SmokeSource]:
    """Build a randomised smoke-plume input problem (legacy entry point).

    The keyword sprawl (``with_obstacles``/``turbulence_magnitude``/
    ``n_objects``) is deprecated: build the scenario through the registry
    instead — ``build_scenario(ScenarioSpec("smoke_plume", grid=n,
    with_obstacles=..., turbulence=..., n_objects=...), rng=seed)`` — which
    produces a bit-for-bit identical grid for the same rng.
    """
    sprawl = {
        key: value
        for key, value in (
            ("with_obstacles", with_obstacles),
            ("turbulence_magnitude", turbulence_magnitude),
            ("n_objects", n_objects),
        )
        if value is not _UNSET
    }
    if sprawl:
        warnings.warn(
            "make_smoke_plume's keyword arguments are deprecated; use "
            "build_scenario(ScenarioSpec('smoke_plume', grid=..., "
            "with_obstacles=..., turbulence=..., n_objects=...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    return _build_smoke_plume(
        nx,
        ny,
        rng=rng,
        with_obstacles=sprawl.get("with_obstacles", True),
        turbulence_magnitude=sprawl.get("turbulence_magnitude"),
        n_objects=sprawl.get("n_objects"),
    )
