"""Simulation scenarios: the 2-D smoke plume of the paper's evaluation.

An *input problem* in the paper is one random initial condition for the smoke
plume: a pseudo-random turbulent initial velocity plus an occupancy grid with
the border wall and some random objects.  :func:`make_smoke_plume` builds
exactly that; :mod:`repro.data.problems` wraps it into reproducible datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .geometry import random_obstacles
from .grid import MACGrid2D
from .turbulence import apply_turbulent_velocity

__all__ = ["SmokeSource", "make_smoke_plume"]


@dataclass
class SmokeSource:
    """A region that continuously emits smoke with a vertical inflow.

    Attributes
    ----------
    mask:
        Boolean (ny, nx) emission region.
    rate:
        Density added per unit time inside the region (clamped to 1).
    inflow:
        Upward inflow speed imposed on v-faces inside the region.
    """

    mask: np.ndarray
    rate: float = 2.0
    inflow: float = 0.8

    def apply(self, grid: MACGrid2D, dt: float) -> None:
        """Emit smoke and impose the inflow velocity (in place)."""
        grid.density[self.mask] = np.minimum(grid.density[self.mask] + self.rate * dt, 1.0)
        vmask = np.zeros((grid.ny + 1, grid.nx), dtype=bool)
        vmask[:-1, :] |= self.mask
        vmask[1:, :] |= self.mask
        grid.v[vmask] = -self.inflow  # negative v = upward
        grid.enforce_solid_boundaries()


def make_smoke_plume(
    nx: int,
    ny: int,
    rng: np.random.Generator | int | None = None,
    with_obstacles: bool = True,
    turbulence_magnitude: float | None = None,
    n_objects: int | None = None,
) -> tuple[MACGrid2D, SmokeSource]:
    """Build a randomised smoke-plume input problem.

    Returns the initialised grid (turbulent velocity, obstacles, border wall,
    seeded density) and the continuous smoke source near the bottom of the
    domain.
    """
    rng = np.random.default_rng(rng)
    grid = MACGrid2D(nx, ny)
    if with_obstacles:
        grid.add_solid(random_obstacles((ny, nx), rng, n_objects=n_objects))
    if turbulence_magnitude is None:
        turbulence_magnitude = float(rng.uniform(0.3, 1.0))
    apply_turbulent_velocity(grid, rng, magnitude=turbulence_magnitude)

    # source: a horizontal strip near the bottom centre, kept off obstacles
    mask = np.zeros((ny, nx), dtype=bool)
    w = max(2, nx // 6)
    cx = nx // 2 + int(rng.integers(-nx // 8, nx // 8 + 1))
    x0 = int(np.clip(cx - w // 2, 1, nx - 1 - w))
    y0 = ny - 1 - max(2, ny // 10)
    mask[y0 : y0 + 2, x0 : x0 + w] = True
    mask &= ~grid.solid
    source = SmokeSource(mask=mask)
    source.apply(grid, dt=0.5)  # seed a little smoke so frame 0 is not empty
    return grid, source
