"""The Eulerian fluid simulator (the paper's Algorithm 1).

Each time step performs, in order:

1. smoke emission (scenario source),
2. advection of density and velocity (semi-Lagrangian, optionally
   MacCormack),
3. body forces (buoyancy, optional vorticity confinement),
4. pressure projection with the configured solver.

After the projection the simulator records the step's ``DivNorm`` (Eq. 5 of
the paper) and timing diagnostics.  A *controller* hook — invoked with the
step record — may replace ``simulator.solver`` between steps; this is how the
Smart-fluidnet runtime switches networks (Algorithm 2), and how it requests a
restart with the exact method.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.ndimage import distance_transform_edt

from repro.metrics import MetricsRegistry, get_metrics

from .advection import advect_scalar, advect_velocity, maccormack_scalar
from .forces import add_buoyancy, add_vorticity_confinement
from .grid import MACGrid2D
from .operators import divergence
from .projection import PressureSolver, ProjectionInfo, project
from .scenarios import SmokeSource

__all__ = ["SimulationConfig", "StepRecord", "SimulationResult", "FluidSimulator", "RestartRequested"]


class RestartRequested(Exception):
    """Raised by a controller to abort the run and restart with PCG."""


@dataclass
class SimulationConfig:
    """Physical and numerical parameters of a run."""

    dt: float = 0.05
    rho: float = 1.0
    buoyancy: float = 1.0
    vorticity_eps: float = 0.0
    maccormack: bool = False
    divnorm_k: float = 3.0  # weighting distance k in w_i = max(1, k - d_i)


@dataclass
class StepRecord:
    """Diagnostics collected after each simulation step."""

    step: int
    divnorm: float
    projection: ProjectionInfo
    step_seconds: float


@dataclass
class SimulationResult:
    """Outcome of a complete run."""

    density: np.ndarray
    records: list[StepRecord]
    total_seconds: float
    restarts: int = 0
    #: DivNorm of steps executed before a checkpoint restore (empty if none)
    restored_divnorms: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def divnorm_history(self) -> np.ndarray:
        """DivNorm of every step *in this run segment*, in order.

        After a checkpoint restore this covers only post-restore steps; use
        :attr:`full_divnorm_history` for the whole trajectory.
        """
        return np.array([r.divnorm for r in self.records])

    @property
    def full_divnorm_history(self) -> np.ndarray:
        """DivNorm of the whole trajectory, pre-restore prefix included."""
        return np.concatenate([np.asarray(self.restored_divnorms, dtype=np.float64), self.divnorm_history])

    @property
    def cumdivnorm_history(self) -> np.ndarray:
        """CumDivNorm (Eq. 9): running sum of DivNorm."""
        return np.cumsum(self.divnorm_history)

    @property
    def solve_seconds(self) -> float:
        """Total time spent in the pressure solver."""
        return sum(r.projection.solve_seconds for r in self.records)

    @property
    def total_flops(self) -> float:
        """Total estimated pressure-solve FLOPs."""
        return sum(r.projection.flops for r in self.records)


def divnorm_weights(solid: np.ndarray, k: float = 3.0) -> np.ndarray:
    """DivNorm cell weights ``w_i = max(1, k - d_i)`` (Eq. 5).

    ``d_i`` is 0 in solid cells and the Euclidean distance to the nearest
    solid cell in fluid cells; grid boundaries count as solid (border wall).
    """
    dist = distance_transform_edt(~solid)
    return np.maximum(1.0, k - dist)


def compute_divnorm(grid: MACGrid2D, weights: np.ndarray) -> float:
    """Weighted squared-divergence objective (Eq. 5) of the current velocity."""
    div = divergence(grid)
    return float((weights * div**2)[grid.fluid].sum())


class FluidSimulator:
    """Run the smoke-plume simulation with a pluggable pressure solver."""

    def __init__(
        self,
        grid: MACGrid2D,
        solver: PressureSolver,
        source: SmokeSource | None = None,
        config: SimulationConfig | None = None,
        controller: Callable[["FluidSimulator", StepRecord], None] | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.grid = grid
        self.solver = solver
        self.source = source
        self.config = config or SimulationConfig()
        self.controller = controller
        self.metrics = metrics
        self.weights = divnorm_weights(grid.solid, self.config.divnorm_k)
        self.records: list[StepRecord] = []
        self._step = 0
        #: DivNorm history of steps executed before a checkpoint restore
        self._restored_divnorms = np.zeros(0, dtype=np.float64)

    def step(self) -> StepRecord:
        """Advance the simulation by one time step."""
        cfg = self.config
        g = self.grid
        m = self.metrics if self.metrics is not None else get_metrics()
        t0 = time.perf_counter()
        with m.scope("sim"):
            if self.source is not None:
                self.source.apply(g, cfg.dt)
            with m.timer("advection"):
                if cfg.maccormack:
                    g.density = maccormack_scalar(g, g.density, cfg.dt)
                else:
                    g.density = advect_scalar(g, g.density, cfg.dt)
                new_u, new_v = advect_velocity(g, cfg.dt)
                g.u, g.v = new_u, new_v
            g.enforce_solid_boundaries()
            with m.timer("forces"):
                add_buoyancy(g, cfg.dt, cfg.buoyancy)
                if cfg.vorticity_eps > 0:
                    add_vorticity_confinement(g, cfg.dt, cfg.vorticity_eps)
            info = project(g, self.solver, cfg.dt, cfg.rho, metrics=m)
            divnorm = compute_divnorm(g, self.weights)
            rec = StepRecord(
                step=self._step,
                divnorm=divnorm,
                projection=info,
                step_seconds=time.perf_counter() - t0,
            )
            m.inc("steps")
            m.inc("solver_iterations", info.iterations)
            m.observe("step", rec.step_seconds)
        self.records.append(rec)
        self._step += 1
        if self.controller is not None:
            self.controller(self, rec)
        return rec

    def run(self, n_steps: int) -> SimulationResult:
        """Run ``n_steps`` steps and return the result (density + records)."""
        t0 = time.perf_counter()
        for _ in range(n_steps):
            self.step()
        return SimulationResult(
            density=self.grid.density.copy(),
            records=list(self.records),
            total_seconds=time.perf_counter() - t0,
            restored_divnorms=self._restored_divnorms.copy(),
        )

    @property
    def current_step(self) -> int:
        """Index of the next step to execute (= steps completed so far)."""
        return self._step

    @property
    def full_divnorm_history(self) -> np.ndarray:
        """DivNorm of every step executed so far, across checkpoint restores.

        :attr:`records` (and the per-run ``divnorm_history``) cover only the
        current segment — :meth:`load_state` resets them; this property
        prepends the restored prefix so trajectory-level diagnostics never
        silently lose the pre-restore steps.
        """
        current = np.array([r.divnorm for r in self.records], dtype=np.float64)
        return np.concatenate([self._restored_divnorms, current])

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def save_state(self) -> dict[str, np.ndarray]:
        """Snapshot the simulation state as a dict of arrays.

        The snapshot captures everything the time-stepping loop reads — the
        MAC-grid fields, the cell flags and the step counter — plus the
        DivNorm history for diagnostics continuity.  It deliberately excludes
        the solver (rebuilt from configuration; its per-geometry caches
        repopulate on the first post-restore step) and the per-step records
        (their ``ProjectionInfo`` is diagnostic, not state).  The dict is
        ``np.savez``-compatible; see :mod:`repro.farm.checkpoint`.
        """
        g = self.grid
        return {
            "step": np.asarray(self._step, dtype=np.int64),
            "dx": np.asarray(g.dx, dtype=np.float64),
            "u": g.u.copy(),
            "v": g.v.copy(),
            "pressure": g.pressure.copy(),
            "density": g.density.copy(),
            "flags": g.flags.copy(),
            "divnorm_history": np.array([r.divnorm for r in self.records], dtype=np.float64),
        }

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore a :meth:`save_state` snapshot onto this simulator.

        The grid must have the same resolution as the snapshot.  Restoring
        replaces the flags (and hence the DivNorm weights, recomputed from
        the restored solid mask), resets the per-step records, and asks the
        solver to drop caches keyed on the old geometry.  A restored run
        continues bit-for-bit identically to the original, provided the
        solver is history-independent (warm-start off — the default).
        """
        g = self.grid
        u, v = np.asarray(state["u"]), np.asarray(state["v"])
        if u.shape != g.u.shape or v.shape != g.v.shape:
            raise ValueError(
                f"checkpoint grid {np.asarray(state['flags']).shape} does not match "
                f"simulator grid {g.shape}"
            )
        g.u = u.copy()
        g.v = v.copy()
        g.pressure = np.asarray(state["pressure"]).copy()
        g.density = np.asarray(state["density"]).copy()
        g.flags = np.asarray(state["flags"]).astype(g.flags.dtype).copy()
        g.dx = float(state["dx"])
        self.weights = divnorm_weights(g.solid, self.config.divnorm_k)
        self._step = int(state["step"])
        self.records = []
        self._restored_divnorms = np.asarray(state["divnorm_history"], dtype=np.float64)
        if hasattr(self.solver, "reset"):
            self.solver.reset()
