"""The Eulerian fluid simulator (the paper's Algorithm 1).

Each time step performs, in order:

1. smoke emission (scenario source),
2. advection of density and velocity (semi-Lagrangian, optionally
   MacCormack),
3. body forces (buoyancy, optional vorticity confinement),
4. pressure projection with the configured solver.

After the projection the simulator records the step's ``DivNorm`` (Eq. 5 of
the paper) and timing diagnostics.  A *controller* hook — invoked with the
step record — may replace ``simulator.solver`` between steps; this is how the
Smart-fluidnet runtime switches networks (Algorithm 2), and how it requests a
restart with the exact method.
"""

from __future__ import annotations

import json
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.ndimage import distance_transform_edt

from repro.metrics import MetricsRegistry, get_metrics
from repro.trace import Event, Tracer, get_tracer

from .advection import advect_scalar, advect_velocity, maccormack_scalar
from .forces import add_buoyancy, add_vorticity_confinement
from .grid import MACGrid2D
from .operators import divergence
from .projection import PressureSolver, ProjectionInfo, project
from .scenarios import SmokeSource

__all__ = ["SimulationConfig", "StepRecord", "SimulationResult", "FluidSimulator", "RestartRequested"]


class RestartRequested(Exception):
    """Raised by a controller to abort the run and restart with PCG."""


@dataclass
class SimulationConfig:
    """Physical and numerical parameters of a run."""

    dt: float = 0.05
    rho: float = 1.0
    buoyancy: float = 1.0
    vorticity_eps: float = 0.0
    maccormack: bool = False
    divnorm_k: float = 3.0  # weighting distance k in w_i = max(1, k - d_i)


@dataclass
class StepRecord:
    """Diagnostics collected after each simulation step."""

    step: int
    divnorm: float
    projection: ProjectionInfo
    step_seconds: float


@dataclass
class SimulationResult:
    """Outcome of a complete run."""

    density: np.ndarray
    records: list[StepRecord]
    total_seconds: float
    restarts: int = 0
    #: DivNorm of steps executed before a checkpoint restore (empty if none)
    restored_divnorms: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: typed step-event timeline of the whole trajectory (``divnorm``/``step``
    #: events, pre-restore prefix included); see :mod:`repro.trace`
    timeline: list[Event] = field(default_factory=list)

    @property
    def divnorm_history(self) -> np.ndarray:
        """DivNorm of every step *in this run segment*, in order.

        After a checkpoint restore this covers only post-restore steps; use
        :attr:`full_divnorm_history` for the whole trajectory.
        """
        return np.array([r.divnorm for r in self.records])

    @property
    def full_divnorm_history(self) -> np.ndarray:
        """DivNorm of the whole trajectory, pre-restore prefix included.

        A thin adapter over the ``divnorm`` events of :attr:`timeline`
        (falling back to :attr:`restored_divnorms` for results built
        without one).
        """
        if self.timeline:
            events = sorted(
                (e for e in self.timeline if e.type == "divnorm"),
                key=lambda e: e.step if e.step is not None else -1,
            )
            return np.array([e.attrs["value"] for e in events], dtype=np.float64)
        return np.concatenate([np.asarray(self.restored_divnorms, dtype=np.float64), self.divnorm_history])

    @property
    def cumdivnorm_history(self) -> np.ndarray:
        """CumDivNorm (Eq. 9): running sum of DivNorm."""
        return np.cumsum(self.divnorm_history)

    @property
    def solve_seconds(self) -> float:
        """Total time spent in the pressure solver."""
        return sum(r.projection.solve_seconds for r in self.records)

    @property
    def total_flops(self) -> float:
        """Total estimated pressure-solve FLOPs."""
        return sum(r.projection.flops for r in self.records)


def divnorm_weights(solid: np.ndarray, k: float = 3.0) -> np.ndarray:
    """DivNorm cell weights ``w_i = max(1, k - d_i)`` (Eq. 5).

    ``d_i`` is 0 in solid cells and the Euclidean distance to the nearest
    solid cell in fluid cells; grid boundaries count as solid (border wall).
    """
    dist = distance_transform_edt(~solid)
    return np.maximum(1.0, k - dist)


def compute_divnorm(grid: MACGrid2D, weights: np.ndarray) -> float:
    """Weighted squared-divergence objective (Eq. 5) of the current velocity."""
    div = divergence(grid)
    return float((weights * div**2)[grid.fluid].sum())


class FluidSimulator:
    """Run a scenario simulation with a pluggable pressure solver.

    ``source`` is the scenario driver (historically a
    :class:`~repro.fluid.scenarios.SmokeSource`; any
    :class:`~repro.fluid.scenarios.ScenarioDriver` works): it acts on the
    grid at the start of each step and its checkpointable state rides along
    in :meth:`save_state` under ``scenario/`` keys.  Scenarios with
    time-varying solid masks (moving obstacles) are supported — the DivNorm
    weights re-key automatically when the mask changes.
    """

    def __init__(
        self,
        grid: MACGrid2D,
        solver: PressureSolver,
        source: SmokeSource | None = None,
        config: SimulationConfig | None = None,
        controller: Callable[["FluidSimulator", StepRecord], None] | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self.grid = grid
        self.solver = solver
        self.source = source
        self.config = config or SimulationConfig()
        self.controller = controller
        self.metrics = metrics
        self.tracer = tracer
        self.weights = divnorm_weights(grid.solid, self.config.divnorm_k)
        self._weights_key = grid.solid.tobytes()
        self.records: list[StepRecord] = []
        self._step = 0
        #: typed step-event stream of the whole trajectory (always recorded;
        #: ``load_state`` restores the pre-restore prefix into it)
        self.timeline: list[Event] = []
        #: step index where the current segment began (0 unless restored)
        self._segment_start = 0

    def _tracer(self) -> Tracer:
        return self.tracer if self.tracer is not None else get_tracer()

    def _refresh_weights(self) -> None:
        """Recompute DivNorm weights when the solid mask has changed.

        Moving-obstacle scenarios rewrite the flags every step; the weights
        (distance-to-solid based, Eq. 5) must track them.  Static scenarios
        pay only a cheap ``tobytes`` comparison.
        """
        key = self.grid.solid.tobytes()
        if key != self._weights_key:
            self._weights_key = key
            self.weights = divnorm_weights(self.grid.solid, self.config.divnorm_k)

    def step(self) -> StepRecord:
        """Advance the simulation by one time step."""
        cfg = self.config
        g = self.grid
        m = self.metrics if self.metrics is not None else get_metrics()
        tr = self._tracer()
        t0 = time.perf_counter()
        with m.scope("sim"), tr.span("step", step=self._step):
            if self.source is not None:
                self.source.apply(g, cfg.dt)
            with m.timer("advection"), tr.span("advection"):
                if cfg.maccormack:
                    g.density = maccormack_scalar(g, g.density, cfg.dt)
                else:
                    g.density = advect_scalar(g, g.density, cfg.dt)
                new_u, new_v = advect_velocity(g, cfg.dt)
                g.u, g.v = new_u, new_v
            g.enforce_solid_boundaries()
            with m.timer("forces"), tr.span("forces"):
                add_buoyancy(g, cfg.dt, cfg.buoyancy)
                if cfg.vorticity_eps > 0:
                    add_vorticity_confinement(g, cfg.dt, cfg.vorticity_eps)
            info = project(g, self.solver, cfg.dt, cfg.rho, metrics=m, tracer=tr)
            self._refresh_weights()
            divnorm = compute_divnorm(g, self.weights)
            rec = StepRecord(
                step=self._step,
                divnorm=divnorm,
                projection=info,
                step_seconds=time.perf_counter() - t0,
            )
            m.inc("steps")
            m.inc("solver_iterations", info.iterations)
            m.observe("step", rec.step_seconds)
        if m.enabled:
            # labeled step-latency distribution: the per-solver tail (p99)
            # that flat timers average away
            m.families.histogram(
                "sim_step_seconds",
                help="Wall-clock per simulation step by pressure solver.",
                labels=("solver",),
                unit="seconds",
            ).observe(rec.step_seconds, solver=info.solver_name)
        # the typed step-event stream: always recorded (it is the source of
        # truth for divnorm trajectories), mirrored into the tracer when on
        now = time.time()
        ev_div = Event(
            type="divnorm", step=rec.step, t=now, attrs={"value": float(divnorm)}
        )
        ev_step = Event(
            type="step",
            step=rec.step,
            t=now,
            attrs={
                "seconds": float(rec.step_seconds),
                "solver": info.solver_name,
                "iterations": int(info.iterations),
            },
        )
        self.timeline.append(ev_div)
        self.timeline.append(ev_step)
        tr.record(ev_div)
        tr.record(ev_step)
        self.records.append(rec)
        self._step += 1
        if self.controller is not None:
            self.controller(self, rec)
        return rec

    def run(self, n_steps: int) -> SimulationResult:
        """Run ``n_steps`` steps and return the result (density + records)."""
        t0 = time.perf_counter()
        with self._tracer().span("sim", steps=n_steps, start_step=self._step):
            for _ in range(n_steps):
                self.step()
        return SimulationResult(
            density=self.grid.density.copy(),
            records=list(self.records),
            total_seconds=time.perf_counter() - t0,
            restored_divnorms=self._restored_divnorm_values(),
            timeline=list(self.timeline),
        )

    @property
    def current_step(self) -> int:
        """Index of the next step to execute (= steps completed so far)."""
        return self._step

    def _restored_divnorm_values(self) -> np.ndarray:
        """DivNorm values of pre-restore steps, from the event timeline."""
        events = sorted(
            (
                e
                for e in self.timeline
                if e.type == "divnorm"
                and e.step is not None
                and e.step < self._segment_start
            ),
            key=lambda e: e.step,
        )
        return np.array([e.attrs["value"] for e in events], dtype=np.float64)

    @property
    def _restored_divnorms(self) -> np.ndarray:
        """Deprecated shim over the ``divnorm`` events of :attr:`timeline`.

        Pre-PR5 code read this private array directly; the step-event
        timeline is now the source of truth.  Use
        :attr:`full_divnorm_history` (or filter :attr:`timeline`).
        """
        warnings.warn(
            "FluidSimulator._restored_divnorms is deprecated; read the "
            "'divnorm' events of FluidSimulator.timeline (or "
            "full_divnorm_history) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._restored_divnorm_values()

    @property
    def full_divnorm_history(self) -> np.ndarray:
        """DivNorm of every step executed so far, across checkpoint restores.

        A thin adapter over the ``divnorm`` events of :attr:`timeline`,
        which spans the whole trajectory — :meth:`load_state` restores the
        pre-restore prefix into it, so trajectory-level diagnostics never
        silently lose the pre-restore steps.
        """
        events = sorted(
            (e for e in self.timeline if e.type == "divnorm"),
            key=lambda e: e.step if e.step is not None else -1,
        )
        return np.array([e.attrs["value"] for e in events], dtype=np.float64)

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def save_state(self) -> dict[str, np.ndarray]:
        """Snapshot the simulation state as a dict of arrays.

        The snapshot captures everything the time-stepping loop reads — the
        MAC-grid fields, the cell flags and the step counter — plus the
        step-event timeline (JSON-encoded) and the DivNorm history for
        diagnostics continuity.  It deliberately excludes the solver
        (rebuilt from configuration; its per-geometry caches repopulate on
        the first post-restore step) and the per-step records (their
        ``ProjectionInfo`` is diagnostic, not state) — but solver-held
        *simulation state* (a warm-start seed) rides along under
        ``solver/`` keys, since losing it would break bit-for-bit resume.
        The dict is ``np.savez``-compatible; see
        :mod:`repro.farm.checkpoint`.
        """
        g = self.grid
        state = {
            "step": np.asarray(self._step, dtype=np.int64),
            "dx": np.asarray(g.dx, dtype=np.float64),
            "u": g.u.copy(),
            "v": g.v.copy(),
            "pressure": g.pressure.copy(),
            "density": g.density.copy(),
            "flags": g.flags.copy(),
            "divnorm_history": self.full_divnorm_history,
            "timeline": np.asarray(
                json.dumps([e.to_dict() for e in self.timeline])
            ),
        }
        # scenario drivers (level sets, moving solids) ride along under
        # namespaced keys so free-surface/moving-obstacle jobs resume exactly
        if self.source is not None and hasattr(self.source, "state_arrays"):
            for key, value in self.source.state_arrays().items():
                state[f"scenario/{key}"] = value
        # solver-held simulation state (PCG warm-start seed) rides along the
        # same way, so a resumed run seeds its next solve identically
        if hasattr(self.solver, "state_arrays"):
            for key, value in self.solver.state_arrays().items():
                state[f"solver/{key}"] = value
        return state

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore a :meth:`save_state` snapshot onto this simulator.

        The grid must have the same resolution as the snapshot.  Restoring
        replaces the flags (and hence the DivNorm weights, recomputed from
        the restored solid mask), resets the per-step records, and asks the
        solver to drop caches keyed on the old geometry.  Solver state
        persisted under ``solver/`` keys (the PCG warm-start seed) is
        restored after the reset, so a restored run continues bit-for-bit
        identically to the original even with warm-start on.
        """
        g = self.grid
        u, v = np.asarray(state["u"]), np.asarray(state["v"])
        if u.shape != g.u.shape or v.shape != g.v.shape:
            raise ValueError(
                f"checkpoint grid {np.asarray(state['flags']).shape} does not match "
                f"simulator grid {g.shape}"
            )
        g.u = u.copy()
        g.v = v.copy()
        g.pressure = np.asarray(state["pressure"]).copy()
        g.density = np.asarray(state["density"]).copy()
        g.flags = np.asarray(state["flags"]).astype(g.flags.dtype).copy()
        g.dx = float(state["dx"])
        self.weights = divnorm_weights(g.solid, self.config.divnorm_k)
        self._weights_key = g.solid.tobytes()
        scenario = {
            k[len("scenario/"):]: v for k, v in state.items() if k.startswith("scenario/")
        }
        if scenario and self.source is not None and hasattr(self.source, "load_state_arrays"):
            self.source.load_state_arrays(scenario)
        self._step = int(state["step"])
        self.records = []
        self._segment_start = self._step
        if "timeline" in state:
            payload = np.asarray(state["timeline"]).item()
            self.timeline = [Event.from_dict(d) for d in json.loads(payload)]
        else:
            # pre-timeline checkpoint: reconstruct divnorm events from the
            # stored history (timestamps unknown); steps count back from
            # the checkpointed step so the stitched timeline stays dense
            history = np.asarray(state["divnorm_history"], dtype=np.float64)
            first = self._step - history.size
            self.timeline = [
                Event(type="divnorm", step=first + i, attrs={"value": float(v)})
                for i, v in enumerate(history)
            ]
        if hasattr(self.solver, "reset"):
            self.solver.reset()
        solver_state = {
            k[len("solver/"):]: v for k, v in state.items() if k.startswith("solver/")
        }
        if solver_state and hasattr(self.solver, "load_state_arrays"):
            self.solver.load_state_arrays(solver_state)
