"""Level-set machinery for free-surface liquids.

A liquid region is tracked as the negative set of a signed-distance field
``phi`` over cell centres: ``phi < 0`` inside the liquid, ``phi > 0`` in air,
with the zero level at the free surface.  Each step the field is advected
semi-Lagrangianly with the flow (the same RK2 backtrace the smoke advection
uses) and periodically *reinitialized* back to a signed distance — advection
distorts the gradient, and the classification only needs the sign, so an
exact Euclidean redistancing of the current zero level is both cheap and
robust on these grid sizes.

:class:`LevelSetDriver` is the scenario driver: it advects/reinitializes the
field, classifies cells (``SOLID`` from the static geometry, ``FLUID`` where
liquid, ``EMPTY`` for air), applies gravity to liquid faces, and wraps the
pressure solver in a :class:`FreeSurfaceSolver` that solves the Poisson
system *only on liquid cells* with free-surface Dirichlet conditions: air
neighbours contribute ``p = 0``, which shows up as a diagonal correction on
:class:`~repro.fluid.kernels.GeometryKernels`' fluid-only CSR Laplacian built
with ``solid | air`` as the excluded mask.  Enclosed liquid pockets with no
air contact would make that matrix singular (pure Neumann); the first cell
of each such component is pinned with a unit diagonal bump, the standard
grounding trick.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.ndimage import distance_transform_edt, label
from scipy.sparse.linalg import splu

from repro.metrics import MetricsRegistry, get_metrics
from repro.trace import get_tracer

from .advection import _backtrace
from .grid import CellType, MACGrid2D
from .kernels import GeometryKernels
from .solver_api import MaskKeyedCache, PressureSolver, SolveResult

__all__ = [
    "signed_distance",
    "advect_levelset",
    "reinitialize",
    "LevelSetDriver",
    "FreeSurfaceSolver",
]


def signed_distance(liquid: np.ndarray, dx: float = 1.0) -> np.ndarray:
    """Signed distance (in world units) to the boundary of a liquid mask.

    Negative inside the liquid, positive outside.  The half-cell offset
    places the zero level on the cell boundary between a liquid cell and a
    non-liquid cell, so neither side reports distance 0.
    """
    inside = distance_transform_edt(liquid)
    outside = distance_transform_edt(~liquid)
    return np.where(liquid, -(inside - 0.5), outside - 0.5) * dx


def reinitialize(phi: np.ndarray, dx: float = 1.0) -> np.ndarray:
    """Redistance ``phi`` to an exact signed distance of its zero level."""
    return signed_distance(phi < 0.0, dx)


def advect_levelset(grid: MACGrid2D, phi: np.ndarray, dt: float) -> np.ndarray:
    """Advect the level-set field with the grid velocity (semi-Lagrangian).

    Unlike :func:`~repro.fluid.advection.advect_scalar`, values are *not*
    zeroed inside solids — the field must stay smooth across obstacles so
    the interface can slide along them.
    """
    cx, cy = grid.cell_centers()
    bx, by = _backtrace(grid, cx, cy, dt)
    return grid.sample_center(phi, bx, by)


class FreeSurfaceSolver(PressureSolver):
    """Direct pressure solve on liquid cells with free-surface Dirichlet BC.

    Wraps a :class:`LevelSetDriver`: at solve time the driver's current
    ``phi`` classifies cells, ``GeometryKernels(solid | air)`` compiles the
    liquid-only CSR Laplacian (Neumann at solid walls baked into the
    degree), and each liquid cell gains ``+1`` on the diagonal per air
    neighbour — the ``p = 0`` ghost-value Dirichlet condition.  The
    factorisation is cached per ``solid | air`` mask through the standard
    :class:`MaskKeyedCache`, so a settled interface costs one sparse
    triangular solve per step while any interface motion re-keys it.
    """

    name = "free-surface"

    def __init__(self, driver: "LevelSetDriver", metrics: MetricsRegistry | None = None):
        self.driver = driver
        self._metrics = metrics
        self._cache = MaskKeyedCache("free_surface", capacity=4)

    def reset(self) -> None:
        """Drop cached factorisations (e.g. after a checkpoint restore)."""
        self._cache.clear()

    def _factorize(self, closed: np.ndarray, air: np.ndarray):
        kern = GeometryKernels(closed)
        ny, nx = closed.shape
        pad = np.zeros((ny + 2, nx + 2), dtype=bool)
        pad[1:-1, 1:-1] = air
        ys, xs = kern.ys, kern.xs
        air_deg = (
            pad[ys, xs + 1].astype(np.float64)
            + pad[ys + 2, xs + 1]
            + pad[ys + 1, xs]
            + pad[ys + 1, xs + 2]
        )
        # ground enclosed components (no air contact): pure Neumann blocks
        # are singular, so pin their first cell with a unit diagonal bump
        labels, ncomp = label(~closed)
        if ncomp:
            comp = labels[ys, xs]
            contact = np.bincount(comp, weights=air_deg, minlength=ncomp + 1)
            for c in range(1, ncomp + 1):
                if contact[c] == 0.0:
                    air_deg[np.argmax(comp == c)] += 1.0
        matrix = (kern.laplacian + sp.diags(air_deg)).tocsc()
        return kern, matrix, splu(matrix)

    def solve(self, b: np.ndarray, solid: np.ndarray) -> SolveResult:
        """Solve the liquid-only Poisson system for the current interface."""
        m = self._metrics if self._metrics is not None else get_metrics()
        liquid = (self.driver.phi < 0.0) & ~solid
        if not liquid.any():
            return SolveResult(
                pressure=np.zeros_like(b), iterations=0, converged=True, residual_norm=0.0
            )
        closed = ~liquid  # solid + air: everything excluded from the solve
        air = closed & ~solid
        with get_tracer().span("solve/free_surface") as span:
            kern, matrix, lu = self._cache.get(
                closed, lambda: self._factorize(closed, air), m
            )
            bf = kern.gather(b)
            pf = lu.solve(bf)
            rnorm = float(np.abs(matrix @ pf - bf).max()) if kern.n else 0.0
            if span is not None:
                span.attrs["cells"] = kern.n
        return SolveResult(
            pressure=kern.scatter(pf),
            iterations=1,
            converged=bool(np.isfinite(rnorm)),
            residual_norm=rnorm,
            flops=20.0 * kern.n,
        )


class LevelSetDriver:
    """Scenario driver advancing a free-surface liquid each step.

    Per step (``apply``): advect ``phi`` with the current velocity,
    periodically redistance it, classify cells (static solids / liquid
    ``FLUID`` / air ``EMPTY``), zero velocities on faces with no liquid
    neighbour (air carries no momentum in this single-phase model), apply
    gravity to liquid faces, and enforce solid boundaries.  The density
    field doubles as the liquid-occupancy rendering.

    The driver participates in checkpoints through ``state_arrays`` /
    ``load_state_arrays`` (the simulator stores them under ``scenario/``
    keys), and wraps the job's pressure solver in a
    :class:`FreeSurfaceSolver` via ``wrap_solver``.
    """

    #: liquids run without smoke buoyancy (density is occupancy, not heat)
    config_overrides = {"buoyancy": 0.0}

    def __init__(
        self,
        phi: np.ndarray,
        base_solid: np.ndarray,
        gravity: float = 2.0,
        reinit_every: int = 4,
    ):
        self.phi = np.asarray(phi, dtype=np.float64).copy()
        self.base_solid = np.asarray(base_solid, dtype=bool).copy()
        self.gravity = float(gravity)
        self.reinit_every = int(reinit_every)
        self._applies = 0

    def classify(self, grid: MACGrid2D) -> np.ndarray:
        """Write cell flags/density from the current ``phi``; return liquid."""
        liquid = (self.phi < 0.0) & ~self.base_solid
        flags = np.where(
            self.base_solid,
            CellType.SOLID,
            np.where(liquid, CellType.FLUID, CellType.EMPTY),
        ).astype(grid.flags.dtype)
        grid.flags = flags
        grid.density = liquid.astype(np.float64)
        return liquid

    def apply(self, grid: MACGrid2D, dt: float) -> None:
        """Advance the interface one step and set up the grid for it."""
        if dt > 0.0:
            self.phi = advect_levelset(grid, self.phi, dt)
            self._applies += 1
            if self.reinit_every > 0 and self._applies % self.reinit_every == 0:
                self.phi = reinitialize(self.phi)
        liquid = self.classify(grid)
        # air carries no momentum: zero faces with no liquid neighbour
        u_liq = np.zeros((grid.ny, grid.nx + 1), dtype=bool)
        u_liq[:, :-1] |= liquid
        u_liq[:, 1:] |= liquid
        grid.u[~u_liq] = 0.0
        v_liq = np.zeros((grid.ny + 1, grid.nx), dtype=bool)
        v_liq[:-1, :] |= liquid
        v_liq[1:, :] |= liquid
        grid.v[~v_liq] = 0.0
        if dt > 0.0 and self.gravity != 0.0:
            grid.v[1:-1, :][liquid[:-1, :] | liquid[1:, :]] += dt * self.gravity
        grid.enforce_solid_boundaries()

    def wrap_solver(self, solver: PressureSolver) -> PressureSolver:
        """Replace the configured solver with the liquid-only direct solve."""
        return FreeSurfaceSolver(self, metrics=getattr(solver, "_metrics", None))

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Checkpointable driver state (stitched into simulator snapshots)."""
        return {
            "phi": self.phi.copy(),
            "applies": np.asarray(self._applies, dtype=np.int64),
        }

    def load_state_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        """Restore state saved by :meth:`state_arrays`."""
        self.phi = np.asarray(arrays["phi"], dtype=np.float64).copy()
        self._applies = int(arrays["applies"])
