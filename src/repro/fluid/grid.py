"""Staggered marker-and-cell (MAC) grid for 2-D incompressible flow.

The grid follows the classic Harlow–Welch layout used by mantaflow:

* pressure ``p`` and smoke density live at cell centres, shape ``(ny, nx)``;
* x-velocity ``u`` lives on vertical faces, shape ``(ny, nx + 1)``;
* y-velocity ``v`` lives on horizontal faces, shape ``(ny + 1, nx)``.

Arrays are indexed ``[y, x]`` (row = y). Cell ``(j, i)`` spans the square
``[i*dx, (i+1)*dx] x [j*dx, (j+1)*dx]`` in world space.

Cell flags mark each cell as fluid or solid.  The domain border is always a
solid wall (the paper generates "occupancy grids with the border wall").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CellType", "MACGrid2D"]


class CellType:
    """Cell flag values (subset of mantaflow's FlagGrid)."""

    EMPTY = 0
    FLUID = 1
    SOLID = 2


@dataclass
class MACGrid2D:
    """A 2-D MAC grid holding velocity, pressure, density and cell flags.

    Parameters
    ----------
    nx, ny:
        Number of cells along x and y.
    dx:
        Cell size in world units.  Defaults to ``1.0 / nx`` so the domain
        width is 1 regardless of resolution (matching mantaflow's convention
        of resolution-independent physics).
    """

    nx: int
    ny: int
    dx: float = 0.0
    u: np.ndarray = field(init=False, repr=False)
    v: np.ndarray = field(init=False, repr=False)
    pressure: np.ndarray = field(init=False, repr=False)
    density: np.ndarray = field(init=False, repr=False)
    flags: np.ndarray = field(init=False, repr=False)
    #: optional cell-centred prescribed solid velocity (moving obstacles);
    #: ``None`` means every solid is at rest (the historical behaviour)
    solid_u: np.ndarray | None = field(init=False, repr=False, default=None)
    solid_v: np.ndarray | None = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if self.nx < 3 or self.ny < 3:
            raise ValueError("grid must be at least 3x3 to hold a border wall")
        if self.dx <= 0.0:
            self.dx = 1.0 / float(self.nx)
        self.u = np.zeros((self.ny, self.nx + 1), dtype=np.float64)
        self.v = np.zeros((self.ny + 1, self.nx), dtype=np.float64)
        self.pressure = np.zeros((self.ny, self.nx), dtype=np.float64)
        self.density = np.zeros((self.ny, self.nx), dtype=np.float64)
        self.flags = np.full((self.ny, self.nx), CellType.FLUID, dtype=np.uint8)
        self.set_border_wall()

    # ------------------------------------------------------------------
    # flags
    # ------------------------------------------------------------------
    def set_border_wall(self, thickness: int = 1) -> None:
        """Mark a solid wall of ``thickness`` cells around the domain."""
        t = thickness
        self.flags[:t, :] = CellType.SOLID
        self.flags[-t:, :] = CellType.SOLID
        self.flags[:, :t] = CellType.SOLID
        self.flags[:, -t:] = CellType.SOLID

    def add_solid(self, mask: np.ndarray) -> None:
        """Mark cells where ``mask`` is True as solid obstacles."""
        if mask.shape != self.flags.shape:
            raise ValueError(f"mask shape {mask.shape} != grid shape {self.flags.shape}")
        self.flags[mask] = CellType.SOLID

    @property
    def solid(self) -> np.ndarray:
        """Boolean mask of solid cells."""
        return self.flags == CellType.SOLID

    @property
    def fluid(self) -> np.ndarray:
        """Boolean mask of fluid cells."""
        return self.flags == CellType.FLUID

    @property
    def shape(self) -> tuple[int, int]:
        """Cell-centred field shape ``(ny, nx)``."""
        return (self.ny, self.nx)

    def geometry_field(self) -> np.ndarray:
        """Return the occupancy (geometry) field: 1.0 in solid cells.

        This is the ``g`` input channel of the approximation networks.
        """
        return self.solid.astype(np.float64)

    # ------------------------------------------------------------------
    # boundary conditions
    # ------------------------------------------------------------------
    def set_solid_velocity(self, solid_u: np.ndarray, solid_v: np.ndarray) -> None:
        """Prescribe a cell-centred velocity for (moving) solid cells.

        The arrays have the cell-centred shape; values outside solid cells
        are ignored.  Once set, :meth:`enforce_solid_boundaries` imposes
        these values on solid-adjacent faces instead of zero, so the
        projection sees the obstacle's motion as a normal-velocity boundary
        condition.  Call :meth:`clear_solid_velocity` to return to the
        resting-solid behaviour.
        """
        if solid_u.shape != self.shape or solid_v.shape != self.shape:
            raise ValueError(
                f"solid velocity shape {solid_u.shape}/{solid_v.shape} != grid shape {self.shape}"
            )
        self.solid_u = np.asarray(solid_u, dtype=np.float64)
        self.solid_v = np.asarray(solid_v, dtype=np.float64)

    def clear_solid_velocity(self) -> None:
        """Drop prescribed solid velocities (all solids return to rest)."""
        self.solid_u = None
        self.solid_v = None

    def enforce_solid_boundaries(self) -> None:
        """Impose the normal velocity on every face adjacent to a solid cell.

        Resting solids (the default) zero the normal component — the
        free-slip solid boundary condition: fluid may slide along a wall
        but not flow through it.  When a prescribed solid velocity is set
        (:meth:`set_solid_velocity`), solid-adjacent interior faces take
        the solid's velocity instead, so moving obstacles push fluid.  The
        domain border always stays a closed wall.
        """
        solid = self.solid
        # u face (j, i) sits between cells (j, i-1) and (j, i).
        u_adj = solid[:, :-1] | solid[:, 1:]
        if self.solid_u is None:
            self.u[:, 1:-1][u_adj] = 0.0
        else:
            su = self.solid_u
            face_su = np.where(solid[:, :-1], su[:, :-1], su[:, 1:])
            self.u[:, 1:-1] = np.where(u_adj, face_su, self.u[:, 1:-1])
        self.u[:, 0] = 0.0
        self.u[:, -1] = 0.0
        # v face (j, i) sits between cells (j-1, i) and (j, i).
        v_adj = solid[:-1, :] | solid[1:, :]
        if self.solid_v is None:
            self.v[1:-1, :][v_adj] = 0.0
        else:
            sv = self.solid_v
            face_sv = np.where(solid[:-1, :], sv[:-1, :], sv[1:, :])
            self.v[1:-1, :] = np.where(v_adj, face_sv, self.v[1:-1, :])
        self.v[0, :] = 0.0
        self.v[-1, :] = 0.0

    # ------------------------------------------------------------------
    # sampling (bilinear interpolation at world-space points)
    # ------------------------------------------------------------------
    def _bilerp(self, f: np.ndarray, gx: np.ndarray, gy: np.ndarray) -> np.ndarray:
        """Bilinearly sample array ``f`` at fractional grid coords (gx, gy)."""
        ny, nx = f.shape
        gx = np.clip(gx, 0.0, nx - 1.0)
        gy = np.clip(gy, 0.0, ny - 1.0)
        x0 = gx.astype(np.int64)
        y0 = gy.astype(np.int64)
        x1 = np.minimum(x0 + 1, nx - 1)
        y1 = np.minimum(y0 + 1, ny - 1)
        tx = gx - x0
        ty = gy - y0
        return (
            f[y0, x0] * (1 - tx) * (1 - ty)
            + f[y0, x1] * tx * (1 - ty)
            + f[y1, x0] * (1 - tx) * ty
            + f[y1, x1] * tx * ty
        )

    def sample_u(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Sample x-velocity at world points.  u[j,i] sits at (i*dx, (j+.5)*dx)."""
        return self._bilerp(self.u, x / self.dx, y / self.dx - 0.5)

    def sample_v(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Sample y-velocity at world points.  v[j,i] sits at ((i+.5)*dx, j*dx)."""
        return self._bilerp(self.v, x / self.dx - 0.5, y / self.dx)

    def sample_center(self, f: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Sample a cell-centred field at world points."""
        return self._bilerp(f, x / self.dx - 0.5, y / self.dx - 0.5)

    def velocity_at(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Full velocity vector sampled at world points."""
        return self.sample_u(x, y), self.sample_v(x, y)

    # ------------------------------------------------------------------
    # derived positions
    # ------------------------------------------------------------------
    def cell_centers(self) -> tuple[np.ndarray, np.ndarray]:
        """World coordinates of all cell centres, as two (ny, nx) arrays."""
        ys, xs = np.mgrid[0 : self.ny, 0 : self.nx]
        return (xs + 0.5) * self.dx, (ys + 0.5) * self.dx

    def u_positions(self) -> tuple[np.ndarray, np.ndarray]:
        """World coordinates of u-faces, as two (ny, nx+1) arrays."""
        ys, xs = np.mgrid[0 : self.ny, 0 : self.nx + 1]
        return xs * self.dx, (ys + 0.5) * self.dx

    def v_positions(self) -> tuple[np.ndarray, np.ndarray]:
        """World coordinates of v-faces, as two (ny+1, nx) arrays."""
        ys, xs = np.mgrid[0 : self.ny + 1, 0 : self.nx]
        return (xs + 0.5) * self.dx, ys * self.dx

    def velocity_at_centers(self) -> tuple[np.ndarray, np.ndarray]:
        """Velocity averaged to cell centres (two (ny, nx) arrays)."""
        uc = 0.5 * (self.u[:, :-1] + self.u[:, 1:])
        vc = 0.5 * (self.v[:-1, :] + self.v[1:, :])
        return uc, vc

    def max_speed(self) -> float:
        """Maximum velocity magnitude estimate (for CFL time steps)."""
        uc, vc = self.velocity_at_centers()
        return float(np.sqrt(uc**2 + vc**2).max())

    def copy(self) -> "MACGrid2D":
        """Deep copy of the grid and all its fields."""
        g = MACGrid2D(self.nx, self.ny, self.dx)
        g.u = self.u.copy()
        g.v = self.v.copy()
        g.pressure = self.pressure.copy()
        g.density = self.density.copy()
        g.flags = self.flags.copy()
        if self.solid_u is not None:
            g.solid_u = self.solid_u.copy()
        if self.solid_v is not None:
            g.solid_v = self.solid_v.copy()
        return g
