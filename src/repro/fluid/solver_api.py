"""The pressure-solver API: result type, abstract base class, geometry cache.

Historically the package used an implicit duck-typed solver interface ("any
object with ``solve`` and ``name``").  This module makes it explicit:

* :class:`SolveResult` — the uniform outcome record of every solve (moved
  here from :mod:`repro.fluid.pcg`, which still re-exports it);
* :class:`PressureSolver` — the abstract base class every solver subclasses:
  ``solve(b, solid) -> SolveResult``, a ``name`` identifier, and a
  ``reset()`` lifecycle hook that drops any per-geometry caches or
  workspace buffers;
* :class:`MaskKeyedCache` — a single-entry cache keyed on the solid mask,
  used by the concrete solvers for expensive per-geometry artefacts
  (MIC(0) factorisation + wavefront schedule, multigrid hierarchy,
  Jacobi diagonal) with hit/miss counters reported to :mod:`repro.metrics`.

``isinstance(obj, PressureSolver)`` also accepts structural conformance
(``solve``/``name``/``reset`` present) so lightweight wrappers — recording
and harvesting solvers, test doubles — keep working without subclassing.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.metrics import MetricsRegistry, get_metrics

__all__ = ["SolveResult", "PressureSolver", "MaskKeyedCache"]


@dataclass
class SolveResult:
    """Outcome of a pressure solve."""

    pressure: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    flops: float = 0.0
    residual_history: list[float] = field(default_factory=list)


class MaskKeyedCache:
    """Single-entry cache for per-geometry artefacts, keyed on a solid mask.

    Pressure solves within one simulation share a geometry step after step,
    so a one-deep cache captures virtually all reuse while staying O(1) in
    memory.  Hits and misses are counted as ``cache/<name>/hit|miss`` in the
    supplied metrics registry.
    """

    def __init__(self, name: str):
        self.name = name
        self._key: tuple | None = None
        self._value: Any = None

    @staticmethod
    def key_of(solid: np.ndarray) -> tuple:
        """Cache key of a solid mask (shape + raw bytes)."""
        return (solid.shape, solid.tobytes())

    def get(
        self,
        solid: np.ndarray,
        build: Callable[[], Any],
        metrics: MetricsRegistry | None = None,
    ) -> Any:
        """Return the cached artefact for ``solid``, building it on miss."""
        m = metrics if metrics is not None else get_metrics()
        key = self.key_of(solid)
        if self._key != key:
            m.inc(f"cache/{self.name}/miss")
            self._value = build()
            self._key = key
        else:
            m.inc(f"cache/{self.name}/hit")
        return self._value

    def clear(self) -> None:
        """Drop the cached entry."""
        self._key = None
        self._value = None


class PressureSolver(abc.ABC):
    """Abstract base class of every pressure solver in the package.

    Subclasses must provide :meth:`solve` and set :attr:`name`; solvers
    holding per-geometry caches or workspace buffers additionally override
    :meth:`reset` (the base implementation is a no-op).
    """

    #: short identifier used in diagnostics, metrics and reports
    name: str = ""

    @abc.abstractmethod
    def solve(self, b: np.ndarray, solid: np.ndarray) -> SolveResult:
        """Solve ``A p = b`` over fluid cells of the given solid mask."""

    def reset(self) -> None:
        """Drop cached per-geometry state and workspace buffers."""

    @classmethod
    def __subclasshook__(cls, subclass):
        if cls is PressureSolver:
            if all(hasattr(subclass, attr) for attr in ("solve", "name", "reset")):
                return True
        return NotImplemented
