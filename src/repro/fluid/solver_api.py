"""The pressure-solver API: result type, abstract base class, geometry cache.

Historically the package used an implicit duck-typed solver interface ("any
object with ``solve`` and ``name``").  This module makes it explicit:

* :class:`SolveResult` — the uniform outcome record of every solve (moved
  here from :mod:`repro.fluid.pcg`, which still re-exports it);
* :class:`PressureSolver` — the abstract base class every solver subclasses:
  ``solve(b, solid) -> SolveResult``, a ``name`` identifier, and a
  ``reset()`` lifecycle hook that drops any per-geometry caches or
  workspace buffers;
* :class:`MaskKeyedCache` — a single-entry cache keyed on the solid mask,
  used by the concrete solvers for expensive per-geometry artefacts
  (MIC(0) factorisation + wavefront schedule, multigrid hierarchy,
  Jacobi diagonal) with hit/miss counters reported to :mod:`repro.metrics`.

``isinstance(obj, PressureSolver)`` also accepts structural conformance
(``solve``/``name``/``reset`` present) so lightweight wrappers — recording
and harvesting solvers, test doubles — keep working without subclassing.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.metrics import MetricsRegistry, get_metrics

__all__ = ["SolveResult", "PressureSolver", "MaskKeyedCache"]


@dataclass
class SolveResult:
    """Outcome of a pressure solve."""

    pressure: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    flops: float = 0.0
    residual_history: list[float] = field(default_factory=list)


class MaskKeyedCache:
    """Bounded cache for per-geometry artefacts, keyed on a solid mask.

    Pressure solves within one simulation share a geometry step after step,
    so the default one-deep cache captures virtually all reuse while staying
    O(1) in memory.  Callers that interleave several geometries — e.g. the
    batched NN solver serving a whole farm — pass ``capacity > 1`` for an
    LRU-evicting multi-entry cache.  Hits and misses are counted as
    ``cache/<name>/hit|miss`` in the supplied metrics registry.

    ``_key``/``_value`` always reflect the most recently *used* entry (kept
    for capacity-1 back-compat: tests and diagnostics peek at them).
    """

    def __init__(self, name: str, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._entries: dict[tuple, Any] = {}
        self._key: tuple | None = None
        self._value: Any = None

    @staticmethod
    def key_of(solid: np.ndarray) -> tuple:
        """Cache key of a solid mask (shape + raw bytes)."""
        return (solid.shape, solid.tobytes())

    def get(
        self,
        solid: np.ndarray,
        build: Callable[[], Any],
        metrics: MetricsRegistry | None = None,
    ) -> Any:
        """Return the cached artefact for ``solid``, building it on miss."""
        m = metrics if metrics is not None else get_metrics()
        key = self.key_of(solid)
        if key in self._entries:
            m.inc(f"cache/{self.name}/hit")
            value = self._entries.pop(key)  # re-insert: most recently used
        else:
            m.inc(f"cache/{self.name}/miss")
            value = build()
            while len(self._entries) >= self.capacity:
                self._entries.pop(next(iter(self._entries)))
        self._entries[key] = value
        self._key = key
        self._value = value
        return value

    def clear(self) -> None:
        """Drop all cached entries."""
        self._entries.clear()
        self._key = None
        self._value = None


class PressureSolver(abc.ABC):
    """Abstract base class of every pressure solver in the package.

    Subclasses must provide :meth:`solve` and set :attr:`name`; solvers
    holding per-geometry caches or workspace buffers additionally override
    :meth:`reset` (the base implementation is a no-op).
    """

    #: short identifier used in diagnostics, metrics and reports
    name: str = ""

    @abc.abstractmethod
    def solve(self, b: np.ndarray, solid: np.ndarray) -> SolveResult:
        """Solve ``A p = b`` over fluid cells of the given solid mask."""

    def reset(self) -> None:
        """Drop cached per-geometry state and workspace buffers."""

    @classmethod
    def __subclasshook__(cls, subclass):
        if cls is PressureSolver:
            if all(hasattr(subclass, attr) for attr in ("solve", "name", "reset")):
                return True
        return NotImplemented
