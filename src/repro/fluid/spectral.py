"""Direct spectral pressure solve for obstacle-free closed boxes.

On a closed box (one-cell border wall, all-fluid interior) the 5-point
Poisson operator with Neumann walls is diagonalised by the type-II discrete
cosine transform: the 1-D cell-centred Neumann Laplacian has eigenvectors
``cos(pi k (i + 1/2) / m)`` with eigenvalues ``2 - 2 cos(pi k / m)``, and the
2-D operator is their Kronecker sum.  That turns the pressure solve into

    ``p = IDCT( DCT(b) / lambda )``

— an exact direct solve in O(N log N), no iteration, no preconditioner.
Smoke-plume scenarios without obstacles (`InputProblem(with_obstacles=False)`)
are exactly this geometry class.

:class:`SpectralSolver` conforms to the
:class:`~repro.fluid.solver_api.PressureSolver` protocol and auto-falls back
to a configurable iterative solver (PCG by default) whenever the mask has
interior solids, so it is safe to select unconditionally: eligible steps get
the direct solve, the rest get the exact baseline.  The reported residual is
measured honestly through the geometry kernels' CSR operator, not assumed
zero.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn, idctn

from repro.metrics import MetricsRegistry, get_metrics

from .kernels import GeometryKernels, spectral_eligible
from .laplacian import remove_nullspace
from .pcg import PCGSolver
from .solver_api import MaskKeyedCache, PressureSolver, SolveResult

__all__ = ["SpectralSolver"]


class _SpectralPlan:
    """Per-geometry DCT eigenvalue grid for the interior Neumann Laplacian."""

    def __init__(self, solid: np.ndarray):
        m = solid.shape[0] - 2
        n = solid.shape[1] - 2
        ly = 2.0 - 2.0 * np.cos(np.pi * np.arange(m) / m)
        lx = 2.0 - 2.0 * np.cos(np.pi * np.arange(n) / n)
        lam = ly[:, None] + lx[None, :]
        lam[0, 0] = 1.0  # null mode; its coefficient is zeroed explicitly
        self.lam = lam


class SpectralSolver(PressureSolver):
    """O(N log N) DCT direct solver for obstacle-free closed boxes.

    Parameters
    ----------
    tol:
        Relative residual tolerance used only to *report* convergence (the
        solve itself is direct); also forwarded to the default fallback.
    fallback:
        Solver used when the geometry is not spectral-eligible (interior
        solids / missing wall).  Defaults to ``PCGSolver(tol=tol)``.
    metrics:
        Registry receiving counters/timers; defaults to the process-wide
        registry.  Fallback dispatches are counted as
        ``solver/spectral/fallbacks``.
    """

    name = "spectral"

    def __init__(
        self,
        tol: float = 1e-5,
        fallback: PressureSolver | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.tol = tol
        self._metrics = metrics
        self.fallback = (
            fallback if fallback is not None else PCGSolver(tol=tol, metrics=metrics)
        )
        self._plan_cache = MaskKeyedCache("spectral_plan")
        self._kernels_cache = MaskKeyedCache("kernels")

    def reset(self) -> None:
        """Drop the cached DCT plan and kernels; reset the fallback too."""
        self._plan_cache.clear()
        self._kernels_cache.clear()
        self.fallback.reset()

    def solve(self, b: np.ndarray, solid: np.ndarray) -> SolveResult:
        """Direct-solve eligible geometries; delegate the rest to fallback."""
        metrics = self._metrics if self._metrics is not None else get_metrics()
        if not spectral_eligible(solid):
            metrics.inc(f"solver/{self.name}/fallbacks")
            return self.fallback.solve(b, solid)
        with metrics.timer(f"solver/{self.name}/solve"):
            result = self._solve(b, solid, metrics)
        metrics.inc(f"solver/{self.name}/solves")
        metrics.inc(f"solver/{self.name}/iterations", result.iterations)
        return result

    def _solve(self, b: np.ndarray, solid: np.ndarray, metrics: MetricsRegistry) -> SolveResult:
        plan: _SpectralPlan = self._plan_cache.get(
            solid, lambda: _SpectralPlan(solid), metrics
        )
        kern: GeometryKernels = self._kernels_cache.get(
            solid, lambda: GeometryKernels(solid), metrics
        )

        b = remove_nullspace(b, solid)
        bf = kern.gather(b)
        bnorm = float(np.abs(bf).max()) if kern.n else 0.0
        if bnorm < 1e-300:
            return SolveResult(np.zeros_like(b), 0, True, 0.0, 0.0, [bnorm])

        bhat = dctn(b[1:-1, 1:-1], type=2, norm="ortho")
        bhat[0, 0] = 0.0  # pin the constant (null) mode
        interior = idctn(bhat / plan.lam, type=2, norm="ortho")
        p = np.zeros_like(b)
        p[1:-1, 1:-1] = interior
        p = remove_nullspace(p, solid)

        residual = bf - kern.matvec(kern.gather(p))
        rnorm = float(np.abs(residual).max())
        converged = rnorm <= self.tol * bnorm
        ntot = float(kern.n)
        # two 2-D DCTs at ~5 N log2 N flops each, plus the eigenvalue scale
        flops = 10.0 * ntot * np.log2(max(ntot, 2.0)) + ntot
        return SolveResult(p, 1, converged, rnorm, flops, [bnorm, rnorm])
