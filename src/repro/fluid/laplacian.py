"""Assembly of the 5-point pressure Poisson system.

We solve ``A p = b`` where, for each fluid cell ``c``,

    (A p)_c = deg(c) * p_c - sum_{n in fluid_neighbours(c)} p_n
    b_c     = -(rho * dx^2 / dt) * div_c

``deg(c)`` is the number of non-solid neighbours, which bakes the Neumann
condition at solid walls into the operator.  ``A`` is symmetric positive
semi-definite; with a closed domain (border wall) it has the constant vector
in its null space, so solvers pin the mean of the solution to zero.

Two representations are provided:

* :class:`PoissonSystem` — scipy CSR matrix over fluid cells only, plus the
  index maps to scatter solutions back onto the grid.  Used by reference
  solvers and tests.
* grid-shaped stencil arrays ``(adiag, aplusx, aplusy)`` — used by the
  matrix-free PCG with the MIC(0) preconditioner and by multigrid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.ndimage import label

from .solver_api import MaskKeyedCache

__all__ = [
    "PoissonSystem",
    "build_poisson_system",
    "stencil_arrays",
    "poisson_rhs",
    "fluid_components",
    "remove_nullspace",
]

_components_cache = MaskKeyedCache("fluid_components")


def fluid_components(solid: np.ndarray) -> tuple[np.ndarray, int]:
    """Connected fluid components of a mask: ``(labels, count)``.

    Labelling depends only on the geometry, so the result is cached per
    solid mask — ``remove_nullspace`` runs on every solve's right-hand side
    and solution, making this a hot path.
    """

    return _components_cache.get(solid, lambda: label(~solid))


def remove_nullspace(field: np.ndarray, solid: np.ndarray) -> np.ndarray:
    """Remove the per-component constant mode of a fluid field.

    With closed (Neumann) boundaries the Poisson operator has one constant
    null vector *per connected fluid component*.  Obstacles can split the
    domain into several components, so compatibility projection (of the
    right-hand side) and mean-centring (of the solution) must happen per
    component — a single global mean leaves the system inconsistent and CG
    diverges.  Returns a new array, zero on solids.
    """
    fluid = ~solid
    out = np.where(fluid, field, 0.0)
    labels, n = fluid_components(solid)
    if n:
        flat = labels.ravel()
        sums = np.bincount(flat, weights=out.ravel(), minlength=n + 1)
        counts = np.bincount(flat, minlength=n + 1)
        means = sums / np.maximum(counts, 1)
        means[0] = 0.0  # label 0 is the solid background
        out -= means[labels]
    return out


@dataclass
class PoissonSystem:
    """Sparse Poisson system restricted to fluid cells.

    Attributes
    ----------
    matrix:
        CSR matrix of shape (n_fluid, n_fluid).
    fluid_index:
        (ny, nx) int array mapping a fluid cell to its row; -1 for solids.
    fluid_cells:
        (n_fluid, 2) array of (y, x) coordinates, row order.
    """

    matrix: sp.csr_matrix
    fluid_index: np.ndarray
    fluid_cells: np.ndarray

    @property
    def n(self) -> int:
        """Number of unknowns (fluid cells)."""
        return self.matrix.shape[0]

    def flatten(self, field: np.ndarray) -> np.ndarray:
        """Gather a grid field into the fluid-cell vector ordering."""
        return field[self.fluid_cells[:, 0], self.fluid_cells[:, 1]]

    def unflatten(self, vec: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
        """Scatter a fluid-cell vector back to a dense grid (solids = 0)."""
        out = np.zeros(shape, dtype=vec.dtype)
        out[self.fluid_cells[:, 0], self.fluid_cells[:, 1]] = vec
        return out


def build_poisson_system(solid: np.ndarray) -> PoissonSystem:
    """Assemble the CSR Poisson matrix for the given solid mask."""
    ny, nx = solid.shape
    fluid = ~solid
    fluid_index = -np.ones((ny, nx), dtype=np.int64)
    ys, xs = np.nonzero(fluid)
    fluid_index[ys, xs] = np.arange(ys.size)
    fluid_cells = np.stack([ys, xs], axis=1)

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []

    deg = np.zeros((ny, nx), dtype=np.float64)
    for dy, dx_ in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        ny2 = np.clip(ys + dy, 0, ny - 1)
        nx2 = np.clip(xs + dx_, 0, nx - 1)
        inside = (ys + dy >= 0) & (ys + dy < ny) & (xs + dx_ >= 0) & (xs + dx_ < nx)
        nb_fluid = inside & fluid[ny2, nx2]
        deg[ys, xs] += nb_fluid  # all non-solid cells are fluid here
        r = fluid_index[ys[nb_fluid], xs[nb_fluid]]
        c = fluid_index[ny2[nb_fluid], nx2[nb_fluid]]
        rows.append(r)
        cols.append(c)
        vals.append(-np.ones(r.size))

    n = ys.size
    rows.append(np.arange(n))
    cols.append(np.arange(n))
    vals.append(deg[ys, xs])

    matrix = sp.csr_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n),
    )
    return PoissonSystem(matrix=matrix, fluid_index=fluid_index, fluid_cells=fluid_cells)


def stencil_arrays(solid: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Grid-shaped stencil coefficients (adiag, aplusx, aplusy).

    ``aplusx[j, i]`` is the coupling between cells (j, i) and (j, i+1); it is
    -1 when both are fluid and 0 otherwise (mirroring Bridson's Aplusi /
    Aplusj arrays, up to sign).  ``adiag`` is the neighbour degree on fluid
    cells and 0 on solids.
    """
    fluid = ~solid
    ny, nx = solid.shape
    aplusx = np.zeros((ny, nx))
    aplusy = np.zeros((ny, nx))
    aplusx[:, :-1] = -(fluid[:, :-1] & fluid[:, 1:]).astype(np.float64)
    aplusy[:-1, :] = -(fluid[:-1, :] & fluid[1:, :]).astype(np.float64)

    deg = np.zeros((ny, nx))
    deg[:, 1:] += fluid[:, :-1]
    deg[:, :-1] += fluid[:, 1:]
    deg[1:, :] += fluid[:-1, :]
    deg[:-1, :] += fluid[1:, :]
    adiag = np.where(fluid, deg, 0.0)
    return adiag, aplusx, aplusy


def poisson_rhs(div: np.ndarray, solid: np.ndarray, dt: float, rho: float, dx: float) -> np.ndarray:
    """Right-hand side ``b = -(rho * dx^2 / dt) * div`` (zero on solids)."""
    b = -(rho * dx * dx / dt) * div
    b = b.copy()
    b[solid] = 0.0
    return b
