"""Per-geometry compiled solver kernels.

The matrix-free PCG path (:mod:`repro.fluid.pcg`) is dominated by Python-level
overhead: ``apply_laplacian`` allocates ~10 full-grid temporaries per call and
recomputes the neighbour-degree field every time, the MIC(0) wavefront sweeps
issue ~2·(H+W) tiny NumPy calls per preconditioner application, and every CG
iteration pays repeated ``r[fluid]`` boolean fancy-indexing allocations.

:class:`GeometryKernels` compiles, once per solid mask, everything that
depends only on the geometry:

* the flat fluid-cell ordering (row-major, identical to ``field[fluid]``),
  with ``gather``/``scatter`` maps between grid fields and flat vectors;
* the cached neighbour-degree field (shared with ``apply_laplacian``);
* a fluid-only CSR Laplacian whose matvec is bit-for-bit identical to
  ``apply_laplacian`` (same per-row accumulation order: down, up, right,
  left, diagonal);
* lazily, the MIC(0) factor as sparse unit-diagonal triangular matrices
  (:class:`MICTriangularFactor`) whose solves run inside SuperLU — one C
  call per sweep instead of one Python call per anti-diagonal.

Bit-for-bit equivalence with the reference path is a design requirement, not
an accident: CSR matvec accumulates each row's products in storage order
starting from 0.0, and SuperLU's triangular solves subtract each row's
contributions sequentially in ascending column order — both exactly mirror
the grid-level recurrences, so ``PCGSolver(backend="kernel")`` produces the
same iterates, residual history and pressure as ``backend="reference"``.

:func:`spectral_eligible` classifies masks that are a pure closed box (border
wall, no interior solids), the geometry class the DCT-based
:class:`~repro.fluid.spectral.SpectralSolver` can solve directly.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from repro.trace import get_tracer

from .laplacian import stencil_arrays

try:  # pragma: no cover - exercised via the fallback test
    from scipy.sparse.linalg._dsolve import _superlu
except ImportError:  # pragma: no cover
    _superlu = None

__all__ = ["GeometryKernels", "MICTriangularFactor", "spectral_eligible"]


def spectral_eligible(solid: np.ndarray) -> bool:
    """True iff the mask is a closed box: one-cell border wall, fluid interior.

    This is the geometry class the DCT spectral solver handles exactly; any
    interior obstacle (or missing wall) requires the general PCG machinery.
    """
    ny, nx = solid.shape
    if ny < 3 or nx < 3:
        return False
    border = (
        bool(solid[0, :].all())
        and bool(solid[-1, :].all())
        and bool(solid[:, 0].all())
        and bool(solid[:, -1].all())
    )
    return border and not bool(solid[1:-1, 1:-1].any())


def _intc(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.intc)


class GeometryKernels:
    """Geometry-compiled artefacts for flat fluid-cell solver loops.

    Attributes
    ----------
    n:
        Number of fluid cells (flat vector length).
    ys, xs:
        Row-major fluid-cell coordinates; ``gather``/``scatter`` use them, so
        flat ordering matches boolean extraction ``field[~solid]`` exactly.
    fluid_index:
        (ny, nx) int map from cell to flat index; -1 on solids.
    degree:
        Grid-shaped non-solid-neighbour count (0 on solids) — the geometry
        term ``apply_laplacian`` otherwise recomputes every call.
    laplacian:
        (n, n) CSR matrix of the 5-point Poisson operator over fluid cells.
    """

    def __init__(self, solid: np.ndarray):
        with get_tracer().span("kernels/build") as sp:
            self._build(solid)
            if sp is not None:
                sp.attrs["cells"] = self.n

    def _build(self, solid: np.ndarray) -> None:
        self.solid = np.ascontiguousarray(solid, dtype=bool)
        self.shape = self.solid.shape
        fluid = ~self.solid
        self.degree, self.aplusx, self.aplusy = stencil_arrays(self.solid)
        ys, xs = np.nonzero(fluid)
        self.ys, self.xs = ys, xs
        self.n = int(ys.size)
        ny, nx = self.shape
        self.fluid_index = np.full((ny, nx), -1, dtype=np.int64)
        self.fluid_index[ys, xs] = np.arange(self.n)

        # padded index map: out-of-domain neighbours resolve to -1 like solids
        fi = np.full((ny + 2, nx + 2), -1, dtype=np.int64)
        fi[1:-1, 1:-1] = self.fluid_index
        down = fi[ys + 2, xs + 1]  # (y+1, x)
        up = fi[ys, xs + 1]  # (y-1, x)
        right = fi[ys + 1, xs + 2]  # (y, x+1)
        left = fi[ys + 1, xs]  # (y, x-1)
        diag = np.arange(self.n, dtype=np.int64)

        # Per-row entry order mirrors apply_laplacian's accumulation order
        # (down, up, right, left, then the diagonal term); CSR matvec sums in
        # storage order, which makes A @ v bitwise equal to the dense path.
        cols = np.stack([down, up, right, left, diag], axis=1)
        vals = np.empty((self.n, 5), dtype=np.float64)
        vals[:, :4] = -1.0
        vals[:, 4] = self.degree[ys, xs]
        keep = cols >= 0
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(keep.sum(axis=1), out=indptr[1:])
        self.laplacian = sp.csr_matrix(
            (vals[keep], cols[keep], indptr), shape=(self.n, self.n)
        )

        self._inv_degree: np.ndarray | None = None
        self._mic_factor: MICTriangularFactor | None = None
        self._mic_factor_src: object | None = None

    def gather(self, field: np.ndarray) -> np.ndarray:
        """Grid field -> flat fluid vector (row-major, == ``field[fluid]``)."""
        return field[self.ys, self.xs]

    def scatter(self, vec: np.ndarray, dtype=np.float64) -> np.ndarray:
        """Flat fluid vector -> dense grid with zeros on solids."""
        out = np.zeros(self.shape, dtype=dtype)
        out[self.ys, self.xs] = vec
        return out

    def matvec(self, v: np.ndarray) -> np.ndarray:
        """``A @ v`` on flat fluid vectors (bitwise == ``apply_laplacian``)."""
        return self.laplacian @ v

    @property
    def inv_degree(self) -> np.ndarray:
        """Flat inverse stencil diagonal (Jacobi preconditioner/sweep term)."""
        if self._inv_degree is None:
            deg = self.degree[self.ys, self.xs]
            self._inv_degree = np.where(deg > 0, 1.0 / np.maximum(deg, 1e-30), 0.0)
        return self._inv_degree

    def mic_factor(self, mic) -> "MICTriangularFactor":
        """Sparse triangular factor of a :class:`MIC0Preconditioner`, memoised.

        One factor per preconditioner instance: the kernels object is already
        per-geometry, and so is the cached preconditioner, so this is a
        single-slot memo that rebuilds only if a different ``mic`` arrives
        (e.g. different tuning constants).
        """
        if self._mic_factor is None or self._mic_factor_src is not mic:
            self._mic_factor = MICTriangularFactor(self, mic)
            self._mic_factor_src = mic
        return self._mic_factor


class MICTriangularFactor:
    """MIC(0) preconditioner as sparse unit-diagonal triangular solves.

    Rewrites ``z = M^{-1} r`` as

        ``L t = r``  (unit lower),  ``q = t * precon``,
        ``U s = q``  (unit upper),  ``z = s * precon``,

    using the coefficient grids precomputed by
    :class:`~repro.fluid.pcg.MIC0Preconditioner` (``_cl``/``_cb`` scale the
    left/below couplings of the forward sweep, ``_cr``/``_ca`` the
    right/above couplings of the backward sweep).  Both factors carry their
    off-diagonal entries in ascending column order — below then left, right
    then above — which is exactly the order the grid-level wavefront
    recurrence subtracts them in, so SuperLU's solves are bit-for-bit equal
    to :meth:`MIC0Preconditioner.apply`.

    The hot path calls ``_superlu.gstrs`` directly with prebuilt CSC buffers
    (the public :func:`~scipy.sparse.linalg.spsolve_triangular` wrapper pays
    a copy + ``setdiag`` + empty-matrix construction per call); when the
    private SuperLU module is unavailable the wrapper is used instead, and
    the two paths return identical bits.
    """

    def __init__(self, kern: GeometryKernels, mic):
        ys, xs, n = kern.ys, kern.xs, kern.n
        self.n = n
        self.precon_flat = mic.precon[ys, xs]

        ny, nx = kern.shape
        fi = np.full((ny + 2, nx + 2), -1, dtype=np.int64)
        fi[1:-1, 1:-1] = kern.fluid_index
        below = fi[ys, xs + 1]  # (y-1, x)
        left = fi[ys + 1, xs]  # (y, x-1)
        right = fi[ys + 1, xs + 2]  # (y, x+1)
        above = fi[ys + 2, xs + 1]  # (y+1, x)
        diag = np.arange(n, dtype=np.int64)
        ones = np.ones(n, dtype=np.float64)

        # forward-sweep coefficients live on the *neighbour* cell
        cb = mic._cb[ys - 1, xs] if n else np.zeros(0)
        cl = mic._cl[ys, xs - 1] if n else np.zeros(0)
        self.lower = self._assemble(
            n, [(below, cb), (left, cl), (diag, ones)]
        )
        # backward-sweep coefficients live on the cell itself
        cr = mic._cr[ys, xs] if n else np.zeros(0)
        ca = mic._ca[ys, xs] if n else np.zeros(0)
        self.upper = self._assemble(
            n, [(diag, ones), (right, cr), (above, ca)]
        )

        # prebuilt gstrs operands: lower as canonical CSC; upper's CSR
        # buffers reinterpreted as the CSC of its transpose (solved with
        # trans="T") — the exact plumbing of the scipy wrapper.
        lower_csc = sp.csc_matrix(self.lower)
        self._l_args = (
            lower_csc.nnz,
            lower_csc.data,
            _intc(lower_csc.indices),
            _intc(lower_csc.indptr),
        )
        self._u_args = (
            self.upper.nnz,
            self.upper.data,
            _intc(self.upper.indices),
            _intc(self.upper.indptr),
        )
        empty = sp.csc_matrix((n, n), dtype=np.float64)
        self._e_args = (
            0,
            empty.data,
            _intc(empty.indices),
            _intc(empty.indptr),
        )

    @staticmethod
    def _assemble(n: int, slots) -> sp.csr_matrix:
        """CSR with per-row entries in the given slot order (missing = -1)."""
        cols = np.stack([c for c, _ in slots], axis=1) if n else np.zeros((0, len(slots)), dtype=np.int64)
        vals = np.stack([v for _, v in slots], axis=1) if n else np.zeros((0, len(slots)))
        keep = cols >= 0
        indptr = np.zeros(n + 1, dtype=np.int64)
        if n:
            np.cumsum(keep.sum(axis=1), out=indptr[1:])
        return sp.csr_matrix((vals[keep], cols[keep], indptr), shape=(n, n))

    def _solve_lower(self, b: np.ndarray) -> np.ndarray:
        if _superlu is None:
            return spsolve_triangular(self.lower, b, lower=True, unit_diagonal=True)
        x, info = _superlu.gstrs(
            "N", self.n, *self._l_args, self.n, *self._e_args, b.copy()
        )
        if info:  # pragma: no cover - factor is unit-diagonal by construction
            raise RuntimeError("MIC(0) lower solve failed")
        return x

    def _solve_upper(self, b: np.ndarray) -> np.ndarray:
        if _superlu is None:
            return spsolve_triangular(self.upper, b, lower=False, unit_diagonal=True)
        x, info = _superlu.gstrs(
            "T", self.n, *self._u_args, self.n, *self._e_args, b.copy()
        )
        if info:  # pragma: no cover
            raise RuntimeError("MIC(0) upper solve failed")
        return x

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Apply the preconditioner to a flat fluid vector."""
        if self.n == 0:
            return np.zeros_like(r)
        t = self._solve_lower(r)
        q = t * self.precon_flat
        s = self._solve_upper(q)
        return s * self.precon_flat
