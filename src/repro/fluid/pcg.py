"""Preconditioned conjugate gradient with the MIC(0) preconditioner.

This is the exact solver the paper's neural networks approximate (Algorithm 1
lines 7-17): conjugate gradient on the 5-point Poisson system, preconditioned
with the Modified Incomplete Cholesky level-0 factorisation ("MICCG(0)").

Two backends share one mathematical definition:

* ``backend="kernel"`` (default) runs the CG loop on flat fluid-cell vectors
  using the per-geometry :class:`~repro.fluid.kernels.GeometryKernels`
  artifact: CSR matvec for ``A·s``, SuperLU triangular solves for the
  MIC(0) sweeps, allocation-free reductions.
* ``backend="reference"`` is the original matrix-free grid path: the
  triangular solves of the preconditioner are sequential recurrences,
  vectorised with a wavefront sweep over anti-diagonals (cells with equal
  ``x + y`` are mutually independent).

The two backends produce bit-for-bit identical ``SolveResult``s — same
iterates, same residual history, same pressure — because the kernel path's
C-level loops accumulate in exactly the order of the grid recurrences (see
:mod:`repro.fluid.kernels`); the equivalence suite asserts this.

Runtime caching: :class:`PCGSolver` keeps the MIC(0) factorisation (which
embeds the wavefront schedule) and the compiled geometry kernels in
:class:`~repro.fluid.solver_api.MaskKeyedCache`\\ s keyed on the solid mask,
so consecutive solves on the same geometry — the common case inside a
simulation — skip the setup entirely.  With ``warm_start=True`` the solver
additionally seeds CG with the previous step's pressure, which typically
saves iterations because consecutive pressure fields are strongly
correlated; it is off by default so results on identical inputs are
bit-for-bit reproducible regardless of solver history.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import MetricsRegistry, get_metrics
from repro.trace import get_tracer

from .operators import apply_laplacian
from .kernels import GeometryKernels
from .laplacian import remove_nullspace, stencil_arrays
from .solver_api import MaskKeyedCache, PressureSolver, SolveResult

__all__ = [
    "SolveResult",
    "MIC0Preconditioner",
    "PCGSolver",
    "JacobiSolver",
    "jacobi_solve",
]


def _wavefronts(mask: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
    """Index arrays of ``mask`` cells grouped by anti-diagonal x + y."""
    ys, xs = np.nonzero(mask)
    keys = ys + xs
    order = np.argsort(keys, kind="stable")
    ys, xs, keys = ys[order], xs[order], keys[order]
    fronts: list[tuple[np.ndarray, np.ndarray]] = []
    if ys.size == 0:
        return fronts
    bounds = np.nonzero(np.diff(keys))[0] + 1
    for y_blk, x_blk in zip(np.split(ys, bounds), np.split(xs, bounds)):
        fronts.append((y_blk, x_blk))
    return fronts


class MIC0Preconditioner:
    """Modified Incomplete Cholesky(0) preconditioner for the Poisson system.

    Follows Bridson's formulation (tuning constant ``tau = 0.97``, safety
    ``sigma = 0.25``).  Requires the domain border to be solid, which the
    simulator guarantees (border wall).

    Besides ``precon`` (the inverse diagonal of the factor), the constructor
    precomputes four coefficient grids that cast the two triangular sweeps as
    *unit-diagonal* recurrences on ``t = q / precon``:

        forward:   ``t_c = (r_c - cb_below · t_below) - cl_left · t_left``
        backward:  ``t_c = (q_c - cr_c · t_right) - ca_c · t_above``

    These grids are shared with the sparse
    :class:`~repro.fluid.kernels.MICTriangularFactor`, which is what makes
    the kernel backend bitwise-equal to :meth:`apply`: both subtract the
    smaller-flat-index contribution first (below before left, right before
    above), matching SuperLU's ascending-column accumulation.
    """

    def __init__(self, solid: np.ndarray, tau: float = 0.97, sigma: float = 0.25):
        if not (solid[0, :].all() and solid[-1, :].all() and solid[:, 0].all() and solid[:, -1].all()):
            raise ValueError("MIC(0) requires a solid border wall")
        self.solid = solid
        self.fluid = ~solid
        self.adiag, self.aplusx, self.aplusy = stencil_arrays(solid)
        self._fronts = _wavefronts(self.fluid)
        self.precon = self._build(tau, sigma)
        precon = self.precon
        self._cl = self.aplusx * precon * precon
        self._cb = self.aplusy * precon * precon
        self._cr = np.zeros_like(precon)
        self._cr[:, :-1] = self.aplusx[:, :-1] * precon[:, :-1] * precon[:, 1:]
        self._ca = np.zeros_like(precon)
        self._ca[:-1, :] = self.aplusy[:-1, :] * precon[:-1, :] * precon[1:, :]

    def _build(self, tau: float, sigma: float) -> np.ndarray:
        adiag, apx, apy = self.adiag, self.aplusx, self.aplusy
        precon = np.zeros_like(adiag)
        for ys, xs in self._fronts:
            left = precon[ys, xs - 1]
            below = precon[ys - 1, xs]
            apx_l = apx[ys, xs - 1]
            apy_b = apy[ys - 1, xs]
            e = (
                adiag[ys, xs]
                - (apx_l * left) ** 2
                - (apy_b * below) ** 2
                - tau
                * (
                    apx_l * self.aplusy[ys, xs - 1] * left**2
                    + apy_b * self.aplusx[ys - 1, xs] * below**2
                )
            )
            bad = e < sigma * adiag[ys, xs]
            e = np.where(bad, adiag[ys, xs], e)
            precon[ys, xs] = 1.0 / np.sqrt(np.maximum(e, 1e-30))
        return precon

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Apply the preconditioner: solve ``(L L^T) z = r`` approximately."""
        precon, cl, cb, cr, ca = self.precon, self._cl, self._cb, self._cr, self._ca
        t = np.zeros_like(r)
        for ys, xs in self._fronts:  # forward: unit-lower solve
            t[ys, xs] = (r[ys, xs] - cb[ys - 1, xs] * t[ys - 1, xs]) - cl[
                ys, xs - 1
            ] * t[ys, xs - 1]
        q = t * precon
        t = np.zeros_like(r)
        for ys, xs in reversed(self._fronts):  # backward: unit-upper solve
            t[ys, xs] = (q[ys, xs] - cr[ys, xs] * t[ys, xs + 1]) - ca[ys, xs] * t[
                ys + 1, xs
            ]
        return t * precon


class PCGSolver(PressureSolver):
    """PCG pressure solver (the paper's baseline 'PCG' method).

    Parameters
    ----------
    tol:
        Relative residual tolerance (infinity norm, relative to ``|b|``).
    max_iterations:
        Iteration cap; the solver reports non-convergence beyond it.
    preconditioner:
        ``"mic0"`` (default), ``"jacobi"`` or ``"none"``.
    warm_start:
        Seed CG with the previous solve's pressure when the geometry is
        unchanged.  Converges to the same tolerance in (typically) fewer
        iterations; off by default for history-independent results.
    metrics:
        Registry receiving solver counters/timers; defaults to the
        process-wide registry.
    backend:
        ``"kernel"`` (default) runs the flat-vector CSR/SuperLU loop;
        ``"reference"`` the original matrix-free grid loop.  Both return
        identical bits; reference exists as the independently-testable
        ground truth.
    """

    name = "pcg"

    def __init__(
        self,
        tol: float = 1e-5,
        max_iterations: int = 2000,
        preconditioner: str = "mic0",
        warm_start: bool = False,
        metrics: MetricsRegistry | None = None,
        backend: str = "kernel",
    ):
        if preconditioner not in ("mic0", "jacobi", "none"):
            raise ValueError(f"unknown preconditioner {preconditioner!r}")
        if backend not in ("kernel", "reference"):
            raise ValueError(f"unknown backend {backend!r}")
        self.tol = tol
        self.max_iterations = max_iterations
        self.preconditioner = preconditioner
        self.warm_start = warm_start
        self.backend = backend
        self._metrics = metrics
        self._mic_cache = MaskKeyedCache("mic0")
        self._jacobi_cache = MaskKeyedCache("jacobi_diag")
        self._kernels_cache = MaskKeyedCache("kernels")
        self._prev_pressure: np.ndarray | None = None
        self._prev_key: tuple | None = None

    def reset(self) -> None:
        """Drop the cached factorisation, kernels and the warm-start seed."""
        self._mic_cache.clear()
        self._jacobi_cache.clear()
        self._kernels_cache.clear()
        self._prev_pressure = None
        self._prev_key = None

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Warm-start state as checkpointable arrays (empty when cold).

        The warm-start seed is *simulation state*, not a cache: a resumed
        run whose solver lost it would seed the next solve differently and
        diverge bit-for-bit from the uninterrupted trajectory.
        :meth:`repro.fluid.FluidSimulator.save_state` persists these under
        ``solver/`` keys; geometry caches still rebuild on resume.
        """
        if self._prev_pressure is None or self._prev_key is None:
            return {}
        shape, raw = self._prev_key
        return {
            "prev_pressure": self._prev_pressure.copy(),
            "prev_solid": np.frombuffer(raw, dtype=np.bool_).reshape(shape).copy(),
        }

    def load_state_arrays(self, state: dict[str, np.ndarray]) -> None:
        """Restore the warm-start seed saved by :meth:`state_arrays`."""
        if "prev_pressure" not in state:
            return
        self._prev_pressure = np.asarray(state["prev_pressure"], dtype=np.float64).copy()
        self._prev_key = MaskKeyedCache.key_of(
            np.asarray(state["prev_solid"], dtype=np.bool_)
        )

    def _precondition(self, solid: np.ndarray, metrics: MetricsRegistry):
        if self.preconditioner == "mic0":
            mic = self._mic_cache.get(solid, lambda: MIC0Preconditioner(solid), metrics)
            return mic.apply
        if self.preconditioner == "jacobi":
            inv = self._jacobi_cache.get(
                solid, lambda: self._jacobi_inverse(solid), metrics
            )
            return lambda r: r * inv
        return lambda r: r

    @staticmethod
    def _jacobi_inverse(solid: np.ndarray) -> np.ndarray:
        adiag, _, _ = stencil_arrays(solid)
        return np.where(adiag > 0, 1.0 / np.maximum(adiag, 1e-30), 0.0)

    def solve(self, b: np.ndarray, solid: np.ndarray) -> SolveResult:
        """Solve ``A p = b`` on fluid cells; returns mean-zero pressure."""
        metrics = self._metrics if self._metrics is not None else get_metrics()
        with metrics.timer(f"solver/{self.name}/solve"), get_tracer().span(
            f"solve/{self.name}", backend=self.backend
        ) as sp:
            if self.backend == "kernel":
                result = self._solve_kernel(b, solid, metrics)
            else:
                result = self._solve_reference(b, solid, metrics)
            if sp is not None:
                sp.attrs["iterations"] = result.iterations
                sp.attrs["converged"] = result.converged
        metrics.inc(f"solver/{self.name}/solves")
        metrics.inc(f"solver/{self.name}/iterations", result.iterations)
        metrics.families.histogram(
            "solver_iterations",
            help="Iterations per pressure solve by solver.",
            labels=("solver",),
        ).observe(
            result.iterations,
            exemplar=sp.span_id if sp is not None else None,
            solver=self.name,
        )
        return result

    # kept under its historical name for callers that dispatched on it
    def _solve(self, b: np.ndarray, solid: np.ndarray, metrics: MetricsRegistry) -> SolveResult:
        return self._solve_reference(b, solid, metrics)

    def _solve_kernel(self, b: np.ndarray, solid: np.ndarray, metrics: MetricsRegistry) -> SolveResult:
        """Flat fluid-vector CG: CSR matvec + SuperLU triangular sweeps."""
        kern: GeometryKernels = self._kernels_cache.get(
            solid, lambda: GeometryKernels(solid), metrics
        )
        nf = kern.n
        if self.preconditioner == "mic0":
            mic = self._mic_cache.get(solid, lambda: MIC0Preconditioner(solid), metrics)
            apply_m = kern.mic_factor(mic).apply
        elif self.preconditioner == "jacobi":
            inv = self._jacobi_cache.get(
                solid, lambda: self._jacobi_inverse(solid), metrics
            )
            inv_flat = kern.gather(inv)
            apply_m = lambda r: r * inv_flat  # noqa: E731
        else:
            apply_m = lambda r: r  # noqa: E731

        # compatibility projection: remove the per-component null space
        b = remove_nullspace(b, solid)

        geo_key = MaskKeyedCache.key_of(solid)
        bf = kern.gather(b)
        pf = np.zeros(nf)
        rf = bf.copy()
        bnorm = float(np.abs(bf).max()) if nf else 0.0
        history = [bnorm]
        if bnorm < 1e-300:
            return SolveResult(np.zeros_like(b), 0, True, 0.0, 0.0, history)
        tol_abs = self.tol * bnorm

        if self.warm_start and self._prev_pressure is not None and self._prev_key == geo_key:
            pf = kern.gather(self._prev_pressure)
            rf = bf - kern.matvec(pf)
            metrics.inc(f"solver/{self.name}/warm_starts")

        rnorm = float(np.abs(rf).max())
        flops = 0.0
        it = 0
        converged = rnorm <= tol_abs  # a warm start may already satisfy tol
        if not converged:
            zf = apply_m(rf)
            sf = zf.copy()
            sigma = float((zf * rf).sum())
            for it in range(1, self.max_iterations + 1):
                wf = kern.matvec(sf)
                denom = float((wf * sf).sum())
                if abs(denom) < 1e-300:
                    break
                alpha = sigma / denom
                pf += alpha * sf
                rf -= alpha * wf
                flops += 40.0 * nf
                rnorm = float(np.abs(rf).max())
                history.append(rnorm)
                if rnorm <= tol_abs:
                    converged = True
                    break
                zf = apply_m(rf)
                sigma_new = float((zf * rf).sum())
                beta = sigma_new / sigma
                sf = zf + beta * sf
                sigma = sigma_new

        p = remove_nullspace(kern.scatter(pf), solid)
        if self.warm_start:
            self._prev_pressure = p.copy()
            self._prev_key = geo_key
        rnorm = float(np.abs(rf).max())
        return SolveResult(p, it, converged, rnorm, flops, history)

    def _solve_reference(self, b: np.ndarray, solid: np.ndarray, metrics: MetricsRegistry) -> SolveResult:
        """Matrix-free grid-level CG (the tested ground-truth path)."""
        fluid = ~solid
        nf = int(fluid.sum())
        apply_m = self._precondition(solid, metrics)

        # compatibility projection: remove the per-component null space
        b = remove_nullspace(b, solid)

        geo_key = MaskKeyedCache.key_of(solid)
        p = np.zeros_like(b)
        r = b.copy()
        bnorm = float(np.abs(b[fluid]).max()) if nf else 0.0
        history = [bnorm]
        if bnorm < 1e-300:
            return SolveResult(p, 0, True, 0.0, 0.0, history)
        tol_abs = self.tol * bnorm

        if self.warm_start and self._prev_pressure is not None and self._prev_key == geo_key:
            p = self._prev_pressure.copy()
            r = b - apply_laplacian(p, solid)
            r[~fluid] = 0.0
            metrics.inc(f"solver/{self.name}/warm_starts")

        rnorm = float(np.abs(r[fluid]).max())
        flops = 0.0
        it = 0
        converged = rnorm <= tol_abs  # a warm start may already satisfy tol
        if not converged:
            z = apply_m(r)
            s = z.copy()
            sigma = float((z[fluid] * r[fluid]).sum())
            for it in range(1, self.max_iterations + 1):
                w = apply_laplacian(s, solid)
                denom = float((w[fluid] * s[fluid]).sum())
                if abs(denom) < 1e-300:
                    break
                alpha = sigma / denom
                p += alpha * s
                r -= alpha * w
                flops += 40.0 * nf
                rnorm = float(np.abs(r[fluid]).max())
                history.append(rnorm)
                if rnorm <= tol_abs:
                    converged = True
                    break
                z = apply_m(r)
                sigma_new = float((z[fluid] * r[fluid]).sum())
                beta = sigma_new / sigma
                s = z + beta * s
                sigma = sigma_new

        p = remove_nullspace(p, solid)
        if self.warm_start:
            self._prev_pressure = p.copy()
            self._prev_key = geo_key
        rnorm = float(np.abs(r[fluid]).max())
        return SolveResult(p, it, converged, rnorm, flops, history)


class JacobiSolver(PressureSolver):
    """Weighted-Jacobi iteration on the Poisson system (cheap baseline).

    Class-form of the historical :func:`jacobi_solve` helper, conforming to
    the :class:`~repro.fluid.solver_api.PressureSolver` protocol.  Sweeps run
    on flat fluid vectors through the cached
    :class:`~repro.fluid.kernels.GeometryKernels` (CSR matvec + the compiled
    degree field), with all geometry invariants hoisted out of the loop.
    """

    name = "jacobi"

    def __init__(
        self,
        iterations: int = 200,
        tol: float = 0.0,
        omega: float = 0.8,
        metrics: MetricsRegistry | None = None,
    ):
        self.iterations = iterations
        self.tol = tol
        self.omega = omega
        self._metrics = metrics
        self._kernels_cache = MaskKeyedCache("kernels")

    def reset(self) -> None:
        """Drop the cached geometry kernels."""
        self._kernels_cache.clear()

    def solve(self, b: np.ndarray, solid: np.ndarray) -> SolveResult:
        """Run (damped) Jacobi sweeps; converged only if ``tol`` was hit."""
        metrics = self._metrics if self._metrics is not None else get_metrics()
        with metrics.timer(f"solver/{self.name}/solve"), get_tracer().span(
            f"solve/{self.name}"
        ):
            kern: GeometryKernels = self._kernels_cache.get(
                solid, lambda: GeometryKernels(solid), metrics
            )
            nf = kern.n
            bf = kern.gather(b)
            winv = self.omega * kern.inv_degree
            pf = np.zeros(nf)
            it = 0
            rnorm = float(np.abs(bf).max()) if nf else 0.0
            for it in range(1, self.iterations + 1):
                rf = bf - kern.matvec(pf)
                rnorm = float(np.abs(rf).max()) if nf else 0.0
                if self.tol and rnorm <= self.tol:
                    break
                pf = pf + winv * rf
            if nf:
                pf = pf - pf.mean()
            p = kern.scatter(pf)
        metrics.inc(f"solver/{self.name}/solves")
        metrics.inc(f"solver/{self.name}/iterations", it)
        metrics.families.histogram(
            "solver_iterations",
            help="Iterations per pressure solve by solver.",
            labels=("solver",),
        ).observe(it, solver=self.name)
        return SolveResult(
            p, it, bool(self.tol and rnorm <= self.tol), rnorm, 12.0 * it * float(nf)
        )


def jacobi_solve(
    b: np.ndarray, solid: np.ndarray, iterations: int = 200, tol: float = 0.0
) -> SolveResult:
    """Functional wrapper around :class:`JacobiSolver` (kept for back-compat)."""
    return JacobiSolver(iterations=iterations, tol=tol).solve(b, solid)
