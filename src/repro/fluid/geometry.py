"""Procedural obstacle geometry.

The paper drops objects from the NTU 3D Model Dataset into the simulation
domain to generate diverse occupancy grids.  That dataset is not available
offline, so we substitute procedurally generated shapes (discs, boxes,
capsules and random convex polygons) whose unions produce occupancy grids of
comparable variety.  Only the boolean occupancy enters the solver, so the
substitution preserves the behaviour the dataset provides: diverse solid
boundary geometry.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "disc_mask",
    "box_mask",
    "capsule_mask",
    "polygon_mask",
    "random_obstacles",
]


def _grids(shape: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
    ny, nx = shape
    ys, xs = np.mgrid[0:ny, 0:nx]
    return xs + 0.5, ys + 0.5


def disc_mask(shape: tuple[int, int], cx: float, cy: float, r: float) -> np.ndarray:
    """Boolean mask of a disc centred at (cx, cy) in cell units."""
    xs, ys = _grids(shape)
    return (xs - cx) ** 2 + (ys - cy) ** 2 <= r * r


def box_mask(
    shape: tuple[int, int], cx: float, cy: float, hw: float, hh: float, angle: float = 0.0
) -> np.ndarray:
    """Boolean mask of a (possibly rotated) box with half-extents (hw, hh)."""
    xs, ys = _grids(shape)
    ca, sa = np.cos(angle), np.sin(angle)
    lx = (xs - cx) * ca + (ys - cy) * sa
    ly = -(xs - cx) * sa + (ys - cy) * ca
    return (np.abs(lx) <= hw) & (np.abs(ly) <= hh)


def capsule_mask(
    shape: tuple[int, int], x0: float, y0: float, x1: float, y1: float, r: float
) -> np.ndarray:
    """Boolean mask of a capsule (thick line segment) of radius r."""
    xs, ys = _grids(shape)
    dx, dy = x1 - x0, y1 - y0
    ln2 = dx * dx + dy * dy
    if ln2 < 1e-12:
        return disc_mask(shape, x0, y0, r)
    t = np.clip(((xs - x0) * dx + (ys - y0) * dy) / ln2, 0.0, 1.0)
    px, py = x0 + t * dx, y0 + t * dy
    return (xs - px) ** 2 + (ys - py) ** 2 <= r * r


def polygon_mask(shape: tuple[int, int], vertices: np.ndarray) -> np.ndarray:
    """Boolean mask of a simple polygon given (n, 2) vertices in cell units.

    Uses the even-odd crossing rule, vectorised over all cells.
    """
    xs, ys = _grids(shape)
    inside = np.zeros(shape, dtype=bool)
    n = len(vertices)
    for k in range(n):
        x0, y0 = vertices[k]
        x1, y1 = vertices[(k + 1) % n]
        crosses = (ys < y0) != (ys < y1)
        with np.errstate(divide="ignore", invalid="ignore"):
            xint = x0 + (ys - y0) * (x1 - x0) / (y1 - y0 + 1e-30)
        inside ^= crosses & (xs < xint)
    return inside


def random_obstacles(
    shape: tuple[int, int],
    rng: np.random.Generator,
    n_objects: int | None = None,
    max_fill: float = 0.2,
) -> np.ndarray:
    """Union of random shapes occupying at most ``max_fill`` of the interior.

    Obstacles are kept away from the top rows so the smoke source region
    (bottom centre in the plume scenario... top of the plume) is never
    blocked at birth.
    """
    ny, nx = shape
    if n_objects is None:
        n_objects = int(rng.integers(0, 4))
    mask = np.zeros(shape, dtype=bool)
    budget = max_fill * (nx - 2) * (ny - 2)
    for _ in range(n_objects):
        kind = rng.choice(["disc", "box", "capsule", "polygon"])
        cx = rng.uniform(0.2 * nx, 0.8 * nx)
        cy = rng.uniform(0.15 * ny, 0.7 * ny)
        size = rng.uniform(0.05, 0.15) * min(nx, ny)
        if kind == "disc":
            m = disc_mask(shape, cx, cy, size)
        elif kind == "box":
            m = box_mask(shape, cx, cy, size, size * rng.uniform(0.4, 1.0), rng.uniform(0, np.pi))
        elif kind == "capsule":
            ang = rng.uniform(0, np.pi)
            lx, ly = np.cos(ang) * size * 1.5, np.sin(ang) * size * 1.5
            m = capsule_mask(shape, cx - lx, cy - ly, cx + lx, cy + ly, size * 0.4)
        else:
            nv = int(rng.integers(3, 7))
            angs = np.sort(rng.uniform(0, 2 * np.pi, nv))
            rad = rng.uniform(0.5, 1.0, nv) * size
            verts = np.stack([cx + rad * np.cos(angs), cy + rad * np.sin(angs)], axis=1)
            m = polygon_mask(shape, verts)
        if (mask | m).sum() > budget:
            continue
        mask |= m
    return mask
