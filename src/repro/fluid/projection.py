"""Pressure projection (Algorithm 1, line 6) with pluggable solvers.

A *pressure solver* is any object with ``solve(b, solid) -> SolveResult`` and
a ``name`` attribute, where ``b`` is the Poisson right-hand side on the grid.
The exact PCG solver, multigrid, the neural-network approximators and the
adaptive Smart-fluidnet controller all implement this protocol, so the
simulator is agnostic to how the Poisson equation is (approximately) solved.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from .grid import MACGrid2D
from .laplacian import poisson_rhs
from .operators import divergence, pressure_gradient_update
from .pcg import SolveResult

__all__ = ["PressureSolver", "ProjectionInfo", "project"]


class PressureSolver(Protocol):
    """Protocol implemented by every pressure solver in the package."""

    name: str

    def solve(self, b: np.ndarray, solid: np.ndarray) -> SolveResult:  # pragma: no cover
        """Solve ``A p = b`` over fluid cells of the given solid mask."""
        ...


@dataclass
class ProjectionInfo:
    """Diagnostics of one projection step."""

    solver_name: str
    solve_seconds: float
    iterations: int
    converged: bool
    pre_divergence: float
    post_divergence: float
    flops: float


def project(grid: MACGrid2D, solver: PressureSolver, dt: float, rho: float = 1.0) -> ProjectionInfo:
    """Make the grid velocity (approximately) divergence-free, in place."""
    grid.enforce_solid_boundaries()
    div = divergence(grid)
    pre = float(np.abs(div[grid.fluid]).max()) if grid.fluid.any() else 0.0
    b = poisson_rhs(div, grid.solid, dt, rho, grid.dx)
    t0 = time.perf_counter()
    res = solver.solve(b, grid.solid)
    dt_solve = time.perf_counter() - t0
    grid.pressure = res.pressure
    pressure_gradient_update(grid, res.pressure, dt, rho)
    post_div = divergence(grid)
    post = float(np.abs(post_div[grid.fluid]).max()) if grid.fluid.any() else 0.0
    return ProjectionInfo(
        solver_name=getattr(solver, "name", type(solver).__name__),
        solve_seconds=dt_solve,
        iterations=res.iterations,
        converged=res.converged,
        pre_divergence=pre,
        post_divergence=post,
        flops=res.flops,
    )
