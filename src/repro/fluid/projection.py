"""Pressure projection (Algorithm 1, line 6) with pluggable solvers.

A *pressure solver* is a :class:`~repro.fluid.solver_api.PressureSolver`:
``solve(b, solid) -> SolveResult``, a ``name`` identifier and a ``reset()``
lifecycle hook.  The exact PCG solver, Jacobi, multigrid, the
neural-network approximators and the adaptive Smart-fluidnet controller all
conform, so the simulator is agnostic to how the Poisson equation is
(approximately) solved.  The ABC itself lives in
:mod:`repro.fluid.solver_api` (to avoid import cycles with the concrete
solvers) and is re-exported here, its historical home.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.metrics import MetricsRegistry, get_metrics
from repro.trace import Tracer, get_tracer

from .grid import MACGrid2D
from .laplacian import poisson_rhs
from .operators import divergence, pressure_gradient_update
from .solver_api import PressureSolver, SolveResult

__all__ = ["PressureSolver", "SolveResult", "ProjectionInfo", "project"]


@dataclass
class ProjectionInfo:
    """Diagnostics of one projection step."""

    solver_name: str
    solve_seconds: float
    iterations: int
    converged: bool
    pre_divergence: float
    post_divergence: float
    flops: float


def project(
    grid: MACGrid2D,
    solver: PressureSolver,
    dt: float,
    rho: float = 1.0,
    metrics: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> ProjectionInfo:
    """Make the grid velocity (approximately) divergence-free, in place."""
    m = metrics if metrics is not None else get_metrics()
    tr = tracer if tracer is not None else get_tracer()
    name = getattr(solver, "name", type(solver).__name__)
    with tr.span("projection", solver=name) as sp:
        grid.enforce_solid_boundaries()
        div = divergence(grid)
        pre = float(np.abs(div[grid.fluid]).max()) if grid.fluid.any() else 0.0
        b = poisson_rhs(div, grid.solid, dt, rho, grid.dx)
        t0 = time.perf_counter()
        res = solver.solve(b, grid.solid)
        dt_solve = time.perf_counter() - t0
        m.observe("projection/solve", dt_solve)
        m.inc("projection/solves")
        m.inc(f"projection/by_solver/{name}", 1.0)
        grid.pressure = res.pressure
        pressure_gradient_update(grid, res.pressure, dt, rho)
        post_div = divergence(grid)
        post = float(np.abs(post_div[grid.fluid]).max()) if grid.fluid.any() else 0.0
        if sp is not None:
            sp.attrs["iterations"] = res.iterations
            sp.attrs["converged"] = res.converged
    return ProjectionInfo(
        solver_name=name,
        solve_seconds=dt_solve,
        iterations=res.iterations,
        converged=res.converged,
        pre_divergence=pre,
        post_divergence=post,
        flops=res.flops,
    )
