"""Eulerian fluid-simulation substrate (mantaflow equivalent).

A pure NumPy/SciPy 2-D MAC-grid smoke simulator implementing the paper's
Algorithm 1: semi-Lagrangian advection, buoyancy, and pressure projection via
PCG with the MIC(0) preconditioner (plus Jacobi and geometric multigrid
alternatives).
"""

from .grid import CellType, MACGrid2D
from .operators import divergence, pressure_gradient_update, apply_laplacian
from .laplacian import PoissonSystem, build_poisson_system, stencil_arrays, poisson_rhs
from .solver_api import MaskKeyedCache
from .kernels import GeometryKernels, MICTriangularFactor, spectral_eligible
from .pcg import JacobiSolver, MIC0Preconditioner, PCGSolver, SolveResult, jacobi_solve
from .nn_pcg import NNPCGSolver
from .spectral import SpectralSolver
from .multigrid import MultigridSolver, build_hierarchy, vcycle
from .advection import advect_scalar, advect_velocity, maccormack_scalar
from .forces import add_buoyancy, add_gravity, add_vorticity_confinement
from .turbulence import apply_turbulent_velocity, stream_function_noise, value_noise
from .geometry import (
    box_mask,
    capsule_mask,
    disc_mask,
    polygon_mask,
    random_obstacles,
)
from .projection import PressureSolver, ProjectionInfo, project
from .levelset import (
    FreeSurfaceSolver,
    LevelSetDriver,
    advect_levelset,
    reinitialize,
    signed_distance,
)
from .scenarios import (
    CompositeDriver,
    MovingSolidDriver,
    ScenarioDriver,
    ScenarioInfo,
    ScenarioParam,
    ScenarioSpec,
    SmokeSource,
    build_scenario,
    get_scenario,
    list_scenarios,
    make_smoke_plume,
    parse_scenario,
    register_scenario,
)
from .simulator import (
    FluidSimulator,
    RestartRequested,
    SimulationConfig,
    SimulationResult,
    StepRecord,
    compute_divnorm,
    divnorm_weights,
)

__all__ = [
    "CellType",
    "MACGrid2D",
    "divergence",
    "pressure_gradient_update",
    "apply_laplacian",
    "PoissonSystem",
    "build_poisson_system",
    "stencil_arrays",
    "poisson_rhs",
    "MaskKeyedCache",
    "GeometryKernels",
    "MICTriangularFactor",
    "spectral_eligible",
    "MIC0Preconditioner",
    "PCGSolver",
    "NNPCGSolver",
    "JacobiSolver",
    "SolveResult",
    "jacobi_solve",
    "SpectralSolver",
    "MultigridSolver",
    "build_hierarchy",
    "vcycle",
    "advect_scalar",
    "advect_velocity",
    "maccormack_scalar",
    "add_buoyancy",
    "add_gravity",
    "add_vorticity_confinement",
    "apply_turbulent_velocity",
    "stream_function_noise",
    "value_noise",
    "disc_mask",
    "box_mask",
    "capsule_mask",
    "polygon_mask",
    "random_obstacles",
    "PressureSolver",
    "ProjectionInfo",
    "project",
    "FreeSurfaceSolver",
    "LevelSetDriver",
    "advect_levelset",
    "reinitialize",
    "signed_distance",
    "ScenarioSpec",
    "ScenarioParam",
    "ScenarioInfo",
    "ScenarioDriver",
    "CompositeDriver",
    "MovingSolidDriver",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "build_scenario",
    "parse_scenario",
    "SmokeSource",
    "make_smoke_plume",
    "FluidSimulator",
    "RestartRequested",
    "SimulationConfig",
    "SimulationResult",
    "StepRecord",
    "compute_divnorm",
    "divnorm_weights",
]
