"""Geometric multigrid for the pressure Poisson equation.

Mantaflow uses a multigrid approach as a pre-processing step for PCG
(McAdams et al., the paper's reference [21]).  This module provides a
standalone V-cycle solver with red-black Gauss-Seidel smoothing (all sweeps
vectorised with checkerboard masks).

Coarsening is *interior-aligned*: the one-cell border wall is stripped, the
fluid interior is agglomerated 2x2, and the wall is re-imposed around the
coarse interior.  This keeps the coarse domain geometrically aligned with the
fine one (a naive whole-grid coarsening drops the entire wall-adjacent fluid
ring from coarse coverage, which destroys convergence).  Around *interior*
obstacles the re-discretised coarse operator is only an approximation, so the
hierarchy depth defaults to 3 levels — deeper hierarchies can amplify
obstacle-boundary modes, as the solver's tests document.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import zoom

from repro.metrics import MetricsRegistry, get_metrics

from .operators import apply_laplacian
from .laplacian import remove_nullspace, stencil_arrays
from .solver_api import MaskKeyedCache, PressureSolver, SolveResult

__all__ = ["MultigridSolver", "vcycle", "build_hierarchy"]


class _Level:
    """One grid level: solid mask plus precomputed smoother data."""

    def __init__(self, solid: np.ndarray):
        self.solid = solid
        self.fluid = ~solid
        adiag, _, _ = stencil_arrays(solid)
        self.adiag = adiag
        self.inv_diag = np.where(adiag > 0, 1.0 / np.maximum(adiag, 1e-30), 0.0)
        ny, nx = solid.shape
        ys, xs = np.mgrid[0:ny, 0:nx]
        checker = (ys + xs) % 2 == 0
        self.red = self.fluid & checker
        self.black = self.fluid & ~checker


def build_hierarchy(
    solid: np.ndarray, max_levels: int = 3, min_size: int = 4
) -> list[_Level]:
    """Build the interior-aligned coarsening hierarchy (finest first).

    Coarsening stops when the interior is no longer evenly divisible, the
    grid reaches ``min_size``, or ``max_levels`` levels exist.  A coarse
    interior cell is solid when at least half of its four children are.
    """
    if not (solid[0, :].all() and solid[-1, :].all() and solid[:, 0].all() and solid[:, -1].all()):
        raise ValueError("multigrid requires a solid border wall")
    levels = [_Level(solid)]
    cur = solid
    while len(levels) < max_levels:
        ny, nx = cur.shape
        iy, ix = ny - 2, nx - 2
        if iy % 2 or ix % 2 or min(iy, ix) <= min_size:
            break
        interior = cur[1:-1, 1:-1]
        children_solid = interior.reshape(iy // 2, 2, ix // 2, 2).sum(axis=(1, 3))
        coarse = np.ones((iy // 2 + 2, ix // 2 + 2), dtype=bool)
        coarse[1:-1, 1:-1] = children_solid >= 2
        if not (~coarse).any():
            break
        levels.append(_Level(coarse))
        cur = coarse
    return levels


def _smooth(level: _Level, p: np.ndarray, b: np.ndarray, sweeps: int) -> np.ndarray:
    """Red-black Gauss-Seidel sweeps (each colour updated simultaneously)."""
    for _ in range(sweeps):
        for mask in (level.red, level.black):
            r = b - apply_laplacian(p, level.solid, deg=level.adiag)
            p = p + np.where(mask, r * level.inv_diag, 0.0)
    return p


def _restrict(r: np.ndarray, coarse: _Level) -> np.ndarray:
    """Interior-aligned restriction: sum the 2x2 fine interior children.

    Summation (rather than averaging) folds in the factor-4 rescaling the
    dimensionless 5-point stencil needs between levels.
    """
    ri = r[1:-1, 1:-1]
    iy, ix = ri.shape
    rc = np.zeros(coarse.solid.shape)
    rc[1:-1, 1:-1] = ri.reshape(iy // 2, 2, ix // 2, 2).sum(axis=(1, 3))
    return np.where(coarse.fluid, rc, 0.0)


def _prolong(ec: np.ndarray, fine: _Level) -> np.ndarray:
    """Bilinear (cell-centred) prolongation of the coarse-interior correction."""
    out = np.zeros(fine.solid.shape)
    out[1:-1, 1:-1] = zoom(ec[1:-1, 1:-1], 2, order=1, mode="nearest", grid_mode=True)
    return np.where(fine.fluid, out, 0.0)


def vcycle(
    levels: list[_Level],
    b: np.ndarray,
    p: np.ndarray | None = None,
    idx: int = 0,
    pre_sweeps: int = 2,
    post_sweeps: int = 2,
    coarse_sweeps: int = 60,
) -> np.ndarray:
    """One V-cycle of the hierarchy, returning the updated solution."""
    level = levels[idx]
    if p is None:
        p = np.zeros_like(b)
    if idx == len(levels) - 1:
        return _smooth(level, p, b, sweeps=coarse_sweeps)
    p = _smooth(level, p, b, pre_sweeps)
    r = np.where(level.fluid, b - apply_laplacian(p, level.solid, deg=level.adiag), 0.0)
    rc = _restrict(r, levels[idx + 1])
    ec = vcycle(levels, rc, None, idx + 1, pre_sweeps, post_sweeps, coarse_sweeps)
    p = p + _prolong(ec, level)
    return _smooth(level, p, b, post_sweeps)


class MultigridSolver(PressureSolver):
    """Standalone multigrid pressure solver (V-cycles until tolerance).

    The coarsening hierarchy (per-level masks, smoother diagonals and
    checkerboard colourings) is cached per solid mask and rebuilt only when
    the geometry changes.
    """

    name = "multigrid"

    def __init__(
        self,
        tol: float = 1e-5,
        max_cycles: int = 60,
        max_levels: int = 3,
        metrics: MetricsRegistry | None = None,
    ):
        self.tol = tol
        self.max_cycles = max_cycles
        self.max_levels = max_levels
        self._metrics = metrics
        self._hierarchy_cache = MaskKeyedCache("mg_hierarchy")

    def reset(self) -> None:
        """Drop the cached coarsening hierarchy."""
        self._hierarchy_cache.clear()

    def solve(self, b: np.ndarray, solid: np.ndarray) -> SolveResult:
        """Iterate V-cycles until the residual drops below tolerance."""
        metrics = self._metrics if self._metrics is not None else get_metrics()
        with metrics.timer(f"solver/{self.name}/solve"):
            result = self._solve(b, solid, metrics)
        metrics.inc(f"solver/{self.name}/solves")
        metrics.inc(f"solver/{self.name}/iterations", result.iterations)
        return result

    def _solve(self, b: np.ndarray, solid: np.ndarray, metrics: MetricsRegistry) -> SolveResult:
        levels = self._hierarchy_cache.get(
            solid, lambda: build_hierarchy(solid, self.max_levels), metrics
        )
        fluid = ~solid
        b = remove_nullspace(b, solid)
        bnorm = float(np.abs(b[fluid]).max()) if fluid.any() else 0.0
        p = np.zeros_like(b)
        if bnorm < 1e-300:
            return SolveResult(p, 0, True, 0.0)
        tol_abs = self.tol * bnorm
        history = [bnorm]
        nf = float(fluid.sum())
        it = 0
        converged = False
        for it in range(1, self.max_cycles + 1):
            p = vcycle(levels, b, p)
            rnorm = float(np.abs((b - apply_laplacian(p, solid, deg=levels[0].adiag))[fluid]).max())
            history.append(rnorm)
            if rnorm <= tol_abs:
                converged = True
                break
        p = remove_nullspace(p, solid)
        return SolveResult(p, it, converged, history[-1], 120.0 * it * nf, history)
