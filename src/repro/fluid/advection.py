"""Semi-Lagrangian advection on the MAC grid.

Implements line 4 of the paper's Algorithm 1: ``u_A = advect(u_n, dt, q)``.
Each sample point is traced backwards through the velocity field with a
second-order Runge-Kutta step and the advected quantity is bilinearly
interpolated at the departure point.  An optional MacCormack (BFECC-style)
corrector reduces the scheme's numerical diffusion; it is the method
mantaflow labels ``advectSemiLagrange(order=2)``.
"""

from __future__ import annotations

import numpy as np

from .grid import MACGrid2D

__all__ = ["advect_scalar", "advect_velocity", "maccormack_scalar"]


def _backtrace(
    grid: MACGrid2D, x: np.ndarray, y: np.ndarray, dt: float
) -> tuple[np.ndarray, np.ndarray]:
    """RK2 backtrace of world points through the current velocity field."""
    u1, v1 = grid.velocity_at(x, y)
    xm = x - 0.5 * dt * u1
    ym = y - 0.5 * dt * v1
    u2, v2 = grid.velocity_at(xm, ym)
    bx = x - dt * u2
    by = y - dt * v2
    # keep departure points inside the domain
    w, h = grid.nx * grid.dx, grid.ny * grid.dx
    return np.clip(bx, 0.0, w), np.clip(by, 0.0, h)


def advect_scalar(grid: MACGrid2D, f: np.ndarray, dt: float) -> np.ndarray:
    """Advect a cell-centred scalar field, returning the new field.

    Values inside solid cells are kept at zero (no smoke inside obstacles).
    """
    cx, cy = grid.cell_centers()
    bx, by = _backtrace(grid, cx, cy, dt)
    out = grid.sample_center(f, bx, by)
    out[grid.solid] = 0.0
    return out


def maccormack_scalar(grid: MACGrid2D, f: np.ndarray, dt: float) -> np.ndarray:
    """MacCormack-corrected scalar advection with min/max limiting."""
    cx, cy = grid.cell_centers()
    bx, by = _backtrace(grid, cx, cy, dt)
    forward = grid.sample_center(f, bx, by)
    # trace the forward result back *forwards* to estimate the error
    fx, fy = _backtrace(grid, cx, cy, -dt)
    backward = grid.sample_center(forward, fx, fy)
    corrected = forward + 0.5 * (f - backward)
    # limiter: clamp to the values bracketing the departure point
    lo = np.minimum.reduce(
        [forward, grid.sample_center(f, bx + grid.dx, by), grid.sample_center(f, bx - grid.dx, by)]
    )
    hi = np.maximum.reduce(
        [forward, grid.sample_center(f, bx + grid.dx, by), grid.sample_center(f, bx - grid.dx, by)]
    )
    out = np.clip(corrected, lo, hi)
    out[grid.solid] = 0.0
    return out


def advect_velocity(grid: MACGrid2D, dt: float) -> tuple[np.ndarray, np.ndarray]:
    """Advect the staggered velocity field, returning new (u, v) arrays.

    Both components are traced through the *same* pre-advection velocity
    field (the grid is not modified).
    """
    ux, uy = grid.u_positions()
    bx, by = _backtrace(grid, ux, uy, dt)
    new_u = grid.sample_u(bx, by)

    vx, vy = grid.v_positions()
    bx, by = _backtrace(grid, vx, vy, dt)
    new_v = grid.sample_v(bx, by)
    return new_u, new_v
