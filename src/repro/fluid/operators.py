"""Finite-difference operators on the MAC grid.

These are the discrete divergence, gradient and (matrix-free) Laplacian used
throughout the solver.  All operators honour solid cells: faces touching a
solid cell carry zero flux and solid neighbours contribute Neumann
(zero-normal-gradient) boundary terms, exactly as in mantaflow's pressure
projection.
"""

from __future__ import annotations

import numpy as np

from .grid import MACGrid2D

__all__ = [
    "divergence",
    "pressure_gradient_update",
    "apply_laplacian",
    "velocity_divergence_field",
]


def divergence(grid: MACGrid2D) -> np.ndarray:
    """Discrete divergence of the face velocity at every cell centre.

    Returns an (ny, nx) array; entries of solid cells are forced to zero
    (there is no flow to correct inside obstacles).
    """
    div = (grid.u[:, 1:] - grid.u[:, :-1] + grid.v[1:, :] - grid.v[:-1, :]) / grid.dx
    div[grid.solid] = 0.0
    return div


def velocity_divergence_field(grid: MACGrid2D) -> np.ndarray:
    """Alias of :func:`divergence` named after the network input ∇·u*."""
    return divergence(grid)


def pressure_gradient_update(grid: MACGrid2D, p: np.ndarray, dt: float, rho: float) -> None:
    """Subtract the pressure gradient from face velocities (in place).

    Implements line 18 of the paper's Algorithm 1:
    ``u^{n+1} = u_B - dt/rho * grad(p)``.  Faces adjacent to solid cells are
    left untouched and re-zeroed through the boundary condition.
    """
    scale = dt / (rho * grid.dx)
    solid = grid.solid
    # interior u faces between cells (j, i-1) and (j, i)
    interior_u = ~(solid[:, :-1] | solid[:, 1:])
    du = scale * (p[:, 1:] - p[:, :-1])
    grid.u[:, 1:-1][interior_u] -= du[interior_u]
    # interior v faces between cells (j-1, i) and (j, i)
    interior_v = ~(solid[:-1, :] | solid[1:, :])
    dv = scale * (p[1:, :] - p[:-1, :])
    grid.v[1:-1, :][interior_v] -= dv[interior_v]
    grid.enforce_solid_boundaries()


def apply_laplacian(p: np.ndarray, solid: np.ndarray, deg: np.ndarray | None = None) -> np.ndarray:
    """Matrix-free application of the 5-point Poisson operator ``A @ p``.

    ``A`` is the (positive semi-definite) operator assembled by
    :mod:`repro.fluid.laplacian`:  ``(A p)_c = deg(c) p_c - sum_n p_n`` where
    the sum runs over fluid neighbours ``n`` of fluid cell ``c`` and
    ``deg(c)`` counts non-solid neighbours.  Solid rows are identically zero.

    ``deg`` optionally supplies the precomputed degree field (the stencil
    diagonal, e.g. ``GeometryKernels.degree`` or ``stencil_arrays(solid)[0]``)
    — it depends only on the geometry, so callers solving repeatedly on one
    mask can skip recomputing it.  The result is bitwise identical either
    way: a supplied diagonal differs from the internal accumulation only on
    solid cells, where it multiplies an exact zero.

    This is used by the matrix-free PCG path, the multigrid smoother and the
    DivNorm loss gradient.
    """
    fluid = ~solid
    pf = np.where(fluid, p, 0.0)
    out = np.zeros_like(p)

    compute_deg = deg is None
    if compute_deg:
        deg = np.zeros_like(p)
    # neighbour contributions (zero-padded at the domain edge; the border
    # wall means edge cells are solid anyway)
    for axis, shift in ((0, 1), (0, -1), (1, 1), (1, -1)):
        nb_val = np.zeros_like(p)
        if axis == 0 and shift == 1:
            nb_val[:-1, :] = pf[1:, :]
        elif axis == 0 and shift == -1:
            nb_val[1:, :] = pf[:-1, :]
        elif axis == 1 and shift == 1:
            nb_val[:, :-1] = pf[:, 1:]
        else:
            nb_val[:, 1:] = pf[:, :-1]
        if compute_deg:
            nb_fluid = np.zeros_like(fluid)
            if axis == 0 and shift == 1:
                nb_fluid[:-1, :] = fluid[1:, :]
            elif axis == 0 and shift == -1:
                nb_fluid[1:, :] = fluid[:-1, :]
            elif axis == 1 and shift == 1:
                nb_fluid[:, :-1] = fluid[:, 1:]
            else:
                nb_fluid[:, 1:] = fluid[:, :-1]
            deg += nb_fluid
        out -= nb_val
    out += deg * pf
    out[solid] = 0.0
    return out
