"""Pseudo-random turbulent initial velocity fields.

The paper initialises each input problem's velocity "by a pseudo-random
turbulent field" (wavelet turbulence, Kim et al.).  We reproduce the relevant
property — a multi-octave, divergence-free random field with a tunable energy
spectrum — by taking the curl of multi-octave value noise (curl noise).  The
curl of any scalar stream function is exactly divergence-free in the
continuum; on the MAC grid we evaluate the stream function at cell *corners*
and difference it onto faces, which makes the discrete divergence zero to
machine precision as well.
"""

from __future__ import annotations

import numpy as np

from .grid import MACGrid2D

__all__ = ["value_noise", "stream_function_noise", "apply_turbulent_velocity"]


def value_noise(
    shape: tuple[int, int], scale: int, rng: np.random.Generator
) -> np.ndarray:
    """Smooth value noise: random lattice values, bilinearly upsampled.

    ``scale`` is the lattice resolution along the larger axis; higher scale
    means finer features.
    """
    ny, nx = shape
    gy = max(2, int(round(scale * ny / max(nx, ny))) + 1)
    gx = max(2, int(round(scale * nx / max(nx, ny))) + 1)
    lattice = rng.standard_normal((gy, gx))
    ys = np.linspace(0, gy - 1.000001, ny)
    xs = np.linspace(0, gx - 1.000001, nx)
    y0 = ys.astype(np.int64)
    x0 = xs.astype(np.int64)
    ty = (ys - y0)[:, None]
    tx = (xs - x0)[None, :]
    # smoothstep for C1-continuous interpolation
    ty = ty * ty * (3 - 2 * ty)
    tx = tx * tx * (3 - 2 * tx)
    a = lattice[np.ix_(y0, x0)]
    b = lattice[np.ix_(y0, x0 + 1)]
    c = lattice[np.ix_(y0 + 1, x0)]
    d = lattice[np.ix_(y0 + 1, x0 + 1)]
    return a * (1 - tx) * (1 - ty) + b * tx * (1 - ty) + c * (1 - tx) * ty + d * tx * ty


def stream_function_noise(
    shape: tuple[int, int],
    rng: np.random.Generator,
    octaves: int = 3,
    base_scale: int = 4,
    persistence: float = 0.5,
) -> np.ndarray:
    """Multi-octave noise used as a stream function (defined at cell corners).

    ``shape`` is the corner-grid shape ``(ny + 1, nx + 1)``.
    """
    psi = np.zeros(shape)
    amp = 1.0
    scale = base_scale
    for _ in range(octaves):
        psi += amp * value_noise(shape, scale, rng)
        amp *= persistence
        scale *= 2
    return psi


def apply_turbulent_velocity(
    grid: MACGrid2D,
    rng: np.random.Generator,
    magnitude: float = 1.0,
    octaves: int = 3,
    base_scale: int = 4,
) -> None:
    """Set the grid velocity to a divergence-free turbulent field (in place).

    The discrete field is u = dpsi/dy, v = -dpsi/dx with psi sampled at cell
    corners, so ``divergence(grid)`` vanishes identically before boundaries
    are applied.  The field is rescaled so its maximum speed is ``magnitude``
    (in world units / time).
    """
    psi = stream_function_noise((grid.ny + 1, grid.nx + 1), rng, octaves, base_scale)
    u = (psi[1:, :] - psi[:-1, :]) / grid.dx  # dpsi/dy at vertical faces
    v = -(psi[:, 1:] - psi[:, :-1]) / grid.dx  # -dpsi/dx at horizontal faces
    peak = max(np.abs(u).max(), np.abs(v).max(), 1e-12)
    grid.u[:] = u * (magnitude / peak)
    grid.v[:] = v * (magnitude / peak)
    grid.enforce_solid_boundaries()
