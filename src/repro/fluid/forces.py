"""Body forces for the smoke simulation (Algorithm 1, line 5).

The 2-D smoke plume is driven by buoyancy: hot, dense smoke rises against
gravity.  We follow the standard Boussinesq approximation used by mantaflow's
``addBuoyancy``: the force on a face is proportional to the smoke density
interpolated to that face.  Vorticity confinement is provided as an optional
extension to re-inject small-scale swirl lost to semi-Lagrangian diffusion.
"""

from __future__ import annotations

import numpy as np

from .grid import MACGrid2D

__all__ = ["add_buoyancy", "add_gravity", "add_vorticity_confinement"]


def add_buoyancy(grid: MACGrid2D, dt: float, alpha: float = 1.0) -> None:
    """Add upward buoyancy ``dv = dt * alpha * density`` (in place).

    ``alpha`` folds the smoke temperature/density coefficient.  With the
    y-axis pointing down-the-array, "up" is decreasing y, so the force is
    negative on v faces.
    """
    rho_face = 0.5 * (grid.density[:-1, :] + grid.density[1:, :])
    grid.v[1:-1, :] -= dt * alpha * rho_face
    grid.enforce_solid_boundaries()


def add_gravity(grid: MACGrid2D, dt: float, g: float = 9.81) -> None:
    """Add uniform gravity along +y (in place)."""
    grid.v[1:-1, :] += dt * g
    grid.enforce_solid_boundaries()


def add_vorticity_confinement(grid: MACGrid2D, dt: float, eps: float = 0.5) -> None:
    """Vorticity confinement force (Fedkiw et al.), optional extension.

    Computes the curl at cell centres, builds the normalised gradient of its
    magnitude, and adds ``eps * dx * (N x omega)`` to the velocity.
    """
    uc, vc = grid.velocity_at_centers()
    dx = grid.dx
    # curl (z component) at centres via central differences
    dvdx = np.zeros_like(vc)
    dudy = np.zeros_like(uc)
    dvdx[:, 1:-1] = (vc[:, 2:] - vc[:, :-2]) / (2 * dx)
    dudy[1:-1, :] = (uc[2:, :] - uc[:-2, :]) / (2 * dx)
    omega = dvdx - dudy
    mag = np.abs(omega)
    gx = np.zeros_like(mag)
    gy = np.zeros_like(mag)
    gx[:, 1:-1] = (mag[:, 2:] - mag[:, :-2]) / (2 * dx)
    gy[1:-1, :] = (mag[2:, :] - mag[:-2, :]) / (2 * dx)
    norm = np.sqrt(gx**2 + gy**2) + 1e-12
    nx_, ny_ = gx / norm, gy / norm
    fx = eps * dx * (ny_ * omega)
    fy = eps * dx * (-nx_ * omega)
    fx[grid.solid] = 0.0
    fy[grid.solid] = 0.0
    # scatter centre forces to faces (average of the two adjacent centres)
    grid.u[:, 1:-1] += dt * 0.5 * (fx[:, :-1] + fx[:, 1:])
    grid.v[1:-1, :] += dt * 0.5 * (fy[:-1, :] + fy[1:, :])
    grid.enforce_solid_boundaries()
