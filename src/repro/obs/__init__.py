"""Labeled metrics, Prometheus exposition, and SLO burn-rate monitoring.

``repro.obs`` is the observability layer above :mod:`repro.metrics` (flat
counters/timers) and :mod:`repro.trace` (spans/events/histograms).  It adds
the three things a production service needs that neither of those provide:

* **labels** — :mod:`repro.obs.families` holds Counter/Gauge/Histogram
  *families* with frozen label sets and a bounded cardinality guard, so the
  running system can answer "p99 submit latency *per tenant*" or
  "``pcg_fallback`` rate *per solver*" instead of one global number.
* **time** — :mod:`repro.obs.timeseries` records fixed-interval samples of
  any metric into bounded ring buffers, which turns monotonic counters into
  windowed *rates* (the input every burn-rate computation needs).
* **judgment** — :mod:`repro.obs.slo` evaluates declarative objectives
  (latency thresholds, good/total ratios) against those recorded series
  with multi-window burn-rate alerting, surfaced by ``repro health`` and
  the ``repro top`` alerts panel.

:mod:`repro.obs.prometheus` renders families (plus the flat
:class:`~repro.metrics.MetricsRegistry` and tracer histograms) in the
Prometheus text exposition format — served by the ``metrics`` wire op of
:class:`repro.serve.ServiceServer` and an optional localhost HTTP scrape
endpoint.
"""

from __future__ import annotations

from .families import (
    Counter,
    Gauge,
    Histogram,
    LabelCardinalityError,
    LabelMismatchError,
    MetricFamilies,
    NULL_FAMILIES,
)
from .prometheus import (
    CONTENT_TYPE,
    OPENMETRICS_CONTENT_TYPE,
    ScrapeServer,
    render_prometheus,
    sanitize_metric_name,
)
from .slo import SLO, SLOEngine, SLOStatus, default_serve_slos, default_farm_slos
from .timeseries import SeriesRecorder

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "LabelCardinalityError",
    "LabelMismatchError",
    "MetricFamilies",
    "NULL_FAMILIES",
    "OPENMETRICS_CONTENT_TYPE",
    "ScrapeServer",
    "SeriesRecorder",
    "SLO",
    "SLOEngine",
    "SLOStatus",
    "default_farm_slos",
    "default_serve_slos",
    "render_prometheus",
    "sanitize_metric_name",
]
