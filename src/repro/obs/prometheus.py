"""Prometheus text-format exposition for families, flat metrics and spans.

One render pass produces the standard ``text/plain; version=0.0.4`` page:

* labeled families from :class:`~repro.obs.families.MetricFamilies` render
  natively — counters as ``*_total``, gauges as-is, histograms as
  cumulative ``_bucket{le=...}`` series derived from the shared
  :class:`repro.trace.HistogramStat` log-spaced buckets, plus ``_sum`` and
  ``_count``;
* the flat :class:`repro.metrics.MetricsRegistry` renders too, so every
  pre-existing ``sim/projection/pcg/solves`` counter is scrapeable without
  re-instrumenting: slash-scoped names sanitize to
  ``repro_sim_projection_pcg_solves_total`` and timers become
  ``summary``-typed ``_seconds_sum``/``_seconds_count`` pairs;
* with ``openmetrics=True`` the page is rendered in the OpenMetrics
  exposition instead (``# EOF`` trailer, counter ``TYPE`` headers on the
  un-suffixed name) and histogram series may carry an **exemplar** — the
  trace span id of their slowest observation — appended to the bucket that
  observation landed in, linking a fat tail straight back to its span.
  Exemplars are OpenMetrics-only: a classic ``text/plain; version=0.0.4``
  parser reads the trailing ``#`` as a malformed timestamp and fails the
  whole scrape, so the classic page never emits them.

:class:`ScrapeServer` serves the page from a localhost-only stdlib HTTP
server on a daemon thread (``GET /metrics``), for ``repro serve
--metrics-port``, negotiating the exposition from the scraper's ``Accept``
header.  It binds ``127.0.0.1`` unconditionally: the scrape surface is an
operator loopback, not a public listener.
"""

from __future__ import annotations

import http.server
import re
import threading
from typing import Callable

from repro.metrics import MetricsRegistry
from repro.trace import HistogramStat, _bucket_bounds, _bucket_of

from .families import Counter, Gauge, Histogram, MetricFamilies

__all__ = [
    "CONTENT_TYPE",
    "OPENMETRICS_CONTENT_TYPE",
    "ScrapeServer",
    "render_prometheus",
    "sanitize_metric_name",
]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
OPENMETRICS_CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_NAME_SQUEEZE = re.compile(r"__+")


def sanitize_metric_name(name: str, prefix: str = "repro") -> str:
    """Map an internal metric path to a legal Prometheus metric name.

    ``sim/projection/pcg/solve`` → ``repro_sim_projection_pcg_solve``.
    """
    flat = _NAME_BAD.sub("_", name.strip("/"))
    flat = _NAME_SQUEEZE.sub("_", flat).strip("_")
    if prefix and not flat.startswith(prefix + "_"):
        flat = f"{prefix}_{flat}" if flat else prefix
    if flat[0].isdigit():
        flat = "_" + flat
    return flat


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in merged.items())
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if value != value or value in (float("inf"), float("-inf")):
        return {float("inf"): "+Inf", float("-inf"): "-Inf"}.get(value, "NaN")
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return format(float(value), ".10g")


def _header(lines: list[str], name: str, kind: str, help_text: str) -> None:
    if help_text:
        lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")


def _render_histogram_series(
    lines: list[str],
    name: str,
    labels: dict[str, str],
    stat: HistogramStat,
    exemplar: dict | None,
    include_exemplars: bool,
) -> None:
    cumulative = 0
    exemplar_bucket = None
    if exemplar is not None and include_exemplars:
        exemplar_bucket = _bucket_of(exemplar["value"])
    for index in sorted(stat.buckets):
        cumulative += stat.buckets[index]
        upper = _bucket_bounds(index)[1]
        line = (
            f"{name}_bucket{_labels_text(labels, {'le': _fmt(upper)})} {cumulative}"
        )
        if exemplar_bucket is not None and index == exemplar_bucket:
            line += (
                f' # {{span_id="{_escape_label(exemplar["span_id"])}"}}'
                f' {_fmt(exemplar["value"])}'
            )
        lines.append(line)
    lines.append(f"{name}_bucket{_labels_text(labels, {'le': '+Inf'})} {stat.count}")
    lines.append(f"{name}_sum{_labels_text(labels)} {_fmt(stat.total)}")
    lines.append(f"{name}_count{_labels_text(labels)} {stat.count}")


def render_prometheus(
    families: MetricFamilies | None = None,
    registry: MetricsRegistry | None = None,
    openmetrics: bool = False,
) -> str:
    """Render one Prometheus exposition page.

    ``families`` render natively; ``registry`` (the flat counter/timer bag)
    renders under sanitized names so legacy instrumentation is scrapeable
    unchanged.  Either may be ``None``.

    ``openmetrics=True`` renders the OpenMetrics exposition — counter
    ``TYPE`` headers on the un-suffixed name, histogram exemplars, and the
    mandatory ``# EOF`` trailer.  The default classic ``0.0.4`` page omits
    exemplars entirely: classic parsers reject them as malformed
    timestamps, losing every metric on the page.
    """
    lines: list[str] = []

    def counter_header(name: str, help_text: str) -> str:
        # OpenMetrics declares counters on the base name and samples on
        # `<base>_total`; the classic format uses `<base>_total` for both
        base = name[: -len("_total")] if name.endswith("_total") else name
        _header(lines, base if openmetrics else base + "_total", "counter", help_text)
        return base + "_total"

    if families is not None:
        for family in families.families():
            name = sanitize_metric_name(family.name)
            if isinstance(family, Counter):
                sample_name = counter_header(name, family.help)
                for labels, value in family.samples():
                    lines.append(f"{sample_name}{_labels_text(labels)} {_fmt(value)}")
            elif isinstance(family, Gauge):
                _header(lines, name, "gauge", family.help)
                for labels, value in family.samples():
                    lines.append(f"{name}{_labels_text(labels)} {_fmt(value)}")
            elif isinstance(family, Histogram):
                _header(lines, name, "histogram", family.help)
                for labels, cell in family.samples():
                    stat, exemplar = cell
                    _render_histogram_series(
                        lines, name, labels, stat, exemplar, openmetrics
                    )
    if registry is not None:
        for raw_name in sorted(registry.counters):
            sample_name = counter_header(
                sanitize_metric_name(raw_name), f"flat counter {raw_name}"
            )
            lines.append(f"{sample_name} {_fmt(registry.counters[raw_name])}")
        for raw_name in sorted(registry.timers):
            stat = registry.timers[raw_name]
            name = sanitize_metric_name(raw_name)
            if not name.endswith("_seconds"):
                name += "_seconds"
            _header(lines, name, "summary", f"flat timer {raw_name}")
            lines.append(f"{name}_sum {_fmt(stat.total)}")
            lines.append(f"{name}_count {stat.count}")
    if openmetrics:
        lines.append("# EOF")
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
class ScrapeServer:
    """Localhost-only HTTP scrape endpoint serving ``GET /metrics``.

    ``render`` is called per request on the serving thread, so it must be
    thread-safe (both registries take their own locks / copy under GIL).
    When ``render`` accepts an ``openmetrics`` keyword the server
    negotiates the exposition: scrapers whose ``Accept`` header asks for
    ``application/openmetrics-text`` get the OpenMetrics page (with
    exemplars); everyone else gets the classic ``0.0.4`` page without
    them.  Pass ``port=0`` for an ephemeral port; read it back from
    ``.port``.
    """

    def __init__(self, render: Callable[..., str], port: int = 9464):
        import inspect

        self._render = render
        try:
            parameters = inspect.signature(render).parameters.values()
            self._negotiates = any(
                p.name == "openmetrics" or p.kind is inspect.Parameter.VAR_KEYWORD
                for p in parameters
            )
        except (TypeError, ValueError):  # builtins/partials without signatures
            self._negotiates = False
        self._requested_port = int(port)
        self._httpd: http.server.ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int | None:
        """The bound port (None before :meth:`start`)."""
        return self._httpd.server_address[1] if self._httpd is not None else None

    def start(self) -> int:
        """Bind 127.0.0.1 and serve on a daemon thread; returns the port."""
        if self._httpd is not None:
            raise RuntimeError("scrape server already started")
        render = self._render
        negotiates = self._negotiates

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - stdlib API name
                if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                    self.send_error(404, "only /metrics is served")
                    return
                accept = self.headers.get("Accept", "")
                openmetrics = negotiates and "application/openmetrics-text" in accept
                try:
                    text = render(openmetrics=True) if openmetrics else render()
                    body = text.encode("utf-8")
                except Exception as exc:  # surface render bugs to the scraper
                    self.send_error(500, f"render failed: {type(exc).__name__}")
                    return
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    OPENMETRICS_CONTENT_TYPE if openmetrics else CONTENT_TYPE,
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-request stderr noise
                pass

        self._httpd = http.server.ThreadingHTTPServer(
            ("127.0.0.1", self._requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-scrape", daemon=True
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
