"""Fixed-interval ring-buffer time series: the memory behind burn rates.

Counters and histograms answer "how much, ever"; rates and burn-rate SLOs
need "how much, *lately*".  :class:`SeriesRecorder` bridges the two: named
*sources* (zero-argument callables over the live metric registries) are
sampled together every ``interval`` seconds into per-series ring buffers of
``(t, value)`` pairs, bounded by ``capacity`` so a long-lived service holds
a fixed-size window of history no matter how long it runs.

From those samples the recorder derives the quantities the SLO engine
consumes:

* :meth:`rate` — per-second increase of a monotonic counter over a window,
  tolerant of process restarts (a decrease starts a new segment instead of
  producing a negative rate);
* :meth:`delta` — absolute increase over a window (for ratio SLOs, where
  ``good_delta / total_delta`` is the window's success fraction);
* :meth:`average` / :meth:`latest` — for gauge-like series such as sampled
  quantiles.

``tick()`` is explicit and clock-injectable: the serve tier drives it from
a background asyncio task, ``repro top`` from its repaint loop, and tests
from a fake clock — the recorder itself owns no thread.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

__all__ = ["SeriesRecorder"]


class SeriesRecorder:
    """Sample named sources on a fixed interval into bounded ring buffers.

    Parameters
    ----------
    interval:
        Minimum seconds between samples; ``tick()`` calls arriving early
        are no-ops, so callers may tick as often as convenient.
    capacity:
        Ring-buffer length per series.  ``capacity * interval`` is the
        longest window any rate/burn computation can look back over.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        interval: float = 1.0,
        capacity: int = 600,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.interval = float(interval)
        self.capacity = int(capacity)
        self._clock = clock
        self._sources: dict[str, Callable[[], float]] = {}
        self._series: dict[str, deque[tuple[float, float]]] = {}
        self._last_tick: float | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def add_source(self, name: str, fn: Callable[[], float]) -> None:
        """Register (or replace) a sampled source.

        ``fn`` is called once per tick; a raising or non-finite source
        contributes no sample for that tick instead of poisoning the rest.
        """
        with self._lock:
            self._sources[name] = fn
            self._series.setdefault(name, deque(maxlen=self.capacity))

    def names(self) -> list[str]:
        """Every known series name, sorted."""
        with self._lock:
            return sorted(self._series)

    # ------------------------------------------------------------------
    def tick(self, now: float | None = None) -> bool:
        """Sample every source if ``interval`` has elapsed; True if sampled."""
        now = self._clock() if now is None else now
        with self._lock:
            if self._last_tick is not None and now - self._last_tick < self.interval:
                return False
            self._last_tick = now
            sources = list(self._sources.items())
        for name, fn in sources:
            try:
                value = float(fn())
            except Exception:
                continue
            if value != value:  # NaN: skip, keep the series clean
                continue
            self.record(name, value, now)
        return True

    def record(self, name: str, value: float, now: float | None = None) -> None:
        """Append one sample directly (for series without a pull source)."""
        now = self._clock() if now is None else now
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = deque(maxlen=self.capacity)
            series.append((now, float(value)))

    # ------------------------------------------------------------------
    def window(self, name: str, seconds: float, now: float | None = None) -> list[tuple[float, float]]:
        """Samples of ``name`` no older than ``seconds`` (oldest first)."""
        now = self._clock() if now is None else now
        cutoff = now - seconds
        with self._lock:
            series = self._series.get(name)
            if not series:
                return []
            return [(t, v) for t, v in series if t >= cutoff]

    def latest(self, name: str) -> float | None:
        """Most recent sample value, or ``None`` if never sampled."""
        with self._lock:
            series = self._series.get(name)
            return series[-1][1] if series else None

    def delta(self, name: str, seconds: float, now: float | None = None) -> float:
        """Total increase of a monotonic counter over the window.

        Decreases between consecutive samples (a counter reset after a
        restart) close the current segment: the post-reset value counts
        from zero rather than producing a negative delta.
        """
        window = self.window(name, seconds, now=now)
        if len(window) < 2:
            return 0.0
        total = 0.0
        prev = window[0][1]
        for _, value in window[1:]:
            total += value - prev if value >= prev else value
            prev = value
        return total

    def rate(self, name: str, seconds: float, now: float | None = None) -> float:
        """Per-second increase of a monotonic counter over the window."""
        window = self.window(name, seconds, now=now)
        if len(window) < 2:
            return 0.0
        elapsed = window[-1][0] - window[0][0]
        if elapsed <= 0:
            return 0.0
        return self.delta(name, seconds, now=now) / elapsed

    def average(self, name: str, seconds: float, now: float | None = None) -> float | None:
        """Mean sample value over the window (``None`` with no samples)."""
        window = self.window(name, seconds, now=now)
        if not window:
            return None
        return sum(v for _, v in window) / len(window)

    def span(self, name: str) -> float:
        """Seconds covered by the recorded samples of ``name`` (0 if <2)."""
        with self._lock:
            series = self._series.get(name)
            if not series or len(series) < 2:
                return 0.0
            return series[-1][0] - series[0][0]
