"""Declarative SLOs with multi-window burn-rate evaluation.

An SLO declares an *objective* over recorded series — "p99 submit-to-result
latency stays under 2 s", "at least half of cache lookups hit", "fewer than
5% of jobs fall back to exact PCG" — plus an **error budget**: the fraction
of bad outcomes the objective tolerates.  The **burn rate** over a window
is how fast that budget is being consumed relative to the sustainable pace::

    burn = bad_fraction(window) / budget

``burn == 1`` spends exactly the budget; ``burn == 10`` exhausts it ten
times too fast.  The bad fraction caps at 1.0, so the burn rate caps at
``1/budget`` — a tier whose declared factor exceeds that ceiling fires at
the ceiling instead of becoming unreachable (a 10x tier on a 0.5 budget
fires at total failure rather than never).  Alerting on a single window is
either twitchy (short) or
numb (long), so each severity tier requires **two** windows to burn at once
— the long window proves the problem is real, the short window proves it is
*still happening* (the standard multi-window, multi-burn-rate pattern).
Window defaults here are scaled to this repo's seconds-to-minutes service
runs rather than a month-long production budget; both are configurable per
:class:`SLO`.

Two objective kinds cover everything the stack needs:

* ``ratio`` — ``bad_series`` / ``total_series`` counter deltas per window
  (cache misses over lookups, fallbacks over jobs, failures over finishes);
* ``threshold`` — the fraction of sampled values of ``value_series``
  violating ``value {op} threshold`` (sampled p99 latency vs its bound).

A window with no recorded traffic yields no verdict (``no_data``) rather
than a false "ok": silence is not health.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .timeseries import SeriesRecorder

__all__ = [
    "SLO",
    "SLOEngine",
    "SLOStatus",
    "BurnWindow",
    "DEFAULT_WINDOWS",
    "default_farm_slos",
    "default_serve_slos",
]

#: Severity ranking for folding per-SLO states into one overall state.
_SEVERITY = {"critical": 3, "warning": 2, "ok": 1, "no_data": 0}


@dataclass(frozen=True)
class BurnWindow:
    """One alerting tier: fire when both windows burn faster than ``factor``."""

    severity: str  # "critical" or "warning"
    short_seconds: float
    long_seconds: float
    factor: float  # minimum burn rate (budget multiples per sustainable pace)


#: Default tiers, scaled for interactive service runs: a critical page needs
#: a sustained 10x burn over the last minute, a warning a 2x burn over five.
DEFAULT_WINDOWS = (
    BurnWindow("critical", short_seconds=15.0, long_seconds=60.0, factor=10.0),
    BurnWindow("warning", short_seconds=60.0, long_seconds=300.0, factor=2.0),
)


@dataclass(frozen=True)
class SLO:
    """One declarative objective over recorded series.

    ``kind="ratio"`` uses ``bad_series``/``total_series`` counter deltas;
    ``kind="threshold"`` uses sampled ``value_series`` values against
    ``value {op} threshold``.  ``budget`` is the tolerated bad fraction.
    """

    name: str
    objective: str
    kind: str  # "ratio" | "threshold"
    budget: float
    bad_series: str | None = None
    total_series: str | None = None
    value_series: str | None = None
    threshold: float = 0.0
    op: str = "<"
    windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS

    def __post_init__(self):
        if self.kind not in ("ratio", "threshold"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.kind == "ratio" and not (self.bad_series and self.total_series):
            raise ValueError(f"{self.name}: ratio SLOs need bad_series and total_series")
        if self.kind == "threshold" and not self.value_series:
            raise ValueError(f"{self.name}: threshold SLOs need value_series")
        if not 0.0 < self.budget <= 1.0:
            raise ValueError(f"{self.name}: budget must be in (0, 1], got {self.budget}")
        if self.op not in ("<", "<=", ">", ">="):
            raise ValueError(f"{self.name}: unsupported op {self.op!r}")

    # ------------------------------------------------------------------
    def _violates(self, value: float) -> bool:
        if self.op == "<":
            return not value < self.threshold
        if self.op == "<=":
            return not value <= self.threshold
        if self.op == ">":
            return not value > self.threshold
        return not value >= self.threshold

    def bad_fraction(
        self, recorder: SeriesRecorder, seconds: float, now: float | None = None
    ) -> float | None:
        """Bad fraction over the window, or ``None`` with no data."""
        if self.kind == "ratio":
            total = recorder.delta(self.total_series, seconds, now=now)
            if total <= 0:
                return None
            bad = recorder.delta(self.bad_series, seconds, now=now)
            return min(1.0, max(0.0, bad / total))
        samples = recorder.window(self.value_series, seconds, now=now)
        if not samples:
            return None
        violating = sum(1 for _, v in samples if self._violates(v))
        return violating / len(samples)


@dataclass
class SLOStatus:
    """Evaluation result of one SLO at one instant."""

    name: str
    objective: str
    state: str  # "ok" | "warning" | "critical" | "no_data"
    value: float | None  # most recent observed quantity (ratio or sample)
    budget: float
    tiers: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "objective": self.objective,
            "state": self.state,
            "value": self.value,
            "budget": self.budget,
            "tiers": self.tiers,
        }


class SLOEngine:
    """Evaluate a set of SLOs against one :class:`SeriesRecorder`."""

    def __init__(self, recorder: SeriesRecorder, slos: tuple[SLO, ...] | list[SLO] = ()):
        self.recorder = recorder
        self.slos: list[SLO] = list(slos)

    def add(self, slo: SLO) -> None:
        self.slos.append(slo)

    # ------------------------------------------------------------------
    def evaluate(self, now: float | None = None) -> list[SLOStatus]:
        """Current status of every SLO (stable order: as declared)."""
        return [self._evaluate_one(slo, now) for slo in self.slos]

    def state(self, now: float | None = None) -> str:
        """Worst state across all SLOs (``ok`` when none are declared)."""
        worst = "ok" if not self.slos else "no_data"
        for status in self.evaluate(now):
            if _SEVERITY[status.state] > _SEVERITY[worst]:
                worst = status.state
        return worst

    def to_dict(self, now: float | None = None) -> dict:
        statuses = self.evaluate(now)
        worst = "ok" if not statuses else "no_data"
        for status in statuses:
            if _SEVERITY[status.state] > _SEVERITY[worst]:
                worst = status.state
        return {"state": worst, "slos": [s.to_dict() for s in statuses]}

    # ------------------------------------------------------------------
    def _evaluate_one(self, slo: SLO, now: float | None) -> SLOStatus:
        tiers: list[dict] = []
        state = "no_data"
        for window in slo.windows:
            short_bad = slo.bad_fraction(self.recorder, window.short_seconds, now=now)
            long_bad = slo.bad_fraction(self.recorder, window.long_seconds, now=now)
            short_burn = None if short_bad is None else short_bad / slo.budget
            long_burn = None if long_bad is None else long_bad / slo.budget
            # bad_fraction is capped at 1.0, so the burn rate can never
            # exceed 1/budget: a tier whose factor lies beyond that (e.g.
            # a 10x tier on a 0.5 budget) would be unreachable and the SLO
            # silently inert — clamp the firing threshold to the ceiling
            effective_factor = min(window.factor, 1.0 / slo.budget)
            firing = (
                short_burn is not None
                and long_burn is not None
                and short_burn >= effective_factor
                and long_burn >= effective_factor
            )
            tiers.append(
                {
                    "severity": window.severity,
                    "short_seconds": window.short_seconds,
                    "long_seconds": window.long_seconds,
                    "factor": window.factor,
                    "effective_factor": effective_factor,
                    "short_burn": short_burn,
                    "long_burn": long_burn,
                    "firing": firing,
                }
            )
            if long_burn is not None and state == "no_data":
                state = "ok"
            if firing and _SEVERITY[window.severity] > _SEVERITY[state]:
                state = window.severity
        value = self._current_value(slo, now)
        return SLOStatus(
            name=slo.name,
            objective=slo.objective,
            state=state,
            value=value,
            budget=slo.budget,
            tiers=tiers,
        )

    def _current_value(self, slo: SLO, now: float | None) -> float | None:
        if slo.kind == "threshold":
            return self.recorder.latest(slo.value_series)
        # ratio: good fraction over the longest declared window
        longest = max((w.long_seconds for w in slo.windows), default=300.0)
        bad = slo.bad_fraction(self.recorder, longest, now=now)
        return None if bad is None else 1.0 - bad


# ----------------------------------------------------------------------
# stock objectives — series names match the wiring in repro.serve/repro.cli
# ----------------------------------------------------------------------
def default_serve_slos(
    latency_p99_seconds: float = 2.0,
    cache_hit_target: float = 0.5,
    fallback_budget: float = 0.05,
    failure_budget: float = 0.1,
) -> list[SLO]:
    """The serve tier's stock SLOs (see DESIGN.md for the rationale)."""
    return [
        SLO(
            name="submit_to_result_p99",
            objective=f"p99 submit-to-result latency < {latency_p99_seconds:g}s",
            kind="threshold",
            value_series="serve_submit_to_result_p99",
            threshold=latency_p99_seconds,
            op="<",
            budget=0.1,
        ),
        SLO(
            name="cache_hit_ratio",
            objective=f"cache hit ratio > {cache_hit_target:g}",
            kind="ratio",
            bad_series="serve_cache_misses",
            total_series="serve_cache_requests",
            budget=1.0 - cache_hit_target,
        ),
        SLO(
            name="pcg_fallback_rate",
            objective=f"pcg_fallback rate < {fallback_budget:g} per job",
            kind="ratio",
            bad_series="farm_degradations",
            total_series="serve_jobs_finished",
            budget=fallback_budget,
        ),
        SLO(
            name="job_failure_ratio",
            objective=f"job failure ratio < {failure_budget:g}",
            kind="ratio",
            bad_series="serve_jobs_failed",
            total_series="serve_jobs_finished",
            budget=failure_budget,
        ),
    ]


def default_farm_slos(
    fallback_budget: float = 0.05, failure_budget: float = 0.1
) -> list[SLO]:
    """Stock SLOs for a local farm run (the ``repro top`` alerts panel)."""
    return [
        SLO(
            name="pcg_fallback_rate",
            objective=f"pcg_fallback rate < {fallback_budget:g} per job",
            kind="ratio",
            bad_series="farm_degradations",
            total_series="farm_jobs",
            budget=fallback_budget,
        ),
        SLO(
            name="job_failure_ratio",
            objective=f"job failure ratio < {failure_budget:g}",
            kind="ratio",
            bad_series="farm_jobs_failed",
            total_series="farm_jobs",
            budget=failure_budget,
        ),
        SLO(
            name="job_retry_rate",
            objective="job retry/resume rate < 0.25 per job",
            kind="ratio",
            bad_series="farm_resumes",
            total_series="farm_jobs",
            budget=0.25,
        ),
    ]
