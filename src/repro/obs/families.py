"""Labeled metric families: Counter, Gauge and Histogram with frozen labels.

A *family* is one named metric plus a frozen tuple of label names declared
at creation time (``serve_submit_total`` with labels ``(tenant, outcome)``).
Each distinct combination of label *values* is a **series** inside the
family; reading a family enumerates its series.  This is the Prometheus
data model, kept deliberately small:

* **frozen label sets** — every observation must supply exactly the label
  names the family was declared with; a typo'd or missing label raises
  :class:`LabelMismatchError` instead of silently forking a new schema.
* **bounded cardinality** — each family caps its distinct series count
  (``max_series``).  Feeding unbounded values (job ids, file paths) into a
  label raises :class:`LabelCardinalityError` instead of growing without
  bound; labels are for *dimensions*, not identifiers.
* **mergeable** — counters add, histograms fold bucket-wise (reusing
  :class:`repro.trace.HistogramStat`), gauges take the incoming value.
  ``to_dict``/``from_dict`` round-trip losslessly, so worker processes ship
  their families home inside the existing
  :meth:`repro.metrics.MetricsRegistry.to_dict` snapshot and the parent
  folds them with the same ``merge`` call it already uses for flat
  counters — the fork/merge contract of :mod:`repro.metrics` carries over
  unchanged.

Histogram series optionally carry one **exemplar** — the trace span id of
the slowest observation seen — so a scrape that shows a fat tail bucket
links straight back to the PR 5 span that produced it.

Hot paths bind a series once (``family.labels(...)``) and then ``inc`` /
``observe`` through the bound handle, skipping per-call label validation.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.trace import HistogramStat

__all__ = [
    "DEFAULT_MAX_SERIES",
    "Counter",
    "Gauge",
    "Histogram",
    "LabelCardinalityError",
    "LabelMismatchError",
    "MetricFamilies",
    "NULL_FAMILIES",
    "get_families",
]

#: Default cap on distinct series per family.  Generous for real label
#: dimensions (tenants × outcomes), far below anything that could OOM.
DEFAULT_MAX_SERIES = 256


class LabelMismatchError(ValueError):
    """The supplied label names differ from the family's frozen set."""


class LabelCardinalityError(ValueError):
    """A new label-value combination would exceed the family's series cap."""


class _Bound:
    """One series of a family, pre-resolved: the hot-path handle."""

    __slots__ = ("_family", "_key")

    def __init__(self, family: "MetricFamily", key: tuple[str, ...]):
        self._family = family
        self._key = key

    @property
    def labels(self) -> dict[str, str]:
        return dict(zip(self._family.label_names, self._key))


class BoundCounter(_Bound):
    def inc(self, value: float = 1.0) -> None:
        self._family._add(self._key, value)

    @property
    def value(self) -> float:
        return self._family._series.get(self._key, 0.0)


class BoundGauge(_Bound):
    def set(self, value: float) -> None:
        self._family._set(self._key, value)

    def inc(self, value: float = 1.0) -> None:
        self._family._add(self._key, value)

    @property
    def value(self) -> float:
        return self._family._series.get(self._key, 0.0)


class BoundHistogram(_Bound):
    def observe(self, value: float, exemplar: str | None = None) -> None:
        self._family._observe(self._key, value, exemplar)

    @property
    def stat(self) -> HistogramStat | None:
        cell = self._family._series.get(self._key)
        return cell[0] if cell is not None else None


class MetricFamily:
    """Shared machinery of one named family; see the concrete subclasses."""

    kind = "untyped"
    _bound_cls = _Bound

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: Iterable[str] = (),
        unit: str = "",
        max_series: int = DEFAULT_MAX_SERIES,
        enabled: bool = True,
        lock: threading.RLock | None = None,
    ):
        self.name = name
        self.help = help
        self.unit = unit
        self.label_names = tuple(label_names)
        if len(set(self.label_names)) != len(self.label_names):
            raise LabelMismatchError(f"{name}: duplicate label names {self.label_names}")
        self.max_series = int(max_series)
        self.enabled = enabled
        self._series: dict[tuple[str, ...], object] = {}
        self._lock = lock if lock is not None else threading.RLock()
        self._null_bound = self._bound_cls(_NULL_FAMILY_SINK, ())

    # ------------------------------------------------------------------
    def labels(self, **labels: object) -> _Bound:
        """Resolve one series, validating the label set; returns a handle."""
        if not self.enabled:
            return self._null_bound
        return self._bound_cls(self, self._key(labels))

    def labels_or_overflow(self, overflow_label: str, **labels: object) -> _Bound:
        """Like :meth:`labels`, folding one client-supplied label at the cap.

        When the series would exceed ``max_series``, the value of
        ``overflow_label`` is replaced with ``"_overflow"`` and that series
        is exempt from the cardinality guard — a capped family always has
        somewhere to count, so hostile label values (a client inventing a
        tenant per request) degrade to an aggregate instead of dropping
        observations or failing the caller.  Label-name mismatches still
        raise: the fold forgives cardinality, not schema abuse.
        """
        if not self.enabled:
            return self._null_bound
        try:
            return self._bound_cls(self, self._key(labels))
        except LabelCardinalityError:
            folded = dict(labels)
            if overflow_label not in folded:
                raise
            folded[overflow_label] = "_overflow"
            names = self.label_names
            if len(folded) != len(names) or any(n not in folded for n in names):
                raise
            # bypass _key: the overflow series may be the cap+1'th
            return self._bound_cls(self, tuple(str(folded[n]) for n in names))

    def _lookup_key(self, labels: dict[str, object]) -> tuple[str, ...]:
        """Validate the label names and build the series key — no cap check.

        For read-only lookups: a never-recorded series must read as its
        zero/None default even when the family sits at the cardinality cap,
        because a pure read creates nothing.
        """
        names = self.label_names
        if len(labels) != len(names) or any(n not in labels for n in names):
            raise LabelMismatchError(
                f"{self.name}: got labels {sorted(labels)}, declared {sorted(names)}"
            )
        return tuple(str(labels[n]) for n in names)

    def _key(self, labels: dict[str, object]) -> tuple[str, ...]:
        key = self._lookup_key(labels)
        if key not in self._series and len(self._series) >= self.max_series:
            raise LabelCardinalityError(
                f"{self.name}: new series {dict(zip(self.label_names, key))} "
                f"would exceed the cardinality cap ({self.max_series} series); "
                f"a label is being fed unbounded values (ids, paths, timestamps)"
            )
        return key

    def _merge_key(self, key: tuple[str, ...]) -> tuple[str, ...]:
        """Resolve the series key for a merged-in cell.

        Existing and under-cap keys pass through; past the cap the cell
        folds into the all-``_overflow`` series (itself cap-exempt,
        mirroring :meth:`labels_or_overflow`) instead of raising.  Merge
        runs on the result-delivery path — a worker snapshot whose series
        union crosses the cap must degrade to an aggregate, not crash the
        pool or grow the parent without bound.
        """
        with self._lock:
            if key in self._series or len(self._series) < self.max_series:
                return key
        return tuple("_overflow" for _ in self.label_names)

    # value-cell primitives, overridden where the cell is not a float ------
    def _add(self, key: tuple[str, ...], value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + value

    def _set(self, key: tuple[str, ...], value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._series[key] = float(value)

    # ------------------------------------------------------------------
    def samples(self) -> list[tuple[dict[str, str], object]]:
        """``(labels, value)`` per series, sorted by label values."""
        with self._lock:
            items = sorted(self._series.items())
        return [(dict(zip(self.label_names, key)), value) for key, value in items]

    def __len__(self) -> int:
        return len(self._series)

    # ------------------------------------------------------------------
    def _merge_cell(self, key: tuple[str, ...], payload: object) -> None:
        raise NotImplementedError

    def to_dict(self) -> dict:
        with self._lock:
            series = [
                {"labels": list(key), "value": self._cell_to_dict(value)}
                for key, value in sorted(self._series.items())
            ]
        return {
            "kind": self.kind,
            "help": self.help,
            "unit": self.unit,
            "labels": list(self.label_names),
            "max_series": self.max_series,
            "series": series,
        }

    def _cell_to_dict(self, value: object) -> object:
        return value

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"{type(self).__name__}({self.name!r}, labels={self.label_names}, "
            f"{len(self._series)} series)"
        )


class Counter(MetricFamily):
    """Monotonically increasing labeled count; merges by addition."""

    kind = "counter"
    _bound_cls = BoundCounter

    def inc(self, value: float = 1.0, **labels: object) -> None:
        if not self.enabled:
            return
        self._add(self._key(labels), value)

    def value(self, **labels: object) -> float:
        """Current value of one series (0 if never incremented)."""
        return self._series.get(self._lookup_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every series."""
        with self._lock:
            return sum(self._series.values())

    def _merge_cell(self, key: tuple[str, ...], payload: object) -> None:
        self._add(self._merge_key(key), float(payload))


class Gauge(MetricFamily):
    """A labeled instantaneous value; merge takes the incoming value."""

    kind = "gauge"
    _bound_cls = BoundGauge

    def set(self, value: float, **labels: object) -> None:
        if not self.enabled:
            return
        self._set(self._key(labels), value)

    def inc(self, value: float = 1.0, **labels: object) -> None:
        if not self.enabled:
            return
        self._add(self._key(labels), value)

    def value(self, **labels: object) -> float:
        return self._series.get(self._lookup_key(labels), 0.0)

    def _merge_cell(self, key: tuple[str, ...], payload: object) -> None:
        self._set(self._merge_key(key), float(payload))


class Histogram(MetricFamily):
    """Labeled duration/size distribution on :class:`HistogramStat` buckets.

    Each series is ``(HistogramStat, exemplar | None)``; the exemplar — a
    trace span id plus the value it was observed with — tracks the slowest
    observation so far, linking the tail bucket back to its span.
    """

    kind = "histogram"
    _bound_cls = BoundHistogram

    def observe(self, value: float, exemplar: str | None = None, **labels: object) -> None:
        if not self.enabled:
            return
        self._observe(self._key(labels), value, exemplar)

    def _observe(self, key: tuple[str, ...], value: float, exemplar: str | None) -> None:
        if not self.enabled:
            return
        with self._lock:
            cell = self._series.get(key)
            if cell is None:
                cell = self._series[key] = [HistogramStat(), None]
            cell[0].add(value)
            if exemplar is not None and (cell[1] is None or value >= cell[1]["value"]):
                cell[1] = {"span_id": exemplar, "value": float(value)}

    def stat(self, **labels: object) -> HistogramStat | None:
        """The :class:`HistogramStat` of one series (None if unobserved)."""
        cell = self._series.get(self._lookup_key(labels))
        return cell[0] if cell is not None else None

    def quantile(self, q: float, **labels: object) -> float:
        """Quantile of one series (0.0 when the series is empty/missing)."""
        stat = self.stat(**labels)
        return stat.quantile(q) if stat is not None and stat.count else 0.0

    def _cell_to_dict(self, value: object) -> object:
        stat, exemplar = value
        return {"hist": stat.to_dict(), "exemplar": exemplar}

    def _merge_cell(self, key: tuple[str, ...], payload: object) -> None:
        if not self.enabled:
            return
        incoming = HistogramStat.from_dict(payload["hist"])
        exemplar = payload.get("exemplar")
        with self._lock:
            key = self._merge_key(key)
            cell = self._series.get(key)
            if cell is None:
                cell = self._series[key] = [HistogramStat(), None]
            cell[0].merge(incoming)
            if exemplar is not None and (
                cell[1] is None or exemplar["value"] >= cell[1]["value"]
            ):
                cell[1] = dict(exemplar)


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricFamilies:
    """A registry of labeled metric families.

    ``counter``/``gauge``/``histogram`` get-or-create by name; re-declaring
    an existing family validates that its kind and label set are unchanged.
    A disabled registry (``enabled=False``) hands out no-op families so
    instrumentation stays unconditional in hot paths, mirroring
    :class:`repro.metrics.MetricsRegistry`.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _declare(
        self,
        cls: type,
        name: str,
        help: str,
        labels: Iterable[str],
        unit: str,
        max_series: int | None,
    ) -> MetricFamily:
        label_names = tuple(labels)
        if not self.enabled:
            # hand out a detached no-op family: a disabled registry stays
            # empty forever, no matter how many call sites declare through it
            return cls(
                name,
                help=help,
                label_names=label_names,
                unit=unit,
                max_series=max_series if max_series is not None else DEFAULT_MAX_SERIES,
                enabled=False,
            )
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls):
                    raise LabelMismatchError(
                        f"{name}: already declared as {family.kind}, not {cls.kind}"
                    )
                if family.label_names != label_names:
                    raise LabelMismatchError(
                        f"{name}: label set is frozen at {family.label_names}, "
                        f"got {label_names}"
                    )
                return family
            family = cls(
                name,
                help=help,
                label_names=label_names,
                unit=unit,
                max_series=max_series if max_series is not None else DEFAULT_MAX_SERIES,
                enabled=self.enabled,
                lock=self._lock,
            )
            self._families[name] = family
            return family

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        unit: str = "",
        max_series: int | None = None,
    ) -> Counter:
        """Get or declare a :class:`Counter` family."""
        return self._declare(Counter, name, help, labels, unit, max_series)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        unit: str = "",
        max_series: int | None = None,
    ) -> Gauge:
        """Get or declare a :class:`Gauge` family."""
        return self._declare(Gauge, name, help, labels, unit, max_series)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        unit: str = "",
        max_series: int | None = None,
    ) -> Histogram:
        """Get or declare a :class:`Histogram` family."""
        return self._declare(Histogram, name, help, labels, unit, max_series)

    # ------------------------------------------------------------------
    def get(self, name: str) -> MetricFamily | None:
        """The named family, or ``None`` if never declared."""
        return self._families.get(name)

    def families(self) -> list[MetricFamily]:
        """Every declared family, sorted by name."""
        with self._lock:
            return [self._families[k] for k in sorted(self._families)]

    def __len__(self) -> int:
        return len(self._families)

    def __bool__(self) -> bool:
        # truthiness == "has anything to export"; an empty registry merges
        # and renders as the identity
        return bool(self._families)

    def reset(self) -> None:
        """Drop every family (keeps the enabled state)."""
        with self._lock:
            self._families.clear()

    # ------------------------------------------------------------------
    def merge(self, other: "MetricFamilies | dict") -> "MetricFamilies":
        """Fold another registry (or a ``to_dict`` snapshot) into this one.

        Counter and histogram series combine commutatively; gauge series
        take the incoming value.  Families unknown here are declared from
        the snapshot's own schema.  Incoming series past the cardinality
        cap fold into the ``_overflow`` series rather than raising — merge
        runs on the result-delivery path and must never crash it.  Returns
        ``self``.
        """
        if not self.enabled:
            return self
        snapshot = other.to_dict() if isinstance(other, MetricFamilies) else other
        for name, fam_dict in snapshot.get("families", {}).items():
            cls = _KINDS.get(fam_dict.get("kind"))
            if cls is None:
                continue
            family = self._declare(
                cls,
                name,
                fam_dict.get("help", ""),
                fam_dict.get("labels", ()),
                fam_dict.get("unit", ""),
                fam_dict.get("max_series"),
            )
            for entry in fam_dict.get("series", ()):
                family._merge_cell(tuple(entry["labels"]), entry["value"])
        return self

    def to_dict(self) -> dict:
        """Snapshot as a plain-JSON-serialisable dict."""
        with self._lock:
            return {
                "families": {
                    name: self._families[name].to_dict()
                    for name in sorted(self._families)
                }
            }

    @classmethod
    def from_dict(cls, d: dict) -> "MetricFamilies":
        """Rebuild a registry from a :meth:`to_dict` snapshot."""
        return cls().merge(d)


#: A permanently-disabled family used as the sink behind bound handles of
#: disabled families, so a cached handle stays a no-op forever.
_NULL_FAMILY_SINK = MetricFamily.__new__(MetricFamily)
_NULL_FAMILY_SINK.name = "null"
_NULL_FAMILY_SINK.label_names = ()
_NULL_FAMILY_SINK.enabled = False
_NULL_FAMILY_SINK._series = {}
_NULL_FAMILY_SINK._lock = threading.RLock()

#: Shared disabled registry: zero-overhead default, like ``NULL_METRICS``.
NULL_FAMILIES = MetricFamilies(enabled=False)


def get_families() -> MetricFamilies:
    """The labeled families attached to the process-default registry.

    Fork-aware by construction: :func:`repro.metrics.get_metrics` installs
    a fresh registry (and therefore fresh families) after a PID change, and
    workers ship both home in one ``to_dict`` snapshot.
    """
    from repro.metrics import get_metrics

    return get_metrics().families
