"""Tests for :mod:`repro.trace` — spans, histograms, events, round-trips."""

from __future__ import annotations

import json
import math
import threading
import time

import numpy as np
import pytest

from repro.trace import (
    EVENT_TYPES,
    Event,
    HistogramStat,
    NULL_TRACER,
    Span,
    Tracer,
    format_summary,
    get_tracer,
    read_trace,
    set_tracer,
    summarize,
)


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------


class TestSpans:
    def test_nesting_records_parent_links(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                pass
        spans = {s.name: s for s in tr.spans()}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id

    def test_span_ids_are_unique(self):
        tr = Tracer()
        for _ in range(10):
            with tr.span("s"):
                pass
        ids = [s.span_id for s in tr.spans()]
        assert len(set(ids)) == len(ids)

    def test_attrs_can_be_set_during_the_block(self):
        tr = Tracer()
        with tr.span("solve", solver="pcg") as sp:
            sp.attrs["iterations"] = 42
        (span,) = tr.spans()
        assert span.attrs == {"solver": "pcg", "iterations": 42}

    def test_durations_are_positive_and_ordered(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                time.sleep(0.002)
        spans = {s.name: s for s in tr.spans()}
        assert spans["inner"].dur > 0
        assert spans["outer"].dur >= spans["inner"].dur

    def test_every_span_feeds_its_name_histogram(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("step"):
                pass
        assert tr.histograms["step"].count == 3

    def test_disabled_tracer_yields_none_and_records_nothing(self):
        tr = Tracer(enabled=False)
        with tr.span("x") as sp:
            assert sp is None
        tr.event("step", step=1)
        tr.observe("h", 1.0)
        assert tr.spans() == [] and tr.events() == [] and tr.histograms == {}

    def test_concurrent_threads_do_not_interleave_stacks(self):
        tr = Tracer()
        errors = []

        def worker(name):
            try:
                for _ in range(50):
                    with tr.span(f"outer/{name}"):
                        with tr.span(f"inner/{name}"):
                            pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        spans = tr.spans()
        assert len(spans) == 4 * 100
        by_id = {s.span_id: s for s in spans}
        for s in spans:
            if s.parent_id is not None:
                # a child's parent is always from the same thread
                assert by_id[s.parent_id].tid == s.tid


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------


class TestEvents:
    def test_unknown_event_type_is_rejected(self):
        with pytest.raises(ValueError, match="unknown event type"):
            Event(type="nonsense")

    def test_event_stream_sorted_by_step(self):
        tr = Tracer()
        tr.event("divnorm", step=3, value=0.3)
        tr.event("divnorm", step=1, value=0.1)
        tr.event("model_switch", step=2, from_model="a", to_model="b")
        steps = [e.step for e in tr.events()]
        assert steps == [1, 2, 3]
        assert [e.step for e in tr.events("divnorm")] == [1, 3]

    def test_event_round_trip(self):
        ev = Event(type="pcg_fallback", step=7, t=123.5, attrs={"reason": "x"})
        assert Event.from_dict(ev.to_dict()) == ev

    def test_vocabulary_covers_the_issue_event_types(self):
        assert {
            "step", "divnorm", "model_switch", "pcg_fallback",
            "checkpoint", "plan_build",
        } <= EVENT_TYPES


# ----------------------------------------------------------------------
# histograms
# ----------------------------------------------------------------------


class TestHistogramStat:
    def test_quantiles_bracket_the_data(self):
        h = HistogramStat()
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=-5, sigma=1.5, size=2000)
        for v in values:
            h.add(float(v))
        for q in (0.5, 0.95, 0.99):
            est = h.quantile(q)
            assert h.min <= est <= h.max
        # log-bucket resolution: p50 within one bucket width (~19%)
        true_p50 = float(np.quantile(values, 0.5))
        assert abs(h.quantile(0.5) - true_p50) / true_p50 < 0.25

    def test_quantile_of_single_observation_is_exactly_it(self):
        h = HistogramStat()
        h.add(0.125)
        assert h.quantile(0.0) == h.quantile(0.5) == h.quantile(1.0) == 0.125

    def test_empty_quantile_is_nan(self):
        assert math.isnan(HistogramStat().quantile(0.5))

    def test_merge_is_commutative(self):
        rng = np.random.default_rng(1)
        xs, ys = rng.exponential(0.01, 100), rng.exponential(0.5, 100)
        a1, b1 = HistogramStat(), HistogramStat()
        a2, b2 = HistogramStat(), HistogramStat()
        for x in xs:
            a1.add(x), a2.add(x)
        for y in ys:
            b1.add(y), b2.add(y)
        ab = a1.merge(b1).to_dict()
        ba = b2.merge(a2).to_dict()
        assert ab == ba

    def test_merge_with_empty_is_identity(self):
        h = HistogramStat()
        h.add(0.5)
        before = h.to_dict()
        h.merge(HistogramStat())
        assert h.to_dict() == before
        empty = HistogramStat()
        empty.merge(h)
        assert empty.to_dict() == before

    def test_round_trip_including_empty(self):
        h = HistogramStat()
        for v in (1e-8, 3e-4, 0.02, 1.7):
            h.add(v)
        assert HistogramStat.from_dict(h.to_dict()).to_dict() == h.to_dict()
        assert HistogramStat.from_dict(HistogramStat().to_dict()).to_dict() == HistogramStat().to_dict()


# ----------------------------------------------------------------------
# serialisation / export
# ----------------------------------------------------------------------


def _sample_tracer() -> Tracer:
    tr = Tracer()
    with tr.span("sim", steps=2):
        for step in range(2):
            with tr.span("step", step=step):
                with tr.span("projection", solver="pcg") as sp:
                    sp.attrs["iterations"] = 5 + step
            tr.event("divnorm", step=step, value=0.01 * (step + 1))
            tr.event("step", step=step, seconds=0.001)
    tr.event("model_switch", step=1, from_model="a", to_model="b")
    return tr


class TestSerialisation:
    def test_to_dict_round_trip_is_lossless(self):
        tr = _sample_tracer()
        snap = tr.to_dict()
        restored = Tracer.from_dict(snap)
        assert restored.to_dict() == snap

    def test_merge_of_snapshot_dicts(self):
        a, b = _sample_tracer(), _sample_tracer()
        merged = Tracer().merge(a.to_dict()).merge(b.to_dict())
        assert len(merged.spans()) == len(a.spans()) + len(b.spans())
        assert merged.histograms["step"].count == 4
        assert Tracer().merge({}).to_dict()["spans"] == []

    def test_jsonl_round_trip(self, tmp_path):
        tr = _sample_tracer()
        path = tr.write_jsonl(tmp_path / "trace.jsonl")
        restored = read_trace(path)
        assert restored.to_dict() == tr.to_dict()

    def test_chrome_file_round_trips_through_embedded_snapshot(self, tmp_path):
        tr = _sample_tracer()
        path = tr.write_chrome(tmp_path / "trace.json")
        restored = read_trace(path)
        assert restored.to_dict() == tr.to_dict()

    def test_chrome_format_is_viewer_loadable(self, tmp_path):
        tr = _sample_tracer()
        doc = json.loads(tr.write_chrome(tmp_path / "t.json").read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events, "chrome trace must not be empty"
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(complete) == len(tr.spans())
        assert len(instants) == len(tr.events())
        for e in events:
            assert e["ts"] >= 0.0  # relative microsecond timestamps
            assert {"name", "cat", "ph", "pid", "tid"} <= set(e)
        names = {e["name"] for e in complete}
        assert {"sim", "step", "projection"} <= names

    def test_plain_chrome_trace_without_snapshot_is_reconstructed(self, tmp_path):
        tr = _sample_tracer()
        doc = tr.to_chrome()
        del doc["repro"]
        path = tmp_path / "plain.json"
        path.write_text(json.dumps(doc))
        restored = read_trace(path)
        assert len(restored.spans()) == len(tr.spans())
        assert len(restored.events("divnorm")) == 2
        assert restored.histograms["projection"].count == 2


# ----------------------------------------------------------------------
# summaries
# ----------------------------------------------------------------------


class TestSummaries:
    def test_summarize_has_percentiles_per_span_name(self):
        s = summarize(_sample_tracer())
        assert {"sim", "step", "projection"} <= set(s)
        row = s["step"]
        assert row["count"] == 2
        assert row["p50"] <= row["p95"] <= row["p99"] <= row["max"]

    def test_format_summary_renders_every_span_name(self):
        text = format_summary(_sample_tracer())
        for name in ("sim", "step", "projection", "p50", "p95"):
            assert name in text
        assert format_summary(Tracer()) == "(no spans recorded)"

    def test_event_type_counts_sorted_by_frequency(self):
        from repro.trace import event_type_counts

        counts = event_type_counts(_sample_tracer())
        assert counts == {"divnorm": 2, "step": 2, "model_switch": 1}
        assert list(counts)[-1] == "model_switch"  # least frequent last

    def test_slowest_spans_ordered_and_capped(self):
        from repro.trace import slowest_spans

        spans = slowest_spans(_sample_tracer(), n=3)
        assert len(spans) == 3
        durations = [sp.dur for sp in spans]
        assert durations == sorted(durations, reverse=True)
        assert spans[0].name == "sim"  # the enclosing span is the slowest

    def test_format_summary_includes_events_and_slowest_sections(self):
        text = format_summary(_sample_tracer())
        assert "events: divnorm=2  step=2  model_switch=1" in text
        assert "slowest spans:" in text
        assert "[span " in text


# ----------------------------------------------------------------------
# process default
# ----------------------------------------------------------------------


class TestProcessDefault:
    def test_default_tracer_is_disabled(self):
        assert get_tracer().enabled is False

    def test_set_tracer_returns_previous(self):
        tr = Tracer()
        previous = set_tracer(tr)
        try:
            assert get_tracer() is tr
        finally:
            set_tracer(previous)
        assert get_tracer() is previous

    def test_null_tracer_is_shared_and_disabled(self):
        assert NULL_TRACER.enabled is False


# ----------------------------------------------------------------------
# overhead guard (coarse; CI's bench gate is the strict 5% check)
# ----------------------------------------------------------------------


def test_disabled_span_overhead_is_tiny():
    tr = Tracer(enabled=False)
    n = 20_000
    t0 = time.perf_counter()
    for _ in range(n):
        with tr.span("hot"):
            pass
    per_call = (time.perf_counter() - t0) / n
    # a no-op span must stay far below any simulation-step cost
    assert per_call < 50e-6


def test_span_dataclass_round_trip():
    sp = Span(name="s", span_id="1:2:3", parent_id=None, t=5.0, dur=0.25,
              attrs={"k": 1}, pid=1, tid=2)
    assert Span.from_dict(sp.to_dict()) == sp
