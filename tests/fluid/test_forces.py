"""Tests for body forces."""

import numpy as np
import pytest

from repro.fluid import (
    MACGrid2D,
    add_buoyancy,
    add_gravity,
    add_vorticity_confinement,
)


class TestBuoyancy:
    def test_smoke_rises(self):
        g = MACGrid2D(16, 16)
        g.density[10, 8] = 1.0
        add_buoyancy(g, dt=0.1, alpha=2.0)
        # the faces above/below the smoke cell get an upward (negative v) kick
        assert g.v[10, 8] < 0.0

    def test_no_density_no_force(self):
        g = MACGrid2D(16, 16)
        add_buoyancy(g, dt=0.1)
        np.testing.assert_array_equal(g.v, 0.0)

    def test_force_scales_with_alpha_and_dt(self):
        g1 = MACGrid2D(16, 16)
        g1.density[10, 8] = 1.0
        add_buoyancy(g1, dt=0.1, alpha=1.0)
        g2 = MACGrid2D(16, 16)
        g2.density[10, 8] = 1.0
        add_buoyancy(g2, dt=0.2, alpha=2.0)
        assert g2.v[10, 8] == pytest.approx(4.0 * g1.v[10, 8])

    def test_solid_faces_remain_zero(self):
        g = MACGrid2D(16, 16)
        g.density[1, :] = 1.0  # smoke next to the top wall
        add_buoyancy(g, dt=0.1)
        assert (g.v[0, :] == 0).all()
        assert (g.v[1, :] == 0).all()  # face into the wall


class TestGravity:
    def test_gravity_points_down(self):
        g = MACGrid2D(16, 16)
        add_gravity(g, dt=0.1, g=10.0)
        assert g.v[8, 8] == pytest.approx(1.0)

    def test_gravity_respects_walls(self):
        g = MACGrid2D(16, 16)
        add_gravity(g, dt=0.1)
        assert (g.v[0, :] == 0).all() and (g.v[-1, :] == 0).all()


class TestVorticityConfinement:
    def test_zero_velocity_no_force(self):
        g = MACGrid2D(16, 16)
        add_vorticity_confinement(g, dt=0.1)
        np.testing.assert_array_equal(g.u, 0.0)
        np.testing.assert_array_equal(g.v, 0.0)

    def test_adds_energy_to_swirling_flow(self):
        g = MACGrid2D(32, 32)
        # a simple vortex: rotational velocity around the centre
        x, y = g.cell_centers()
        ux, uy = g.u_positions()
        vx, vy = g.v_positions()
        g.u = -(uy - 0.5)
        g.v = vx - 0.5
        g.enforce_solid_boundaries()
        e0 = (g.u**2).sum() + (g.v**2).sum()
        add_vorticity_confinement(g, dt=0.05, eps=1.0)
        e1 = (g.u**2).sum() + (g.v**2).sum()
        assert e1 != pytest.approx(e0)

    def test_boundaries_enforced_after(self):
        g = MACGrid2D(32, 32)
        rng = np.random.default_rng(0)
        g.u = rng.standard_normal(g.u.shape)
        g.v = rng.standard_normal(g.v.shape)
        add_vorticity_confinement(g, dt=0.05, eps=1.0)
        assert (g.u[:, 0] == 0).all() and (g.u[:, -1] == 0).all()
        assert (g.v[0, :] == 0).all() and (g.v[-1, :] == 0).all()
