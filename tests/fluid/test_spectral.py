"""SpectralSolver: DCT direct solve, eligibility gating and PCG fallback."""

import numpy as np
import pytest

from repro.fluid import MACGrid2D, PCGSolver, SpectralSolver
from repro.fluid.geometry import disc_mask
from repro.fluid.kernels import GeometryKernels, spectral_eligible
from repro.fluid.laplacian import remove_nullspace
from repro.fluid.operators import apply_laplacian
from repro.metrics import MetricsRegistry


def box(n=32):
    return MACGrid2D(n, n).solid.copy()


def obstructed(n=32):
    solid = box(n)
    solid |= disc_mask(solid.shape, n // 2, n // 2, n // 6)
    return solid


def make_rhs(solid, seed=1):
    rng = np.random.default_rng(seed)
    return np.where(~solid, rng.standard_normal(solid.shape), 0.0)


class TestDirectSolve:
    @pytest.mark.parametrize("n", [8, 17, 32, 48])
    def test_residual_is_direct_solve_small(self, n):
        solid = box(n)
        b = make_rhs(solid)
        solver = SpectralSolver(metrics=MetricsRegistry())
        result = solver.solve(b, solid)
        assert result.iterations == 1
        assert result.converged
        # direct solve: residual at machine precision, far below the tol
        bnorm = np.abs(b[~solid]).max()
        assert result.residual_norm <= 1e-10 * bnorm

    def test_matches_tight_pcg(self):
        solid = box(32)
        b = make_rhs(solid, seed=5)
        spec = SpectralSolver(metrics=MetricsRegistry()).solve(b, solid)
        pcg = PCGSolver(tol=1e-10, metrics=MetricsRegistry()).solve(b, solid)
        np.testing.assert_allclose(spec.pressure, pcg.pressure, atol=1e-7)

    def test_pressure_satisfies_poisson_equation(self):
        solid = box(24)
        b = remove_nullspace(make_rhs(solid, seed=9), solid)
        result = SpectralSolver(metrics=MetricsRegistry()).solve(b, solid)
        lap = apply_laplacian(result.pressure, solid)
        np.testing.assert_allclose(lap[~solid], b[~solid], atol=1e-11)

    def test_zero_rhs_short_circuits(self):
        solid = box(16)
        result = SpectralSolver(metrics=MetricsRegistry()).solve(
            np.zeros_like(solid, dtype=np.float64), solid
        )
        assert result.iterations == 0
        assert result.converged
        np.testing.assert_array_equal(result.pressure, 0.0)

    def test_pressure_zero_on_solids_and_zero_mean(self):
        solid = box(20)
        result = SpectralSolver(metrics=MetricsRegistry()).solve(
            make_rhs(solid, seed=3), solid
        )
        np.testing.assert_array_equal(result.pressure[solid], 0.0)
        assert abs(result.pressure[~solid].mean()) < 1e-12


class TestFallback:
    def test_obstructed_geometry_falls_back_to_pcg(self):
        solid = obstructed()
        b = make_rhs(solid)
        metrics = MetricsRegistry()
        solver = SpectralSolver(metrics=metrics)
        result = solver.solve(b, solid)
        expected = PCGSolver(metrics=MetricsRegistry()).solve(b, solid)
        assert metrics.to_dict()["counters"]["solver/spectral/fallbacks"] == 1
        assert result.iterations == expected.iterations
        np.testing.assert_array_equal(result.pressure, expected.pressure)

    def test_custom_fallback_is_used(self):
        class Recorder(PCGSolver):
            calls = 0

            def solve(self, b, solid):
                type(self).calls += 1
                return super().solve(b, solid)

        solid = obstructed()
        solver = SpectralSolver(
            fallback=Recorder(metrics=MetricsRegistry()), metrics=MetricsRegistry()
        )
        solver.solve(make_rhs(solid), solid)
        assert Recorder.calls == 1

    def test_eligible_geometry_does_not_fall_back(self):
        solid = box()
        metrics = MetricsRegistry()
        SpectralSolver(metrics=metrics).solve(make_rhs(solid), solid)
        counters = metrics.to_dict()["counters"]
        assert "solver/spectral/fallbacks" not in counters
        assert counters["solver/spectral/solves"] == 1


class TestProtocol:
    def test_name_and_reset(self):
        solver = SpectralSolver(metrics=MetricsRegistry())
        assert solver.name == "spectral"
        solid = box()
        solver.solve(make_rhs(solid), solid)
        assert solver._plan_cache._value is not None
        solver.reset()
        assert solver._plan_cache._value is None
        assert solver._kernels_cache._value is None

    def test_plan_cache_hits_on_repeat_geometry(self):
        solid = box()
        metrics = MetricsRegistry()
        solver = SpectralSolver(metrics=metrics)
        b = make_rhs(solid)
        solver.solve(b, solid)
        solver.solve(b, solid)
        counters = metrics.to_dict()["counters"]
        assert counters["cache/spectral_plan/miss"] == 1
        assert counters["cache/spectral_plan/hit"] == 1

    def test_flops_reported(self):
        solid = box()
        result = SpectralSolver(metrics=MetricsRegistry()).solve(make_rhs(solid), solid)
        kern = GeometryKernels(solid)
        assert result.flops >= 10.0 * kern.n


class TestEligibility:
    def test_box_eligible(self):
        assert spectral_eligible(box())

    def test_interior_solid_not_eligible(self):
        assert not spectral_eligible(obstructed())
