"""Tests for the geometric multigrid solver."""

import numpy as np
import pytest

from repro.fluid import (
    MACGrid2D,
    MultigridSolver,
    PCGSolver,
    apply_laplacian,
    build_hierarchy,
    make_smoke_plume,
    vcycle,
)


def compatible_rhs(solid, seed):
    rng = np.random.default_rng(seed)
    fluid = ~solid
    b = np.where(fluid, rng.standard_normal(solid.shape), 0.0)
    return np.where(fluid, b - b[fluid].mean(), 0.0)


class TestHierarchy:
    def test_requires_border_wall(self):
        with pytest.raises(ValueError):
            build_hierarchy(np.zeros((8, 8), dtype=bool))

    def test_level_count_and_shapes(self):
        g = MACGrid2D(34, 34)  # interior 32 -> 16 -> 8
        levels = build_hierarchy(g.solid, max_levels=3)
        assert [lvl.solid.shape for lvl in levels] == [(34, 34), (18, 18), (10, 10)]

    def test_max_levels_respected(self):
        g = MACGrid2D(66, 66)
        assert len(build_hierarchy(g.solid, max_levels=2)) == 2

    def test_odd_interior_stops_coarsening(self):
        g = MACGrid2D(9, 9)  # interior 7: odd
        assert len(build_hierarchy(g.solid)) == 1

    def test_coarse_levels_keep_border_wall(self):
        g = MACGrid2D(34, 34)
        for lvl in build_hierarchy(g.solid):
            s = lvl.solid
            assert s[0, :].all() and s[-1, :].all() and s[:, 0].all() and s[:, -1].all()

    def test_obstacles_coarsen_majority_rule(self):
        g = MACGrid2D(34, 34)
        mask = np.zeros((34, 34), dtype=bool)
        mask[9:17, 9:17] = True  # 8x8 block, child-aligned
        g.add_solid(mask)
        levels = build_hierarchy(g.solid)
        coarse = levels[1].solid
        # fine interior rows 9..16 map to coarse interior rows 4..7 (+1 wall)
        assert coarse[5:9, 5:9].all()


class TestVcycle:
    def test_single_cycle_reduces_residual(self):
        g = MACGrid2D(34, 34)
        b = compatible_rhs(g.solid, 0)
        levels = build_hierarchy(g.solid)
        p = vcycle(levels, b)
        r = np.where(g.fluid, b - apply_laplacian(p, g.solid), 0.0)
        assert np.abs(r).max() < 0.2 * np.abs(b).max()

    def test_cycle_is_linear_operator(self):
        g = MACGrid2D(18, 18)
        levels = build_hierarchy(g.solid)
        a = compatible_rhs(g.solid, 1)
        b = compatible_rhs(g.solid, 2)
        np.testing.assert_allclose(
            vcycle(levels, a + b), vcycle(levels, a) + vcycle(levels, b), atol=1e-9
        )


class TestMultigridSolver:
    def test_converges_on_clean_domain(self):
        g = MACGrid2D(34, 34)
        res = MultigridSolver(tol=1e-8).solve(compatible_rhs(g.solid, 0), g.solid)
        assert res.converged
        assert res.iterations < 15

    def test_converges_with_obstacles(self):
        g, _ = make_smoke_plume(34, 34, rng=5)
        res = MultigridSolver(tol=1e-7, max_cycles=80).solve(compatible_rhs(g.solid, 1), g.solid)
        assert res.converged

    def test_agrees_with_pcg(self):
        g, _ = make_smoke_plume(34, 34, rng=7)
        b = compatible_rhs(g.solid, 2)
        p_pcg = PCGSolver(tol=1e-10).solve(b, g.solid).pressure
        p_mg = MultigridSolver(tol=1e-10, max_cycles=200).solve(b, g.solid).pressure
        assert np.abs(p_pcg - p_mg).max() < 1e-6 * max(np.abs(p_pcg).max(), 1e-12)

    def test_zero_rhs(self):
        g = MACGrid2D(18, 18)
        res = MultigridSolver().solve(np.zeros(g.shape), g.solid)
        assert res.converged and res.iterations == 0

    def test_solution_mean_zero(self):
        g = MACGrid2D(34, 34)
        res = MultigridSolver(tol=1e-8).solve(compatible_rhs(g.solid, 3), g.solid)
        assert res.pressure[g.fluid].mean() == pytest.approx(0.0, abs=1e-12)

    def test_hierarchy_cached_per_mask(self):
        solver = MultigridSolver()
        g = MACGrid2D(34, 34)
        solver.solve(compatible_rhs(g.solid, 4), g.solid)
        levels = solver._hierarchy_cache._value
        assert levels is not None
        solver.solve(compatible_rhs(g.solid, 5), g.solid)
        assert solver._hierarchy_cache._value is levels
        solver.reset()
        assert solver._hierarchy_cache._value is None

    def test_faster_convergence_than_jacobi_preconditioned_pcg_in_cycles(self):
        # MG should need far fewer cycles than unpreconditioned CG iterations
        g = MACGrid2D(34, 34)
        b = compatible_rhs(g.solid, 6)
        mg = MultigridSolver(tol=1e-8).solve(b, g.solid)
        cg = PCGSolver(tol=1e-8, preconditioner="none").solve(b, g.solid)
        assert mg.converged and cg.converged
        assert mg.iterations < cg.iterations
