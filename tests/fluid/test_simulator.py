"""Tests for the simulator loop and scenarios."""

import numpy as np
import pytest

from repro.fluid import (
    FluidSimulator,
    MACGrid2D,
    PCGSolver,
    SimulationConfig,
    compute_divnorm,
    divnorm_weights,
    divergence,
    make_smoke_plume,
)


class TestSmokePlumeScenario:
    def test_reproducible(self):
        g1, s1 = make_smoke_plume(24, 24, rng=3)
        g2, s2 = make_smoke_plume(24, 24, rng=3)
        np.testing.assert_array_equal(g1.u, g2.u)
        np.testing.assert_array_equal(g1.flags, g2.flags)
        np.testing.assert_array_equal(s1.mask, s2.mask)

    def test_source_inside_fluid(self):
        g, s = make_smoke_plume(24, 24, rng=1)
        assert s.mask.any()
        assert not (s.mask & g.solid).any()

    def test_initial_density_seeded(self):
        g, _ = make_smoke_plume(24, 24, rng=0)
        assert g.density.sum() > 0

    def test_no_obstacles_option(self):
        from repro.fluid import ScenarioSpec, build_scenario

        g, _ = build_scenario(ScenarioSpec("smoke_plume", grid=24, with_obstacles=False), rng=0)
        assert g.fluid[1:-1, 1:-1].all()

    def test_source_apply_caps_density(self):
        g, s = make_smoke_plume(24, 24, rng=0)
        for _ in range(100):
            s.apply(g, dt=1.0)
        assert g.density.max() <= 1.0 + 1e-12

    def test_source_imposes_upward_inflow(self):
        g, s = make_smoke_plume(24, 24, rng=0)
        s.apply(g, dt=0.1)
        ys, xs = np.nonzero(s.mask)
        assert (g.v[ys, xs] <= 0).all()


class TestDivnormWeights:
    def test_weight_one_far_from_solids(self):
        g = MACGrid2D(32, 32)
        w = divnorm_weights(g.solid, k=3.0)
        assert w[16, 16] == 1.0

    def test_weight_k_inside_solids(self):
        g = MACGrid2D(32, 32)
        w = divnorm_weights(g.solid, k=3.0)
        assert w[0, 0] == 3.0

    def test_weight_decays_with_distance(self):
        g = MACGrid2D(32, 32)
        w = divnorm_weights(g.solid, k=3.0)
        assert w[1, 16] > w[2, 16] >= w[5, 16] == 1.0

    def test_divnorm_zero_for_divfree_field(self):
        g = MACGrid2D(16, 16)
        w = divnorm_weights(g.solid)
        assert compute_divnorm(g, w) == 0.0

    def test_divnorm_positive_for_divergent_field(self):
        g = MACGrid2D(16, 16)
        g.u[8, 8] = -1.0
        g.u[8, 9] = 1.0
        w = divnorm_weights(g.solid)
        assert compute_divnorm(g, w) > 0


class TestFluidSimulator:
    def make_sim(self, n=24, seed=0, **cfg):
        g, s = make_smoke_plume(n, n, rng=seed)
        return FluidSimulator(g, PCGSolver(), s, SimulationConfig(**cfg))

    def test_step_records_accumulate(self):
        sim = self.make_sim()
        sim.step()
        sim.step()
        assert len(sim.records) == 2
        assert [r.step for r in sim.records] == [0, 1]

    def test_exact_solver_keeps_divergence_small(self):
        sim = self.make_sim()
        res = sim.run(5)
        for rec in res.records:
            assert rec.projection.post_divergence < 1e-3 * max(rec.projection.pre_divergence, 1.0)

    def test_density_bounded(self):
        sim = self.make_sim()
        res = sim.run(8)
        assert res.density.min() >= -1e-9
        assert res.density.max() <= 1.0 + 1e-9

    def test_divnorm_history_length(self):
        sim = self.make_sim()
        res = sim.run(6)
        assert res.divnorm_history.shape == (6,)

    def test_cumdivnorm_monotone(self):
        sim = self.make_sim()
        res = sim.run(6)
        c = res.cumdivnorm_history
        assert (np.diff(c) >= -1e-12).all()

    def test_full_divnorm_history_fresh_run(self):
        sim = self.make_sim()
        res = sim.run(4)
        # no restore happened: full history == this run's history, on both
        # the simulator and the result object
        np.testing.assert_array_equal(sim.full_divnorm_history, res.divnorm_history)
        np.testing.assert_array_equal(res.full_divnorm_history, res.divnorm_history)
        assert res.restored_divnorms.shape == (0,)

    def test_full_divnorm_history_spans_restore(self):
        donor = self.make_sim(seed=2)
        donor.run(3)
        state = donor.save_state()
        full_before = [r.divnorm for r in donor.records]

        resumed = self.make_sim(seed=2)
        resumed.load_state(state)
        res = resumed.run(2)
        assert res.divnorm_history.shape == (2,)
        assert res.restored_divnorms.shape == (3,)
        expected = np.concatenate([full_before, res.divnorm_history])
        np.testing.assert_array_equal(resumed.full_divnorm_history, expected)
        np.testing.assert_array_equal(res.full_divnorm_history, expected)

    def test_timeline_records_typed_step_events(self):
        sim = self.make_sim()
        sim.run(3)
        divnorms = [e for e in sim.timeline if e.type == "divnorm"]
        steps = [e for e in sim.timeline if e.type == "step"]
        assert [e.step for e in divnorms] == [0, 1, 2]
        assert [e.step for e in steps] == [0, 1, 2]
        for e, rec in zip(divnorms, sim.records):
            assert e.attrs["value"] == rec.divnorm
        for e in steps:
            assert e.attrs["solver"] == "pcg"
            assert e.attrs["seconds"] > 0

    def test_timeline_mirrors_into_an_attached_tracer(self):
        from repro.trace import Tracer

        tracer = Tracer(enabled=True)
        g, s = make_smoke_plume(24, 24, rng=0)
        sim = FluidSimulator(g, PCGSolver(), s, tracer=tracer)
        sim.run(2)
        assert [e.step for e in tracer.events("divnorm")] == [0, 1]
        names = {sp.name for sp in tracer.spans()}
        assert {"sim", "step", "advection", "forces", "projection"} <= names
        # the timeline itself is recorded even with tracing off elsewhere
        assert len(sim.timeline) == 4

    def test_timeline_survives_state_round_trip(self):
        donor = self.make_sim(seed=2)
        donor.run(3)
        resumed = self.make_sim(seed=2)
        resumed.load_state(donor.save_state())
        res = resumed.run(2)
        steps = sorted(e.step for e in res.timeline if e.type == "divnorm")
        assert steps == [0, 1, 2, 3, 4]

    def test_controller_invoked_every_step(self):
        calls = []
        g, s = make_smoke_plume(24, 24, rng=0)
        sim = FluidSimulator(g, PCGSolver(), s, controller=lambda s_, r: calls.append(r.step))
        sim.run(4)
        assert calls == [0, 1, 2, 3]

    def test_controller_can_swap_solver(self):
        from repro.fluid import jacobi_solve

        class CheapSolver:
            name = "cheap"

            def solve(self, b, solid):
                return jacobi_solve(b, solid, iterations=5)

        def switch(sim, rec):
            if rec.step == 1:
                sim.solver = CheapSolver()

        g, s = make_smoke_plume(24, 24, rng=0)
        sim = FluidSimulator(g, PCGSolver(), s, controller=switch)
        res = sim.run(4)
        names = [r.projection.solver_name for r in res.records]
        assert names == ["pcg", "pcg", "cheap", "cheap"]

    def test_maccormack_config(self):
        sim = self.make_sim(maccormack=True)
        res = sim.run(3)
        assert res.density.max() <= 1.0 + 1e-9

    def test_deterministic_run(self):
        r1 = self.make_sim(seed=5).run(4)
        r2 = self.make_sim(seed=5).run(4)
        np.testing.assert_array_equal(r1.density, r2.density)

    def test_total_time_positive(self):
        res = self.make_sim().run(2)
        assert res.total_seconds > 0
        assert res.solve_seconds > 0
        assert res.total_flops > 0

    def test_smoke_rises_over_time(self):
        sim = self.make_sim(n=32, seed=2)
        y0 = None
        res = sim.run(12)
        x, y = sim.grid.cell_centers()
        total = res.density.sum()
        cy = (res.density * y).sum() / total
        # density starts near the bottom (y close to 1); buoyancy lifts it
        ys0, _ = np.nonzero(sim.source.mask)
        source_cy = (ys0.mean() + 0.5) * sim.grid.dx
        assert cy < source_cy


class TestWarmStartResume:
    """Warm-start state must survive save_state/load_state (bit-for-bit resume)."""

    def make_sim(self, seed=2):
        g, s = make_smoke_plume(24, 24, rng=seed)
        return FluidSimulator(g, PCGSolver(warm_start=True), s)

    def test_state_arrays_round_trip(self):
        sim = self.make_sim()
        sim.run(2)
        state = sim.solver.state_arrays()
        assert set(state) == {"prev_pressure", "prev_solid"}
        fresh = PCGSolver(warm_start=True)
        fresh.load_state_arrays(state)
        assert fresh._prev_key == sim.solver._prev_key
        np.testing.assert_array_equal(fresh._prev_pressure, sim.solver._prev_pressure)

    def test_state_arrays_empty_when_cold(self):
        assert PCGSolver(warm_start=True).state_arrays() == {}
        assert PCGSolver().state_arrays() == {}

    def test_resume_matches_uninterrupted_run(self):
        baseline = self.make_sim()
        base_res = baseline.run(6)

        donor = self.make_sim()
        donor.run(3)
        state = donor.save_state()
        assert "solver/prev_pressure" in state

        resumed = self.make_sim()
        resumed.load_state(state)
        res = resumed.run(3)
        np.testing.assert_array_equal(res.density, base_res.density)
        np.testing.assert_array_equal(resumed.grid.u, baseline.grid.u)
        np.testing.assert_array_equal(resumed.grid.v, baseline.grid.v)
        np.testing.assert_array_equal(resumed.grid.pressure, baseline.grid.pressure)
        # the first post-resume solve must have actually warm-started, not
        # silently cold-started into an identical-looking trajectory
        base_its = [r.projection.iterations for r in baseline.records[3:]]
        resumed_its = [r.projection.iterations for r in resumed.records]
        assert resumed_its == base_its

    def test_resume_matches_with_reference_backend(self):
        def make():
            g, s = make_smoke_plume(24, 24, rng=4)
            return FluidSimulator(g, PCGSolver(warm_start=True, backend="reference"), s)

        baseline = make()
        base_res = baseline.run(5)
        donor = make()
        donor.run(2)
        resumed = make()
        resumed.load_state(donor.save_state())
        res = resumed.run(3)
        np.testing.assert_array_equal(res.density, base_res.density)

    def test_cold_solver_checkpoints_stay_loadable(self):
        # checkpoints written before the solver ever solved (or by a
        # non-warm-start solver) have no solver/ keys and load fine
        g, s = make_smoke_plume(24, 24, rng=2)
        sim = FluidSimulator(g, PCGSolver(), s)
        sim.run(2)
        state = sim.save_state()
        assert not any(k.startswith("solver/") for k in state)
        fresh = self.make_sim()
        fresh.load_state(state)
        fresh.run(1)
