"""Tests for the sparse Poisson assembly."""

import numpy as np
import pytest

from repro.fluid import MACGrid2D, build_poisson_system, poisson_rhs, stencil_arrays


class TestBuildPoissonSystem:
    def test_dimensions_match_fluid_count(self):
        g = MACGrid2D(8, 8)
        system = build_poisson_system(g.solid)
        assert system.n == int(g.fluid.sum())
        assert system.matrix.shape == (system.n, system.n)

    def test_interior_cell_has_degree_four(self):
        g = MACGrid2D(8, 8)
        system = build_poisson_system(g.solid)
        row = system.fluid_index[4, 4]
        assert system.matrix[row, row] == 4.0

    def test_corner_fluid_cell_has_degree_two(self):
        g = MACGrid2D(8, 8)
        system = build_poisson_system(g.solid)
        row = system.fluid_index[1, 1]  # touches wall on two sides
        assert system.matrix[row, row] == 2.0

    def test_offdiagonal_minus_one(self):
        g = MACGrid2D(8, 8)
        system = build_poisson_system(g.solid)
        r1 = system.fluid_index[4, 4]
        r2 = system.fluid_index[4, 5]
        assert system.matrix[r1, r2] == -1.0
        assert system.matrix[r2, r1] == -1.0

    def test_matrix_symmetric(self):
        g = MACGrid2D(10, 10)
        mask = np.zeros((10, 10), dtype=bool)
        mask[3:5, 6:8] = True
        g.add_solid(mask)
        m = build_poisson_system(g.solid).matrix
        assert (m != m.T).nnz == 0

    def test_row_sums_zero_interior(self):
        # rows of cells with all-fluid neighbours sum to zero (Neumann walls
        # remove the coupling *and* the degree, so wall rows also sum to 0)
        g = MACGrid2D(8, 8)
        m = build_poisson_system(g.solid).matrix
        np.testing.assert_allclose(np.asarray(m.sum(axis=1)).ravel(), 0.0)

    def test_flatten_unflatten_roundtrip(self):
        g = MACGrid2D(8, 8)
        system = build_poisson_system(g.solid)
        rng = np.random.default_rng(0)
        field = np.where(g.fluid, rng.standard_normal(g.shape), 0.0)
        vec = system.flatten(field)
        np.testing.assert_array_equal(system.unflatten(vec, g.shape), field)

    def test_fluid_index_solid_is_minus_one(self):
        g = MACGrid2D(8, 8)
        system = build_poisson_system(g.solid)
        assert (system.fluid_index[g.solid] == -1).all()
        assert (system.fluid_index[g.fluid] >= 0).all()


class TestStencilArrays:
    def test_adiag_matches_matrix_diagonal(self):
        g = MACGrid2D(9, 9)
        mask = np.zeros((9, 9), dtype=bool)
        mask[4, 4] = True
        g.add_solid(mask)
        adiag, _, _ = stencil_arrays(g.solid)
        system = build_poisson_system(g.solid)
        diag = system.matrix.diagonal()
        np.testing.assert_allclose(adiag[g.fluid], diag)

    def test_aplus_coupling_only_between_fluid(self):
        g = MACGrid2D(8, 8)
        mask = np.zeros((8, 8), dtype=bool)
        mask[4, 4] = True
        g.add_solid(mask)
        _, aplusx, aplusy = stencil_arrays(g.solid)
        assert aplusx[4, 3] == 0.0  # (4,3)-(4,4) has a solid end
        assert aplusx[4, 4] == 0.0
        assert aplusx[3, 3] == -1.0  # fluid-fluid
        assert aplusy[3, 4] == 0.0

    def test_zero_on_solid(self):
        g = MACGrid2D(8, 8)
        adiag, _, _ = stencil_arrays(g.solid)
        assert (adiag[g.solid] == 0).all()


class TestPoissonRhs:
    def test_scaling(self):
        g = MACGrid2D(8, 8)
        div = np.ones(g.shape)
        b = poisson_rhs(div, g.solid, dt=0.1, rho=2.0, dx=0.5)
        expected = -(2.0 * 0.25 / 0.1)
        assert b[4, 4] == pytest.approx(expected)

    def test_solid_zeroed(self):
        g = MACGrid2D(8, 8)
        b = poisson_rhs(np.ones(g.shape), g.solid, dt=0.1, rho=1.0, dx=0.1)
        assert (b[g.solid] == 0).all()

    def test_input_not_mutated(self):
        g = MACGrid2D(8, 8)
        div = np.ones(g.shape)
        poisson_rhs(div, g.solid, dt=0.1, rho=1.0, dx=0.1)
        np.testing.assert_array_equal(div, 1.0)
