"""Tests for the MAC grid data structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluid import CellType, MACGrid2D


class TestConstruction:
    def test_field_shapes(self):
        g = MACGrid2D(8, 6)
        assert g.u.shape == (6, 9)
        assert g.v.shape == (7, 8)
        assert g.pressure.shape == (6, 8)
        assert g.density.shape == (6, 8)
        assert g.flags.shape == (6, 8)

    def test_default_dx_normalises_width(self):
        g = MACGrid2D(20, 10)
        assert g.dx == pytest.approx(1.0 / 20)

    def test_explicit_dx(self):
        g = MACGrid2D(8, 8, dx=0.5)
        assert g.dx == 0.5

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            MACGrid2D(2, 8)

    def test_border_wall_is_solid(self):
        g = MACGrid2D(8, 8)
        assert g.flags[0, :].tolist() == [CellType.SOLID] * 8
        assert g.flags[-1, :].tolist() == [CellType.SOLID] * 8
        assert g.flags[:, 0].tolist() == [CellType.SOLID] * 8
        assert g.flags[:, -1].tolist() == [CellType.SOLID] * 8

    def test_interior_is_fluid(self):
        g = MACGrid2D(8, 8)
        assert (g.flags[1:-1, 1:-1] == CellType.FLUID).all()

    def test_shape_property(self):
        assert MACGrid2D(5, 7).shape == (7, 5)


class TestFlags:
    def test_add_solid(self):
        g = MACGrid2D(8, 8)
        mask = np.zeros((8, 8), dtype=bool)
        mask[3, 3] = True
        g.add_solid(mask)
        assert g.flags[3, 3] == CellType.SOLID
        assert g.solid[3, 3]
        assert not g.fluid[3, 3]

    def test_add_solid_shape_mismatch(self):
        g = MACGrid2D(8, 8)
        with pytest.raises(ValueError):
            g.add_solid(np.zeros((4, 4), dtype=bool))

    def test_solid_fluid_partition(self):
        g = MACGrid2D(8, 8)
        assert ((g.solid.astype(int) + g.fluid.astype(int)) == 1).all()

    def test_geometry_field_matches_solid(self):
        g = MACGrid2D(8, 8)
        geo = g.geometry_field()
        assert geo.dtype == np.float64
        np.testing.assert_array_equal(geo > 0.5, g.solid)

    def test_thicker_border_wall(self):
        g = MACGrid2D(10, 10)
        g.set_border_wall(thickness=2)
        assert g.solid[1, 5]
        assert not g.solid[2, 5]


class TestBoundaries:
    def test_enforce_zeroes_wall_faces(self):
        g = MACGrid2D(8, 8)
        g.u[:] = 1.0
        g.v[:] = 1.0
        g.enforce_solid_boundaries()
        # faces of the border wall must carry no normal flow
        assert (g.u[:, :2] == 0).all() and (g.u[:, -2:] == 0).all()
        assert (g.v[:2, :] == 0).all() and (g.v[-2:, :] == 0).all()

    def test_enforce_preserves_interior_faces(self):
        g = MACGrid2D(8, 8)
        g.u[:] = 1.0
        g.enforce_solid_boundaries()
        assert g.u[4, 4] == 1.0

    def test_enforce_around_obstacle(self):
        g = MACGrid2D(8, 8)
        mask = np.zeros((8, 8), dtype=bool)
        mask[4, 4] = True
        g.add_solid(mask)
        g.u[:] = 1.0
        g.v[:] = 1.0
        g.enforce_solid_boundaries()
        assert g.u[4, 4] == 0.0  # left face of the obstacle
        assert g.u[4, 5] == 0.0  # right face
        assert g.v[4, 4] == 0.0  # top face
        assert g.v[5, 4] == 0.0  # bottom face
        assert g.u[2, 4] == 1.0  # unrelated face untouched


class TestSampling:
    def test_sample_constant_field(self):
        g = MACGrid2D(8, 8)
        g.u[:] = 3.0
        x = np.array([0.3, 0.5, 0.9])
        y = np.array([0.3, 0.5, 0.9])
        np.testing.assert_allclose(g.sample_u(x, y), 3.0)

    def test_sample_center_exact_at_centers(self):
        g = MACGrid2D(8, 8)
        f = np.arange(64, dtype=float).reshape(8, 8)
        cx, cy = g.cell_centers()
        np.testing.assert_allclose(g.sample_center(f, cx, cy), f)

    def test_sample_u_exact_at_faces(self):
        g = MACGrid2D(8, 8)
        g.u = np.random.default_rng(0).standard_normal(g.u.shape)
        ux, uy = g.u_positions()
        np.testing.assert_allclose(g.sample_u(ux, uy), g.u, atol=1e-12)

    def test_sample_v_exact_at_faces(self):
        g = MACGrid2D(8, 8)
        g.v = np.random.default_rng(0).standard_normal(g.v.shape)
        vx, vy = g.v_positions()
        np.testing.assert_allclose(g.sample_v(vx, vy), g.v, atol=1e-12)

    def test_sampling_clamps_outside_domain(self):
        g = MACGrid2D(8, 8)
        g.density[:] = 2.0
        out = g.sample_center(g.density, np.array([-5.0, 99.0]), np.array([0.5, 0.5]))
        np.testing.assert_allclose(out, 2.0)

    @given(
        x=st.floats(min_value=0.0, max_value=1.0),
        y=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_bilinear_within_field_bounds(self, x, y):
        g = MACGrid2D(8, 8)
        f = np.random.default_rng(42).uniform(-1, 1, (8, 8))
        val = g.sample_center(f, np.array([x]), np.array([y]))[0]
        assert f.min() - 1e-9 <= val <= f.max() + 1e-9

    def test_velocity_at_linear_field_is_exact(self):
        # bilinear interpolation must reproduce a linear velocity field
        g = MACGrid2D(16, 16)
        ux, uy = g.u_positions()
        g.u = 2.0 * ux + 1.0
        vx, vy = g.v_positions()
        g.v = -3.0 * vy + 0.5
        xs = np.array([0.31, 0.55])
        ys = np.array([0.42, 0.66])
        u, v = g.velocity_at(xs, ys)
        np.testing.assert_allclose(u, 2.0 * xs + 1.0, atol=1e-12)
        np.testing.assert_allclose(v, -3.0 * ys + 0.5, atol=1e-12)


class TestDerived:
    def test_velocity_at_centers_shapes(self):
        g = MACGrid2D(6, 9)
        uc, vc = g.velocity_at_centers()
        assert uc.shape == (9, 6) and vc.shape == (9, 6)

    def test_max_speed_zero_initially(self):
        assert MACGrid2D(8, 8).max_speed() == 0.0

    def test_max_speed_positive(self):
        g = MACGrid2D(8, 8)
        g.u[4, 4] = 2.0
        assert g.max_speed() > 0.0

    def test_copy_is_deep(self):
        g = MACGrid2D(8, 8)
        g.density[4, 4] = 1.0
        c = g.copy()
        c.density[4, 4] = 9.0
        c.u[0, 0] = 7.0
        assert g.density[4, 4] == 1.0
        assert g.u[0, 0] == 0.0

    def test_cell_centers_range(self):
        g = MACGrid2D(8, 8)
        cx, cy = g.cell_centers()
        assert cx.min() == pytest.approx(0.5 * g.dx)
        assert cx.max() == pytest.approx(1.0 - 0.5 * g.dx)
