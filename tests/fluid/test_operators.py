"""Tests for divergence, gradient and the matrix-free Laplacian."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluid import (
    MACGrid2D,
    apply_laplacian,
    build_poisson_system,
    divergence,
    pressure_gradient_update,
)


def random_solid(n: int, seed: int) -> np.ndarray:
    """Random solid mask with a guaranteed border wall and some fluid."""
    rng = np.random.default_rng(seed)
    solid = rng.random((n, n)) < 0.2
    solid[0, :] = solid[-1, :] = True
    solid[:, 0] = solid[:, -1] = True
    solid[n // 2, n // 2] = False
    return solid


class TestDivergence:
    def test_zero_for_still_fluid(self):
        g = MACGrid2D(8, 8)
        np.testing.assert_array_equal(divergence(g), 0.0)

    def test_uniform_flow_is_divergence_free(self):
        g = MACGrid2D(8, 8)
        g.u[:] = 1.0
        g.v[:] = -2.0
        np.testing.assert_allclose(divergence(g), 0.0)

    def test_point_source_divergence_sign(self):
        g = MACGrid2D(8, 8)
        # outflow from cell (4,4)
        g.u[4, 5] = 1.0
        g.u[4, 4] = -1.0
        g.v[5, 4] = 1.0
        g.v[4, 4] = -1.0
        d = divergence(g)
        assert d[4, 4] > 0
        assert d[4, 4] == pytest.approx(4.0 / g.dx)

    def test_solid_cells_zeroed(self):
        g = MACGrid2D(8, 8)
        g.u[:] = np.random.default_rng(0).standard_normal(g.u.shape)
        d = divergence(g)
        assert (d[g.solid] == 0).all()

    def test_linear_velocity_gives_constant_divergence(self):
        g = MACGrid2D(16, 16)
        ux, _ = g.u_positions()
        g.u = 3.0 * ux
        d = divergence(g)
        np.testing.assert_allclose(d[g.fluid], 3.0, atol=1e-10)


class TestPressureGradientUpdate:
    def test_constant_pressure_no_change(self):
        g = MACGrid2D(8, 8)
        g.u[:, 2:-2] = 1.0
        g.enforce_solid_boundaries()
        u0 = g.u.copy()
        pressure_gradient_update(g, np.full(g.shape, 5.0), dt=0.1, rho=1.0)
        np.testing.assert_allclose(g.u, u0)

    def test_gradient_direction(self):
        g = MACGrid2D(8, 8)
        p = np.zeros(g.shape)
        p[4, 5] = 1.0  # high pressure right of centre pushes flow left
        pressure_gradient_update(g, p, dt=0.1, rho=1.0)
        assert g.u[4, 5] < 0  # face between (4,4) and (4,5)

    def test_scaling_with_dt_and_rho(self):
        p = np.zeros((8, 8))
        p[4, 5] = 1.0
        g1 = MACGrid2D(8, 8)
        pressure_gradient_update(g1, p, dt=0.1, rho=1.0)
        g2 = MACGrid2D(8, 8)
        pressure_gradient_update(g2, p, dt=0.2, rho=2.0)
        np.testing.assert_allclose(g1.u, g2.u)

    def test_solid_faces_not_updated(self):
        g = MACGrid2D(8, 8)
        mask = np.zeros((8, 8), dtype=bool)
        mask[4, 4] = True
        g.add_solid(mask)
        p = np.random.default_rng(1).standard_normal(g.shape)
        pressure_gradient_update(g, p, dt=0.1, rho=1.0)
        assert g.u[4, 4] == 0.0 and g.u[4, 5] == 0.0
        assert g.v[4, 4] == 0.0 and g.v[5, 4] == 0.0


class TestApplyLaplacian:
    def test_matches_sparse_matrix(self):
        solid = random_solid(10, seed=3)
        system = build_poisson_system(solid)
        rng = np.random.default_rng(0)
        p = np.where(~solid, rng.standard_normal(solid.shape), 0.0)
        dense = apply_laplacian(p, solid)
        sparse = system.unflatten(system.matrix @ system.flatten(p), solid.shape)
        np.testing.assert_allclose(dense, sparse, atol=1e-12)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_matches_sparse_matrix_random_masks(self, seed):
        solid = random_solid(8, seed)
        system = build_poisson_system(solid)
        rng = np.random.default_rng(seed + 1)
        p = np.where(~solid, rng.standard_normal(solid.shape), 0.0)
        dense = apply_laplacian(p, solid)
        sparse = system.unflatten(system.matrix @ system.flatten(p), solid.shape)
        np.testing.assert_allclose(dense, sparse, atol=1e-12)

    def test_constant_in_nullspace(self):
        solid = random_solid(10, seed=7)
        p = np.where(~solid, 3.7, 0.0)
        np.testing.assert_allclose(apply_laplacian(p, solid), 0.0, atol=1e-12)

    def test_symmetry(self):
        solid = random_solid(8, seed=5)
        rng = np.random.default_rng(2)
        x = np.where(~solid, rng.standard_normal(solid.shape), 0.0)
        y = np.where(~solid, rng.standard_normal(solid.shape), 0.0)
        lhs = (apply_laplacian(x, solid) * y).sum()
        rhs = (x * apply_laplacian(y, solid)).sum()
        assert lhs == pytest.approx(rhs)

    def test_positive_semidefinite(self):
        solid = random_solid(8, seed=9)
        rng = np.random.default_rng(3)
        for _ in range(10):
            x = np.where(~solid, rng.standard_normal(solid.shape), 0.0)
            assert (apply_laplacian(x, solid) * x).sum() >= -1e-10

    def test_solid_rows_zero(self):
        solid = random_solid(8, seed=11)
        rng = np.random.default_rng(4)
        p = rng.standard_normal(solid.shape)
        out = apply_laplacian(p, solid)
        assert (out[solid] == 0).all()


class TestProjectionExactness:
    def test_projection_removes_divergence(self):
        """Full projection (solve + update) drives divergence to ~0."""
        from repro.fluid import PCGSolver, poisson_rhs

        g = MACGrid2D(16, 16)
        rng = np.random.default_rng(0)
        g.u = rng.standard_normal(g.u.shape)
        g.v = rng.standard_normal(g.v.shape)
        g.enforce_solid_boundaries()
        div0 = divergence(g)
        b = poisson_rhs(div0, g.solid, dt=0.1, rho=1.0, dx=g.dx)
        res = PCGSolver(tol=1e-10).solve(b, g.solid)
        pressure_gradient_update(g, res.pressure, dt=0.1, rho=1.0)
        div1 = divergence(g)
        assert np.abs(div1[g.fluid]).max() < 1e-6 * max(np.abs(div0[g.fluid]).max(), 1.0)
