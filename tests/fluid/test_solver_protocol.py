"""PressureSolver protocol conformance and cache-correctness tests."""

import numpy as np
import pytest

from repro.fluid import (
    JacobiSolver,
    MACGrid2D,
    MaskKeyedCache,
    MIC0Preconditioner,
    MultigridSolver,
    PCGSolver,
    PressureSolver,
    SolveResult,
    jacobi_solve,
)
from repro.fluid.geometry import disc_mask
from repro.fluid.laplacian import remove_nullspace
from repro.metrics import MetricsRegistry
from repro.models import NNProjectionSolver
from repro.nn import Conv2d, Network, ReLU


def make_geometry(n=24):
    g = MACGrid2D(n, n)
    solid = g.solid.copy()
    solid |= disc_mask(solid.shape, n // 2, n // 3, n // 8)
    return solid


def make_rhs(solid, seed=1):
    rng = np.random.default_rng(seed)
    b = np.where(~solid, rng.standard_normal(solid.shape), 0.0)
    return remove_nullspace(b, solid)


def nn_solver(**kw):
    net = Network([Conv2d(2, 4, rng=0), ReLU(), Conv2d(4, 1, rng=1)])
    return NNProjectionSolver(net, **kw)


ALL_SOLVERS = [
    ("pcg", lambda: PCGSolver()),
    ("multigrid", lambda: MultigridSolver()),
    ("jacobi", lambda: JacobiSolver(iterations=50)),
    ("nn", lambda: nn_solver()),
]


class TestProtocolConformance:
    @pytest.mark.parametrize("label,factory", ALL_SOLVERS)
    def test_subclasses_abc(self, label, factory):
        solver = factory()
        assert isinstance(solver, PressureSolver)
        assert issubclass(type(solver), PressureSolver)

    @pytest.mark.parametrize("label,factory", ALL_SOLVERS)
    def test_name_and_reset(self, label, factory):
        solver = factory()
        assert isinstance(solver.name, str) and solver.name
        solver.reset()  # lifecycle hook must be callable at any time

    @pytest.mark.parametrize("label,factory", ALL_SOLVERS)
    def test_solve_returns_solve_result(self, label, factory):
        solid = make_geometry()
        res = factory().solve(make_rhs(solid), solid)
        assert isinstance(res, SolveResult)
        assert res.pressure.shape == solid.shape
        assert (res.pressure[solid] == 0).all()

    def test_abc_rejects_incomplete_subclass(self):
        class Incomplete(PressureSolver):
            name = "broken"

        with pytest.raises(TypeError):
            Incomplete()

    def test_structural_conformance_for_wrappers(self):
        class DuckSolver:
            name = "duck"

            def solve(self, b, solid):
                return SolveResult(np.zeros_like(b), 0, True, 0.0)

            def reset(self):
                pass

        assert isinstance(DuckSolver(), PressureSolver)


class TestCacheCorrectness:
    def test_cached_mic0_bitwise_equal_to_cold(self):
        solid = make_geometry()
        b = make_rhs(solid)
        solver = PCGSolver()
        solver.solve(b, solid)
        cached = solver._mic_cache._value.precon.copy()
        solver.reset()
        solver.solve(b, solid)
        cold = solver._mic_cache._value.precon
        np.testing.assert_array_equal(cached, cold)
        # and both match a freshly built preconditioner
        np.testing.assert_array_equal(cold, MIC0Preconditioner(solid).precon)

    @pytest.mark.parametrize(
        "label,factory",
        [
            ("pcg", lambda: PCGSolver()),
            ("multigrid", lambda: MultigridSolver()),
            ("jacobi", lambda: JacobiSolver(iterations=50)),
        ],
    )
    def test_caching_does_not_change_results(self, label, factory):
        """Identical inputs give identical SolveResults, cached or cold."""
        solid = make_geometry()
        b = make_rhs(solid)
        solver = factory()
        warmup = solver.solve(b, solid)  # populates the cache
        cached = solver.solve(b, solid)  # hits the cache
        solver.reset()
        cold = solver.solve(b, solid)  # rebuilds from scratch
        for res in (warmup, cached):
            assert res.iterations == cold.iterations
            assert res.converged == cold.converged
            assert res.residual_norm == cold.residual_norm
            np.testing.assert_array_equal(res.pressure, cold.pressure)

    def test_cache_hit_miss_counters(self):
        metrics = MetricsRegistry()
        solid = make_geometry()
        b = make_rhs(solid)
        solver = PCGSolver(metrics=metrics)
        solver.solve(b, solid)
        solver.solve(b, solid)
        assert metrics.counter("cache/mic0/miss") == 1
        assert metrics.counter("cache/mic0/hit") == 1

    def test_nn_solver_geometry_and_workspace_reuse(self):
        solid = make_geometry()
        b = make_rhs(solid)
        solver = nn_solver()
        r1 = solver.solve(b, solid)
        geo = solver._geo_cache._value
        x = solver._x
        r2 = solver.solve(b, solid)
        assert solver._geo_cache._value is geo
        assert solver._x is x
        np.testing.assert_array_equal(r1.pressure, r2.pressure)
        solver.reset()
        assert solver._x is None
        r3 = solver.solve(b, solid)
        np.testing.assert_array_equal(r1.pressure, r3.pressure)


class TestMaskKeyedCache:
    def masks(self, count, n=8):
        out = []
        for i in range(count):
            m = MACGrid2D(n, n).solid.copy()
            m[1 + i % (n - 2), 1] = True
            out.append(m)
        return out

    def test_capacity_one_evicts_previous_geometry(self):
        cache = MaskKeyedCache("t")
        a, b = self.masks(2)
        metrics = MetricsRegistry()
        cache.get(a, lambda: "A", metrics)
        cache.get(b, lambda: "B", metrics)
        assert cache.get(a, lambda: "A2", metrics) == "A2"  # a was evicted
        assert metrics.to_dict()["counters"]["cache/t/miss"] == 3

    def test_multi_entry_capacity_retains_all(self):
        cache = MaskKeyedCache("t", capacity=4)
        metrics = MetricsRegistry()
        for i, m in enumerate(self.masks(4)):
            cache.get(m, lambda i=i: i, metrics)
        for i, m in enumerate(self.masks(4)):
            assert cache.get(m, lambda: "rebuilt", metrics) == i
        counters = metrics.to_dict()["counters"]
        assert counters["cache/t/miss"] == 4
        assert counters["cache/t/hit"] == 4

    def test_lru_eviction_order(self):
        cache = MaskKeyedCache("t", capacity=2)
        a, b, c = self.masks(3)
        cache.get(a, lambda: "A")
        cache.get(b, lambda: "B")
        cache.get(a, lambda: "never")  # touch a: b is now least recent
        cache.get(c, lambda: "C")  # evicts b
        metrics = MetricsRegistry()
        cache.get(a, lambda: "rebuilt-a", metrics)
        cache.get(b, lambda: "rebuilt-b", metrics)
        counters = metrics.to_dict()["counters"]
        assert counters["cache/t/hit"] == 1  # a survived
        assert counters["cache/t/miss"] == 1  # b did not

    def test_value_tracks_most_recent(self):
        cache = MaskKeyedCache("t", capacity=2)
        a, b = self.masks(2)
        cache.get(a, lambda: "A")
        cache.get(b, lambda: "B")
        assert cache._value == "B"
        cache.get(a, lambda: "never")
        assert cache._value == "A"
        cache.clear()
        assert cache._value is None

    def test_capacity_below_one_rejected(self):
        with pytest.raises(ValueError):
            MaskKeyedCache("t", capacity=0)


class TestWarmStart:
    def test_warm_start_converges_to_same_tolerance(self):
        solid = make_geometry()
        b1 = make_rhs(solid, seed=1)
        b2 = b1 + 0.05 * make_rhs(solid, seed=2)
        tol = 1e-5
        cold = PCGSolver(tol=tol)
        warm = PCGSolver(tol=tol, warm_start=True)
        warm.solve(b1, solid)
        res_cold = cold.solve(b2, solid)
        res_warm = warm.solve(b2, solid)
        bnorm = np.abs(remove_nullspace(b2, solid)[~solid]).max()
        assert res_cold.converged and res_warm.converged
        assert res_warm.residual_norm <= tol * bnorm
        # consecutive rhs are correlated, so the warm start saves iterations
        assert res_warm.iterations <= res_cold.iterations

    def test_warm_start_can_converge_immediately(self):
        solid = make_geometry()
        b = make_rhs(solid)
        warm = PCGSolver(warm_start=True)
        warm.solve(b, solid)
        res = warm.solve(b, solid)  # identical rhs: previous solution fits
        assert res.converged
        assert res.iterations == 0

    def test_warm_start_reset_restores_cold_behaviour(self):
        solid = make_geometry()
        b = make_rhs(solid)
        cold = PCGSolver().solve(b, solid)
        warm = PCGSolver(warm_start=True)
        warm.solve(b, solid)
        warm.reset()
        res = warm.solve(b, solid)
        assert res.iterations == cold.iterations
        np.testing.assert_array_equal(res.pressure, cold.pressure)

    def test_warm_start_invalidated_by_new_geometry(self):
        s1 = make_geometry()
        s2 = s1.copy()
        s2 |= disc_mask(s1.shape, 6, 14, 3)
        warm = PCGSolver(warm_start=True)
        warm.solve(make_rhs(s1), s1)
        b2 = make_rhs(s2)
        res = warm.solve(b2, s2)  # must not seed from the old geometry
        cold = PCGSolver().solve(b2, s2)
        assert res.iterations == cold.iterations
        np.testing.assert_array_equal(res.pressure, cold.pressure)


class TestJacobiCompat:
    def test_function_wrapper_matches_class(self):
        solid = make_geometry()
        b = make_rhs(solid)
        via_fn = jacobi_solve(b, solid, iterations=80)
        via_cls = JacobiSolver(iterations=80).solve(b, solid)
        assert via_fn.iterations == via_cls.iterations
        np.testing.assert_array_equal(via_fn.pressure, via_cls.pressure)
