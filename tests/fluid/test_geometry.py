"""Tests for procedural obstacle geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluid import (
    box_mask,
    capsule_mask,
    disc_mask,
    polygon_mask,
    random_obstacles,
)


class TestDisc:
    def test_center_inside(self):
        m = disc_mask((32, 32), 16, 16, 5)
        assert m[16, 16]

    def test_outside_radius_excluded(self):
        m = disc_mask((32, 32), 16, 16, 5)
        assert not m[16, 25]

    def test_area_approximates_pi_r_squared(self):
        r = 10
        m = disc_mask((64, 64), 32, 32, r)
        assert m.sum() == pytest.approx(np.pi * r * r, rel=0.05)

    def test_empty_when_offscreen(self):
        assert disc_mask((16, 16), -100, -100, 3).sum() == 0


class TestBox:
    def test_axis_aligned_extent(self):
        m = box_mask((32, 32), 16, 16, 4, 2)
        ys, xs = np.nonzero(m)
        assert xs.min() >= 11 and xs.max() <= 20
        assert ys.min() >= 13 and ys.max() <= 18

    def test_area(self):
        m = box_mask((64, 64), 32, 32, 5, 3)
        assert m.sum() == pytest.approx(4 * 5 * 3, rel=0.15)

    def test_rotation_preserves_area(self):
        a0 = box_mask((64, 64), 32, 32, 6, 3, angle=0.0).sum()
        a45 = box_mask((64, 64), 32, 32, 6, 3, angle=np.pi / 4).sum()
        assert a45 == pytest.approx(a0, rel=0.1)

    def test_rotation_by_90_degrees_swaps_extents(self):
        m = box_mask((64, 64), 32, 32, 8, 2, angle=np.pi / 2)
        ys, xs = np.nonzero(m)
        assert (ys.max() - ys.min()) > (xs.max() - xs.min())


class TestCapsule:
    def test_contains_endpoints(self):
        m = capsule_mask((32, 32), 8, 16, 24, 16, 2)
        assert m[16, 8] and m[16, 24]

    def test_degenerate_capsule_is_disc(self):
        c = capsule_mask((32, 32), 16, 16, 16, 16, 4)
        d = disc_mask((32, 32), 16, 16, 4)
        np.testing.assert_array_equal(c, d)

    def test_radius_bounds_thickness(self):
        m = capsule_mask((32, 32), 8, 16, 24, 16, 2)
        ys, _ = np.nonzero(m)
        assert ys.max() - ys.min() <= 5


class TestPolygon:
    def test_square_polygon_matches_box(self):
        verts = np.array([[10.0, 10.0], [22.0, 10.0], [22.0, 22.0], [10.0, 22.0]])
        poly = polygon_mask((32, 32), verts)
        assert poly[16, 16]
        assert not poly[5, 5]
        assert poly.sum() == pytest.approx(144, rel=0.15)

    def test_triangle(self):
        verts = np.array([[16.0, 4.0], [28.0, 28.0], [4.0, 28.0]])
        m = polygon_mask((32, 32), verts)
        assert m[20, 16]  # interior
        assert not m[6, 4]  # above-left of the triangle

    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_convex_polygon_contains_vertex_centroid(self, seed):
        rng = np.random.default_rng(seed)
        angs = np.sort(rng.uniform(0, 2 * np.pi, 6))
        verts = np.stack([16 + 8 * np.cos(angs), 16 + 8 * np.sin(angs)], axis=1)
        m = polygon_mask((32, 32), verts)
        cy, cx = verts[:, 1].mean(), verts[:, 0].mean()
        assert m[int(cy), int(cx)]


class TestRandomObstacles:
    def test_respects_fill_budget(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            m = random_obstacles((32, 32), rng, n_objects=4, max_fill=0.2)
            assert m.sum() <= 0.2 * 30 * 30 + 1

    def test_zero_objects_empty(self):
        m = random_obstacles((32, 32), np.random.default_rng(1), n_objects=0)
        assert m.sum() == 0

    def test_deterministic_for_seed(self):
        a = random_obstacles((32, 32), np.random.default_rng(5), n_objects=3)
        b = random_obstacles((32, 32), np.random.default_rng(5), n_objects=3)
        np.testing.assert_array_equal(a, b)

    def test_varies_across_seeds(self):
        masks = [
            random_obstacles((32, 32), np.random.default_rng(s), n_objects=3) for s in range(6)
        ]
        patterns = {m.tobytes() for m in masks}
        assert len(patterns) > 1
