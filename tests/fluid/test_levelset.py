"""Level-set machinery: signed distance, advection, free-surface solve."""

import numpy as np
import pytest

from repro.fluid import (
    FluidSimulator,
    FreeSurfaceSolver,
    LevelSetDriver,
    MACGrid2D,
    PCGSolver,
    SimulationConfig,
    advect_levelset,
    build_scenario,
    divergence,
    reinitialize,
    signed_distance,
)
from repro.metrics import MetricsRegistry


def free_surface_sim(selector, rng=0):
    grid, driver = build_scenario(selector, rng=rng)
    solver = driver.wrap_solver(PCGSolver())
    config = SimulationConfig(**driver.config_overrides)
    return FluidSimulator(grid, solver, driver, config=config), driver


class TestSignedDistance:
    def test_sign_convention_and_half_cell_offset(self):
        liquid = np.zeros((8, 8), dtype=bool)
        liquid[3:5, 3:5] = True
        phi = signed_distance(liquid)
        assert (phi[liquid] < 0).all()
        assert (phi[~liquid] > 0).all()
        # cells touching the interface sit half a cell from it on each side
        assert phi[3, 3] == -0.5
        assert phi[3, 2] == 0.5

    def test_scales_with_dx(self):
        liquid = np.zeros((8, 8), dtype=bool)
        liquid[2:6, 2:6] = True
        np.testing.assert_allclose(signed_distance(liquid, dx=0.25), signed_distance(liquid) * 0.25)

    def test_reinitialize_preserves_zero_level(self):
        liquid = np.zeros((10, 10), dtype=bool)
        liquid[4:8, 2:7] = True
        phi = signed_distance(liquid)
        distorted = phi * np.linspace(0.5, 3.0, 100).reshape(10, 10)
        np.testing.assert_array_equal(reinitialize(distorted) < 0, liquid)


class TestAdvectLevelset:
    def test_uniform_flow_translates_interface(self):
        g = MACGrid2D(16, 16)
        liquid = np.zeros((16, 16), dtype=bool)
        liquid[6:10, 2:6] = True
        phi = signed_distance(liquid, dx=g.dx)
        g.u[:, :] = 1.0  # uniform rightward flow, one cell per dt=dx
        moved = advect_levelset(g, phi, dt=g.dx)
        expected = np.zeros_like(liquid)
        expected[6:10, 3:7] = True
        np.testing.assert_array_equal(moved[:, 1:-1] < 0, expected[:, 1:-1])


class TestDamBreak:
    def test_mass_conservation_sanity(self):
        # semi-Lagrangian level sets are not conservative; the redistancing
        # keeps the drift bounded — gate it loosely over 8 steps
        sim, driver = free_surface_sim("dam_break:grid=32")
        initial = int(((driver.phi < 0) & ~driver.base_solid).sum())
        sim.run(8)
        final = int(((driver.phi < 0) & ~driver.base_solid).sum())
        assert 0.75 * initial <= final <= 1.25 * initial

    def test_column_collapses_and_spreads(self):
        sim, driver = free_surface_sim("dam_break:grid=32")
        liquid0 = (driver.phi < 0) & ~driver.base_solid
        sim.run(8)
        liquid = (driver.phi < 0) & ~driver.base_solid
        heights0 = liquid0.sum(axis=0)
        heights = liquid.sum(axis=0)
        # the column loses height while the front runs along the floor
        assert heights.max() < heights0.max()
        assert (heights > 0).sum() > (heights0 > 0).sum()

    def test_projection_kills_liquid_divergence(self):
        sim, driver = free_surface_sim("dam_break:grid=24")
        sim.run(4)
        liquid = (driver.phi < 0) & ~driver.base_solid
        div = divergence(sim.grid)
        assert np.abs(div[liquid]).max() < 1e-8

    def test_density_renders_occupancy(self):
        sim, driver = free_surface_sim("dam_break:grid=24")
        sim.run(2)
        liquid = (driver.phi < 0) & ~driver.base_solid
        np.testing.assert_array_equal(sim.grid.density > 0.5, liquid)


class TestSloshingTank:
    def test_builds_and_runs_finite(self):
        sim, driver = free_surface_sim("sloshing_tank:grid=24")
        result = sim.run(6)
        assert all(np.isfinite(r.divnorm) for r in result.records)
        assert ((driver.phi < 0) & ~driver.base_solid).any()

    def test_tilted_surface_relaxes(self):
        sim, driver = free_surface_sim("sloshing_tank:grid=32")

        def tilt_range(phi):
            liquid = (phi < 0) & ~driver.base_solid
            heights = liquid.sum(axis=0)[1:-1]
            return heights.max() - heights.min()

        before = tilt_range(driver.phi)
        sim.run(8)
        assert tilt_range(driver.phi) < before


class TestFreeSurfaceSolver:
    def test_air_pressure_is_zero(self):
        sim, driver = free_surface_sim("dam_break:grid=24")
        sim.run(3)
        air = (driver.phi >= 0) & ~sim.grid.solid
        assert np.abs(sim.grid.pressure[air]).max() == 0.0

    def test_no_liquid_returns_zero_solve(self):
        g = MACGrid2D(8, 8)
        driver = LevelSetDriver(np.ones((8, 8)), g.solid.copy())
        solver = FreeSurfaceSolver(driver)
        res = solver.solve(np.ones((8, 8)), g.solid)
        assert res.converged
        assert not res.pressure.any()

    def test_enclosed_liquid_is_grounded(self):
        # liquid filling the whole box: no air contact anywhere, the pure
        # Neumann system is singular unless a cell is pinned
        g = MACGrid2D(8, 8)
        driver = LevelSetDriver(-np.ones((8, 8)), g.solid.copy())
        solver = FreeSurfaceSolver(driver)
        rng = np.random.default_rng(0)
        b = np.where(~g.solid, rng.standard_normal((8, 8)), 0.0)
        res = solver.solve(b, g.solid)
        assert res.converged
        assert np.isfinite(res.pressure).all()
        assert np.isfinite(res.residual_norm)

    def test_settled_interface_caches_factorization(self):
        m = MetricsRegistry()
        g = MACGrid2D(12, 12)
        liquid = np.zeros((12, 12), dtype=bool)
        liquid[7:11, 1:11] = True
        driver = LevelSetDriver(signed_distance(liquid), g.solid.copy())
        solver = FreeSurfaceSolver(driver, metrics=m)
        b = np.where(liquid, 1.0, 0.0)
        solver.solve(b, g.solid)
        solver.solve(b, g.solid)
        counters = m.to_dict()["counters"]
        assert counters["cache/free_surface/miss"] == 1.0
        assert counters["cache/free_surface/hit"] == 1.0

    def test_reset_drops_cache(self):
        m = MetricsRegistry()
        g = MACGrid2D(10, 10)
        liquid = np.zeros((10, 10), dtype=bool)
        liquid[6:9, 1:9] = True
        driver = LevelSetDriver(signed_distance(liquid), g.solid.copy())
        solver = FreeSurfaceSolver(driver, metrics=m)
        b = np.where(liquid, 1.0, 0.0)
        solver.solve(b, g.solid)
        solver.reset()
        solver.solve(b, g.solid)
        assert m.to_dict()["counters"]["cache/free_surface/miss"] == 2.0


class TestDriverState:
    def test_state_round_trip(self):
        _, driver = free_surface_sim("dam_break:grid=16")
        state = {k: v.copy() for k, v in driver.state_arrays().items()}
        driver.phi += 3.0
        driver._applies = 42
        driver.load_state_arrays(state)
        np.testing.assert_array_equal(driver.phi, state["phi"])
        assert driver._applies == int(state["applies"])

    def test_reinit_cadence_respected(self):
        g, driver = build_scenario("dam_break:grid=16,reinit_every=2", rng=0)
        assert driver.reinit_every == 2
        g2, driver2 = build_scenario("dam_break:grid=16,reinit_every=0", rng=0)
        assert driver2.reinit_every == 0  # never redistances
