"""Tests for semi-Lagrangian and MacCormack advection."""

import numpy as np
import pytest

from repro.fluid import MACGrid2D, advect_scalar, advect_velocity, maccormack_scalar


def blob_field(g: MACGrid2D, cx: float, cy: float, r: float = 0.08) -> np.ndarray:
    x, y = g.cell_centers()
    return np.exp(-((x - cx) ** 2 + (y - cy) ** 2) / r**2)


def centroid(g: MACGrid2D, f: np.ndarray) -> tuple[float, float]:
    x, y = g.cell_centers()
    total = f.sum() + 1e-30
    return float((f * x).sum() / total), float((f * y).sum() / total)


class TestScalarAdvection:
    def test_zero_velocity_is_identity_for_smooth_fields(self):
        g = MACGrid2D(32, 32)
        f = blob_field(g, 0.5, 0.5)
        out = advect_scalar(g, f, dt=0.1)
        np.testing.assert_allclose(out[g.fluid], f[g.fluid], atol=1e-12)

    def test_uniform_flow_translates_blob(self):
        g = MACGrid2D(64, 64)
        g.u[:] = 1.0  # rightward
        f = blob_field(g, 0.3, 0.5)
        out = advect_scalar(g, f, dt=0.1)
        cx0, cy0 = centroid(g, f)
        cx1, cy1 = centroid(g, out)
        assert cx1 - cx0 == pytest.approx(0.1, abs=0.01)
        assert cy1 == pytest.approx(cy0, abs=0.01)

    def test_downward_flow_translates_blob(self):
        g = MACGrid2D(64, 64)
        g.v[:] = 0.5  # +y (down the array)
        f = blob_field(g, 0.5, 0.3)
        out = advect_scalar(g, f, dt=0.1)
        _, cy0 = centroid(g, f)
        _, cy1 = centroid(g, out)
        assert cy1 - cy0 == pytest.approx(0.05, abs=0.01)

    def test_no_new_extrema(self):
        g = MACGrid2D(32, 32)
        rng = np.random.default_rng(0)
        g.u = rng.standard_normal(g.u.shape)
        g.v = rng.standard_normal(g.v.shape)
        f = np.clip(blob_field(g, 0.5, 0.5), 0.0, 1.0)
        out = advect_scalar(g, f, dt=0.05)
        assert out.min() >= f.min() - 1e-12
        assert out.max() <= f.max() + 1e-12

    def test_solid_cells_stay_empty(self):
        g = MACGrid2D(32, 32)
        mask = np.zeros((32, 32), dtype=bool)
        mask[10:14, 10:14] = True
        g.add_solid(mask)
        g.u[:] = 1.0
        f = np.ones(g.shape)
        out = advect_scalar(g, f, dt=0.1)
        assert (out[g.solid] == 0).all()

    def test_input_not_mutated(self):
        g = MACGrid2D(16, 16)
        g.u[:] = 1.0
        f = blob_field(g, 0.5, 0.5)
        f0 = f.copy()
        advect_scalar(g, f, dt=0.1)
        np.testing.assert_array_equal(f, f0)


class TestMacCormack:
    def test_less_diffusive_than_semi_lagrangian(self):
        g = MACGrid2D(64, 64)
        g.u[:] = 1.0
        f = blob_field(g, 0.3, 0.5)
        sl = f.copy()
        mc = f.copy()
        for _ in range(10):
            sl = advect_scalar(g, sl, dt=0.02)
            mc = maccormack_scalar(g, mc, dt=0.02)
        # the corrected scheme preserves the peak better
        assert mc.max() > sl.max()

    def test_limiter_prevents_overshoot(self):
        g = MACGrid2D(32, 32)
        rng = np.random.default_rng(1)
        g.u = rng.standard_normal(g.u.shape) * 0.5
        g.v = rng.standard_normal(g.v.shape) * 0.5
        f = np.clip(blob_field(g, 0.5, 0.5), 0.0, 1.0)
        out = maccormack_scalar(g, f, dt=0.05)
        assert out.max() <= 1.0 + 1e-9
        assert out.min() >= -1e-9


class TestVelocityAdvection:
    def test_zero_velocity_unchanged(self):
        g = MACGrid2D(16, 16)
        u, v = advect_velocity(g, dt=0.1)
        np.testing.assert_array_equal(u, 0.0)
        np.testing.assert_array_equal(v, 0.0)

    def test_uniform_velocity_fixed_point(self):
        g = MACGrid2D(32, 32)
        g.u[:] = 1.5
        g.v[:] = -0.5
        u, v = advect_velocity(g, dt=0.05)
        np.testing.assert_allclose(u, 1.5, atol=1e-12)
        np.testing.assert_allclose(v, -0.5, atol=1e-12)

    def test_returns_new_arrays(self):
        g = MACGrid2D(16, 16)
        g.u[:] = 1.0
        u, v = advect_velocity(g, dt=0.1)
        assert u is not g.u and v is not g.v

    def test_shear_transport(self):
        # a u-stripe carried downward by constant v
        g = MACGrid2D(64, 64)
        g.v[:] = 1.0
        g.u[20, :] = 1.0
        u, _ = advect_velocity(g, dt=g.dx * 2)  # move 2 cells down
        row_energy = (u**2).sum(axis=1)
        assert row_energy.argmax() == 22
