"""Scenario registry: specs, round-trips, drivers, cache re-keying."""

import json

import numpy as np
import pytest

from repro.fluid import (
    CellType,
    FluidSimulator,
    MACGrid2D,
    PCGSolver,
    ScenarioSpec,
    SimulationConfig,
    SmokeSource,
    build_scenario,
    disc_mask,
    list_scenarios,
    parse_scenario,
)
from repro.metrics import MetricsRegistry


def run_scenario(selector, rng=0, steps=4, metrics=None, solver=None):
    """Build + run one scenario the way the CLI/worker wire it."""
    m = metrics if metrics is not None else MetricsRegistry()
    grid, driver = build_scenario(selector, rng=rng)
    wrapped = driver.wrap_solver(solver if solver is not None else PCGSolver(metrics=m))
    overrides = getattr(driver, "config_overrides", {})
    config = SimulationConfig(**overrides) if overrides else None
    sim = FluidSimulator(grid, wrapped, driver, config=config, metrics=m)
    return sim, sim.run(steps)


class TestScenarioSpec:
    def test_frozen_and_hashable(self):
        spec = ScenarioSpec("smoke_plume", grid=32)
        with pytest.raises(AttributeError):
            spec.name = "other"
        assert hash(spec) == hash(ScenarioSpec("smoke_plume", grid=32))
        assert spec == ScenarioSpec("smoke_plume", grid=32)
        assert spec != ScenarioSpec("smoke_plume", grid=64)

    def test_string_round_trip(self):
        spec = ScenarioSpec("dam_break", grid=24, gravity=2.5, reinit_every=0)
        assert parse_scenario(spec.to_string()) == spec

    def test_json_round_trip(self):
        spec = ScenarioSpec("inflow_jet", grid=16, side="right", speed=1.5)
        restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_parse_value_types(self):
        spec = parse_scenario("s:a=1,b=1.5,c=true,d=none,e=left")
        assert spec.params == (("a", 1), ("b", 1.5), ("c", True), ("d", None), ("e", "left"))

    def test_parse_passthrough_and_malformed(self):
        spec = ScenarioSpec("smoke_plume")
        assert parse_scenario(spec) is spec
        with pytest.raises(ValueError, match="malformed"):
            parse_scenario("smoke_plume:grid")

    def test_rejects_non_scalar_params(self):
        with pytest.raises(TypeError):
            ScenarioSpec("s", mask=np.zeros(3))

    def test_with_defaults_only_fills_missing(self):
        spec = ScenarioSpec("smoke_plume", grid=64)
        assert spec.with_defaults(grid=32) is spec
        assert spec.with_defaults(extra=1).get("extra") == 1

    def test_slug_is_filesystem_safe_and_stable(self):
        assert ScenarioSpec("smoke_plume").slug == "smoke_plume"
        a = ScenarioSpec("dam_break", grid=64).slug
        assert a == ScenarioSpec("dam_break", grid=64).slug
        assert a.startswith("dam_break-")
        assert "=" not in a and ":" not in a


class TestRegistry:
    def test_at_least_five_scenarios(self):
        names = {info.name for info in list_scenarios()}
        assert len(names) >= 5
        assert {"smoke_plume", "inflow_jet", "moving_cylinder", "dam_break"} <= names

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("warp_drive")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            build_scenario("smoke_plume:warp=9")

    def test_params_carry_docs(self):
        for info in list_scenarios():
            assert info.description
            assert any(p.name == "grid" for p in info.params)

    def test_build_bitwise_reproducible_after_round_trip(self):
        # spec -> JSON -> spec must materialise the identical grid bit for bit
        spec = ScenarioSpec("smoke_plume", grid=24)
        restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        g1, _ = build_scenario(spec, rng=11)
        g2, _ = build_scenario(restored, rng=11)
        np.testing.assert_array_equal(g1.u, g2.u)
        np.testing.assert_array_equal(g1.v, g2.v)
        np.testing.assert_array_equal(g1.density, g2.density)
        np.testing.assert_array_equal(g1.flags, g2.flags)

    def test_registry_matches_legacy_generator(self):
        from repro.fluid import make_smoke_plume

        g1, _ = build_scenario(ScenarioSpec("smoke_plume", grid=24), rng=7)
        g2, _ = make_smoke_plume(24, 24, rng=7)
        np.testing.assert_array_equal(g1.u, g2.u)
        np.testing.assert_array_equal(g1.v, g2.v)
        np.testing.assert_array_equal(g1.density, g2.density)
        np.testing.assert_array_equal(g1.flags, g2.flags)


class TestSmokeSourceClamp:
    def test_emission_clamped_against_current_solid(self):
        # a solid stamped over half the source region (a moving obstacle
        # sweeping through it) must mask emission, not be painted over
        g = MACGrid2D(16, 16)
        mask = np.zeros((16, 16), dtype=bool)
        mask[10:12, 4:12] = True
        covered = np.zeros_like(mask)
        covered[10:12, 8:12] = True
        g.flags[covered] = CellType.SOLID
        source = SmokeSource(mask=mask)
        source.apply(g, dt=1.0)
        assert g.density[covered].sum() == 0.0
        assert (g.density[mask & ~covered] > 0).all()

    def test_inflow_not_written_into_solid_adjacent_faces(self):
        g = MACGrid2D(16, 16)
        mask = np.zeros((16, 16), dtype=bool)
        mask[10:12, 4:8] = True
        g.flags[8:14, 8:10] = CellType.SOLID  # wall right of the source
        source = SmokeSource(mask=mask, direction="right")
        source.apply(g, dt=1.0)
        # the u-face between source column 7 and solid column 8 stays 0
        assert (g.u[10:12, 8] == 0.0).all()
        assert (g.u[10:12, 5:8] == source.inflow).all()

    @pytest.mark.parametrize(
        "direction,sign,axis",
        [("up", -1.0, "v"), ("down", 1.0, "v"), ("left", -1.0, "u"), ("right", 1.0, "u")],
    )
    def test_direction_variants(self, direction, sign, axis):
        g = MACGrid2D(12, 12)
        mask = np.zeros((12, 12), dtype=bool)
        mask[5:7, 5:7] = True
        source = SmokeSource(mask=mask, inflow=0.5, direction=direction)
        source.apply(g, dt=0.1)
        field = g.v if axis == "v" else g.u
        assert (field[5:7, 5:7] == sign * 0.5).all()

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError, match="unknown direction"):
            SmokeSource(mask=np.zeros((4, 4), dtype=bool), direction="sideways")


class TestMovingSolids:
    def test_moving_cylinder_re_keys_geometry_caches(self):
        # a moving solid must never reuse stale MIC(0)/kernel artefacts:
        # every step has a fresh mask, so every solve is a cache miss
        m = MetricsRegistry()
        steps = 5
        run_scenario("moving_cylinder:grid=24", rng=0, steps=steps, metrics=m)
        counters = m.to_dict()["counters"]
        assert counters["sim/cache/mic0/miss"] == steps
        assert counters["sim/cache/kernels/miss"] == steps
        assert counters.get("sim/cache/mic0/hit", 0.0) == 0.0

    def test_static_scenario_reuses_geometry_caches(self):
        m = MetricsRegistry()
        steps = 5
        run_scenario("smoke_plume:grid=24", rng=0, steps=steps, metrics=m)
        counters = m.to_dict()["counters"]
        assert counters["sim/cache/mic0/miss"] == 1.0
        assert counters["sim/cache/mic0/hit"] == steps - 1

    def test_nn_geometry_channel_re_keys(self):
        from repro.models import NNProjectionSolver, tompson_arch

        m = MetricsRegistry()
        steps = 3
        solver = NNProjectionSolver(tompson_arch(4).build(rng=0), passes=1, metrics=m)
        run_scenario("moving_cylinder:grid=16", rng=0, steps=steps, metrics=m, solver=solver)
        counters = m.to_dict()["counters"]
        assert counters["sim/cache/nn_geometry/miss"] == steps
        assert counters.get("sim/cache/nn_geometry/hit", 0.0) == 0.0

    def test_disc_actually_moves_and_stays_rigid(self):
        g, driver = build_scenario("moving_cylinder:grid=24", rng=0)
        first = g.solid.copy()
        sim_like_masks = [first]
        for _ in range(3):
            driver.apply(g, dt=0.4)
            sim_like_masks.append(g.solid.copy())
        assert any(not np.array_equal(first, later) for later in sim_like_masks[1:])
        # the disc keeps its area (rigid body, no erosion) up to rasterisation
        border = np.zeros_like(first)
        border[0, :] = border[-1, :] = border[:, 0] = border[:, -1] = True
        areas = [int((mask & ~border).sum()) for mask in sim_like_masks]
        assert max(areas) - min(areas) <= max(2, areas[0] // 4)

    def test_solid_velocity_imposed_on_faces(self):
        g = MACGrid2D(16, 16)
        from repro.fluid import MovingSolidDriver

        driver = MovingSolidDriver(
            g.solid.copy(),
            mask_at=lambda t: disc_mask((16, 16), 8.0 + t, 8.0, 2.5),
            velocity_at=lambda t: (0.25, 0.0),
        )
        driver.apply(g, dt=1.0)
        dyn = g.solid.copy()
        dyn[0, :] = dyn[-1, :] = dyn[:, 0] = dyn[:, -1] = False
        ys, xs = np.nonzero(dyn)
        inner = (xs > 1) & (xs < 14)
        assert (g.u[ys[inner], xs[inner]] == 0.25).all()
        assert (g.u[ys[inner], xs[inner] + 1] == 0.25).all()


class TestScenarioRuns:
    @pytest.mark.parametrize("name", [info.name for info in list_scenarios()])
    def test_every_scenario_steps_cleanly(self, name):
        sim, result = run_scenario(f"{name}:grid=16", rng=2, steps=3)
        assert len(result.records) == 3
        assert all(np.isfinite(r.divnorm) for r in result.records)

    def test_karman_street_disables_buoyancy(self):
        _, driver = build_scenario("karman_street:grid=16", rng=0)
        assert driver.config_overrides["buoyancy"] == 0.0
        assert driver.config_overrides["vorticity_eps"] > 0.0

    def test_composite_driver_merges_and_namespaces(self):
        from repro.fluid import CompositeDriver, MovingSolidDriver

        g = MACGrid2D(12, 12)
        mover = MovingSolidDriver(
            g.solid.copy(),
            mask_at=lambda t: disc_mask((12, 12), 6.0 + t, 6.0, 2.0),
            velocity_at=lambda t: (0.1, 0.0),
        )
        comp = CompositeDriver(mover, SmokeSource(mask=np.zeros((12, 12), dtype=bool)))
        comp.apply(g, dt=0.5)
        state = comp.state_arrays()
        assert "0/t" in state
        mover.t = 99.0
        comp.load_state_arrays(state)
        assert mover.t == 0.5
