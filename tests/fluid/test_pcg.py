"""Tests for the MICCG(0) pressure solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluid import (
    MACGrid2D,
    MIC0Preconditioner,
    PCGSolver,
    apply_laplacian,
    jacobi_solve,
    make_smoke_plume,
)


def plume_solid(n: int, seed: int) -> np.ndarray:
    g, _ = make_smoke_plume(n, n, rng=seed)
    return g.solid


def compatible_rhs(solid: np.ndarray, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    fluid = ~solid
    b = np.where(fluid, rng.standard_normal(solid.shape), 0.0)
    return np.where(fluid, b - b[fluid].mean(), 0.0)


class TestMIC0Preconditioner:
    def test_requires_border_wall(self):
        solid = np.zeros((8, 8), dtype=bool)
        with pytest.raises(ValueError):
            MIC0Preconditioner(solid)

    def test_apply_is_linear(self):
        solid = plume_solid(16, 0)
        pc = MIC0Preconditioner(solid)
        a = compatible_rhs(solid, 1)
        b = compatible_rhs(solid, 2)
        np.testing.assert_allclose(
            pc.apply(2.0 * a + 3.0 * b), 2.0 * pc.apply(a) + 3.0 * pc.apply(b), atol=1e-10
        )

    def test_apply_is_symmetric(self):
        # M^{-1} = (L L^T)^{-1} must be symmetric: <M^{-1}a, b> == <a, M^{-1}b>
        solid = plume_solid(16, 3)
        pc = MIC0Preconditioner(solid)
        a = compatible_rhs(solid, 4)
        b = compatible_rhs(solid, 5)
        assert (pc.apply(a) * b).sum() == pytest.approx((a * pc.apply(b)).sum())

    def test_apply_is_positive_definite_on_fluid(self):
        solid = plume_solid(16, 6)
        pc = MIC0Preconditioner(solid)
        for seed in range(5):
            a = compatible_rhs(solid, seed)
            assert (pc.apply(a) * a).sum() > 0

    def test_zero_on_solid_cells(self):
        solid = plume_solid(16, 7)
        pc = MIC0Preconditioner(solid)
        out = pc.apply(compatible_rhs(solid, 8))
        assert (out[solid] == 0).all()

    def test_preconditioner_accelerates_cg(self):
        solid = plume_solid(32, 9)
        b = compatible_rhs(solid, 10)
        plain = PCGSolver(tol=1e-8, preconditioner="none").solve(b, solid)
        mic = PCGSolver(tol=1e-8, preconditioner="mic0").solve(b, solid)
        assert mic.converged and plain.converged
        assert mic.iterations < plain.iterations


class TestPCGSolver:
    def test_solves_poisson(self):
        solid = plume_solid(16, 0)
        b = compatible_rhs(solid, 1)
        res = PCGSolver(tol=1e-9).solve(b, solid)
        assert res.converged
        r = b - apply_laplacian(res.pressure, solid)
        assert np.abs(r[~solid]).max() < 1e-7

    def test_solution_mean_zero(self):
        solid = plume_solid(16, 2)
        res = PCGSolver().solve(compatible_rhs(solid, 3), solid)
        assert res.pressure[~solid].mean() == pytest.approx(0.0, abs=1e-12)

    def test_zero_rhs_returns_immediately(self):
        solid = plume_solid(16, 4)
        res = PCGSolver().solve(np.zeros(solid.shape), solid)
        assert res.converged and res.iterations == 0
        np.testing.assert_array_equal(res.pressure, 0.0)

    def test_incompatible_rhs_projected(self):
        # a nonzero-mean rhs is projected onto the solvable subspace
        solid = plume_solid(16, 5)
        rng = np.random.default_rng(6)
        b = np.where(~solid, rng.standard_normal(solid.shape) + 5.0, 0.0)
        res = PCGSolver(tol=1e-8).solve(b, solid)
        assert res.converged

    def test_residual_history_monotone_trend(self):
        solid = plume_solid(32, 7)
        res = PCGSolver(tol=1e-8).solve(compatible_rhs(solid, 8), solid)
        hist = np.array(res.residual_history)
        assert hist[-1] < hist[0] * 1e-6

    def test_iteration_cap_reported(self):
        solid = plume_solid(32, 9)
        res = PCGSolver(tol=1e-12, max_iterations=3).solve(compatible_rhs(solid, 10), solid)
        assert not res.converged
        assert res.iterations == 3

    def test_flops_accounted(self):
        solid = plume_solid(16, 11)
        res = PCGSolver().solve(compatible_rhs(solid, 12), solid)
        assert res.flops > 0

    def test_unknown_preconditioner_rejected(self):
        with pytest.raises(ValueError):
            PCGSolver(preconditioner="ilu")

    def test_jacobi_preconditioner_works(self):
        solid = plume_solid(16, 13)
        res = PCGSolver(tol=1e-8, preconditioner="jacobi").solve(compatible_rhs(solid, 14), solid)
        assert res.converged

    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_convergence_across_geometries(self, seed):
        solid = plume_solid(16, seed)
        b = compatible_rhs(solid, seed + 1)
        res = PCGSolver(tol=1e-7).solve(b, solid)
        assert res.converged

    def test_preconditioner_cache_reused_and_refreshed(self):
        solver = PCGSolver()
        s1 = plume_solid(16, 15)
        solver.solve(compatible_rhs(s1, 16), s1)
        first = solver._mic_cache._value
        assert first is not None
        solver.solve(compatible_rhs(s1, 17), s1)
        assert solver._mic_cache._value is first  # same mask -> cached
        s2 = plume_solid(16, 18)
        solver.solve(compatible_rhs(s2, 19), s2)
        assert solver._mic_cache._value is not first  # new mask -> rebuilt

    def test_linearity_of_solution(self):
        solid = plume_solid(16, 20)
        b = compatible_rhs(solid, 21)
        p1 = PCGSolver(tol=1e-10).solve(b, solid).pressure
        p2 = PCGSolver(tol=1e-10).solve(2.0 * b, solid).pressure
        np.testing.assert_allclose(p2, 2.0 * p1, atol=1e-6)


class TestJacobiSolve:
    def test_reduces_residual(self):
        solid = plume_solid(16, 0)
        b = compatible_rhs(solid, 1)
        res = jacobi_solve(b, solid, iterations=300)
        r = b - apply_laplacian(res.pressure, solid)
        assert np.abs(r[~solid]).max() < np.abs(b[~solid]).max()

    def test_tolerance_stops_early(self):
        solid = plume_solid(16, 2)
        b = compatible_rhs(solid, 3)
        res = jacobi_solve(b, solid, iterations=100000, tol=1e-2)
        assert res.converged
        assert res.iterations < 100000

    def test_much_less_accurate_than_pcg_at_fixed_work(self):
        solid = plume_solid(32, 4)
        b = compatible_rhs(solid, 5)
        pcg = PCGSolver(tol=1e-9).solve(b, solid)
        jac = jacobi_solve(b, solid, iterations=pcg.iterations)
        assert jac.residual_norm > pcg.residual_norm
