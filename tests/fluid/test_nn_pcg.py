"""Tests for the NN-preconditioned flexible CG solver (DCDM-style)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluid import (
    FluidSimulator,
    GeometryKernels,
    NNPCGSolver,
    PCGSolver,
    SimulationConfig,
    apply_laplacian,
    build_scenario,
    list_scenarios,
    make_smoke_plume,
    parse_scenario,
)
from repro.fluid.laplacian import remove_nullspace
from repro.metrics import MetricsRegistry
from repro.models import tompson_arch


def plume_solid(n: int, seed: int) -> np.ndarray:
    g, _ = make_smoke_plume(n, n, rng=seed)
    return g.solid


def compatible_rhs(solid: np.ndarray, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    fluid = ~solid
    b = np.where(fluid, rng.standard_normal(solid.shape), 0.0)
    return np.where(fluid, b - b[fluid].mean(), 0.0)


@pytest.fixture(scope="module")
def net():
    """One untrained direction network shared across the module.

    Untrained weights make the *safeguard* load-bearing: every test below
    must pass regardless of direction quality, which is exactly the
    convergence contract.
    """
    return tompson_arch(4).build(rng=0)


def residual_inf(p: np.ndarray, b: np.ndarray, solid: np.ndarray) -> float:
    bz = remove_nullspace(b, solid)
    r = np.where(~solid, bz - apply_laplacian(p, solid), 0.0)
    return float(np.abs(r).max())


class _CaptureSolver:
    """Delegate to an inner solver, recording every (b, solid) it sees."""

    def __init__(self, inner):
        self.inner = inner
        self.samples: list[tuple[np.ndarray, np.ndarray]] = []
        self.name = inner.name

    def solve(self, b, solid):
        self.samples.append((b.copy(), solid.copy()))
        return self.inner.solve(b, solid)

    def reset(self):
        self.inner.reset()


class TestConvergence:
    def test_converges_to_pcg_tolerance(self, net):
        solid = plume_solid(32, 0)
        b = compatible_rhs(solid, 1)
        solver = NNPCGSolver(net, tol=1e-5, metrics=MetricsRegistry())
        res = solver.solve(b, solid)
        assert res.converged
        bnorm = float(np.abs(remove_nullspace(b, solid)).max())
        assert residual_inf(res.pressure, b, solid) <= 1e-5 * bnorm

    def test_pressure_is_nullspace_free(self, net):
        solid = plume_solid(24, 2)
        b = compatible_rhs(solid, 3)
        res = NNPCGSolver(net, metrics=MetricsRegistry()).solve(b, solid)
        fluid = ~solid
        assert abs(res.pressure[fluid].mean()) < 1e-12
        assert np.all(res.pressure[solid] == 0.0)

    def test_zero_rhs_short_circuits(self, net):
        solid = plume_solid(16, 0)
        res = NNPCGSolver(net, metrics=MetricsRegistry()).solve(
            np.zeros_like(solid, dtype=np.float64), solid
        )
        assert res.converged
        assert res.iterations == 0
        assert np.all(res.pressure == 0.0)

    def test_fp64_precision_also_converges(self, net):
        solid = plume_solid(24, 4)
        b = compatible_rhs(solid, 5)
        solver = NNPCGSolver(net, precision="fp64", metrics=MetricsRegistry())
        res = solver.solve(b, solid)
        assert res.converged

    def test_scenario_equivalence(self, net):
        """NN-PCG hits PCG's tolerance on every registered scenario's solves.

        For each scenario registry entry, run a short simulation with the
        reference PCG solver (wrapped by the scenario driver, like a real
        job) while capturing the Poisson problems it is asked to solve,
        then re-solve the last non-trivial one with NN-PCG and check the
        residual against the same relative tolerance.  Free-surface
        drivers replace the configured solver outright (their pressure
        solve is a different, liquid-only system), so they legitimately
        capture nothing and are skipped — but at least four scenarios must
        exercise the solver for the sweep to count.
        """
        tol = 1e-5
        covered = 0
        for info in list_scenarios():
            sspec = parse_scenario(info.name).with_defaults(grid=32)
            grid, driver = build_scenario(sspec, rng=0)
            cap = _CaptureSolver(PCGSolver(tol=tol, metrics=MetricsRegistry()))
            wrapped = driver.wrap_solver(cap)
            overrides = getattr(driver, "config_overrides", {})
            config = SimulationConfig(**overrides) if overrides else None
            sim = FluidSimulator(grid, wrapped, driver, config=config,
                                 metrics=MetricsRegistry())
            sim.run(3)
            nontrivial = [
                (b, s) for b, s in cap.samples if float(np.abs(b).max()) > 1e-12
            ]
            if not nontrivial:
                continue  # driver replaced the solver (free surface)
            b, solid = nontrivial[-1]
            solver = NNPCGSolver(net, tol=tol, metrics=MetricsRegistry())
            res = solver.solve(b, solid)
            bnorm = float(np.abs(remove_nullspace(b, solid)).max())
            assert res.converged, f"nn_pcg failed to converge on {info.name}"
            assert residual_inf(res.pressure, b, solid) <= tol * bnorm, info.name
            covered += 1
        assert covered >= 4, f"only {covered} scenarios exercised the solver"


class TestDeterminism:
    def test_repeated_solves_are_bitwise_identical(self, net):
        solid = plume_solid(32, 7)
        b = compatible_rhs(solid, 8)
        solver = NNPCGSolver(net, metrics=MetricsRegistry())
        first = solver.solve(b, solid)
        second = solver.solve(b, solid)  # warm caches
        solver.reset()
        third = solver.solve(b, solid)  # cold caches again
        for other in (second, third):
            assert np.array_equal(first.pressure, other.pressure)
            assert first.iterations == other.iterations
            assert first.residual_history == other.residual_history

    def test_fresh_solver_reproduces_the_same_result(self, net):
        solid = plume_solid(24, 9)
        b = compatible_rhs(solid, 10)
        a = NNPCGSolver(net, metrics=MetricsRegistry()).solve(b, solid)
        c = NNPCGSolver(net, metrics=MetricsRegistry()).solve(b, solid)
        assert np.array_equal(a.pressure, c.pressure)
        assert a.residual_history == c.residual_history


class TestSafeguard:
    def test_zero_network_falls_back_to_mic_directions(self):
        """A degenerate (all-zero) network triggers the safeguard every
        iteration, and the safeguarded solver still converges like PCG."""
        zero_net = tompson_arch(4).build(rng=0)
        for p in zero_net.parameters():
            p.value[...] = 0.0
        solid = plume_solid(32, 11)
        b = compatible_rhs(solid, 12)
        metrics = MetricsRegistry()
        solver = NNPCGSolver(zero_net, tol=1e-5, metrics=metrics)
        res = solver.solve(b, solid)
        assert res.converged
        assert metrics.counter("solver/nn_pcg/nn_steps") == 0
        assert metrics.counter("solver/nn_pcg/safeguard_steps") == res.iterations

        ref = PCGSolver(tol=1e-5, metrics=MetricsRegistry()).solve(b, solid)
        assert res.iterations == ref.iterations

    def test_untrained_network_cannot_break_convergence(self, net):
        solid = plume_solid(24, 13)
        b = compatible_rhs(solid, 14)
        metrics = MetricsRegistry()
        res = NNPCGSolver(net, tol=1e-5, metrics=metrics).solve(b, solid)
        assert res.converged
        total = metrics.counter("solver/nn_pcg/nn_steps") + metrics.counter(
            "solver/nn_pcg/safeguard_steps"
        )
        assert total == res.iterations


class TestAConjugacy:
    @given(seed=st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_orthogonalized_directions_stay_a_conjugate(self, seed):
        """MGS output is A-conjugate to every window member (fp32 tolerance)."""
        solid = plume_solid(16, 0)
        kern = GeometryKernels(solid)
        rng = np.random.default_rng(seed)
        window: list[tuple[np.ndarray, np.ndarray, float]] = []
        for _ in range(5):
            q = NNPCGSolver._orthogonalize(rng.standard_normal(kern.n), window)
            Aq = kern.matvec(q)
            qAq = float(q @ Aq)
            for s, As, sAs in window:
                scale = np.sqrt(max(qAq, 0.0) * sAs)
                assert abs(float(q @ As)) <= 1e-6 * max(scale, 1e-30)
            window.append((q, Aq, qAq))
            if len(window) > 2:
                window.pop(0)


class TestPlanPrewarm:
    def test_ensure_capacity_builds_every_pyramid_level(self, net):
        metrics = MetricsRegistry()
        solver = NNPCGSolver(net, metrics=metrics)
        solver.ensure_capacity((32, 32))
        # 32 -> 16 -> 8 (min_level=8 stops further coarsening)
        assert metrics.counter("solver/nn_pcg/plan_builds") == 3

        solid = plume_solid(32, 0)
        solver.solve(compatible_rhs(solid, 1), solid)
        assert metrics.counter("solver/nn_pcg/plan_builds") == 3  # all pre-warmed

    def test_reset_drops_plans(self, net):
        metrics = MetricsRegistry()
        solver = NNPCGSolver(net, metrics=metrics)
        solver.ensure_capacity((16, 16))
        built = metrics.counter("solver/nn_pcg/plan_builds")
        solver.reset()
        solver.ensure_capacity((16, 16))
        assert metrics.counter("solver/nn_pcg/plan_builds") == 2 * built


class TestValidationAndAccounting:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": -1},
            {"cycles": 0},
            {"min_level": 2},
            {"precision": "fp16"},
        ],
    )
    def test_invalid_parameters_rejected(self, net, kwargs):
        with pytest.raises(ValueError):
            NNPCGSolver(net, **kwargs)

    def test_solve_counters(self, net):
        solid = plume_solid(24, 15)
        b = compatible_rhs(solid, 16)
        metrics = MetricsRegistry()
        res = NNPCGSolver(net, metrics=metrics).solve(b, solid)
        assert metrics.counter("solver/nn_pcg/solves") == 1
        assert metrics.counter("solver/nn_pcg/iterations") == res.iterations

    def test_resource_usage_positive(self, net):
        usage = NNPCGSolver(net).resource_usage((32, 32))
        assert usage.flops > 0
        assert usage.params > 0

    def test_simulation_runs_end_to_end(self, net):
        grid, source = make_smoke_plume(24, 24, rng=0)
        solver = NNPCGSolver(net, metrics=MetricsRegistry())
        sim = FluidSimulator(grid, solver, source, metrics=MetricsRegistry())
        result = sim.run(3)
        assert len(result.records) == 3
        assert all(r.projection.converged for r in result.records)
