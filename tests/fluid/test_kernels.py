"""Bit-for-bit equivalence of the kernel PCG backend vs. the reference path.

The kernel backend is only allowed to be *faster*, never *different*: every
assertion here is exact (``==`` / ``assert_array_equal``), not approximate.
"""

import numpy as np
import pytest

import repro.fluid.kernels as kernels_mod
from repro.fluid import MACGrid2D, MIC0Preconditioner, PCGSolver
from repro.fluid.geometry import disc_mask
from repro.fluid.kernels import GeometryKernels, MICTriangularFactor, spectral_eligible
from repro.fluid.laplacian import remove_nullspace, stencil_arrays
from repro.fluid.operators import apply_laplacian
from repro.metrics import MetricsRegistry


def border_wall(n=24):
    return MACGrid2D(n, n).solid.copy()


def multi_obstacle(n=24):
    solid = border_wall(n)
    solid |= disc_mask(solid.shape, n // 2, n // 3, n // 8)
    solid |= disc_mask(solid.shape, n // 4, 3 * n // 4, n // 10)
    return solid


def multi_component(n=24):
    """A full-height wall splits the fluid into two components."""
    solid = border_wall(n)
    solid[:, n // 2] = True
    return solid


GEOMETRIES = [
    ("border_wall", border_wall),
    ("multi_obstacle", multi_obstacle),
    ("multi_component", multi_component),
]


def make_rhs(solid, seed=1):
    rng = np.random.default_rng(seed)
    return np.where(~solid, rng.standard_normal(solid.shape), 0.0)


def assert_results_identical(a, b):
    assert a.iterations == b.iterations
    assert a.converged == b.converged
    assert a.residual_norm == b.residual_norm
    assert a.flops == b.flops
    assert a.residual_history == b.residual_history
    np.testing.assert_array_equal(a.pressure, b.pressure)


class TestGeometryKernels:
    @pytest.mark.parametrize("label,geom", GEOMETRIES)
    def test_matvec_matches_apply_laplacian_bitwise(self, label, geom):
        solid = geom()
        kern = GeometryKernels(solid)
        rng = np.random.default_rng(7)
        v = np.where(~solid, rng.standard_normal(solid.shape), 0.0)
        dense = apply_laplacian(v, solid)
        np.testing.assert_array_equal(kern.matvec(kern.gather(v)), kern.gather(dense))

    @pytest.mark.parametrize("label,geom", GEOMETRIES)
    def test_gather_scatter_roundtrip(self, label, geom):
        solid = geom()
        kern = GeometryKernels(solid)
        rng = np.random.default_rng(3)
        field = np.where(~solid, rng.standard_normal(solid.shape), 0.0)
        np.testing.assert_array_equal(kern.gather(field), field[~solid])
        np.testing.assert_array_equal(kern.scatter(kern.gather(field)), field)

    def test_degree_matches_stencil_diagonal(self):
        solid = multi_obstacle()
        kern = GeometryKernels(solid)
        adiag, _, _ = stencil_arrays(solid)
        np.testing.assert_array_equal(kern.degree, adiag)

    def test_inv_degree_matches_reference_formula(self):
        solid = multi_obstacle()
        kern = GeometryKernels(solid)
        adiag, _, _ = stencil_arrays(solid)
        inv = np.where(adiag > 0, 1.0 / np.maximum(adiag, 1e-30), 0.0)
        np.testing.assert_array_equal(kern.inv_degree, kern.gather(inv))


class TestMICTriangularFactor:
    @pytest.mark.parametrize("label,geom", GEOMETRIES)
    def test_factor_apply_matches_wavefront_apply_bitwise(self, label, geom):
        solid = geom()
        kern = GeometryKernels(solid)
        mic = MIC0Preconditioner(solid)
        factor = kern.mic_factor(mic)
        rng = np.random.default_rng(11)
        r = np.where(~solid, rng.standard_normal(solid.shape), 0.0)
        np.testing.assert_array_equal(
            factor.apply(kern.gather(r)), kern.gather(mic.apply(r))
        )

    def test_factor_memoised_per_preconditioner(self):
        solid = border_wall()
        kern = GeometryKernels(solid)
        mic = MIC0Preconditioner(solid)
        assert kern.mic_factor(mic) is kern.mic_factor(mic)
        other = MIC0Preconditioner(solid, tau=0.9)
        assert kern.mic_factor(other) is not kern.mic_factor(mic)

    def test_wrapper_fallback_is_bitwise_identical(self, monkeypatch):
        """Without private SuperLU access the public wrapper must match."""
        solid = multi_obstacle()
        kern = GeometryKernels(solid)
        mic = MIC0Preconditioner(solid)
        factor = MICTriangularFactor(kern, mic)
        r = kern.gather(make_rhs(solid, seed=5))
        fast = factor.apply(r)
        monkeypatch.setattr(kernels_mod, "_superlu", None)
        slow = factor.apply(r)
        np.testing.assert_array_equal(fast, slow)


class TestBackendEquivalence:
    @pytest.mark.parametrize("label,geom", GEOMETRIES)
    @pytest.mark.parametrize("precond", ["mic0", "jacobi", "none"])
    def test_solve_results_identical(self, label, geom, precond):
        solid = geom()
        b = make_rhs(solid)
        res_k = PCGSolver(preconditioner=precond, backend="kernel").solve(b, solid)
        res_r = PCGSolver(preconditioner=precond, backend="reference").solve(b, solid)
        assert res_k.converged
        assert_results_identical(res_k, res_r)

    @pytest.mark.parametrize("label,geom", GEOMETRIES)
    def test_warm_start_identical_across_backends(self, label, geom):
        solid = geom()
        b1, b2 = make_rhs(solid, seed=1), make_rhs(solid, seed=2)
        warm_k = PCGSolver(warm_start=True, backend="kernel")
        warm_r = PCGSolver(warm_start=True, backend="reference")
        assert_results_identical(warm_k.solve(b1, solid), warm_r.solve(b1, solid))
        assert_results_identical(warm_k.solve(b2, solid), warm_r.solve(b2, solid))

    def test_zero_rhs_identical(self):
        solid = border_wall()
        b = np.zeros(solid.shape)
        assert_results_identical(
            PCGSolver(backend="kernel").solve(b, solid),
            PCGSolver(backend="reference").solve(b, solid),
        )

    def test_geometry_switch_identical(self):
        """Cache invalidation on a mid-stream geometry change, both backends."""
        s1, s2 = border_wall(), multi_obstacle()
        solver_k = PCGSolver(backend="kernel")
        solver_r = PCGSolver(backend="reference")
        for solid in (s1, s2, s1):
            b = make_rhs(solid)
            assert_results_identical(solver_k.solve(b, solid), solver_r.solve(b, solid))

    def test_kernel_backend_counts_same_mic_cache(self):
        metrics = MetricsRegistry()
        solid = border_wall()
        b = make_rhs(solid)
        solver = PCGSolver(metrics=metrics, backend="kernel")
        solver.solve(b, solid)
        solver.solve(b, solid)
        assert metrics.counter("cache/mic0/miss") == 1
        assert metrics.counter("cache/mic0/hit") == 1
        assert metrics.counter("cache/kernels/miss") == 1
        assert metrics.counter("cache/kernels/hit") == 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            PCGSolver(backend="fancy")


class TestJacobiKernelPath:
    def test_jacobi_solver_matches_legacy_dense_sweeps(self):
        """The flat Jacobi sweep equals the historical dense formulation."""
        from repro.fluid import JacobiSolver

        solid = multi_obstacle()
        b = make_rhs(solid)
        res = JacobiSolver(iterations=60).solve(b, solid)

        fluid = ~solid
        adiag, _, _ = stencil_arrays(solid)
        inv = np.where(adiag > 0, 1.0 / np.maximum(adiag, 1e-30), 0.0)
        bb = np.where(fluid, b, 0.0)
        p = np.zeros_like(bb)
        for _ in range(60):
            r = bb - apply_laplacian(p, solid)
            p = p + 0.8 * inv * r
        p = np.where(fluid, p - p[fluid].mean(), 0.0)
        np.testing.assert_array_equal(res.pressure, p)


class TestSpectralEligible:
    def test_closed_box_is_eligible(self):
        assert spectral_eligible(border_wall())

    def test_interior_obstacle_is_not(self):
        assert not spectral_eligible(multi_obstacle())

    def test_missing_wall_is_not(self):
        solid = border_wall()
        solid[0, 5] = False
        assert not spectral_eligible(solid)

    def test_tiny_grids_are_not(self):
        assert not spectral_eligible(np.ones((2, 5), dtype=bool))
