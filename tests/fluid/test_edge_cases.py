"""Edge-case and failure-injection tests for the fluid substrate."""

import numpy as np
import pytest

from repro.fluid import (
    FluidSimulator,
    MACGrid2D,
    PCGSolver,
    SimulationConfig,
    divergence,
    make_smoke_plume,
)
from repro.fluid.laplacian import remove_nullspace


class TestDisconnectedDomains:
    def make_split_grid(self) -> MACGrid2D:
        """A wall down the middle: two disconnected fluid components."""
        g = MACGrid2D(16, 16)
        mask = np.zeros((16, 16), dtype=bool)
        mask[:, 8] = True
        g.add_solid(mask)
        return g

    def test_remove_nullspace_per_component(self):
        g = self.make_split_grid()
        field = np.where(g.fluid, 1.0, 0.0)
        field[:, :8] *= 3.0  # different constants per component
        out = remove_nullspace(field, g.solid)
        left = out[:, :8][g.fluid[:, :8]]
        right = out[:, 9:][g.fluid[:, 9:]]
        assert left.mean() == pytest.approx(0.0, abs=1e-12)
        assert right.mean() == pytest.approx(0.0, abs=1e-12)

    def test_pcg_converges_on_split_domain(self):
        g = self.make_split_grid()
        rng = np.random.default_rng(0)
        b = np.where(g.fluid, rng.standard_normal(g.shape), 0.0)
        res = PCGSolver(tol=1e-7).solve(b, g.solid)
        assert res.converged
        assert np.abs(res.pressure).max() < 1e3  # no null-space blow-up

    def test_simulation_stable_on_split_domain(self):
        g = self.make_split_grid()
        g.density[10, 3] = 1.0
        g.density[10, 12] = 1.0
        sim = FluidSimulator(g, PCGSolver(), None, SimulationConfig())
        res = sim.run(4)
        assert np.isfinite(res.density).all()


class TestDegenerateGeometry:
    def test_almost_all_solid(self):
        g = MACGrid2D(8, 8)
        mask = np.ones((8, 8), dtype=bool)
        mask[4, 4] = False  # a single fluid cell
        g.add_solid(mask & g.fluid)
        b = np.zeros(g.shape)
        res = PCGSolver().solve(b, g.solid)
        assert res.converged

    def test_single_fluid_cell_has_zero_pressure(self):
        g = MACGrid2D(8, 8)
        mask = np.ones((8, 8), dtype=bool)
        mask[4, 4] = False
        g.add_solid(mask & g.fluid)
        rng = np.random.default_rng(1)
        b = np.where(g.fluid, rng.standard_normal(g.shape), 0.0)
        res = PCGSolver().solve(b, g.solid)
        # an isolated cell's equation is 0 = 0 after projection
        assert res.pressure[4, 4] == pytest.approx(0.0, abs=1e-9)

    def test_fully_solid_grid(self):
        g = MACGrid2D(8, 8)
        g.add_solid(np.ones((8, 8), dtype=bool))
        res = PCGSolver().solve(np.zeros(g.shape), g.solid)
        assert res.converged
        np.testing.assert_array_equal(res.pressure, 0.0)


class TestNumericalRobustness:
    def test_huge_rhs_magnitude(self):
        g, _ = make_smoke_plume(16, 16, rng=0)
        rng = np.random.default_rng(2)
        b = np.where(g.fluid, rng.standard_normal(g.shape) * 1e12, 0.0)
        res = PCGSolver(tol=1e-7).solve(b, g.solid)
        assert res.converged
        assert np.isfinite(res.pressure).all()

    def test_tiny_rhs_magnitude(self):
        g, _ = make_smoke_plume(16, 16, rng=1)
        rng = np.random.default_rng(3)
        b = np.where(g.fluid, rng.standard_normal(g.shape) * 1e-12, 0.0)
        res = PCGSolver(tol=1e-7).solve(b, g.solid)
        assert np.isfinite(res.pressure).all()

    def test_long_run_stays_finite_and_bounded(self):
        g, src = make_smoke_plume(16, 16, rng=4)
        sim = FluidSimulator(g, PCGSolver(), src)
        res = sim.run(40)
        assert np.isfinite(res.density).all()
        assert res.density.max() <= 1.0 + 1e-9
        assert np.isfinite(sim.grid.u).all() and np.isfinite(sim.grid.v).all()

    def test_large_dt_does_not_crash(self):
        g, src = make_smoke_plume(16, 16, rng=5)
        sim = FluidSimulator(g, PCGSolver(), src, SimulationConfig(dt=0.5))
        res = sim.run(4)
        assert np.isfinite(res.density).all()

    def test_zero_dt_rejected_by_physics(self):
        # dt=0 would divide by zero in the Poisson scaling; poisson_rhs guards
        from repro.fluid import poisson_rhs

        g = MACGrid2D(8, 8)
        with np.errstate(divide="ignore"):
            b = poisson_rhs(np.ones(g.shape), g.solid, dt=1e-300, rho=1.0, dx=0.1)
        assert np.isinf(b[g.fluid]).all() or np.abs(b[g.fluid]).max() > 1e100
