"""Tests for the turbulent initial-condition generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluid import (
    MACGrid2D,
    apply_turbulent_velocity,
    divergence,
    stream_function_noise,
    value_noise,
)


class TestValueNoise:
    def test_shape(self):
        rng = np.random.default_rng(0)
        assert value_noise((17, 33), 4, rng).shape == (17, 33)

    def test_deterministic_given_rng_state(self):
        a = value_noise((16, 16), 4, np.random.default_rng(7))
        b = value_noise((16, 16), 4, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = value_noise((16, 16), 4, np.random.default_rng(1))
        b = value_noise((16, 16), 4, np.random.default_rng(2))
        assert not np.allclose(a, b)

    def test_higher_scale_has_finer_features(self):
        # finer noise decorrelates faster: neighbouring-cell correlation drops
        def neighbour_corr(f):
            a, b = f[:, :-1].ravel(), f[:, 1:].ravel()
            return np.corrcoef(a, b)[0, 1]

        rng = np.random.default_rng(3)
        coarse = value_noise((64, 64), 3, rng)
        fine = value_noise((64, 64), 24, rng)
        assert neighbour_corr(fine) < neighbour_corr(coarse)


class TestStreamFunctionNoise:
    def test_octaves_add_detail(self):
        one = stream_function_noise((33, 33), np.random.default_rng(5), octaves=1)
        many = stream_function_noise((33, 33), np.random.default_rng(5), octaves=4)
        assert not np.allclose(one, many)

    def test_shape(self):
        psi = stream_function_noise((17, 25), np.random.default_rng(0))
        assert psi.shape == (17, 25)


class TestApplyTurbulentVelocity:
    def test_interior_divergence_free(self):
        g = MACGrid2D(32, 32)
        apply_turbulent_velocity(g, np.random.default_rng(0))
        d = divergence(g)
        # away from the wall the curl construction is exactly divergence-free
        assert np.abs(d[2:-2, 2:-2]).max() < 1e-10

    @given(seed=st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_interior_divergence_free_any_seed(self, seed):
        g = MACGrid2D(24, 24)
        apply_turbulent_velocity(g, np.random.default_rng(seed))
        d = divergence(g)
        assert np.abs(d[2:-2, 2:-2]).max() < 1e-9

    def test_magnitude_normalisation(self):
        g = MACGrid2D(32, 32)
        apply_turbulent_velocity(g, np.random.default_rng(1), magnitude=0.7)
        peak = max(np.abs(g.u).max(), np.abs(g.v).max())
        # boundary zeroing may clip the true peak, but never exceed it
        assert peak <= 0.7 + 1e-12
        assert peak > 0.1

    def test_boundaries_enforced(self):
        g = MACGrid2D(32, 32)
        apply_turbulent_velocity(g, np.random.default_rng(2))
        assert (g.u[:, 0] == 0).all() and (g.u[:, -1] == 0).all()
        assert (g.v[0, :] == 0).all() and (g.v[-1, :] == 0).all()

    def test_nonzero_field(self):
        g = MACGrid2D(32, 32)
        apply_turbulent_velocity(g, np.random.default_rng(3))
        assert (g.u**2).sum() > 0
