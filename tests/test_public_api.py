"""Public-API surface tests: every exported name resolves and is exported
consistently."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.fluid",
    "repro.nn",
    "repro.models",
    "repro.data",
    "repro.core",
    "repro.farm",
    "repro.serve",
    "repro.obs",
    "repro.experiments",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    mod = importlib.import_module(package)
    assert hasattr(mod, "__all__"), f"{package} has no __all__"
    for name in mod.__all__:
        assert hasattr(mod, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_module_docstrings(package):
    mod = importlib.import_module(package)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 20


def test_version_exposed():
    import repro

    assert repro.__version__ == "1.10.0"


def test_top_level_framework_importable():
    from repro import OfflineConfig, SmartFluidnet, UserRequirement

    assert SmartFluidnet is not None
    assert UserRequirement(q=0.1, t=1.0).q == 0.1
    assert OfflineConfig().check_interval == 5


def test_facade_exports_solvers_and_metrics():
    import repro

    assert issubclass(repro.PCGSolver, repro.PressureSolver)
    assert issubclass(repro.JacobiSolver, repro.PressureSolver)
    assert issubclass(repro.MultigridSolver, repro.PressureSolver)
    assert issubclass(repro.NNProjectionSolver, repro.PressureSolver)
    assert repro.metrics.MetricsRegistry is repro.MetricsRegistry
    assert repro.get_metrics() is repro.metrics.get_metrics()


def test_facade_exports_scenario_registry():
    import repro
    from repro.fluid import build_scenario, list_scenarios

    assert repro.build_scenario is build_scenario
    assert repro.list_scenarios is list_scenarios
    names = {info.name for info in repro.list_scenarios()}
    assert len(names) >= 5
    assert "smoke_plume" in names
    spec = repro.parse_scenario("dam_break:grid=16")
    assert spec == repro.ScenarioSpec("dam_break", grid=16)


def test_make_smoke_plume_keyword_sprawl_deprecated():
    from repro.fluid import make_smoke_plume

    # plain positional/rng use stays silent; the sprawl keywords warn
    make_smoke_plume(16, 16, rng=0)
    with pytest.warns(DeprecationWarning, match="build_scenario"):
        make_smoke_plume(16, 16, rng=0, with_obstacles=False)


def test_deprecation_shim_resolves_moved_names():
    import repro
    from repro.fluid import MIC0Preconditioner

    with pytest.warns(DeprecationWarning, match="repro.fluid.MIC0Preconditioner"):
        assert repro.MIC0Preconditioner is MIC0Preconditioner


def test_unknown_root_attribute_raises():
    import repro

    with pytest.raises(AttributeError):
        repro.definitely_not_a_name


def test_public_submodule_docstrings():
    """Every public module in the tree carries a docstring."""
    import pathlib

    root = pathlib.Path(importlib.import_module("repro").__file__).parent
    for path in root.rglob("*.py"):
        rel = path.relative_to(root)
        if rel.name == "__main__.py":  # importing it would run the CLI
            continue
        mod_name = "repro." + str(rel.with_suffix("")).replace("/", ".")
        mod_name = mod_name.removesuffix(".__init__")
        mod = importlib.import_module(mod_name)
        assert mod.__doc__, f"{mod_name} lacks a module docstring"
