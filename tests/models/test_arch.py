"""Tests for the architecture spec."""

import numpy as np
import pytest

from repro.models import ArchSpec, StageSpec, tompson_arch, MAX_STAGES
from repro.nn import Conv2d, Dropout, MaxPool2d, Network, Residual, Upsample2d


class TestStageSpec:
    def test_defaults_valid(self):
        StageSpec().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kernel": 4},
            {"kernel": -1},
            {"channels": 0},
            {"pool": 2, "unpool": 1},
            {"pool": 3, "unpool": 3},
            {"dropout": 1.0},
            {"dropout": -0.1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            StageSpec(**kwargs).validate()


class TestArchSpec:
    def test_tompson_has_five_stages(self):
        arch = tompson_arch()
        assert arch.n_stages == 5
        assert all(s.kernel == 3 for s in arch.stages)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ArchSpec([]).validate()

    def test_too_many_stages_rejected(self):
        with pytest.raises(ValueError):
            ArchSpec([StageSpec() for _ in range(MAX_STAGES + 1)]).validate()

    def test_build_output_shape(self):
        net = tompson_arch(channels=4).build(rng=0)
        out = net.forward(np.zeros((2, 2, 16, 16)))
        assert out.shape == (2, 1, 16, 16)

    def test_build_deterministic_for_seed(self):
        a = tompson_arch(4).build(rng=3)
        b = tompson_arch(4).build(rng=3)
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(pa.value, pb.value)

    def test_pooled_stage_preserves_shape(self):
        arch = ArchSpec([StageSpec(channels=4), StageSpec(channels=4, pool=2, unpool=2)])
        net = arch.build(rng=0)
        out = net.forward(np.zeros((1, 2, 8, 8)))
        assert out.shape == (1, 1, 8, 8)

    def test_pooled_stage_reduces_flops(self):
        plain = ArchSpec([StageSpec(channels=8), StageSpec(channels=8)])
        pooled = ArchSpec([StageSpec(channels=8), StageSpec(channels=8, pool=2, unpool=2)])
        f_plain = plain.build(rng=0).flops((2, 16, 16))
        f_pooled = pooled.build(rng=0).flops((2, 16, 16))
        assert f_pooled < f_plain

    def test_pool_layers_present(self):
        arch = ArchSpec([StageSpec(channels=4, pool=2, unpool=2)])
        net = arch.build(rng=0)
        kinds = [type(l) for l in net.layers]
        assert MaxPool2d in kinds and Upsample2d in kinds
        # pool comes before the conv, upsample after
        assert kinds.index(MaxPool2d) < kinds.index(Conv2d)

    def test_dropout_layer_present(self):
        arch = ArchSpec([StageSpec(channels=4, dropout=0.1)])
        net = arch.build(rng=0)
        assert any(isinstance(l, Dropout) for l in net.layers)

    def test_residual_only_when_channels_match(self):
        matched = ArchSpec([StageSpec(channels=2, residual=True)], in_channels=2)
        assert any(isinstance(l, Residual) for l in matched.build(rng=0).layers)
        unmatched = ArchSpec([StageSpec(channels=5, residual=True)], in_channels=2)
        assert not any(isinstance(l, Residual) for l in unmatched.build(rng=0).layers)

    def test_roundtrip_serialisation(self):
        arch = ArchSpec(
            [StageSpec(3, 8), StageSpec(5, 4, pool=2, unpool=2, dropout=0.1, residual=True)],
            name="x",
        )
        again = ArchSpec.from_dict(arch.to_dict())
        assert again == arch

    def test_copy_is_deep(self):
        arch = tompson_arch()
        c = arch.copy()
        c.stages[0].channels = 99
        assert arch.stages[0].channels != 99

    def test_architecture_vectors_shape_and_padding(self):
        arch = tompson_arch(channels=6)
        vecs = arch.architecture_vectors()
        assert set(vecs) == {"ker", "chn", "pool", "unp", "res"}
        for v in vecs.values():
            assert v.shape == (MAX_STAGES,)
        assert (vecs["chn"][:5] == 6).all()
        assert (vecs["chn"][5:] == 0).all()
        assert (vecs["pool"][:5] == 1).all()

    def test_total_neurons(self):
        assert tompson_arch(channels=8).total_neurons() == 40

    def test_stage_convs_mapping(self):
        arch = ArchSpec([StageSpec(channels=4), StageSpec(channels=4, residual=True)])
        net = arch.build(rng=0)
        convs = arch.stage_convs(net)
        assert len(convs) == 3  # two stages + final 1x1
        assert convs[0].out_channels == 4
        assert convs[-1].out_channels == 1
        assert convs[-1].kernel == 1

    def test_stage_convs_rejects_mismatched_network(self):
        arch = tompson_arch()
        other = ArchSpec([StageSpec(channels=4)]).build(rng=0)
        with pytest.raises(ValueError):
            arch.stage_convs(other)
