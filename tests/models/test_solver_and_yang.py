"""Tests for the NN solver adapter and the Yang baseline."""

import numpy as np
import pytest

from repro.fluid import MACGrid2D, PCGSolver, apply_laplacian, make_smoke_plume
from repro.models import NNProjectionSolver, YangModel, tompson_arch
from repro.nn import Network

from ..nn.gradcheck import numerical_grad

RNG = np.random.default_rng(0)


class PerfectModel:
    """Oracle 'network' that solves the Poisson problem exactly."""

    def __init__(self):
        self.pcg = PCGSolver(tol=1e-11)

    def forward(self, x, training=False):
        b = x[0, 0]
        solid = x[0, 1] > 0.5
        return self.pcg.solve(b, solid).pressure[None, None]

    def flops(self, shape):
        return 0.0

    def param_count(self):
        return 0


def compatible_rhs(solid, seed=0):
    rng = np.random.default_rng(seed)
    fluid = ~solid
    b = np.where(fluid, rng.standard_normal(solid.shape), 0.0)
    return np.where(fluid, b - b[fluid].mean(), 0.0)


class TestNNProjectionSolver:
    def test_invalid_passes(self):
        with pytest.raises(ValueError):
            NNProjectionSolver(PerfectModel(), passes=0)

    def test_oracle_model_reproduces_pcg(self):
        g, _ = make_smoke_plume(16, 16, rng=1)
        b = compatible_rhs(g.solid, 2)
        exact = PCGSolver(tol=1e-11).solve(b, g.solid).pressure
        approx = NNProjectionSolver(PerfectModel(), passes=1).solve(b, g.solid).pressure
        np.testing.assert_allclose(approx, exact, atol=1e-5)

    def test_zero_rhs_short_circuits(self):
        g = MACGrid2D(16, 16)
        res = NNProjectionSolver(PerfectModel()).solve(np.zeros(g.shape), g.solid)
        assert res.converged
        np.testing.assert_array_equal(res.pressure, 0.0)

    def test_scale_equivariance(self):
        net = tompson_arch(4).build(rng=0)
        g, _ = make_smoke_plume(16, 16, rng=3)
        b = compatible_rhs(g.solid, 4)
        solver = NNProjectionSolver(net, passes=1)
        p1 = solver.solve(b, g.solid).pressure
        p2 = solver.solve(1000.0 * b, g.solid).pressure
        np.testing.assert_allclose(p2, 1000.0 * p1, rtol=1e-9)

    def test_more_passes_reduce_residual(self):
        net = tompson_arch(4).build(rng=0)
        g, _ = make_smoke_plume(16, 16, rng=5)
        b = compatible_rhs(g.solid, 6)
        # an untrained network may not reduce the residual, so train-free
        # check uses the *oracle*; for the real net check monotone trend on
        # residual magnitude produced by the defect-correction structure
        r1 = NNProjectionSolver(PerfectModel(), passes=1).solve(b, g.solid).residual_norm
        r2 = NNProjectionSolver(PerfectModel(), passes=2).solve(b, g.solid).residual_norm
        assert r2 <= r1 + 1e-12

    def test_pressure_mean_zero_and_solid_zero(self):
        net = tompson_arch(4).build(rng=1)
        g, _ = make_smoke_plume(16, 16, rng=7)
        b = compatible_rhs(g.solid, 8)
        p = NNProjectionSolver(net).solve(b, g.solid).pressure
        assert p[g.fluid].mean() == pytest.approx(0.0, abs=1e-12)
        assert (p[g.solid] == 0).all()

    def test_flops_scale_with_passes(self):
        net = tompson_arch(4).build(rng=0)
        g = MACGrid2D(16, 16)
        b = compatible_rhs(g.solid, 9)
        f1 = NNProjectionSolver(net, passes=1).solve(b, g.solid).flops
        f3 = NNProjectionSolver(net, passes=3).solve(b, g.solid).flops
        assert f3 == pytest.approx(3 * f1)

    def test_resource_usage(self):
        net = tompson_arch(4).build(rng=0)
        solver = NNProjectionSolver(net, passes=2)
        usage = solver.resource_usage((16, 16))
        assert usage.flops > 0 and usage.params == net.param_count()


class TestPrecision:
    """precision= wiring: fp64 stays bitwise, fp32 is close and all-float64 out."""

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            NNProjectionSolver(tompson_arch(4).build(rng=0), precision="fp16")

    def test_fp64_plan_path_is_bitwise_identical_to_legacy(self):
        g, _ = make_smoke_plume(16, 16, rng=3)
        b = compatible_rhs(g.solid, 4)
        planned = NNProjectionSolver(tompson_arch(4).build(rng=0), passes=2)
        legacy = NNProjectionSolver(tompson_arch(4).build(rng=0), passes=2)
        legacy._plan_unsupported = True  # force the layer-by-layer forward
        rp = planned.solve(b, g.solid)
        rl = legacy.solve(b, g.solid)
        np.testing.assert_array_equal(rp.pressure, rl.pressure)
        assert rp.residual_norm == rl.residual_norm
        assert planned._plan is not None  # the plan actually ran

    def test_fp32_pressure_is_float64_at_the_boundary(self):
        g, _ = make_smoke_plume(16, 16, rng=3)
        b = compatible_rhs(g.solid, 4)
        solver = NNProjectionSolver(tompson_arch(4).build(rng=0), precision="fp32")
        p = solver.solve(b, g.solid).pressure
        assert p.dtype == np.float64

    def test_fp32_divergence_reduction_parity(self):
        """fp32 inference changes the residual only at float32 noise level."""
        g, _ = make_smoke_plume(20, 20, rng=9)
        b = compatible_rhs(g.solid, 10)
        r64 = NNProjectionSolver(tompson_arch(4).build(rng=0), passes=2).solve(b, g.solid)
        r32 = NNProjectionSolver(
            tompson_arch(4).build(rng=0), passes=2, precision="fp32"
        ).solve(b, g.solid)
        np.testing.assert_allclose(r32.pressure, r64.pressure, atol=1e-4)
        assert r32.residual_norm == pytest.approx(r64.residual_norm, rel=1e-3, abs=1e-4)

    def test_plan_compiled_once_and_reused(self):
        from repro.metrics import MetricsRegistry

        m = MetricsRegistry()
        g, _ = make_smoke_plume(16, 16, rng=5)
        solver = NNProjectionSolver(tompson_arch(4).build(rng=0), metrics=m)
        for seed in range(3):
            solver.solve(compatible_rhs(g.solid, seed), g.solid)
        assert m.counter("solver/nn/plan_builds") == 1
        assert solver._plan.workspace_reuses == 3 * solver.passes

    def test_unplannable_model_falls_back_to_legacy_forward(self):
        from repro.metrics import MetricsRegistry

        m = MetricsRegistry()
        g, _ = make_smoke_plume(16, 16, rng=1)
        b = compatible_rhs(g.solid, 2)
        solver = NNProjectionSolver(PerfectModel(), passes=1, metrics=m)
        res = solver.solve(b, g.solid)
        assert res.converged
        assert m.counter("solver/nn/plan_unsupported") == 1
        assert solver._plan is None

    def test_ensure_capacity_prebuilds_plan_for_batch(self):
        from repro.metrics import MetricsRegistry

        m = MetricsRegistry()
        g, _ = make_smoke_plume(16, 16, rng=5)
        solver = NNProjectionSolver(tompson_arch(4).build(rng=0), metrics=m)
        solver.ensure_capacity(g.shape, 4)
        assert solver._plan is not None and solver._plan.capacity == 4
        # smaller batches ride the same plan, no rebuild
        solver.solve_many(
            [compatible_rhs(g.solid, s) for s in range(2)], [g.solid] * 2
        )
        assert m.counter("solver/nn/plan_builds") == 1


class TestYangModel:
    def test_output_shape(self):
        m = YangModel(rng=0)
        out = m.forward(RNG.standard_normal((3, 2, 8, 8)))
        assert out.shape == (3, 1, 8, 8)

    def test_even_patch_rejected(self):
        with pytest.raises(ValueError):
            YangModel(patch=4)

    def test_wrong_channels_rejected(self):
        with pytest.raises(ValueError):
            YangModel(rng=0).forward(np.zeros((1, 3, 8, 8)))

    def test_locality(self):
        """A far-away input perturbation must not change a cell's output."""
        m = YangModel(patch=3, rng=0)
        x = RNG.standard_normal((1, 2, 12, 12))
        y0 = m.forward(x)[0, 0, 2, 2]
        x2 = x.copy()
        x2[0, 0, 10, 10] += 5.0
        y1 = m.forward(x2)[0, 0, 2, 2]
        assert y0 == y1

    def test_shared_weights_translation_equivariance(self):
        m = YangModel(patch=3, rng=1)
        x = RNG.standard_normal((1, 2, 10, 10))
        y = m.forward(x)
        ys = m.forward(np.roll(x, 3, axis=3))
        np.testing.assert_allclose(ys[:, :, :, 4:9], np.roll(y, 3, axis=3)[:, :, :, 4:9], atol=1e-10)

    def test_input_gradient(self):
        m = YangModel(patch=3, hidden=(6,), rng=2)
        x = RNG.standard_normal((1, 2, 5, 5))
        out = m.forward(x.copy(), training=True)
        analytic = m.backward(np.ones_like(out))
        numeric = numerical_grad(lambda v: float(m.forward(v, training=False).sum()), x.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_cheaper_than_tompson(self):
        yang = YangModel(rng=0)
        tompson = tompson_arch(8).build(rng=0)
        assert yang.flops((2, 32, 32)) < tompson.flops((2, 32, 32))

    def test_parameters_exposed(self):
        m = YangModel(hidden=(6, 4), rng=0)
        assert len(m.parameters()) == 6  # three Dense layers x (W, b)
