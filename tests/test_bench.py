"""Smoke tests of the `repro bench` performance suite (marker: bench)."""

import json

import pytest

from repro.benchmark import SCALES, run_bench, write_bench
from repro.cli import main

pytestmark = pytest.mark.bench

EXPECTED_BENCHMARKS = {
    "pcg_geometry_cache",
    "pcg_warm_start",
    "simulation_step",
    "nn_inference",
    "farm_throughput",
    "perf_kernels",
    "tracing_overhead",
    "metrics_overhead",
    "scenario_sweep",
    "nn_pcg",
    "service_throughput",
}


@pytest.fixture(scope="module")
def ci_report():
    return run_bench(scale="ci")


class TestRunBench:
    def test_report_schema(self, ci_report):
        assert ci_report["schema"] == "repro-bench/v1"
        assert ci_report["scale"] == "ci"
        assert {b["name"] for b in ci_report["benchmarks"]} == EXPECTED_BENCHMARKS

    def test_report_is_json_serialisable(self, ci_report):
        restored = json.loads(json.dumps(ci_report))
        assert restored["schema"] == ci_report["schema"]

    def test_geometry_cache_benchmark(self, ci_report):
        cache = next(
            b for b in ci_report["benchmarks"] if b["name"] == "pcg_geometry_cache"
        )
        assert cache["converged"]
        assert cache["cache_misses"] >= 1
        assert cache["cache_hits"] >= SCALES["ci"].solve_reps
        assert cache["cold_seconds"] > 0 and cache["cached_seconds"] > 0
        # the cached path does strictly less work; allow for timing noise in
        # CI, the tracked BENCH_*.json is generated at the default scale
        assert cache["speedup"] > 0.8

    def test_warm_start_benchmark(self, ci_report):
        warm = next(b for b in ci_report["benchmarks"] if b["name"] == "pcg_warm_start")
        assert 0 < warm["warm_iterations"] <= warm["cold_iterations"]
        assert warm["iteration_ratio"] >= 1.0

    def test_simulation_benchmark_carries_metrics(self, ci_report):
        sim = next(b for b in ci_report["benchmarks"] if b["name"] == "simulation_step")
        steps = SCALES["ci"].sim_steps
        assert sim["metrics"]["counters"]["sim/steps"] == steps
        assert sim["metrics"]["timers"]["sim/step"]["count"] == steps

    def test_nn_inference_plans_vs_legacy(self, ci_report):
        nn = next(b for b in ci_report["benchmarks"] if b["name"] == "nn_inference")
        assert nn["fp64_bitwise_identical"]
        assert nn["fp32_max_abs_err"] < 1e-4
        # every timed fp32 pass ran inside the pre-allocated arena
        assert nn["workspace_reuses"] >= SCALES["ci"].infer_reps
        assert nn["arena_bytes_fp32"] > 0
        # the ISSUE acceptance floor: >= 2x fp32 plan speedup at 128^2
        assert nn["fp32_speedup"] >= 2.0

    def test_farm_throughput_compares_same_job_list(self, ci_report):
        farm = next(b for b in ci_report["benchmarks"] if b["name"] == "farm_throughput")
        assert farm["params"]["jobs"] == 8
        assert farm["serial_completed"] == 8
        assert farm["farm_completed"] == 8
        assert farm["serial_jobs_per_second"] > 0
        assert farm["farm_jobs_per_second"] > 0
        assert farm["speedup"] > 0

    def test_perf_kernels_backends_identical(self, ci_report):
        perf = next(b for b in ci_report["benchmarks"] if b["name"] == "perf_kernels")
        assert perf["converged"]
        assert perf["backends_identical"]
        assert perf["spectral_converged"]
        assert perf["pcg_solve_seconds"] > 0
        assert perf["reference_solve_seconds"] > 0
        # the compiled kernel backend must beat the matrix-free reference;
        # 2x is a loose floor (the tracked BENCH_pr3.json shows much more)
        assert perf["speedup"] > 2.0

    def test_tracing_overhead_records_activity(self, ci_report):
        tracing = next(
            b for b in ci_report["benchmarks"] if b["name"] == "tracing_overhead"
        )
        assert tracing["spans_recorded"] > 0
        assert tracing["events_recorded"] > 0
        assert tracing["disabled_seconds"] > 0
        assert tracing["enabled_seconds"] > 0
        # the ratio is noise-dominated on shared runners; CI gates the
        # best interleaved pair at 1.05, here we only sanity-bound it
        assert 0.5 < tracing["overhead_ratio_best"] <= tracing["overhead_ratio"]
        assert tracing["overhead_ratio"] < 2.0

    def test_metrics_overhead_records_activity(self, ci_report):
        metrics = next(
            b for b in ci_report["benchmarks"] if b["name"] == "metrics_overhead"
        )
        assert metrics["counters_recorded"] > 0
        assert metrics["families_recorded"] > 0
        assert metrics["disabled_seconds"] > 0
        assert metrics["enabled_seconds"] > 0
        # CI gates the best interleaved pair at 1.05; sanity-bound only here
        assert 0.5 < metrics["overhead_ratio_best"] <= metrics["overhead_ratio"]
        assert metrics["overhead_ratio"] < 2.0

    def test_report_stamps_git_provenance(self, ci_report):
        # both keys are always present; values are None only outside a checkout
        assert "git_revision" in ci_report
        assert "git_dirty" in ci_report
        if ci_report["git_revision"] is not None:
            assert isinstance(ci_report["git_dirty"], bool)

    def test_scenario_sweep_covers_registry(self, ci_report):
        from repro.fluid import list_scenarios

        sweep = next(
            b for b in ci_report["benchmarks"] if b["name"] == "scenario_sweep"
        )
        names = {r["scenario"].split(":")[0] for r in sweep["scenarios"]}
        assert names == {info.name for info in list_scenarios()}
        assert all(r["seconds"] > 0 for r in sweep["scenarios"])
        import math

        assert all(math.isfinite(r["final_divnorm"]) for r in sweep["scenarios"])

    def test_nn_pcg_cuts_iterations_with_pinned_weights(self, ci_report):
        nn = next(b for b in ci_report["benchmarks"] if b["name"] == "nn_pcg")
        assert nn["pinned_weights"], "committed bench weights not found"
        assert nn["all_converged"]
        assert len(nn["scenarios"]) == 4
        # the CI gate: at least two fallback-prone scenarios at 2x or better
        assert nn["second_best_iteration_ratio"] >= 2.0

    def test_service_throughput_warm_path_is_cache_served(self, ci_report):
        svc = next(
            b for b in ci_report["benchmarks"] if b["name"] == "service_throughput"
        )
        assert svc["cold_completed"] == svc["params"]["jobs"]
        assert svc["all_warm_cached"]
        assert svc["cold_jobs_per_second"] > 0
        assert svc["warm_jobs_per_second"] > 0
        # cache-served jobs skip simulation entirely; even with service
        # overhead the warm path must not be slower than simulating
        assert svc["cache_speedup"] > 1.0

    def test_scenario_sweep_restricts_to_one(self):
        from repro.benchmark import _bench_scenario_sweep

        sweep = _bench_scenario_sweep(SCALES["smoke"], scenario="dam_break:grid=16")
        assert len(sweep["scenarios"]) == 1
        assert sweep["scenarios"][0]["scenario"] == "dam_break:grid=16"

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            run_bench(scale="huge")

    def test_write_bench(self, ci_report, tmp_path):
        path = write_bench(ci_report, tmp_path / "BENCH_test.json")
        assert json.loads(path.read_text())["scale"] == "ci"


class TestBenchCLI:
    def test_bench_subcommand_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_ci.json"
        assert main(["bench", "--scale", "ci", "--output", str(out)]) == 0
        report = json.loads(out.read_text())
        assert {b["name"] for b in report["benchmarks"]} == EXPECTED_BENCHMARKS
        assert "speedup" in capsys.readouterr().out
