"""Tests for visualisation, persistence and the CLI."""

import json

import numpy as np
import pytest

from repro import viz
from repro.cli import build_parser, main
from repro.core import QlossKNNPredictor, SelectedModel, SmartFluidnet, UserRequirement
from repro.data import collect_training_frames, generate_problems
from repro.fluid import MACGrid2D
from repro.io import load_framework, load_model, save_framework, save_model
from repro.models import TrainedModel, tompson_arch


class TestViz:
    def test_ascii_dimensions(self):
        field = np.random.default_rng(0).random((32, 32))
        art = viz.to_ascii(field, width=16)
        lines = art.split("\n")
        assert all(len(line) <= 32 for line in lines)
        assert len(lines) >= 4

    def test_ascii_dark_for_zero_field(self):
        art = viz.to_ascii(np.zeros((16, 16)))
        assert set(art) <= {" ", "\n"}

    def test_ascii_bright_for_peak(self):
        field = np.zeros((8, 8))
        field[0, 0] = 1.0
        assert "@" in viz.to_ascii(field, width=8)

    def test_pgm_header_and_size(self):
        data = viz.to_pgm(np.random.default_rng(0).random((10, 12)))
        assert data.startswith(b"P5\n12 10\n255\n")
        assert len(data) == len(b"P5\n12 10\n255\n") + 120

    def test_save_pgm_appends_suffix(self, tmp_path):
        path = viz.save_pgm(np.zeros((4, 4)), tmp_path / "frame")
        assert path.suffix == ".pgm"
        assert path.exists()

    def test_frame_strip_width(self):
        frames = [np.zeros((8, 8)), np.ones((8, 8))]
        strip = viz.frame_strip(frames, gap=2)
        assert strip.shape == (8, 18)

    def test_frame_strip_rejects_mixed_shapes(self):
        with pytest.raises(ValueError):
            viz.frame_strip([np.zeros((4, 4)), np.zeros((5, 5))])

    def test_render_velocity(self):
        g = MACGrid2D(8, 8)
        g.u[:] = 3.0
        g.enforce_solid_boundaries()
        speed = viz.render_velocity(g)
        assert speed[4, 4] == pytest.approx(3.0)
        assert (speed[g.solid] == 0).all()


@pytest.fixture(scope="module")
def small_model():
    probs = generate_problems(1, 16, split="train")
    data = collect_training_frames(probs, n_steps=4)
    from repro.models import train_model

    return train_model(tompson_arch(4), data, epochs=2, rng=0)


class TestModelIO:
    def test_roundtrip_preserves_outputs(self, small_model, tmp_path):
        save_model(small_model, tmp_path / "m")
        loaded = load_model(tmp_path / "m")
        x = np.random.default_rng(0).standard_normal((1, 2, 16, 16))
        np.testing.assert_allclose(
            loaded.network.forward(x), small_model.network.forward(x), atol=1e-12
        )
        assert loaded.spec == small_model.spec

    def test_arch_json_readable(self, small_model, tmp_path):
        save_model(small_model, tmp_path / "m")
        arch = json.loads((tmp_path / "m" / "arch.json").read_text())
        assert len(arch["stages"]) == 5

    def test_weight_count_mismatch_rejected(self, small_model, tmp_path):
        save_model(small_model, tmp_path / "m")
        # overwrite arch with a different architecture
        other = tompson_arch(4)
        del other.stages[0]
        (tmp_path / "m" / "arch.json").write_text(json.dumps(other.to_dict()))
        with pytest.raises(ValueError):
            load_model(tmp_path / "m")


class TestFrameworkIO:
    def make_framework(self, small_model):
        knn = QlossKNNPredictor(k=2)
        knn.add_database(small_model.name, [(1.0, 0.1), (2.0, 0.2)])
        sel = SelectedModel(
            model=small_model, success_prob=0.9, model_seconds=0.05, expected_seconds=0.06
        )
        return SmartFluidnet(
            runtime_models=[sel],
            knn=knn,
            requirement=UserRequirement(q=0.1, t=1.0),
            exact_seconds=0.5,
        )

    def test_roundtrip(self, small_model, tmp_path):
        fw = self.make_framework(small_model)
        save_framework(fw, tmp_path / "fw")
        loaded = load_framework(tmp_path / "fw")
        assert loaded.requirement == fw.requirement
        assert len(loaded.runtime_models) == 1
        sel = loaded.runtime_models[0]
        assert sel.success_prob == 0.9
        assert loaded.knn.database_size(sel.name) == 2
        assert loaded.knn.predict(sel.name, 1.4) == pytest.approx(0.15)

    def test_loaded_framework_runs(self, small_model, tmp_path):
        from repro.data import InputProblem

        fw = self.make_framework(small_model)
        save_framework(fw, tmp_path / "fw")
        loaded = load_framework(tmp_path / "fw")
        run = loaded.run(InputProblem(16, 3), 8)
        assert len(run.result.records) == 8


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_runs(self, capsys, tmp_path):
        code = main(
            [
                "simulate", "--grid", "16", "--steps", "2", "--seed", "1",
                "--ascii", "--pgm", str(tmp_path / "out"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pressure solver" in out
        assert (tmp_path / "out.pgm").exists()

    def test_simulate_multigrid_backend(self, capsys):
        assert main(["simulate", "--grid", "18", "--steps", "1", "--solver", "multigrid"]) == 0

    def test_simulate_json_output(self, capsys):
        code = main(["simulate", "--grid", "16", "--steps", "2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "simulate"
        assert payload["config"]["solver"] == "pcg"
        assert len(payload["steps"]) == 2
        assert payload["steps"][0]["converged"]
        assert payload["metrics"]["counters"]["sim/steps"] == 2
        assert "sim/step" in payload["metrics"]["timers"]

    def test_simulate_warm_start_and_jacobi_backend(self, capsys):
        assert main(
            ["simulate", "--grid", "16", "--steps", "2", "--warm-start", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["warm_start"] is True
        assert main(["simulate", "--grid", "16", "--steps", "1", "--solver", "jacobi"]) == 0

    def test_simulate_scenario_flag(self, capsys):
        # acceptance criteria: moving-obstacle scenario end-to-end via CLI
        code = main(
            ["simulate", "--scenario", "moving_cylinder:grid=16", "--steps", "2", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["scenario"] == "moving_cylinder:grid=16"
        assert payload["config"]["grid"] == 16  # scenario param wins over --grid
        assert all(step["converged"] for step in payload["steps"])

    def test_simulate_free_surface_scenario(self, capsys):
        code = main(
            ["simulate", "--scenario", "dam_break", "--grid", "16", "--steps", "2", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["steps"][0]["solver"] == "free-surface"

    def test_scenarios_command_lists_registry(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        from repro.fluid import list_scenarios

        assert len(list_scenarios()) >= 5
        for info in list_scenarios():
            assert info.name in out
        assert "grid" in out  # per-scenario parameter docs are printed

    def test_scenarios_command_json(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) >= 5
        assert all("params" in entry for entry in payload)

    def test_unknown_scenario_errors_cleanly(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            main(["simulate", "--scenario", "warp_drive", "--steps", "1"])

    def test_shared_parent_parser_arguments(self):
        parser = build_parser()
        for command, extra in (
            (["simulate"], []),
            (["adaptive", "fw"], []),
            (["offline", "out"], None),
        ):
            args = parser.parse_args(command + ["--grid", "24", "--seed", "7"])
            assert args.grid == 24 and args.seed == 7
            if extra is not None:
                args = parser.parse_args(command + ["--steps", "5"])
                assert args.steps == 5

    def test_experiment_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_adaptive_from_saved_framework(self, small_model, tmp_path, capsys):
        fw = TestFrameworkIO().make_framework(small_model)
        save_framework(fw, tmp_path / "fw")
        code = main(["adaptive", str(tmp_path / "fw"), "--grid", "16", "--steps", "8"])
        assert code == 0
        assert "steps per model" in capsys.readouterr().out

    def test_adaptive_json_output(self, small_model, tmp_path, capsys):
        fw = TestFrameworkIO().make_framework(small_model)
        save_framework(fw, tmp_path / "fw")
        code = main(
            ["adaptive", str(tmp_path / "fw"), "--grid", "16", "--steps", "8", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "adaptive"
        assert payload["restarted"] is False
        assert sum(payload["steps_per_model"].values()) == 8
        assert len(payload["steps"]) == 8
        assert payload["metrics"]["counters"]["sim/steps"] == 8
