"""Batched NN solve: stacked inference matches per-sample solves exactly."""

import numpy as np
import pytest

from repro.fluid import make_smoke_plume
from repro.metrics import MetricsRegistry
from repro.models import NNProjectionSolver, tompson_arch
from repro.nn import Conv2d


def problem(seed, size=16):
    grid, _ = make_smoke_plume(size, size, rng=seed)
    rng = np.random.default_rng(seed + 100)
    b = np.where(grid.fluid, rng.standard_normal(grid.solid.shape), 0.0)
    return b, grid.solid


class TestSolveMany:
    def test_batch_matches_per_sample_solves(self):
        problems = [problem(s) for s in range(4)]  # four different masks
        batched_solver = NNProjectionSolver(
            tompson_arch(4).build(rng=0), passes=2, metrics=MetricsRegistry()
        )
        batched = batched_solver.solve_many(
            [b for b, _ in problems], [s for _, s in problems]
        )
        for (b, solid), res in zip(problems, batched):
            single_solver = NNProjectionSolver(
                tompson_arch(4).build(rng=0), passes=2, metrics=MetricsRegistry()
            )
            ref = single_solver.solve(b, solid)
            np.testing.assert_array_equal(res.pressure, ref.pressure)
            assert res.iterations == ref.iterations
            assert res.residual_norm == ref.residual_norm
            assert res.flops == ref.flops

    def test_empty_batch(self):
        solver = NNProjectionSolver(tompson_arch(4).build(rng=0), metrics=MetricsRegistry())
        assert solver.solve_many([], []) == []

    def test_shape_mismatch_rejected(self):
        solver = NNProjectionSolver(tompson_arch(4).build(rng=0), metrics=MetricsRegistry())
        b1, s1 = problem(0, 16)
        b2, s2 = problem(1, 20)
        with pytest.raises(ValueError, match="shared shape"):
            solver.solve_many([b1, b2], [s1, s2])
        with pytest.raises(ValueError, match="masks"):
            solver.solve_many([b1], [s1, s1])

    def test_all_solid_sample_inside_batch(self):
        b1, s1 = problem(2)
        solid = np.ones_like(s1)
        results = NNProjectionSolver(
            tompson_arch(4).build(rng=0), metrics=MetricsRegistry()
        ).solve_many([b1, np.zeros_like(b1)], [s1, solid])
        assert results[1].converged
        np.testing.assert_array_equal(results[1].pressure, 0.0)
        assert results[1].iterations == 0

    def test_batch_counters_recorded(self):
        metrics = MetricsRegistry()
        solver = NNProjectionSolver(tompson_arch(4).build(rng=0), passes=1, metrics=metrics)
        probs = [problem(s) for s in range(3)]
        solver.solve_many([b for b, _ in probs], [s for _, s in probs])
        assert metrics.counter("solver/nn/batch_solves") == 1
        assert metrics.counter("solver/nn/batched_samples") == 3
        assert metrics.counter("solver/nn/solves") == 3

    def test_single_sample_path_unchanged_through_solve(self):
        b, solid = problem(3)
        metrics = MetricsRegistry()
        solver = NNProjectionSolver(tompson_arch(4).build(rng=0), passes=2, metrics=metrics)
        res = solver.solve(b, solid)
        assert res.iterations == 2
        assert metrics.counter("solver/nn/solves") == 1
        # geometry cache still primed by the single-sample path
        solver.solve(b, solid)
        assert metrics.counter("cache/nn_geometry/hit") == 1


class TestBatchedInferenceService:
    def test_single_request_matches_direct_solve(self):
        from repro.farm import BatchedInferenceService

        b, solid = problem(0)
        direct = NNProjectionSolver(
            tompson_arch(4).build(rng=0), passes=2, metrics=MetricsRegistry()
        ).solve(b, solid)
        service = BatchedInferenceService(
            NNProjectionSolver(tompson_arch(4).build(rng=0), passes=2,
                               metrics=MetricsRegistry()),
            metrics=MetricsRegistry(),
        )
        via_service = service.solve(b, solid)
        np.testing.assert_array_equal(via_service.pressure, direct.pressure)

    def test_partial_batch_dispatches_after_max_wait(self):
        from repro.farm import BatchedInferenceService

        metrics = MetricsRegistry()
        service = BatchedInferenceService(
            NNProjectionSolver(tompson_arch(4).build(rng=0), passes=1,
                               metrics=metrics),
            max_wait=0.01,
            metrics=metrics,
        )
        service.register()
        service.register()  # second participant never submits
        try:
            b, solid = problem(1)
            res = service.solve(b, solid)  # must not deadlock
            assert res.iterations == 1
            assert metrics.counter("farm/batch/dispatches") == 1
            assert metrics.counter("farm/batch/requests") == 1
        finally:
            service.unregister()
            service.unregister()
        assert service.participants == 0

    def test_two_threads_share_one_stacked_pass(self):
        import threading

        from repro.farm import BatchedInferenceService

        metrics = MetricsRegistry()
        service = BatchedInferenceService(
            NNProjectionSolver(tompson_arch(4).build(rng=0), passes=1,
                               metrics=metrics),
            max_wait=5.0,  # long: only a full batch may dispatch
            metrics=metrics,
        )
        service.register()
        service.register()
        problems = [problem(0), problem(1)]
        results = [None, None]

        def worker(i):
            b, solid = problems[i]
            results[i] = service.solve(b, solid)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert all(r is not None for r in results)
        assert metrics.counter("farm/batch/dispatches") == 1
        assert metrics.counter("farm/batch/requests") == 2
        # the stacked pass matches per-sample reference solves
        for (b, solid), res in zip(problems, results):
            ref = NNProjectionSolver(
                tompson_arch(4).build(rng=0), passes=1, metrics=MetricsRegistry()
            ).solve(b, solid)
            np.testing.assert_array_equal(res.pressure, ref.pressure)


class _GatedSolver:
    """Stub solver whose first dispatch blocks until released.

    Lets a test hold the service ``_busy`` while other requests queue up,
    reproducing the long-leader-dispatch contention window.
    """

    name = "gated"

    def __init__(self):
        import threading

        self.calls = []
        self.started = threading.Event()
        self.release = threading.Event()
        self._first = True

    def solve_many(self, bs, solids):
        from repro.fluid.solver_api import SolveResult

        self.calls.append(len(bs))
        if self._first:
            self._first = False
            self.started.set()
            assert self.release.wait(10)
        return [SolveResult(np.zeros_like(b), 1, True, 0.0) for b in bs]


class TestDeadlineRearm:
    def test_full_batches_reform_after_a_long_dispatch(self):
        """Requests that waited out a dispatch must not expire instantly.

        Regression: the grace deadline was fixed at submit time, so a
        request that queued behind a long leader dispatch was already
        "expired" when the leader finished and fragmented into a partial
        batch instead of waiting for the rest of the participants.
        """
        import threading
        import time

        from repro.farm import BatchedInferenceService

        metrics = MetricsRegistry()
        solver = _GatedSolver()
        service = BatchedInferenceService(solver, max_wait=0.25, metrics=metrics)
        service.register()
        service.register()
        b, solid = problem(0)
        threads = []

        def submit():
            service.solve(b, solid)

        # B: alone, times out its grace period, dispatches a batch of 1,
        # then blocks inside the gated solver
        threads.append(threading.Thread(target=submit))
        threads[-1].start()
        assert solver.started.wait(10)
        # C: queues while B's dispatch is in flight, long enough for its
        # submit-time deadline to expire
        threads.append(threading.Thread(target=submit))
        threads[-1].start()
        time.sleep(0.35)
        solver.release.set()
        # D: arrives just after B completes — C must still be waiting so
        # the two of them form one full batch
        time.sleep(0.05)
        threads.append(threading.Thread(target=submit))
        threads[-1].start()
        for t in threads:
            t.join(30)
        assert not any(t.is_alive() for t in threads)
        assert solver.calls == [1, 2]
        assert metrics.counter("farm/batch/dispatches") == 2
        assert metrics.counter("farm/batch/partial") == 1

    def test_dispatch_prewarms_shared_solver_plan_at_capacity(self):
        import threading

        from repro.farm import BatchedInferenceService

        metrics = MetricsRegistry()
        solver = NNProjectionSolver(tompson_arch(4).build(rng=0), passes=1,
                                    metrics=metrics)
        service = BatchedInferenceService(solver, max_wait=5.0, metrics=metrics)
        service.register()
        service.register()
        problems = [problem(0), problem(1)]
        threads = [
            threading.Thread(target=lambda i=i: service.solve(*problems[i]))
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert solver._plan is not None
        assert solver._plan.capacity == 2
        assert metrics.counter("solver/nn/plan_builds") == 1


class TestConvWorkspaceCapacity:
    def test_shrinking_batch_reuses_workspace(self):
        conv = Conv2d(2, 4, rng=0)
        x8 = np.random.default_rng(0).standard_normal((8, 2, 12, 12))
        out8 = conv.forward(x8, training=False)
        reuses = conv.workspace_reuses
        out3 = conv.forward(x8[:3], training=False)
        assert conv.workspace_reuses == reuses + 1  # no reallocation
        np.testing.assert_allclose(out3, out8[:3], atol=1e-12)

    def test_growing_batch_reallocates_correctly(self):
        conv = Conv2d(2, 4, rng=0)
        x2 = np.random.default_rng(1).standard_normal((2, 2, 12, 12))
        conv.forward(x2, training=False)
        x5 = np.random.default_rng(2).standard_normal((5, 2, 12, 12))
        out5 = conv.forward(x5, training=False)
        ref = Conv2d(2, 4, rng=0).forward(x5, training=False)
        np.testing.assert_array_equal(out5, ref)
