"""Checkpoint/restore: bit-for-bit resume equality for PCG and NN solvers."""

import numpy as np
import pytest

from repro.data import InputProblem
from repro.farm.checkpoint import checkpoint_step, load_checkpoint, save_checkpoint
from repro.fluid import FluidSimulator, PCGSolver, SpectralSolver
from repro.metrics import NULL_METRICS
from repro.models import NNProjectionSolver, tompson_arch

GRID = 20
SEED = 5
TOTAL_STEPS = 6
SPLIT_AT = 3


def make_solver(kind: str):
    if kind == "pcg":
        return PCGSolver(metrics=NULL_METRICS)
    if kind == "pcg-reference":
        return PCGSolver(metrics=NULL_METRICS, backend="reference")
    if kind == "spectral":
        return SpectralSolver(metrics=NULL_METRICS)
    return NNProjectionSolver(tompson_arch(4).build(rng=0), passes=2, metrics=NULL_METRICS)


def make_sim(kind: str) -> FluidSimulator:
    grid, source = InputProblem(GRID, SEED).materialize()
    return FluidSimulator(grid, make_solver(kind), source, metrics=NULL_METRICS)


@pytest.mark.parametrize("kind", ["pcg", "pcg-reference", "spectral", "nn"])
def test_resumed_run_is_bit_for_bit_identical(kind, tmp_path):
    reference = make_sim(kind)
    reference.run(TOTAL_STEPS)

    first = make_sim(kind)
    first.run(SPLIT_AT)
    path = save_checkpoint(first, tmp_path / "job.ckpt.npz")
    assert checkpoint_step(path) == SPLIT_AT

    resumed = make_sim(kind)  # fresh process stand-in: new grid, new solver
    resumed.load_state(load_checkpoint(path))
    assert resumed.current_step == SPLIT_AT
    resumed.run(TOTAL_STEPS - SPLIT_AT)

    np.testing.assert_array_equal(resumed.grid.density, reference.grid.density)
    np.testing.assert_array_equal(resumed.grid.u, reference.grid.u)
    np.testing.assert_array_equal(resumed.grid.v, reference.grid.v)
    np.testing.assert_array_equal(resumed.grid.pressure, reference.grid.pressure)
    # per-step diagnostics also line up exactly across the seam
    ref_tail = [r.divnorm for r in reference.records[SPLIT_AT:]]
    res_tail = [r.divnorm for r in resumed.records]
    assert res_tail == ref_tail


def test_checkpoint_preserves_divnorm_history(tmp_path):
    sim = make_sim("pcg")
    sim.run(SPLIT_AT)
    history = [r.divnorm for r in sim.records]
    path = save_checkpoint(sim, tmp_path / "c.npz")
    state = load_checkpoint(path)
    np.testing.assert_allclose(state["divnorm_history"], history)
    fresh = make_sim("pcg")
    fresh.load_state(state)
    np.testing.assert_allclose(fresh.full_divnorm_history, history)


def test_restored_divnorms_shim_warns_but_still_answers(tmp_path):
    sim = make_sim("pcg")
    sim.run(SPLIT_AT)
    history = [r.divnorm for r in sim.records]
    path = save_checkpoint(sim, tmp_path / "c.npz")
    fresh = make_sim("pcg")
    fresh.load_state(load_checkpoint(path))
    with pytest.warns(DeprecationWarning, match="_restored_divnorms is deprecated"):
        values = fresh._restored_divnorms
    np.testing.assert_allclose(values, history)


def test_resume_stitches_timeline_without_dup_or_missing_steps(tmp_path):
    """The step-event timeline must cover every step exactly once after a
    checkpoint restore — no duplicated pre-restore events, no gap at the seam.
    """
    reference = make_sim("pcg")
    ref_result = reference.run(TOTAL_STEPS)

    first = make_sim("pcg")
    first.run(SPLIT_AT)
    path = save_checkpoint(first, tmp_path / "job.ckpt.npz")
    resumed = make_sim("pcg")
    resumed.load_state(load_checkpoint(path))
    result = resumed.run(TOTAL_STEPS - SPLIT_AT)

    for type_ in ("divnorm", "step"):
        steps = sorted(e.step for e in result.timeline if e.type == type_)
        assert steps == list(range(TOTAL_STEPS)), type_
    np.testing.assert_allclose(
        result.full_divnorm_history, ref_result.full_divnorm_history
    )


def test_load_state_rejects_mismatched_grid(tmp_path):
    sim = make_sim("pcg")
    sim.run(1)
    path = save_checkpoint(sim, tmp_path / "c.npz")
    other_grid, other_source = InputProblem(GRID + 4, SEED).materialize()
    other = FluidSimulator(other_grid, PCGSolver(metrics=NULL_METRICS), other_source,
                           metrics=NULL_METRICS)
    with pytest.raises(ValueError, match="does not match"):
        other.load_state(load_checkpoint(path))


def test_checkpoint_payload_is_fsynced_before_rename(tmp_path, monkeypatch):
    """Durability regression: the tmp file must hit disk before the rename.

    Atomic-in-the-namespace is not enough — a crash right after the rename
    could otherwise leave a torn checkpoint that looks valid.
    """
    import os
    from pathlib import Path

    synced_before_rename = []
    real_fsync = os.fsync
    real_replace = Path.replace

    def spy_fsync(fd):
        synced_before_rename.append(fd)
        return real_fsync(fd)

    def spy_replace(self, target):
        assert synced_before_rename, "renamed without fsyncing the payload"
        return real_replace(self, target)

    monkeypatch.setattr(os, "fsync", spy_fsync)
    monkeypatch.setattr(Path, "replace", spy_replace)
    sim = make_sim("pcg")
    sim.run(1)
    path = save_checkpoint(sim, tmp_path / "c.npz")
    assert synced_before_rename
    assert checkpoint_step(path) == 1


def test_failed_checkpoint_write_leaves_no_tmp_file(tmp_path, monkeypatch):
    """A crash mid-write must propagate and not litter ``.tmp`` files."""
    import numpy as np_mod

    def boom(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr(np_mod, "savez", boom)
    import repro.farm.checkpoint as ckpt_mod

    monkeypatch.setattr(ckpt_mod.np, "savez", boom)
    sim = make_sim("pcg")
    sim.run(1)
    with pytest.raises(OSError, match="disk full"):
        save_checkpoint(sim, tmp_path / "c.npz")
    assert not list(tmp_path.glob("*.tmp"))
    assert not (tmp_path / "c.npz").exists()


def test_checkpoint_write_is_atomic(tmp_path):
    sim = make_sim("pcg")
    sim.run(1)
    path = save_checkpoint(sim, tmp_path / "c.npz")
    assert path.exists()
    assert not list(tmp_path.glob("*.tmp"))
    # a second save overwrites in place and stays loadable
    sim.run(1)
    save_checkpoint(sim, path)
    assert checkpoint_step(path) == 2


class TestOrphanSweep:
    """Torn ``.tmp`` checkpoints from killed workers are swept, never resumed."""

    def test_sweep_removes_only_torn_tmp_files(self, tmp_path):
        from repro.farm import sweep_orphans

        good = tmp_path / "a.smoke_plume.deadbeef.ckpt.npz"
        torn = tmp_path / "a.smoke_plume.deadbeef.ckpt.npz.tmp"
        other = tmp_path / "unrelated.txt"
        good.write_bytes(b"payload")
        torn.write_bytes(b"torn half-write")
        other.write_text("keep me")
        removed = sweep_orphans(tmp_path)
        assert removed == [torn]
        assert good.exists() and other.exists() and not torn.exists()

    def test_sweep_of_missing_directory_is_a_noop(self, tmp_path):
        from repro.farm import sweep_orphans

        assert sweep_orphans(tmp_path / "nope") == []

    def test_crashed_mid_write_checkpoint_cleaned_and_job_resumes(self, tmp_path):
        """A worker killed mid-checkpoint leaves a torn .tmp next to the last
        good snapshot; the retry must drop the orphan and resume from the
        good state (satellite regression for the serve tier's long-lived
        checkpoint directories)."""
        from repro.farm import JobSpec
        from repro.farm.worker import run_job
        from repro.metrics import MetricsRegistry

        base = dict(grid_size=16, seed=3, steps=6, checkpoint_every=3)
        straight = run_job(JobSpec(job_id="job", **base))

        first = run_job(
            JobSpec(job_id="job", **dict(base, steps=3)), checkpoint_dir=tmp_path
        )
        assert first.ok and first.steps_done == 3
        ckpt = tmp_path / f"{JobSpec(job_id='job', **base).checkpoint_key}.ckpt.npz"
        assert ckpt.exists()
        torn = ckpt.with_name(ckpt.name + ".tmp")
        torn.write_bytes(b"\x00garbage from a kill -9 mid-savez")

        m = MetricsRegistry()
        resumed = run_job(JobSpec(job_id="job", **base), checkpoint_dir=tmp_path, metrics=m)
        assert not torn.exists()
        assert m.counter("farm/orphan_checkpoints_swept") == 1
        assert resumed.ok
        assert resumed.resumed_from == 3
        assert resumed.final_divnorm == straight.final_divnorm

    def test_farm_run_sweeps_orphans_at_startup(self, tmp_path):
        from repro.farm import JobSpec, SimulationFarm
        from repro.metrics import MetricsRegistry

        (tmp_path / "stale.smoke_plume.12345678.ckpt.npz.tmp").write_bytes(b"torn")
        m = MetricsRegistry()
        farm = SimulationFarm(backend="serial", checkpoint_dir=tmp_path, metrics=m)
        report = farm.run([JobSpec(job_id="j", grid_size=12, steps=2)])
        assert report.results[0].ok
        assert not list(tmp_path.glob("*.tmp"))
        assert m.counter("farm/orphan_checkpoints_swept") == 1
