"""JobSpec/JobResult schema: validation and JSON round-trips."""

import json

import pytest

from repro.farm import JobResult, JobSpec


class TestJobSpec:
    def test_round_trips_through_json(self):
        spec = JobSpec(
            job_id="j1",
            grid_size=24,
            seed=7,
            steps=12,
            solver="nn",
            solver_params={"passes": 3},
            divnorm_limit=5.0,
            checkpoint_every=4,
            timeout_seconds=30.0,
            max_retries=2,
            fail_at_step=6,
            fail_mode="crash",
        )
        restored = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_defaults_are_pcg_no_faults(self):
        spec = JobSpec(job_id="j")
        assert spec.solver == "pcg"
        assert spec.fail_at_step is None
        assert spec.checkpoint_every == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"solver": "bogus"},
            {"steps": 0},
            {"checkpoint_every": -1},
            {"max_retries": -1},
            {"fail_mode": "explode"},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            JobSpec(job_id="j", **kwargs)


class TestCacheKey:
    """The content address behind the serve tier's result cache."""

    #: pinned digest of the default 32^2/seed-0/16-step PCG spec — this is a
    #: *format regression pin*: any change to the semantic-field set or the
    #: canonicalisation must bump CACHE_KEY_VERSION and re-pin, because a
    #: silent change would mis-address every persisted cache entry
    PINNED_DEFAULT = "f5c7816f56ac3fa9cb21d64e93cafe217099fe4142ab0ad8dce9835b39e4fd8c"
    PINNED_DEFAULT_STATE = (
        "8bb366ef0dcaac766acc3508ebb0592643c0d1f64504acd1e63d494348c30415"
    )

    def test_hash_format_is_pinned(self):
        spec = JobSpec(job_id="anything", grid_size=32, seed=0, steps=16, solver="pcg")
        assert spec.cache_key() == self.PINNED_DEFAULT
        assert spec.state_key == self.PINNED_DEFAULT_STATE

    def test_key_is_64_hex_chars(self):
        key = JobSpec(job_id="j").cache_key()
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_non_semantic_fields_do_not_change_the_key(self):
        base = JobSpec(job_id="a").cache_key()
        loaded = JobSpec(
            job_id="completely-different",
            checkpoint_every=4,
            timeout_seconds=9.0,
            max_retries=3,
            fail_at_step=2,
            fail_mode="crash",
        )
        assert loaded.cache_key() == base

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"grid_size": 48},
            {"seed": 1},
            {"steps": 17},
            {"solver": "nn"},
            {"solver_params": {"tol": 1e-6}},
            {"divnorm_limit": 2.0},
            {"scenario": "inflow_jet"},
        ],
    )
    def test_semantic_fields_change_the_key(self, kwargs):
        assert JobSpec(job_id="j", **kwargs).cache_key() != JobSpec(job_id="j").cache_key()

    def test_round_trip_preserves_key(self):
        spec = JobSpec(job_id="j", solver="nn", solver_params={"passes": 3}, steps=9)
        restored = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored.cache_key() == spec.cache_key()

    def test_state_key_ignores_steps_only(self):
        a = JobSpec(job_id="j", steps=4)
        assert JobSpec(job_id="j", steps=32).state_key == a.state_key
        assert JobSpec(job_id="j", steps=32).cache_key() != a.cache_key()
        assert JobSpec(job_id="j", seed=5).state_key != a.state_key


class TestJobResult:
    def test_round_trips_through_json(self):
        res = JobResult(
            job_id="j1",
            status="completed",
            steps_done=12,
            solver_used="pcg",
            degraded=True,
            resumed_from=4,
            retries=1,
            wall_seconds=1.5,
            solve_seconds=0.8,
            final_divnorm=0.25,
            cum_divnorm=3.0,
            metrics={"counters": {"sim/steps": 12.0}, "timers": {}},
        )
        restored = JobResult.from_dict(json.loads(json.dumps(res.to_dict())))
        assert restored == res
        assert restored.ok

    def test_failed_result_not_ok(self):
        assert not JobResult(job_id="j", status="failed", error="boom").ok
