"""JobSpec/JobResult schema: validation and JSON round-trips."""

import json

import pytest

from repro.farm import JobResult, JobSpec


class TestJobSpec:
    def test_round_trips_through_json(self):
        spec = JobSpec(
            job_id="j1",
            grid_size=24,
            seed=7,
            steps=12,
            solver="nn",
            solver_params={"passes": 3},
            divnorm_limit=5.0,
            checkpoint_every=4,
            timeout_seconds=30.0,
            max_retries=2,
            fail_at_step=6,
            fail_mode="crash",
        )
        restored = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_defaults_are_pcg_no_faults(self):
        spec = JobSpec(job_id="j")
        assert spec.solver == "pcg"
        assert spec.fail_at_step is None
        assert spec.checkpoint_every == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"solver": "bogus"},
            {"steps": 0},
            {"checkpoint_every": -1},
            {"max_retries": -1},
            {"fail_mode": "explode"},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            JobSpec(job_id="j", **kwargs)


class TestJobResult:
    def test_round_trips_through_json(self):
        res = JobResult(
            job_id="j1",
            status="completed",
            steps_done=12,
            solver_used="pcg",
            degraded=True,
            resumed_from=4,
            retries=1,
            wall_seconds=1.5,
            solve_seconds=0.8,
            final_divnorm=0.25,
            cum_divnorm=3.0,
            metrics={"counters": {"sim/steps": 12.0}, "timers": {}},
        )
        restored = JobResult.from_dict(json.loads(json.dumps(res.to_dict())))
        assert restored == res
        assert restored.ok

    def test_failed_result_not_ok(self):
        assert not JobResult(job_id="j", status="failed", error="boom").ok
