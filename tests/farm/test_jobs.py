"""JobSpec/JobResult schema: validation and JSON round-trips."""

import json

import pytest

from repro.farm import JobResult, JobSpec


class TestJobSpec:
    def test_round_trips_through_json(self):
        spec = JobSpec(
            job_id="j1",
            grid_size=24,
            seed=7,
            steps=12,
            solver="nn",
            solver_params={"passes": 3},
            divnorm_limit=5.0,
            checkpoint_every=4,
            timeout_seconds=30.0,
            max_retries=2,
            fail_at_step=6,
            fail_mode="crash",
        )
        restored = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_defaults_are_pcg_no_faults(self):
        spec = JobSpec(job_id="j")
        assert spec.solver == "pcg"
        assert spec.fail_at_step is None
        assert spec.checkpoint_every == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"solver": "bogus"},
            {"steps": 0},
            {"checkpoint_every": -1},
            {"max_retries": -1},
            {"fail_mode": "explode"},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            JobSpec(job_id="j", **kwargs)


class TestCacheKey:
    """The content address behind the serve tier's result cache."""

    #: pinned digest of the default 32^2/seed-0/16-step PCG spec — this is a
    #: *format regression pin*: any change to the semantic-field set or the
    #: canonicalisation must bump CACHE_KEY_VERSION and re-pin, because a
    #: silent change would mis-address every persisted cache entry
    #: (v2: model weights are content-addressed, not path-addressed)
    PINNED_DEFAULT = "0ab97b06df0f06ea7bc7d63f90dd3c958197018b923a1260e23cfa8de4159656"
    PINNED_DEFAULT_STATE = (
        "f6ff202d581ad9b40627d52eb59d0c89a8efb11d716329cb0a9967eb86f41b6e"
    )

    def test_hash_format_is_pinned(self):
        spec = JobSpec(job_id="anything", grid_size=32, seed=0, steps=16, solver="pcg")
        assert spec.cache_key() == self.PINNED_DEFAULT
        assert spec.state_key == self.PINNED_DEFAULT_STATE

    def test_key_is_64_hex_chars(self):
        key = JobSpec(job_id="j").cache_key()
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_non_semantic_fields_do_not_change_the_key(self):
        base = JobSpec(job_id="a").cache_key()
        loaded = JobSpec(
            job_id="completely-different",
            checkpoint_every=4,
            timeout_seconds=9.0,
            max_retries=3,
            fail_at_step=2,
            fail_mode="crash",
        )
        assert loaded.cache_key() == base

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"grid_size": 48},
            {"seed": 1},
            {"steps": 17},
            {"solver": "nn"},
            {"solver_params": {"tol": 1e-6}},
            {"divnorm_limit": 2.0},
            {"scenario": "inflow_jet"},
        ],
    )
    def test_semantic_fields_change_the_key(self, kwargs):
        assert JobSpec(job_id="j", **kwargs).cache_key() != JobSpec(job_id="j").cache_key()

    def test_round_trip_preserves_key(self):
        spec = JobSpec(job_id="j", solver="nn", solver_params={"passes": 3}, steps=9)
        restored = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored.cache_key() == spec.cache_key()

    def test_state_key_ignores_steps_only(self):
        a = JobSpec(job_id="j", steps=4)
        assert JobSpec(job_id="j", steps=32).state_key == a.state_key
        assert JobSpec(job_id="j", steps=32).cache_key() != a.cache_key()
        assert JobSpec(job_id="j", seed=5).state_key != a.state_key

    def test_relocated_identical_weights_keep_the_key(self, tmp_path):
        import shutil

        a = tmp_path / "a"
        a.mkdir()
        (a / "arch.json").write_text('{"stages": 5}')
        (a / "weights.npz").write_bytes(b"\x01\x02\x03weights")
        b = tmp_path / "elsewhere" / "b"
        shutil.copytree(a, b)
        key_a = JobSpec(job_id="j", solver="nn", model_dir=str(a)).cache_key()
        key_b = JobSpec(job_id="j", solver="nn", model_dir=str(b)).cache_key()
        assert key_a == key_b
        # ...but different weights at either path re-key
        (b / "weights.npz").write_bytes(b"other")
        assert JobSpec(job_id="j", solver="nn", model_dir=str(b)).cache_key() != key_a

    def test_retraining_in_place_changes_the_key(self, tmp_path):
        d = tmp_path / "m"
        d.mkdir()
        (d / "weights.npz").write_bytes(b"old weights")
        spec = JobSpec(job_id="j", solver="nn", model_dir=str(d))
        before = spec.cache_key()
        (d / "weights.npz").write_bytes(b"new weights")  # same path, new content
        assert spec.cache_key() != before

    def test_missing_model_dir_falls_back_to_the_path(self, tmp_path):
        a = JobSpec(job_id="j", solver="nn", model_dir=str(tmp_path / "not-yet-a"))
        b = JobSpec(job_id="j", solver="nn", model_dir=str(tmp_path / "not-yet-b"))
        assert a.cache_key() != b.cache_key()
        assert a.cache_key() == a.cache_key()  # deterministic without IO


class TestJobResult:
    def test_round_trips_through_json(self):
        res = JobResult(
            job_id="j1",
            status="completed",
            steps_done=12,
            solver_used="pcg",
            degraded=True,
            resumed_from=4,
            retries=1,
            wall_seconds=1.5,
            solve_seconds=0.8,
            final_divnorm=0.25,
            cum_divnorm=3.0,
            metrics={"counters": {"sim/steps": 12.0}, "timers": {}},
        )
        restored = JobResult.from_dict(json.loads(json.dumps(res.to_dict())))
        assert restored == res
        assert restored.ok

    def test_failed_result_not_ok(self):
        assert not JobResult(job_id="j", status="failed", error="boom").ok
