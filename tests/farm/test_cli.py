"""The `repro farm` CLI subcommand, including the acceptance scenario."""

import json

from repro.cli import main


class TestFarmCLI:
    def test_eight_jobs_with_injected_crash_all_complete(self, capsys):
        # acceptance criteria: >= 8 concurrent jobs, one injected worker
        # failure, all jobs complete (checkpoint resume or PCG degradation)
        code = main(
            [
                "farm",
                "--grid", "16",
                "--steps", "3",
                "--jobs", "8",
                "--workers", "4",
                "--checkpoint-every", "1",
                "--inject-failure", "2",
                "--retries", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "8/8 jobs completed" in out
        assert "resumed@" in out or "degraded->pcg" in out

    def test_json_output_carries_report(self, capsys):
        code = main(
            [
                "farm",
                "--grid", "16",
                "--steps", "2",
                "--jobs", "2",
                "--backend", "serial",
                "--json",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["completed"] == 2
        assert report["backend"] == "serial"
        assert report["jobs_per_second"] > 0
        assert report["metrics"]["counters"]["sim/steps"] == 4.0

    def test_injected_raise_in_serial_backend_degrades(self, capsys):
        code = main(
            [
                "farm",
                "--grid", "16",
                "--steps", "3",
                "--jobs", "2",
                "--backend", "serial",
                "--inject-failure", "0",
                "--fail-mode", "raise",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2/2 jobs completed" in out
        assert "degraded->pcg" in out

    def test_dam_break_fleet_with_checkpoint_resume(self, capsys, tmp_path):
        # acceptance criteria: a free-surface fleet runs end-to-end on the
        # process pool, surviving an injected crash via checkpoint resume
        code = main(
            [
                "farm",
                "--scenario", "dam_break:grid=16",
                "--steps", "3",
                "--jobs", "4",
                "--workers", "2",
                "--checkpoint-every", "1",
                "--checkpoint-dir", str(tmp_path),
                "--inject-failure", "1",
                "--retries", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4/4 jobs completed" in out
        assert list(tmp_path.glob("*.dam_break-*.ckpt.npz"))

    def test_scenario_flag_propagates_to_json_report(self, capsys):
        code = main(
            [
                "farm",
                "--scenario", "moving_cylinder:grid=16",
                "--steps", "2",
                "--jobs", "2",
                "--backend", "serial",
                "--json",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["completed"] == 2

    def test_batched_backend_with_nn_jobs(self, capsys):
        code = main(
            [
                "farm",
                "--grid", "16",
                "--steps", "2",
                "--jobs", "3",
                "--solver", "nn",
                "--backend", "batched",
                "--json",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["completed"] == 3
        assert report["metrics"]["counters"]["farm/batch/requests"] == 6.0
