"""SimulationFarm: backends, fault tolerance, retry/resume, merged metrics."""

import json

import pytest

from repro.farm import FarmReport, JobSpec, SimulationFarm


def make_jobs(n, **kwargs):
    base = dict(grid_size=16, steps=3)
    base.update(kwargs)
    return [JobSpec(job_id=f"job-{i}", seed=10 + i, **base) for i in range(n)]


class TestSerialBackend:
    def test_runs_all_jobs(self):
        farm = SimulationFarm(backend="serial")
        report = farm.run(make_jobs(3))
        assert len(report.completed) == 3
        assert report.total_steps == 9
        assert report.jobs_per_second > 0
        # merged farm profile sees every job's simulator counters
        assert report.metrics.counter("sim/steps") == 9
        assert report.metrics.counter("farm/jobs") == 3

    def test_duplicate_job_ids_rejected(self):
        farm = SimulationFarm(backend="serial")
        jobs = make_jobs(2)
        with pytest.raises(ValueError, match="unique"):
            farm.run([jobs[0], jobs[0]])

    def test_report_round_trips_to_json(self):
        report = SimulationFarm(backend="serial").run(make_jobs(2))
        blob = json.loads(json.dumps(report.to_dict()))
        assert blob["completed"] == 2
        assert blob["backend"] == "serial"
        assert len(blob["results"]) == 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SimulationFarm(backend="gpu")


class TestProcessBackend:
    def test_eight_concurrent_jobs_with_injected_crash(self, tmp_path):
        # the ISSUE acceptance scenario: >= 8 concurrent jobs, one worker
        # hard-crashes mid-run, every job still completes (the crashed one
        # resumes from its checkpoint on retry)
        jobs = make_jobs(8, checkpoint_every=1, max_retries=2)
        jobs[3] = JobSpec(
            job_id="job-3",
            grid_size=16,
            seed=13,
            steps=3,
            checkpoint_every=1,
            max_retries=2,
            fail_at_step=2,
            fail_mode="crash",
        )
        farm = SimulationFarm(workers=4, backend="process", checkpoint_dir=tmp_path)
        report = farm.run(jobs)
        assert len(report.results) == 8
        assert len(report.completed) == 8
        crashed = next(r for r in report.results if r.job_id == "job-3")
        assert crashed.retries == 1
        assert crashed.resumed_from == 2  # resumed, not restarted
        assert report.metrics.counter("farm/worker_deaths") == 1
        assert report.metrics.counter("farm/retries") == 1
        # per-worker registries merged: every *surviving* attempt's steps
        # are visible (the crashed attempt died with its registry; its
        # retry resumed at step 2 and recorded only the final step)
        assert report.metrics.counter("sim/steps") == 7 * 3 + 1

    def test_results_preserve_submission_order(self):
        report = SimulationFarm(workers=2, backend="process").run(make_jobs(4))
        assert [r.job_id for r in report.results] == [f"job-{i}" for i in range(4)]

    def test_timeout_kills_and_fails_after_retries(self):
        jobs = [
            JobSpec(
                job_id="slow",
                grid_size=48,
                seed=1,
                steps=500,
                timeout_seconds=0.6,
                max_retries=1,
            )
        ]
        farm = SimulationFarm(workers=1, backend="process")
        report = farm.run(jobs)
        assert len(report.failed) == 1
        assert "timeouts" in report.failed[0].error
        assert report.failed[0].retries == 1
        assert report.metrics.counter("farm/timeouts") == 2

    def test_result_landing_at_the_deadline_is_not_reaped_as_timeout(self, monkeypatch):
        """Timeout reap must grace-drain the queue like the death path.

        Regression: a worker that finished just as its deadline expired
        left its success in the queue and, with no retries left, the job
        was reported failed despite having completed.
        """
        import multiprocessing as mp
        import time

        import repro.farm.pool as pool_mod

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("needs fork to monkeypatch the worker entry")

        real_entry = pool_mod._process_worker_entry

        def finishes_at_the_deadline(spec_dict, checkpoint_dir, attempt, out_queue, *extra):
            # the result lands ~0.2 s past the 0.5 s deadline — inside the
            # grace window the death path already honours
            time.sleep(0.7)
            real_entry(spec_dict, checkpoint_dir, attempt, out_queue, *extra)

        monkeypatch.setattr(pool_mod, "_process_worker_entry", finishes_at_the_deadline)
        jobs = [
            JobSpec(
                job_id="edge",
                grid_size=16,
                seed=3,
                steps=1,
                timeout_seconds=0.5,
                max_retries=0,
            )
        ]
        farm = SimulationFarm(workers=1, backend="process")
        report = farm.run(jobs)
        assert report.results[0].ok, report.results[0].error
        assert report.metrics.counter("farm/timeouts") == 0

    def test_hung_queue_feeder_does_not_stall_supervision(self, monkeypatch):
        """drain() must bound its join on a worker that already reported.

        Regression: ``entry[0].join()`` was unbounded, so a worker whose
        process lingered after shipping its result froze the supervision
        loop and every other job's timeout enforcement.
        """
        import multiprocessing as mp
        import time

        import repro.farm.pool as pool_mod

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("needs fork to monkeypatch the worker entry")

        real_entry = pool_mod._process_worker_entry

        def lingering_entry(spec_dict, checkpoint_dir, attempt, out_queue, *extra):
            real_entry(spec_dict, checkpoint_dir, attempt, out_queue, *extra)
            time.sleep(30)  # result is shipped, but the process hangs around

        monkeypatch.setattr(pool_mod, "_process_worker_entry", lingering_entry)
        farm = SimulationFarm(workers=1, backend="process")
        t0 = time.monotonic()
        report = farm.run(make_jobs(1, steps=1))
        wall = time.monotonic() - t0
        assert report.results[0].ok
        assert wall < 15.0  # pre-fix: blocked the full 30 s sleep
        assert report.metrics.counter("farm/lingering_workers") == 1

    def test_in_run_degradation_inside_worker_process(self):
        jobs = [
            JobSpec(job_id="nn-fail", grid_size=16, seed=2, steps=3,
                    solver="nn", fail_at_step=1)
        ]
        report = SimulationFarm(workers=1, backend="process").run(jobs)
        assert report.results[0].ok
        assert report.results[0].degraded
        assert report.results[0].solver_used == "pcg"
        assert report.metrics.counter("farm/degradations") == 1


class TestBatchedBackend:
    def test_batched_nn_jobs_match_serial(self):
        # same seed -> same untrained model -> identical physics; the
        # batched backend must reproduce serial results exactly
        def jobs():
            return [
                JobSpec(job_id=f"nn-{i}", grid_size=16, seed=21, steps=3,
                        solver="nn", solver_params={"passes": 1})
                for i in range(3)
            ]

        serial = SimulationFarm(backend="serial").run(jobs())
        farm = SimulationFarm(workers=3, backend="batched")
        batched = farm.run(jobs())
        assert len(batched.completed) == 3
        for s, b in zip(serial.results, batched.results):
            assert b.final_divnorm == s.final_divnorm
            assert b.cum_divnorm == pytest.approx(s.cum_divnorm)
        # inference actually went through the stacked service
        assert batched.metrics.counter("farm/batch/dispatches") >= 1
        assert batched.metrics.counter("farm/batch/requests") == 9
        assert batched.metrics.counter("solver/nn/batch_solves") >= 1

    def test_mixed_solvers_run_and_only_nn_batches(self):
        jobs = [
            JobSpec(job_id="pcg-0", grid_size=16, seed=30, steps=2),
            JobSpec(job_id="nn-0", grid_size=16, seed=31, steps=2, solver="nn",
                    solver_params={"passes": 1}),
        ]
        report = SimulationFarm(workers=2, backend="batched").run(jobs)
        assert len(report.completed) == 2
        assert report.metrics.counter("farm/batch/requests") == 2

    def test_batched_degradation_unregisters(self):
        jobs = [
            JobSpec(job_id="nn-a", grid_size=16, seed=40, steps=3, solver="nn",
                    solver_params={"passes": 1}, fail_at_step=1),
            JobSpec(job_id="nn-b", grid_size=16, seed=40, steps=3, solver="nn",
                    solver_params={"passes": 1}),
        ]
        report = SimulationFarm(workers=2, backend="batched", batch_max_wait=0.02).run(jobs)
        assert len(report.completed) == 2
        degraded = next(r for r in report.results if r.job_id == "nn-a")
        assert degraded.degraded and degraded.solver_used == "pcg"


class TestFarmReport:
    def test_throughput_properties(self):
        from repro.farm import JobResult

        report = FarmReport(
            results=[
                JobResult(job_id="a", status="completed", steps_done=10),
                JobResult(job_id="b", status="failed", steps_done=4),
            ],
            backend="serial",
            workers=1,
            wall_seconds=2.0,
        )
        assert report.total_steps == 14
        assert report.jobs_per_second == 0.5
        assert report.steps_per_second == 7.0
        assert len(report.failed) == 1


class TestResizablePool:
    """The long-lived pool behind repro.serve: drain-on-shrink, cancel."""

    @staticmethod
    def _pool(results, workers=2, **kwargs):
        import threading

        from repro.farm.pool import Pool

        lock = threading.Lock()

        def on_result(r):
            with lock:
                results.append(r)

        return Pool(workers=workers, on_result=on_result, poll_seconds=0.01, **kwargs)

    @staticmethod
    def _wait(predicate, timeout=30.0):
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.01)
        return False

    def test_jobs_complete_and_results_are_delivered(self):
        results = []
        pool = self._pool(results, workers=2)
        for i in range(4):
            pool.submit(JobSpec(job_id=f"p{i}", grid_size=12, steps=2, seed=i))
        assert pool.drain(timeout=120)
        pool.shutdown()
        assert sorted(r.job_id for r in results) == ["p0", "p1", "p2", "p3"]
        assert all(r.ok for r in results)

    def test_shrink_drains_busy_workers_instead_of_killing_them(self):
        """Regression for the autoscaler path: resizing down mid-run must let
        every in-flight job finish (drain), never kill a busy worker."""
        results = []
        pool = self._pool(results, workers=3)
        for i in range(6):
            pool.submit(JobSpec(job_id=f"s{i}", grid_size=16, steps=5, seed=i))
        assert self._wait(lambda: pool.busy >= 2)  # workers mid-job
        pool.resize(1)  # scale down while they are busy
        assert pool.workers == 1
        assert pool.drain(timeout=240)
        # every job ran its full budget: nothing was killed or requeued
        assert sorted(r.job_id for r in results) == [f"s{i}" for i in range(6)]
        assert all(r.ok and r.steps_done == 5 for r in results)
        # the excess workers exit at a job boundary shortly after
        assert self._wait(lambda: pool.alive == 1)
        assert pool.metrics.counter("farm/pool/drained_exits") >= 2
        pool.shutdown()

    def test_grow_after_shrink_pays_down_drain_debt_first(self):
        pool = self._pool([], workers=4)
        pool.resize(1)
        pool.resize(3)  # net: one excess remains, no new threads needed
        assert pool.workers == 3
        assert self._wait(lambda: pool.alive == 3)
        pool.shutdown()

    def test_cancel_queued_job_never_runs(self):
        results = []
        pool = self._pool(results, workers=1)
        pool.submit(JobSpec(job_id="long", grid_size=16, steps=6))
        assert self._wait(lambda: pool.busy == 1)
        pool.submit(JobSpec(job_id="victim", grid_size=16, steps=6))
        assert pool.cancel("victim") == "queued"
        assert pool.drain(timeout=120)
        pool.shutdown()
        statuses = {r.job_id: r.status for r in results}
        assert statuses == {"long": "completed", "victim": "cancelled"}
        victim = next(r for r in results if r.job_id == "victim")
        assert victim.steps_done == 0

    def test_cancel_running_job_stops_at_step_boundary(self):
        results = []
        pool = self._pool(results, workers=1)
        pool.submit(JobSpec(job_id="run", grid_size=16, steps=400))
        assert self._wait(lambda: pool.busy == 1)
        assert pool.cancel("run") == "running"
        assert pool.drain(timeout=120)
        pool.shutdown()
        (res,) = results
        assert res.status == "cancelled"
        assert res.steps_done < 400

    def test_priority_orders_queued_jobs(self):
        results = []
        pool = self._pool(results, workers=1)
        pool.submit(JobSpec(job_id="head", grid_size=24, steps=8))
        assert self._wait(lambda: pool.busy == 1)
        pool.submit(JobSpec(job_id="low", grid_size=12, steps=2), priority=5)
        pool.submit(JobSpec(job_id="high", grid_size=12, steps=2), priority=0)
        assert pool.drain(timeout=120)
        pool.shutdown()
        order = [r.job_id for r in results]
        assert order.index("high") < order.index("low")

    def test_duplicate_and_post_shutdown_submissions_rejected(self):
        pool = self._pool([], workers=1)
        pool.submit(JobSpec(job_id="a", grid_size=12, steps=2))
        with pytest.raises(ValueError, match="already in the pool"):
            pool.submit(JobSpec(job_id="a", grid_size=12, steps=2))
        assert pool.drain(timeout=60)
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.submit(JobSpec(job_id="b", grid_size=12, steps=2))

    def test_pool_startup_sweeps_orphaned_checkpoints(self, tmp_path):
        (tmp_path / "dead.smoke_plume.0badf00d.ckpt.npz.tmp").write_bytes(b"torn")
        pool = self._pool([], workers=1, checkpoint_dir=tmp_path)
        assert not list(tmp_path.glob("*.tmp"))
        assert pool.metrics.counter("farm/orphan_checkpoints_swept") == 1
        pool.shutdown()
