"""run_job: completion, degradation, divergence guard, checkpoint resume."""

import numpy as np
import pytest

from repro.data import InputProblem
from repro.farm import JobSpec, run_job
from repro.farm.checkpoint import checkpoint_step
from repro.fluid import FluidSimulator, PCGSolver
from repro.metrics import NULL_METRICS, MetricsRegistry


def spec(**kwargs) -> JobSpec:
    base = dict(job_id="job", grid_size=16, seed=3, steps=4)
    base.update(kwargs)
    return JobSpec(**base)


class TestRunJob:
    def test_pcg_job_completes(self):
        res = run_job(spec())
        assert res.ok
        assert res.steps_done == 4
        assert res.solver_used == "pcg"
        assert not res.degraded
        assert np.isfinite(res.final_divnorm)
        assert res.metrics["counters"]["sim/steps"] == 4

    def test_result_matches_direct_simulation(self):
        res = run_job(spec())
        grid, source = InputProblem(16, 3).materialize()
        sim = FluidSimulator(grid, PCGSolver(metrics=NULL_METRICS), source,
                             metrics=NULL_METRICS)
        direct = sim.run(4)
        assert res.final_divnorm == direct.records[-1].divnorm
        assert res.cum_divnorm == pytest.approx(sum(r.divnorm for r in direct.records))

    def test_nn_job_completes(self):
        res = run_job(spec(solver="nn", solver_params={"passes": 1}))
        assert res.ok
        assert res.solver_used == "nn"

    def test_injected_raise_degrades_to_pcg(self):
        m = MetricsRegistry()
        res = run_job(spec(solver="nn", fail_at_step=2), metrics=m)
        assert res.ok
        assert res.degraded
        assert res.solver_used == "pcg"
        assert res.steps_done == 4
        assert m.counter("farm/degradations") == 1

    def test_injection_skipped_on_retry_attempts(self):
        res = run_job(spec(fail_at_step=2), attempt=1)
        assert res.ok
        assert not res.degraded

    def test_degraded_restart_matches_pcg_run(self):
        # no checkpoints: degradation restarts from step 0 with exact PCG,
        # so the result equals a clean PCG run of the same problem
        failed = run_job(spec(solver="nn", fail_at_step=2))
        clean = run_job(spec())
        assert failed.ok and failed.degraded
        assert failed.final_divnorm == clean.final_divnorm

    def test_degradation_resumes_from_checkpoint(self, tmp_path):
        m = MetricsRegistry()
        res = run_job(
            spec(solver="nn", fail_at_step=3, checkpoint_every=2),
            checkpoint_dir=tmp_path,
            metrics=m,
        )
        assert res.ok and res.degraded
        assert res.resumed_from == 2  # last checkpoint before the fault
        assert m.counter("farm/resumes") == 1
        ckpt = tmp_path / f"{spec(solver='nn').checkpoint_key}.ckpt.npz"
        assert checkpoint_step(ckpt) >= 2

    def test_divergence_guard_triggers_degradation(self):
        res = run_job(spec(divnorm_limit=0.0))  # any positive DivNorm trips it
        # PCG run trips the guard, degrades to (identical) PCG, trips again -> failed
        assert not res.ok
        assert res.degraded
        assert "SimulationDiverged" in res.error

    def test_crash_mode_without_worker_env_degrades_instead(self):
        # in-process, "crash" downgrades to "raise": the farm must survive
        res = run_job(spec(solver="nn", fail_at_step=1, fail_mode="crash"))
        assert res.ok
        assert res.degraded

    def test_checkpoints_written_at_interval(self, tmp_path):
        m = MetricsRegistry()
        res = run_job(spec(steps=6, checkpoint_every=2), checkpoint_dir=tmp_path, metrics=m)
        assert res.ok
        assert m.counter("farm/checkpoints") == 3
        ckpt = tmp_path / f"{spec(steps=6).checkpoint_key}.ckpt.npz"
        assert checkpoint_step(ckpt) == 6

    def test_unknown_solver_kind_rejected(self):
        from repro.farm import build_solver

        with pytest.raises(ValueError, match="unknown solver kind"):
            build_solver(spec(), "amg", MetricsRegistry())
