"""Scenario-aware farm jobs: spec round-trips, compat shim, checkpoint/resume."""

import numpy as np
import pytest

from repro.farm import JobSpec, run_job


class TestJobSpecScenario:
    def test_default_scenario_is_smoke_plume(self):
        spec = JobSpec(job_id="j")
        assert spec.scenario == "smoke_plume"
        assert spec.checkpoint_key == f"j.smoke_plume.{spec.state_key[:8]}"

    def test_scenario_string_canonicalised(self):
        spec = JobSpec(job_id="j", scenario="dam_break:gravity=2.0,grid=16")
        assert spec.scenario == "dam_break:gravity=2.0,grid=16"
        assert spec.scenario_spec.get("grid") == 16

    def test_round_trip_preserves_scenario(self):
        spec = JobSpec(job_id="j", scenario="dam_break:grid=16", steps=4)
        restored = JobSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.scenario == "dam_break:grid=16"

    def test_legacy_dict_loads_with_deprecation_warning(self):
        d = JobSpec(job_id="j", steps=4).to_dict()
        del d["scenario"]
        with pytest.warns(DeprecationWarning, match="scenario"):
            restored = JobSpec.from_dict(d)
        assert restored.scenario == "smoke_plume"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            JobSpec(job_id="j", scenario="warp_drive")
        with pytest.raises(ValueError, match="malformed"):
            JobSpec(job_id="j", scenario="dam_break:grid")

    def test_checkpoint_key_distinguishes_scenarios(self):
        plain = JobSpec(job_id="j").checkpoint_key
        dam = JobSpec(job_id="j", scenario="dam_break").checkpoint_key
        dam16 = JobSpec(job_id="j", scenario="dam_break:grid=16").checkpoint_key
        assert len({plain, dam, dam16}) == 3
        assert dam.startswith("j.dam_break.")
        assert dam16.startswith("j.dam_break-")

    def test_checkpoint_key_distinguishes_dynamics_not_step_budget(self):
        # a bigger step budget must reuse the checkpoint (a checkpoint is a
        # trajectory prefix), while any change to the dynamics re-keys it
        base = JobSpec(job_id="j", steps=4)
        assert JobSpec(job_id="j", steps=16).checkpoint_key == base.checkpoint_key
        assert JobSpec(job_id="j", seed=1).checkpoint_key != base.checkpoint_key
        assert JobSpec(job_id="j", solver="nn").checkpoint_key != base.checkpoint_key
        assert (
            JobSpec(job_id="j", divnorm_limit=1.0).checkpoint_key
            != base.checkpoint_key
        )


class TestScenarioJobs:
    def test_dam_break_job_completes(self):
        res = run_job(JobSpec(job_id="dam", grid_size=16, scenario="dam_break", steps=4))
        assert res.ok
        assert res.steps_done == 4
        assert res.solver_used == "pcg"  # requested kind; wrapped per-scenario
        assert np.isfinite(res.final_divnorm)

    def test_moving_cylinder_job_completes(self):
        res = run_job(
            JobSpec(job_id="cyl", grid_size=16, scenario="moving_cylinder", steps=4)
        )
        assert res.ok
        assert np.isfinite(res.final_divnorm)

    def test_scenario_grid_param_overrides_grid_size(self):
        # an explicit grid parameter in the scenario wins over grid_size
        a = run_job(JobSpec(job_id="a", grid_size=24, scenario="dam_break:grid=16", steps=2))
        b = run_job(JobSpec(job_id="b", grid_size=16, scenario="dam_break:grid=16", steps=2))
        assert a.ok and b.ok
        assert a.final_divnorm == b.final_divnorm

    def test_free_surface_checkpoint_resume_matches_straight_run(self, tmp_path):
        base = dict(grid_size=16, seed=5, scenario="dam_break:grid=16", steps=6)
        straight = run_job(JobSpec(job_id="dam", **base))
        # interrupted run: checkpoint at step 3, then a fresh process resumes
        partial = dict(base, steps=3, checkpoint_every=3)
        first = run_job(
            JobSpec(job_id="dam", **partial), checkpoint_dir=tmp_path
        )
        assert first.ok and first.steps_done == 3
        ckpt = tmp_path / f"{JobSpec(job_id='dam', **base).checkpoint_key}.ckpt.npz"
        assert ckpt.exists()
        resumed = run_job(JobSpec(job_id="dam", **base), checkpoint_dir=tmp_path)
        assert resumed.ok
        assert resumed.resumed_from == 3
        assert resumed.final_divnorm == straight.final_divnorm

    def test_moving_solid_checkpoint_restores_clock(self, tmp_path):
        base = dict(grid_size=16, seed=2, scenario="moving_cylinder:grid=16", steps=6)
        straight = run_job(JobSpec(job_id="cyl", **base))
        run_job(
            JobSpec(job_id="cyl", **dict(base, steps=3, checkpoint_every=3)),
            checkpoint_dir=tmp_path,
        )
        resumed = run_job(JobSpec(job_id="cyl", **base), checkpoint_dir=tmp_path)
        assert resumed.ok
        assert resumed.resumed_from == 3
        # the mover's clock is part of the checkpoint: the resumed run's
        # trajectory must match the uninterrupted one exactly
        assert resumed.final_divnorm == straight.final_divnorm

    def test_default_scenario_job_matches_pre_scenario_behaviour(self):
        # the scenario field's default must not change what jobs compute
        from repro.data import InputProblem
        from repro.fluid import FluidSimulator, PCGSolver
        from repro.metrics import NULL_METRICS

        res = run_job(JobSpec(job_id="j", grid_size=16, seed=3, steps=4))
        grid, source = InputProblem(16, 3).materialize()
        sim = FluidSimulator(grid, PCGSolver(metrics=NULL_METRICS), source,
                             metrics=NULL_METRICS)
        direct = sim.run(4)
        assert res.final_divnorm == direct.records[-1].divnorm
